#include "dddg/graph.h"

#include <sstream>

#include "util/bits.h"
#include "util/strfmt.h"

namespace ft::dddg {

/// Shared construction over any ordered record range (a DynInstr span or a
/// columnar TraceView).
template <typename Range>
Graph Graph::build_impl(const Range& slice) {
  Graph g;
  // Last in-slice producer node of each location.
  std::unordered_map<vm::Location, std::uint32_t> producer;

  auto root_for = [&](vm::Location loc, const vm::DynInstr& r,
                      std::uint64_t bits, ir::Type t) -> std::uint32_t {
    const auto it = producer.find(loc);
    if (it != producer.end()) return it->second;
    Node n;
    n.dyn_index = r.index;
    n.loc = loc;
    n.op = r.op;
    n.type = t;
    n.bits = bits;
    n.line = r.line;
    n.is_root = true;
    g.nodes_.push_back(n);
    const auto id = static_cast<std::uint32_t>(g.nodes_.size() - 1);
    producer.emplace(loc, id);
    return id;
  };

  for (const auto& r : slice) {
    // Resolve operand producers first (roots created lazily), for every
    // record — pure control (condbr) still consumes values, so e.g. branch
    // conditions fed from outside the slice become roots.
    std::uint32_t dep[vm::kMaxTracedOps] = {kNoNode, kNoNode, kNoNode};
    for (unsigned k = 0; k < r.nops; ++k) {
      const vm::Location loc = r.op_loc[k];
      if (loc == vm::kNoLoc) continue;
      dep[k] = root_for(loc, r, r.op_bits[k], r.op_type[k]);
    }

    if (r.result_loc == vm::kNoLoc &&
        !(r.op == ir::Opcode::Emit || r.op == ir::Opcode::EmitTrunc)) {
      continue;  // no value node for pure control / markers
    }

    Node n;
    n.dyn_index = r.index;
    n.loc = r.result_loc;
    n.op = r.op;
    n.type = r.op == ir::Opcode::Store ? r.op_type[0] : r.type;
    n.bits = r.result_bits;
    n.line = r.line;
    n.is_root = false;
    g.nodes_.push_back(n);
    const auto id = static_cast<std::uint32_t>(g.nodes_.size() - 1);
    for (unsigned k = 0; k < r.nops; ++k) {
      if (dep[k] != kNoNode) {
        g.edges_.push_back(Edge{dep[k], id, static_cast<std::uint8_t>(k)});
      }
    }
    if (r.result_loc != vm::kNoLoc) producer[r.result_loc] = id;
  }
  return g;
}

Graph Graph::build(std::span<const vm::DynInstr> slice) {
  return build_impl(slice);
}

Graph Graph::build(trace::TraceView slice) { return build_impl(slice); }

std::vector<std::uint32_t> Graph::roots() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_root) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> Graph::out_degrees() const {
  std::vector<std::uint32_t> deg(nodes_.size(), 0);
  for (const auto& e : edges_) deg[e.from]++;
  return deg;
}

std::vector<std::uint32_t> Graph::leaves() const {
  const auto deg = out_degrees();
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (deg[i] == 0 && !nodes_[i].is_root) out.push_back(i);
  }
  return out;
}

std::string to_dot(const Graph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  for (std::uint32_t i = 0; i < g.nodes().size(); ++i) {
    const auto& n = g.nodes()[i];
    std::string value;
    if (is_float(n.type)) {
      value = util::format("{:.6g}", n.type == ir::Type::F32
                                        ? double(util::bits_to_f32(n.bits))
                                        : util::bits_to_f64(n.bits));
    } else {
      value = std::to_string(static_cast<std::int64_t>(n.bits));
    }
    os << util::format(
        "  n{} [label=\"{}\\n{} = {}\\n@{}\"{}];\n", i, opcode_name(n.op),
        vm::loc_to_string(n.loc), value, n.dyn_index,
        n.is_root ? ", style=filled, fillcolor=lightblue" : "");
  }
  for (const auto& e : g.edges()) {
    os << util::format("  n{} -> n{};\n", e.from, e.to);
  }
  os << "}\n";
  return os.str();
}

}  // namespace ft::dddg
