// Dynamic Data Dependency Graph (§III-B).
//
// Built per code-region instance from the dynamic record slice, after
// Holewinski et al. (PLDI'12): vertices are dynamic values (one per record
// that commits a value, plus one root per region input location); edges are
// the operations transforming input values into output values. Root nodes
// are the region's inputs, leaf nodes its outputs (§III-B).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/column.h"
#include "vm/observer.h"

namespace ft::dddg {

inline constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

struct Node {
  std::uint64_t dyn_index = 0;  // record index (roots: first-use index)
  vm::Location loc = vm::kNoLoc;
  ir::Opcode op = ir::Opcode::Br;  // producing opcode (roots: first user op)
  ir::Type type = ir::Type::Void;
  std::uint64_t bits = 0;  // value carried by this node
  std::uint32_t line = 0;
  bool is_root = false;  // value flowed in from outside the slice
};

struct Edge {
  std::uint32_t from = 0;  // producer node
  std::uint32_t to = 0;    // consumer node
  std::uint8_t operand = 0;
};

class Graph {
 public:
  /// Build the DDDG of a record slice (typically one region instance body).
  static Graph build(std::span<const vm::DynInstr> slice);
  /// Columnar form: identical graph from a TraceView slice.
  static Graph build(trace::TraceView slice);

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// Node ids of roots (region inputs).
  [[nodiscard]] std::vector<std::uint32_t> roots() const;
  /// Node ids of leaves: values no later in-slice instruction consumed.
  [[nodiscard]] std::vector<std::uint32_t> leaves() const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Out-degree per node (computed on demand).
  [[nodiscard]] std::vector<std::uint32_t> out_degrees() const;

 private:
  template <typename Range>
  static Graph build_impl(const Range& slice);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// Render to Graphviz DOT (the paper uses Graphviz for the same purpose).
[[nodiscard]] std::string to_dot(const Graph& g, const std::string& title);

}  // namespace ft::dddg
