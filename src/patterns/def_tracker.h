// Streaming def-use chaining over a dynamic record stream.
//
// Keeps, for every location, the record that last defined it, so detectors
// can chase short producer chains — e.g. recognizing the accumulation idiom
// `store(A[i], load(A[i]) + x)` behind the Repeated Additions pattern
// without materializing a full DDDG.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "vm/observer.h"

namespace ft::patterns {

class DefTracker {
 public:
  struct Def {
    ir::Opcode op = ir::Opcode::Br;
    std::array<vm::Location, vm::kMaxTracedOps> op_loc{};
    std::uint8_t nops = 0;
    std::uint64_t index = 0;
    std::uint32_t line = 0;
    std::uint64_t mem_addr = 0;  // for Load: the loaded address
  };

  /// Record `r` as the defining instruction of its result location.
  /// Call once per record, *after* running any queries about its operands.
  void update(const vm::DynInstr& r) {
    if (r.result_loc == vm::kNoLoc) return;
    Def d;
    d.op = r.op;
    d.op_loc = r.op_loc;
    d.nops = r.nops;
    d.index = r.index;
    d.line = r.line;
    d.mem_addr = r.mem_addr;
    defs_[r.result_loc] = d;
  }

  [[nodiscard]] const Def* find(vm::Location l) const {
    const auto it = defs_.find(l);
    return it == defs_.end() ? nullptr : &it->second;
  }

  /// True if `store` commits `load(addr) (+|fadd) ...` back to the same
  /// address — the Repeated Additions shape (paper Fig. 9: the MG smoother
  /// u[i3][i2][i1] = u[i3][i2][i1] + c[0]*r[...] + c[1]*(...) + c[2]*(...)).
  /// Multi-term accumulations are chains of adds, so the chase descends
  /// through add operands (bounded depth) looking for the reload of `addr`.
  [[nodiscard]] bool is_accumulation_store(const vm::DynInstr& store) const {
    if (store.op != ir::Opcode::Store || store.result_loc == vm::kNoLoc) {
      return false;
    }
    const Def* add = find(store.op_loc[0]);
    if (!add || (add->op != ir::Opcode::FAdd && add->op != ir::Opcode::Add)) {
      return false;
    }
    return add_chain_loads_from(add, store.mem_addr, /*depth=*/8);
  }

  [[nodiscard]] std::size_t size() const noexcept { return defs_.size(); }

 private:
  [[nodiscard]] bool add_chain_loads_from(const Def* add,
                                          std::uint64_t mem_addr,
                                          int depth) const {
    for (unsigned k = 0; k < add->nops; ++k) {
      const Def* src = find(add->op_loc[k]);
      if (!src) continue;
      if (src->op == ir::Opcode::Load && src->mem_addr == mem_addr) {
        return true;
      }
      if (depth > 0 &&
          (src->op == ir::Opcode::FAdd || src->op == ir::Opcode::Add) &&
          add_chain_loads_from(src, mem_addr, depth - 1)) {
        return true;
      }
    }
    return false;
  }

  std::unordered_map<vm::Location, Def> defs_;
};

}  // namespace ft::patterns
