// Fault-free pattern-rate measurement (§VII-B, Table IV).
//
// Use Case 2 predicts an application's success rate from how often each
// pattern's *shape* occurs in its dynamic instruction stream, normalized by
// the total instruction count. No fault injection is involved; these are
// structural rates:
//   condition rate  — comparisons / selects / conditional branches;
//   shift rate      — shift instructions;
//   truncation rate — narrowing casts + truncated output formatting;
//   dead location   — fraction of writes whose value is never read before
//                     being overwritten (dead on arrival);
//   repeated adds   — accumulation stores (load-add-store to same address);
//   overwrite rate  — fraction of writes that overwrite an already-written
//                     location.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "patterns/kinds.h"
#include "trace/events.h"
#include "vm/observer.h"

namespace ft::patterns {

struct PatternRates {
  // Indexed by pattern_index(PatternKind).
  std::array<double, kNumPatterns> rate{};
  std::uint64_t total_instructions = 0;
  std::uint64_t total_writes = 0;

  [[nodiscard]] double of(PatternKind k) const noexcept {
    return rate[pattern_index(k)];
  }
};

/// Measure rates over a fault-free record stream. `events` must index the
/// same records (for the dead-write liveness queries).
[[nodiscard]] PatternRates measure_rates(std::span<const vm::DynInstr> records,
                                         const trace::LocationEvents& events);

/// Columnar form: identical rates from a TraceView.
[[nodiscard]] PatternRates measure_rates(trace::TraceView records,
                                         const trace::LocationEvents& events);

}  // namespace ft::patterns
