#include "patterns/rates.h"

#include <unordered_set>

#include "patterns/def_tracker.h"

namespace ft::patterns {

namespace {

/// Shared measurement over any ordered record range.
template <typename Range>
PatternRates measure_rates_range(const Range& records,
                                 const trace::LocationEvents& events) {
  PatternRates out;
  out.total_instructions = records.size();
  if (records.empty()) return out;

  std::uint64_t conditions = 0, shifts = 0, truncations = 0;
  std::uint64_t writes = 0, dead_writes = 0, overwrites = 0, accum = 0;
  DefTracker defs;
  std::unordered_set<vm::Location> written;

  for (const auto& r : records) {
    switch (r.op) {
      case ir::Opcode::ICmp:
      case ir::Opcode::FCmp:
      case ir::Opcode::Select:
      case ir::Opcode::CondBr:
        conditions++;
        break;
      case ir::Opcode::Shl:
      case ir::Opcode::LShr:
      case ir::Opcode::AShr:
        shifts++;
        break;
      case ir::Opcode::Trunc:
      case ir::Opcode::FPTrunc:
      case ir::Opcode::FPToSI:
      case ir::Opcode::EmitTrunc:
        truncations++;
        break;
      default:
        break;
    }
    if (r.op == ir::Opcode::Store && defs.is_accumulation_store(r)) accum++;

    if (r.result_loc != vm::kNoLoc) {
      writes++;
      if (!written.insert(r.result_loc).second) overwrites++;
      if (events.read_before_overwrite_after(r.result_loc, r.index) ==
          trace::LocationEvents::kNoIndex) {
        dead_writes++;
      }
    }
    defs.update(r);
  }

  const auto total = static_cast<double>(out.total_instructions);
  out.total_writes = writes;
  const double w = writes == 0 ? 1.0 : static_cast<double>(writes);
  out.rate[pattern_index(PatternKind::ConditionalStatement)] =
      static_cast<double>(conditions) / total;
  out.rate[pattern_index(PatternKind::Shifting)] =
      static_cast<double>(shifts) / total;
  out.rate[pattern_index(PatternKind::Truncation)] =
      static_cast<double>(truncations) / total;
  out.rate[pattern_index(PatternKind::DeadCorruptedLocations)] =
      static_cast<double>(dead_writes) / w;
  out.rate[pattern_index(PatternKind::RepeatedAdditions)] =
      static_cast<double>(accum) / total;
  out.rate[pattern_index(PatternKind::DataOverwriting)] =
      static_cast<double>(overwrites) / w;
  return out;
}

}  // namespace

PatternRates measure_rates(std::span<const vm::DynInstr> records,
                           const trace::LocationEvents& events) {
  return measure_rates_range(records, events);
}

PatternRates measure_rates(trace::TraceView records,
                           const trace::LocationEvents& events) {
  return measure_rates_range(records, events);
}

}  // namespace ft::patterns
