#include "patterns/detect.h"

#include <unordered_map>

#include "patterns/def_tracker.h"

namespace ft::patterns {

bool PatternReport::any_found() const noexcept {
  for (const auto c : counts) {
    if (c > 0) return true;
  }
  return false;
}

namespace {

class Detector final : public acl::SweepInspector {
 public:
  Detector(const std::vector<std::uint64_t>& clean_bits,
           const DetectOptions& opts, PatternReport& report)
      : clean_bits_(clean_bits), opts_(opts), report_(report) {}

  void on_record(const vm::DynInstr& r, std::size_t pos, bool result_corrupt,
                 const std::function<bool(vm::Location)>& corrupted) override {
    const bool operand_corrupt = any_operand_corrupt(r, corrupted);

    switch (r.op) {
      case ir::Opcode::ICmp:
      case ir::Opcode::FCmp:
      case ir::Opcode::Select:
        // Same comparison outcome / same selected value despite corruption.
        if (operand_corrupt && !result_corrupt) {
          add(PatternKind::ConditionalStatement, r);
        }
        break;
      case ir::Opcode::Shl:
      case ir::Opcode::LShr:
      case ir::Opcode::AShr:
        if (corrupted(r.op_loc[0]) && !result_corrupt) {
          add(PatternKind::Shifting, r);
        }
        break;
      case ir::Opcode::Trunc:
      case ir::Opcode::FPTrunc:
      case ir::Opcode::FPToSI:
      case ir::Opcode::EmitTrunc:
        if (operand_corrupt && !result_corrupt) {
          add(PatternKind::Truncation, r);
        }
        break;
      case ir::Opcode::Store:
        // RA is a floating-point amortization effect (§VI Pattern 2);
        // integer read-modify-write counters do not amortize error.
        if (result_corrupt && is_float(r.op_type[0]) &&
            defs_.is_accumulation_store(r)) {
          track_repeated_addition(r, pos);
        }
        break;
      default:
        break;
    }

    defs_.update(r);
  }

 private:
  static bool any_operand_corrupt(
      const vm::DynInstr& r,
      const std::function<bool(vm::Location)>& corrupted) {
    for (unsigned k = 0; k < r.nops; ++k) {
      if (r.op_loc[k] != vm::kNoLoc && corrupted(r.op_loc[k])) return true;
    }
    return false;
  }

  void track_repeated_addition(const vm::DynInstr& r, std::size_t pos) {
    const double mag = acl::error_magnitude(clean_bits_[pos],
                                            r.result_bits, r.op_type[0]);
    auto& h = ra_history_[r.result_loc];
    if (h.last_magnitude > 0.0 && mag < h.last_magnitude) {
      h.decreases++;
      if (h.decreases >= opts_.ra_min_decreases) {
        add(PatternKind::RepeatedAdditions, r, mag);
      }
    } else if (mag >= h.last_magnitude && h.last_magnitude != 0.0) {
      h.decreases = 0;
    }
    h.last_magnitude = mag;
  }

  void add(PatternKind kind, const vm::DynInstr& r, double detail = 0.0) {
    report_.counts[pattern_index(kind)]++;
    if (report_.instances.size() < opts_.max_instances) {
      report_.instances.push_back(PatternInstanceInfo{
          kind, r.index, r.result_loc, r.line, r.op, detail});
    }
  }

  struct RaHistory {
    double last_magnitude = 0.0;
    unsigned decreases = 0;
  };

  const std::vector<std::uint64_t>& clean_bits_;
  const DetectOptions& opts_;
  PatternReport& report_;
  DefTracker defs_;
  std::unordered_map<vm::Location, RaHistory> ra_history_;
};

/// Substrate-agnostic core: `diff` is DiffResult or ColumnDiff; build_acl
/// resolves to the matching sweep.
template <typename Diff>
PatternReport detect_patterns_impl(const Diff& diff,
                                   const trace::LocationEvents& events,
                                   const DetectOptions& opts) {
  PatternReport report;
  Detector detector(diff.clean_bits, opts, report);
  report.acl =
      acl::build_acl(diff, events, opts.seed_loc, opts.seed_index, &detector);

  // DCL and DO fall out of the ACL event log.
  for (const auto& e : report.acl.events) {
    if (e.kind == acl::AclEventKind::KillDead) {
      report.counts[pattern_index(PatternKind::DeadCorruptedLocations)]++;
      if (report.instances.size() < opts.max_instances) {
        report.instances.push_back(
            PatternInstanceInfo{PatternKind::DeadCorruptedLocations, e.index,
                                e.loc, e.line, e.op, 0.0});
      }
    } else if (e.kind == acl::AclEventKind::KillOverwrite) {
      report.counts[pattern_index(PatternKind::DataOverwriting)]++;
      if (report.instances.size() < opts.max_instances) {
        report.instances.push_back(
            PatternInstanceInfo{PatternKind::DataOverwriting, e.index, e.loc,
                                e.line, e.op, 0.0});
      }
    }
  }
  return report;
}

}  // namespace

PatternReport detect_patterns(const acl::DiffResult& diff,
                              const trace::LocationEvents& events,
                              const DetectOptions& opts) {
  return detect_patterns_impl(diff, events, opts);
}

PatternReport detect_patterns(const acl::ColumnDiff& diff,
                              const trace::LocationEvents& events,
                              const DetectOptions& opts) {
  return detect_patterns_impl(diff, events, opts);
}

}  // namespace ft::patterns
