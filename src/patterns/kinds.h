// The six resilience computation patterns (§VI).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ft::patterns {

enum class PatternKind : std::uint8_t {
  DeadCorruptedLocations,  // Pattern 1 (DCL)
  RepeatedAdditions,       // Pattern 2 (RA)
  ConditionalStatement,    // Pattern 3 (CS)
  Shifting,                // Pattern 4
  Truncation,              // Pattern 5
  DataOverwriting,         // Pattern 6 (DO)
};

inline constexpr std::size_t kNumPatterns = 6;

inline constexpr std::array<PatternKind, kNumPatterns> kAllPatterns = {
    PatternKind::DeadCorruptedLocations, PatternKind::RepeatedAdditions,
    PatternKind::ConditionalStatement,   PatternKind::Shifting,
    PatternKind::Truncation,             PatternKind::DataOverwriting,
};

[[nodiscard]] constexpr std::string_view pattern_name(PatternKind k) noexcept {
  switch (k) {
    case PatternKind::DeadCorruptedLocations: return "DCL";
    case PatternKind::RepeatedAdditions: return "RA";
    case PatternKind::ConditionalStatement: return "CS";
    case PatternKind::Shifting: return "Shifting";
    case PatternKind::Truncation: return "Trunc";
    case PatternKind::DataOverwriting: return "DO";
  }
  return "?";
}

[[nodiscard]] constexpr std::size_t pattern_index(PatternKind k) noexcept {
  return static_cast<std::size_t>(k);
}

}  // namespace ft::patterns
