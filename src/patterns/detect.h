// Fault-based pattern detection (§III-D, §VI).
//
// Runs the value-diff ACL sweep over a differential execution and watches
// it for the signatures of the six patterns:
//
//   DCL    — a corrupted location dies because it is never referenced again
//            (ACL KillDead events; the aggregation shape of Fig. 8);
//   RA     — an accumulation store (load-add-store to the same address)
//            commits a corrupted value whose error magnitude shrinks over
//            consecutive accumulations (Fig. 9 / Table II);
//   CS     — a comparison/select consumes a corrupted operand yet produces
//            the same boolean/selection as the fault-free run (Fig. 10);
//   Shift  — a shift consumes a corrupted operand but the corrupted bits
//            fall off: the result equals the fault-free value (Fig. 11);
//   Trunc  — a narrowing cast or truncated output formatting discards the
//            corrupted bits (the "%12.6e" case of Pattern 5);
//   DO     — a corrupted location is overwritten with a clean value
//            (ACL KillOverwrite events).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "acl/table.h"
#include "patterns/kinds.h"

namespace ft::patterns {

struct PatternInstanceInfo {
  PatternKind kind = PatternKind::DataOverwriting;
  std::uint64_t index = 0;  // dynamic instruction where the pattern acted
  vm::Location loc = vm::kNoLoc;
  std::uint32_t line = 0;
  ir::Opcode op = ir::Opcode::Br;
  double detail = 0.0;  // RA: error magnitude after this accumulation
};

struct PatternReport {
  std::array<std::size_t, kNumPatterns> counts{};
  std::vector<PatternInstanceInfo> instances;  // capped, for reporting
  acl::AclSeries acl;                          // the underlying ACL series

  [[nodiscard]] std::size_t count(PatternKind k) const noexcept {
    return counts[pattern_index(k)];
  }
  [[nodiscard]] bool found(PatternKind k) const noexcept {
    return count(k) > 0;
  }
  [[nodiscard]] bool any_found() const noexcept;
};

struct DetectOptions {
  /// Seed for region-input injections (the flipped word), vm::kNoLoc for
  /// result-bit injections.
  vm::Location seed_loc = vm::kNoLoc;
  std::uint64_t seed_index = 0;
  /// Keep at most this many concrete instances for reporting (counting is
  /// always exact).
  std::size_t max_instances = 4096;
  /// Require this many consecutive magnitude decreases before an
  /// accumulation chain counts as Repeated Additions.
  unsigned ra_min_decreases = 2;
};

/// Detect patterns over the lockstep prefix of a differential run.
/// `events` must be built over diff.faulty records.
[[nodiscard]] PatternReport detect_patterns(const acl::DiffResult& diff,
                                            const trace::LocationEvents& events,
                                            const DetectOptions& opts = {});

/// Columnar form (`events` built over diff.records()); counts, instances
/// and the underlying ACL series are bit-identical to the DiffResult form.
[[nodiscard]] PatternReport detect_patterns(const acl::ColumnDiff& diff,
                                            const trace::LocationEvents& events,
                                            const DetectOptions& opts = {});

}  // namespace ft::patterns
