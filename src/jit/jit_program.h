/// @file
/// Baseline template JIT over a vm::DecodedProgram.
///
/// compile() walks the flat decoded instruction stream once and emits one
/// fixed x86-64 template per instruction into a W^X code buffer
/// (jit/code_buffer.h) — no IR, no register allocation, no optimization.
/// A dense flat-pc → native-address table (entries()) makes every branch a
/// direct rel32 jump and gives the driver (Vm::run_jit) a resume point at
/// any pc, which is what lets run_until() stop marks, snapshots and
/// fork_from() work unchanged: the machine state layout is exactly the
/// interpreter's, and native execution can pause/resume at any retired-
/// instruction boundary.
///
/// Compile-what-you-can: instructions without a template (the MiniMPI ops)
/// compile to a deopt exit — the driver interprets that one instruction
/// and re-enters native code at the next pc. stats() reports the split.
///
/// Execution is bit-for-bit identical to the interpreter engines (pinned
/// by tests/engine_fuzz_test.cpp across 200 generated programs and by
/// tests/jit_test.cpp across the workload suite).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/opcode.h"
#include "jit/code_buffer.h"
#include "jit/jit_runtime.h"

namespace ft::vm {
class DecodedProgram;
}  // namespace ft::vm

namespace ft::jit {

class JitProgram {
 public:
  /// Signature of the installed entry: execute from ctx->entry_pc until a
  /// stub exits (filling the ctx out fields).
  using EntryFn = void (*)(JitContext*);

  /// Compile `p` (which must outlive the returned program). Returns null
  /// when native execution is unavailable (non-x86-64 target or the
  /// executable mapping failed) — callers fall back to the interpreter.
  [[nodiscard]] static std::shared_ptr<const JitProgram> compile(
      const vm::DecodedProgram& p);

  /// True when this build can emit and run native code (x86-64 with
  /// executable mappings).
  [[nodiscard]] static bool supported() noexcept;

  /// supported() and not disabled by the FT_VM_NO_JIT environment variable
  /// — the one switch that forces every engine user back to the
  /// interpreter (CI runs the full suite once with it set).
  [[nodiscard]] static bool runtime_enabled() noexcept;

  /// Whether `op` has a native template (false => its instructions deopt).
  [[nodiscard]] static bool opcode_compiled(ir::Opcode op) noexcept;

  /// Per-program compilation stats.
  struct Stats {
    std::uint32_t compiled = 0;    ///< instructions with a native template
    std::uint32_t deopt = 0;       ///< instructions that exit to the interpreter
    std::size_t code_bytes = 0;    ///< installed native code size
  };

  [[nodiscard]] EntryFn entry() const noexcept {
    return reinterpret_cast<EntryFn>(
        reinterpret_cast<std::uintptr_t>(buf_.base()));
  }
  /// Per-pc absolute native addresses (indexed by flat pc).
  [[nodiscard]] const std::uint64_t* entries() const noexcept {
    return entries_.data();
  }
  [[nodiscard]] const vm::DecodedProgram& program() const noexcept {
    return *prog_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  JitProgram() = default;

  const vm::DecodedProgram* prog_ = nullptr;
  CodeBuffer buf_;
  std::vector<std::uint64_t> entries_;
  Stats stats_;
};

}  // namespace ft::jit
