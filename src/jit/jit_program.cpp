// Template compiler: one fixed x86-64 sequence per decoded instruction.
//
// Register conventions inside compiled code (established by the prologue,
// preserved across every template):
//   rbx = JitContext*          r12 = memory image base
//   r13 = frame_base           r14 = retired count
//   r15 = stop_limit
// rax/rcx/rdx/rsi/rdi and xmm0/xmm1 are template scratch. Values live in
// the interpreter's canonical in-register form (vm::canon_int), so slots
// written natively are bit-identical to interpreter-written slots.
//
// Every pc's code begins with the pause guard (cmp r14, r15 — the hot
// loop's stop check) so entries()[pc] is a valid resume point and branch
// targets need no special casing. Bodies retire by inc r14 and fall
// through (or rel32-jump) to the next pc's guard. Trapping paths exit
// BEFORE the inc — a trapping instruction does not retire, exactly as in
// the interpreter.
#include "jit/jit_program.h"

#include <cstdlib>
#include <cstring>

#include "ir/type.h"
#include "jit/x64_emitter.h"
#include "util/bits.h"
#include "vm/decode.h"
#include "vm/trap.h"

namespace ft::jit {

namespace {

using ir::CmpPred;
using ir::Opcode;
using ir::Type;
using vm::DecodedInstr;
using vm::Src;
using vm::SrcKind;
using vm::TrapKind;

// JitContext field displacements (pinned by the static_asserts in
// jit_runtime.h), named for readability at the emission sites.
constexpr std::int32_t kCtxMem = 0x08;
constexpr std::int32_t kCtxMemSize = 0x10;
constexpr std::int32_t kCtxStopLimit = 0x18;
constexpr std::int32_t kCtxRetired = 0x20;
constexpr std::int32_t kCtxFrameBase = 0x28;
constexpr std::int32_t kCtxEntryPc = 0x30;
constexpr std::int32_t kCtxExitPc = 0x38;
constexpr std::int32_t kCtxExitReason = 0x3c;
constexpr std::int32_t kCtxExitTrap = 0x40;
constexpr std::int32_t kCtxTrackWrites = 0x44;
constexpr std::int32_t kCtxDirty = 0x48;
constexpr std::int32_t kCtxEntries = 0x50;

constexpr Cc invert(Cc cc) noexcept { return static_cast<Cc>(cc ^ 1); }

template <typename F>
std::uint64_t fn_addr(F* fn) {
  return reinterpret_cast<std::uint64_t>(fn);
}

/// Emission state threaded through the per-opcode templates.
struct Compiler {
  X64Emitter a;
  const vm::DecodedProgram& prog;
  std::vector<std::size_t> pc_offset;          // code offset of each pc's guard
  std::vector<std::pair<std::size_t, std::uint32_t>> pc_fixups;  // rel32 -> pc
  std::size_t pause_stub = 0;
  std::size_t trap_stub = 0;
  std::size_t finish_stub = 0;
  std::size_t deopt_stub = 0;

  explicit Compiler(const vm::DecodedProgram& p) : prog(p) {}

  /// rel32 jump to the guard of `pc` (target offset patched after emission).
  void jmp_pc(std::uint32_t pc) {
    pc_fixups.emplace_back(a.jmp32(0), pc);
  }
  void jcc_pc(Cc cc, std::uint32_t pc) {
    pc_fixups.emplace_back(a.jcc32(cc, 0), pc);
  }

  /// Load operand `s` of an instruction in function `func` into `dst`.
  void load_src(const Src& s, Reg dst, std::uint32_t func) {
    switch (s.kind) {
      case SrcKind::Reg:
        a.load64(dst, R13, static_cast<std::int32_t>(s.index) * 8);
        break;
      case SrcKind::Arg: {
        const std::uint32_t num_regs = prog.function(func).num_regs;
        a.load64(dst, R13,
                 static_cast<std::int32_t>(num_regs + s.index) * 8);
        break;
      }
      case SrcKind::Const:
        a.mov_ri64(dst, s.bits);
        break;
      case SrcKind::None:
        a.alu_rr(ALU_XOR, dst, dst);
        break;
    }
  }

  /// Canonicalize rax to the in-register form of integer type `t`.
  void canon(Type t) {
    if (t == Type::I32) {
      a.movsxd(RAX, RAX);
    } else if (t == Type::I1) {
      a.alu_ri8(ALU_AND, RAX, 1);
    }
  }

  /// Store rax into the instruction's result register and retire.
  void commit(const DecodedInstr& ins) {
    if (ins.result != ir::kNoReg) {
      a.store64(R13, static_cast<std::int32_t>(ins.result) * 8, RAX);
    }
    a.inc_r(R14);
  }

  /// Exit through the trap stub when `cc` holds, recording `kind` and the
  /// trapping pc. Off the fall-through path; rax is clobbered on the way out.
  void trap_if(Cc cc, std::uint32_t pc, TrapKind kind) {
    const auto skip = a.jcc8_fixup(invert(cc));
    a.store32_imm(RBX, kCtxExitTrap, static_cast<std::uint32_t>(kind));
    a.mov_ri32(RAX, pc);
    a.jmp32(trap_stub);
    a.patch_rel8(skip);
  }
  /// Same, for paths where a helper already stored ctx->exit_trap.
  void trap_if_preset(Cc cc, std::uint32_t pc) {
    const auto skip = a.jcc8_fixup(invert(cc));
    a.mov_ri32(RAX, pc);
    a.jmp32(trap_stub);
    a.patch_rel8(skip);
  }

  void call_helper(std::uint64_t fn) {
    a.mov_ri64(RAX, fn);
    a.call_r(RAX);
  }

  /// mem_ok(addr in `addr`, size): addr >= kGlobalBase, addr+size doesn't
  /// wrap, addr+size <= mem_size. `tmp` receives addr+size; both checks
  /// trap OutOfBounds. Clobbers tmp only.
  void bounds_check(Reg addr, Reg tmp, std::uint32_t size, std::uint32_t pc) {
    a.alu_ri8(ALU_CMP, addr,
              static_cast<std::int8_t>(ir::kGlobalBase));
    trap_if(CC_B, pc, TrapKind::OutOfBounds);
    a.lea(tmp, addr, static_cast<std::int32_t>(size));
    a.alu_rr(ALU_CMP, tmp, addr);
    trap_if(CC_B, pc, TrapKind::OutOfBounds);  // addr + size wrapped
    a.cmp_r_mem64(tmp, RBX, kCtxMemSize);
    trap_if(CC_A, pc, TrapKind::OutOfBounds);
  }

  /// Load the value bits of `s` (by type) into xmm as a double.
  void to_double(const Src& s, Reg gpr, Xmm x, std::uint32_t func) {
    load_src(s, gpr, func);
    if (s.type == Type::F32) {
      a.movd_xr(x, gpr);
      a.cvtss2sd(x, x);
    } else {
      a.movq_xr(x, gpr);
    }
  }
};

constexpr Cc icmp_cc(CmpPred p) noexcept {
  switch (p) {
    case CmpPred::Eq: return CC_E;
    case CmpPred::Ne: return CC_NE;
    case CmpPred::Lt: return CC_L;
    case CmpPred::Le: return CC_LE;
    case CmpPred::Gt: return CC_G;
    case CmpPred::Ge: return CC_GE;
    case CmpPred::None: break;
  }
  return CC_E;
}

void emit_prologue(Compiler& c) {
  X64Emitter& a = c.a;
  a.push(RBP);
  a.mov_rr(RBP, RSP);
  a.push(RBX);
  a.push(R12);
  a.push(R13);
  a.push(R14);
  a.push(R15);
  a.alu_ri8(ALU_SUB, RSP, 8);  // re-align: helper calls see rsp%16 == 8
  a.mov_rr(RBX, RDI);
  a.load64(R12, RBX, kCtxMem);
  a.load64(R13, RBX, kCtxFrameBase);
  a.load64(R14, RBX, kCtxRetired);
  a.load64(R15, RBX, kCtxStopLimit);
  a.load64(RAX, RBX, kCtxEntryPc);
  a.load64(RCX, RBX, kCtxEntries);
  a.jmp_mem_bi8(RCX, RAX);
}

void emit_stubs(Compiler& c) {
  X64Emitter& a = c.a;
  // Common exit first, so every stub's jump to it is backward and final.
  const std::size_t common_exit = a.size();
  a.store64(RBX, kCtxRetired, R14);
  a.alu_ri8(ALU_ADD, RSP, 8);
  a.pop(R15);
  a.pop(R14);
  a.pop(R13);
  a.pop(R12);
  a.pop(RBX);
  a.pop(RBP);
  a.ret();

  // Each stub: eax carries the stopping pc; store it + the reason, leave.
  const auto stub = [&](ExitReason reason) {
    const std::size_t off = a.size();
    a.store32(RBX, kCtxExitPc, RAX);
    a.store32_imm(RBX, kCtxExitReason, static_cast<std::uint32_t>(reason));
    a.jmp32(common_exit);
    return off;
  };
  c.pause_stub = stub(ExitReason::Limit);
  c.trap_stub = stub(ExitReason::Trap);
  c.finish_stub = stub(ExitReason::Finished);
  c.deopt_stub = stub(ExitReason::Deopt);
}

/// Emit the template of the instruction at `pc`. Returns false when the
/// opcode has no template (a deopt exit was emitted instead).
bool emit_instr(Compiler& c, std::uint32_t pc) {
  X64Emitter& a = c.a;
  const DecodedInstr& ins = c.prog.code()[pc];
  const Src* const srcs = c.prog.srcs() + ins.src_begin;
  const std::uint32_t func = ins.func;
  const Type t = ins.type;
  const auto s = [&](unsigned i) -> const Src& { return srcs[i]; };
  const auto load = [&](unsigned i, Reg dst) { c.load_src(s(i), dst, func); };

  switch (ins.op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: {
      load(0, RAX);
      load(1, RCX);
      switch (ins.op) {
        case Opcode::Add: a.alu_rr(ALU_ADD, RAX, RCX); break;
        case Opcode::Sub: a.alu_rr(ALU_SUB, RAX, RCX); break;
        case Opcode::Mul: a.imul_rr(RAX, RCX); break;
        case Opcode::And: a.alu_rr(ALU_AND, RAX, RCX); break;
        case Opcode::Or: a.alu_rr(ALU_OR, RAX, RCX); break;
        default: a.alu_rr(ALU_XOR, RAX, RCX); break;
      }
      c.canon(t);
      c.commit(ins);
      return true;
    }

    case Opcode::SDiv:
    case Opcode::SRem: {
      load(0, RAX);
      load(1, RCX);
      a.test_rr(RCX, RCX);
      c.trap_if(CC_E, pc, TrapKind::DivByZero);
      a.mov_ri64(RDX, 0x8000000000000000ull);
      a.alu_rr(ALU_CMP, RAX, RDX);
      const auto ok = a.jcc8_fixup(CC_NE);
      a.alu_ri8(ALU_CMP, RCX, -1);
      c.trap_if(CC_E, pc, TrapKind::IntOverflowDiv);
      a.patch_rel8(ok);
      a.cqo();
      a.idiv_r(RCX);
      if (ins.op == Opcode::SRem) a.mov_rr(RAX, RDX);
      c.canon(t);
      c.commit(ins);
      return true;
    }

    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      const unsigned width = bit_width(t);
      load(0, RAX);
      load(1, RCX);
      a.alu_ri8(ALU_CMP, RCX, static_cast<std::int8_t>(width));
      c.trap_if(CC_AE, pc, TrapKind::BadShift);
      if (ins.op == Opcode::LShr) {
        // truncate_to(x, width) before the logical shift.
        if (t == Type::I32) a.mov_rr32(RAX, RAX);
        if (t == Type::I1) a.alu_ri8(ALU_AND, RAX, 1);
      }
      a.shift_cl(ins.op == Opcode::Shl   ? 4
                 : ins.op == Opcode::LShr ? 5
                                          : 7,
                 RAX);
      c.canon(t);
      c.commit(ins);
      return true;
    }

    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      load(0, RAX);
      load(1, RCX);
      if (t == Type::F32) {
        a.movd_xr(XMM0, RAX);
        a.movd_xr(XMM1, RCX);
        switch (ins.op) {
          case Opcode::FAdd: a.addss(XMM0, XMM1); break;
          case Opcode::FSub: a.subss(XMM0, XMM1); break;
          case Opcode::FMul: a.mulss(XMM0, XMM1); break;
          default: a.divss(XMM0, XMM1); break;
        }
        a.movd_rx(RAX, XMM0);
      } else {
        a.movq_xr(XMM0, RAX);
        a.movq_xr(XMM1, RCX);
        switch (ins.op) {
          case Opcode::FAdd: a.addsd(XMM0, XMM1); break;
          case Opcode::FSub: a.subsd(XMM0, XMM1); break;
          case Opcode::FMul: a.mulsd(XMM0, XMM1); break;
          default: a.divsd(XMM0, XMM1); break;
        }
        a.movq_rx(RAX, XMM0);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::FNeg:
    case Opcode::FAbs: {
      // IEEE sign-bit ops, done as integer masking (how compilers lower
      // -x / fabs(x); NaN payloads pass through bit-exactly).
      load(0, RAX);
      const bool neg = ins.op == Opcode::FNeg;
      if (t == Type::F32) {
        if (neg) {
          a.alu32_ri32(ALU_XOR, RAX, 0x80000000u);
        } else {
          a.alu32_ri32(ALU_AND, RAX, 0x7fffffffu);
        }
      } else {
        a.mov_ri64(RCX, neg ? 0x8000000000000000ull : 0x7fffffffffffffffull);
        a.alu_rr(neg ? ALU_XOR : ALU_AND, RAX, RCX);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::FSqrt: {
      load(0, RAX);
      if (t == Type::F32) {
        a.movd_xr(XMM0, RAX);
        a.sqrtss(XMM0, XMM0);
        a.movd_rx(RAX, XMM0);
      } else {
        a.movq_xr(XMM0, RAX);
        a.sqrtsd(XMM0, XMM0);
        a.movq_rx(RAX, XMM0);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::FFloor: {
      load(0, RDI);
      c.call_helper(fn_addr(t == Type::F32 ? &ft_jit_helper_floor32 : &ft_jit_helper_floor64));
      c.commit(ins);
      return true;
    }

    case Opcode::ICmp: {
      if (ins.pred == CmpPred::None) {
        a.alu_rr(ALU_XOR, RAX, RAX);
      } else {
        load(0, RAX);
        load(1, RCX);
        a.alu_rr(ALU_CMP, RAX, RCX);
        a.setcc(icmp_cc(ins.pred), RAX);
        a.movzx8(RAX, RAX);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::FCmp: {
      if (ins.pred == CmpPred::None) {
        a.alu_rr(ALU_XOR, RAX, RAX);
        c.commit(ins);
        return true;
      }
      c.to_double(s(0), RAX, XMM0, func);
      c.to_double(s(1), RCX, XMM1, func);
      // Ordered C comparisons: unordered (NaN) compares false everywhere
      // except Ne. Lt/Le compare operands swapped so the one NaN-aware
      // flag pattern (CF) decides.
      switch (ins.pred) {
        case CmpPred::Eq:
          a.ucomisd(XMM0, XMM1);
          a.setcc(CC_E, RAX);
          a.setcc(CC_NP, RCX);
          a.movzx8(RAX, RAX);
          a.movzx8(RCX, RCX);
          a.alu_rr(ALU_AND, RAX, RCX);
          break;
        case CmpPred::Ne:
          a.ucomisd(XMM0, XMM1);
          a.setcc(CC_NE, RAX);
          a.setcc(CC_P, RCX);
          a.movzx8(RAX, RAX);
          a.movzx8(RCX, RCX);
          a.alu_rr(ALU_OR, RAX, RCX);
          break;
        case CmpPred::Lt:
          a.ucomisd(XMM1, XMM0);
          a.setcc(CC_A, RAX);
          a.movzx8(RAX, RAX);
          break;
        case CmpPred::Le:
          a.ucomisd(XMM1, XMM0);
          a.setcc(CC_AE, RAX);
          a.movzx8(RAX, RAX);
          break;
        case CmpPred::Gt:
          a.ucomisd(XMM0, XMM1);
          a.setcc(CC_A, RAX);
          a.movzx8(RAX, RAX);
          break;
        default:  // Ge
          a.ucomisd(XMM0, XMM1);
          a.setcc(CC_AE, RAX);
          a.movzx8(RAX, RAX);
          break;
      }
      c.commit(ins);
      return true;
    }

    case Opcode::Select: {
      load(0, RAX);
      load(1, RCX);
      load(2, RDX);
      a.test_al_imm8(1);
      a.mov_rr(RAX, RDX);          // default: the false arm
      a.cmovcc(CC_NE, RAX, RCX);   // cond bit set: the true arm
      c.commit(ins);
      return true;
    }

    case Opcode::Trunc: {
      load(0, RAX);
      c.canon(t);
      c.commit(ins);
      return true;
    }
    case Opcode::SExt: {
      load(0, RAX);  // canonical form is already sign-extended
      c.commit(ins);
      return true;
    }
    case Opcode::ZExt: {
      load(0, RAX);
      const Type st = s(0).type;
      if (st == Type::I1) {
        a.alu_ri8(ALU_AND, RAX, 1);
      } else if (st == Type::I32) {
        a.mov_rr32(RAX, RAX);
      }
      c.commit(ins);
      return true;
    }
    case Opcode::FPTrunc: {
      load(0, RAX);
      a.movq_xr(XMM0, RAX);
      a.cvtsd2ss(XMM0, XMM0);
      a.movd_rx(RAX, XMM0);
      c.commit(ins);
      return true;
    }
    case Opcode::FPExt: {
      load(0, RAX);
      a.movd_xr(XMM0, RAX);
      a.cvtss2sd(XMM0, XMM0);
      a.movq_rx(RAX, XMM0);
      c.commit(ins);
      return true;
    }
    case Opcode::FPToSI: {
      c.to_double(s(0), RAX, XMM0, func);
      a.ucomisd(XMM0, XMM0);
      c.trap_if(CC_P, pc, TrapKind::FpDomain);  // NaN
      a.mov_ri64(RCX, util::f64_to_bits(-9.3e18));
      a.movq_xr(XMM1, RCX);
      a.ucomisd(XMM0, XMM1);
      c.trap_if(CC_B, pc, TrapKind::FpDomain);  // x < -9.3e18
      a.mov_ri64(RCX, util::f64_to_bits(9.3e18));
      a.movq_xr(XMM1, RCX);
      a.ucomisd(XMM0, XMM1);
      c.trap_if(CC_A, pc, TrapKind::FpDomain);  // x > 9.3e18
      a.cvttsd2si(RAX, XMM0);
      c.canon(t);
      c.commit(ins);
      return true;
    }
    case Opcode::SIToFP: {
      load(0, RAX);
      a.cvtsi2sd(XMM0, RAX);
      if (t == Type::F32) {
        // int64 -> double -> float, exactly the interpreter's two-step
        // rounding (a direct cvtsi2ss would round once, not twice).
        a.cvtsd2ss(XMM0, XMM0);
        a.movd_rx(RAX, XMM0);
      } else {
        a.movq_rx(RAX, XMM0);
      }
      c.commit(ins);
      return true;
    }
    case Opcode::Bitcast: {
      load(0, RAX);
      if (t == Type::I32) {
        a.movsxd(RAX, RAX);  // keep I32 canonical (sign-extended)
      } else if (bit_width(t) == 32) {
        a.mov_rr32(RAX, RAX);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::Alloca: {
      a.mov_rr(RDI, RBX);
      a.mov_ri64(RSI, static_cast<std::uint64_t>(ins.aux));
      c.call_helper(fn_addr(&ft_jit_helper_alloca));
      a.alu_ri8(ALU_CMP, RAX, -1);
      c.trap_if_preset(CC_E, pc);  // helper stored StackOverflow
      c.commit(ins);
      return true;
    }

    case Opcode::Load: {
      const std::uint32_t size = store_size(t);
      load(0, RAX);
      c.bounds_check(RAX, RCX, size, pc);
      if (size == 8) {
        a.load64_bi(RAX, R12, RAX);
      } else if (t == Type::I32) {
        a.load32_sx_bi(RAX, R12, RAX);
      } else if (t == Type::F32) {
        a.load32_zx_bi(RAX, R12, RAX);
      } else {  // I1
        a.load8_zx_bi(RAX, R12, RAX);
        a.alu_ri8(ALU_AND, RAX, 1);
      }
      c.commit(ins);
      return true;
    }

    case Opcode::Store: {
      const std::uint32_t size = store_size(s(0).type);
      load(0, RAX);  // value
      load(1, RCX);  // address
      c.bounds_check(RCX, RDX, size, pc);
      if (size == 8) {
        a.store64_bi(R12, RCX, RAX);
      } else if (size == 4) {
        a.store32_bi(R12, RCX, RAX);
      } else {
        a.store8_bi(R12, RCX, RAX);
      }
      // Dirty-page tracking: bts's bit-string form indexes the bitmap as
      // dirty[page >> 6] |= 1 << (page & 63), one op per touched page.
      a.cmp_mem32_imm8(RBX, kCtxTrackWrites, 0);
      const auto skip = a.jcc8_fixup(CC_E);
      a.load64(RSI, RBX, kCtxDirty);
      a.mov_rr(RDX, RCX);
      a.shr_imm(RDX, 12);  // Vm::kDirtyPageShift
      a.bts_mem64(RSI, RDX);
      a.lea(RDX, RCX, static_cast<std::int32_t>(size) - 1);
      a.shr_imm(RDX, 12);
      a.bts_mem64(RSI, RDX);
      a.patch_rel8(skip);
      a.inc_r(R14);
      return true;
    }

    case Opcode::Gep: {
      load(0, RAX);
      load(1, RCX);
      // Unsigned multiply-add with two's complement wraparound — the
      // shared overflow semantic of all three engines.
      a.mov_ri64(RDX, static_cast<std::uint64_t>(ins.aux));
      a.imul_rr(RCX, RDX);
      a.alu_rr(ALU_ADD, RAX, RCX);
      c.commit(ins);
      return true;
    }

    case Opcode::Br: {
      a.inc_r(R14);
      if (ins.target_taken != pc + 1) c.jmp_pc(ins.target_taken);
      return true;
    }
    case Opcode::CondBr: {
      load(0, RAX);
      a.inc_r(R14);
      a.test_al_imm8(1);
      c.jcc_pc(CC_NE, ins.target_taken);
      if (ins.target_fall != pc + 1) c.jmp_pc(ins.target_fall);
      return true;
    }
    case Opcode::Ret: {
      if (ins.src_count > 0) {
        load(0, RSI);
      } else {
        a.alu_rr(ALU_XOR, RSI, RSI);
      }
      a.mov_rr(RDI, RBX);
      c.call_helper(fn_addr(&ft_jit_helper_ret));
      a.alu_ri8(ALU_CMP, RAX, -1);
      const auto resume = a.jcc8_fixup(CC_NE);
      a.inc_r(R14);  // the top-level Ret retires before Finished
      a.mov_ri32(RAX, pc);
      a.jmp32(c.finish_stub);
      a.patch_rel8(resume);
      a.inc_r(R14);
      a.load64(R13, RBX, kCtxFrameBase);  // frame popped
      a.load64(RCX, RBX, kCtxEntries);
      a.jmp_mem_bi8(RCX, RAX);  // resume at the caller's pc
      return true;
    }
    case Opcode::Call: {
      a.mov_rr(RDI, RBX);
      a.mov_ri64(RSI, pc);
      c.call_helper(fn_addr(&ft_jit_helper_call));
      a.test_rr(RAX, RAX);
      c.trap_if_preset(CC_NE, pc);  // helper stored CallDepth
      a.inc_r(R14);
      a.load64(R13, RBX, kCtxFrameBase);  // frame pushed
      const auto callee = static_cast<std::uint32_t>(ins.aux);
      c.jmp_pc(c.prog.function(callee).entry_pc);
      return true;
    }

    case Opcode::Rand: {
      a.mov_rr(RDI, RBX);
      c.call_helper(fn_addr(&ft_jit_helper_rand));
      c.commit(ins);
      return true;
    }
    case Opcode::Emit: {
      load(0, RSI);
      a.mov_ri32(RDX, static_cast<std::uint32_t>(s(0).type));
      a.mov_rr(RDI, RBX);
      c.call_helper(fn_addr(&ft_jit_helper_emit));
      a.inc_r(R14);
      return true;
    }
    case Opcode::EmitTrunc: {
      load(0, RSI);
      a.mov_ri32(RDX, s(0).type == Type::F32 ? 1 : 0);
      a.mov_ri32(RCX, static_cast<std::uint32_t>(ins.aux));
      a.mov_rr(RDI, RBX);
      c.call_helper(fn_addr(&ft_jit_helper_emit_trunc));
      a.inc_r(R14);
      return true;
    }
    case Opcode::RegionEnter: {
      a.mov_rr(RDI, RBX);
      a.mov_ri64(RSI, static_cast<std::uint64_t>(ins.aux));
      c.call_helper(fn_addr(&ft_jit_helper_region_enter));
      a.inc_r(R14);
      return true;
    }
    case Opcode::RegionExit: {
      a.inc_r(R14);
      return true;
    }

    case Opcode::CheckTrap: {
      // Hardening detector: trap-before-retire on a set I1 operand, so a
      // firing detector leaves the retired count exactly where the
      // interpreters leave it (the recovery driver keys off that).
      load(0, RAX);
      a.test_al_imm8(1);
      c.trap_if(CC_NE, pc, TrapKind::DetectedFault);
      a.inc_r(R14);
      return true;
    }

    case Opcode::MpiRank:
    case Opcode::MpiSize:
    case Opcode::MpiSend:
    case Opcode::MpiRecv:
    case Opcode::MpiAllreduce:
    case Opcode::MpiBarrier:
      // No template: exit to the driver, which interprets this one
      // instruction and re-enters native code after it.
      a.mov_ri32(RAX, pc);
      a.jmp32(c.deopt_stub);
      return false;
  }
  a.mov_ri32(RAX, pc);  // unreachable with a dense opcode enum
  a.jmp32(c.deopt_stub);
  return false;
}

}  // namespace

bool JitProgram::supported() noexcept {
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

bool JitProgram::runtime_enabled() noexcept {
  if (!supported()) return false;
  const char* const e = std::getenv("FT_VM_NO_JIT");
  return e == nullptr || *e == '\0' || std::strcmp(e, "0") == 0;
}

bool JitProgram::opcode_compiled(ir::Opcode op) noexcept {
  return !(op >= Opcode::MpiRank && op <= Opcode::MpiBarrier);
}

std::shared_ptr<const JitProgram> JitProgram::compile(
    const vm::DecodedProgram& p) {
  if (!supported() || p.code_size() == 0) return nullptr;

  Compiler c(p);
  emit_prologue(c);
  emit_stubs(c);

  const auto n = static_cast<std::uint32_t>(p.code_size());
  c.pc_offset.resize(n);
  Stats stats;
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    c.pc_offset[pc] = c.a.size();
    // Pause guard: every entry point checks the retired count against the
    // stop limit before executing, mirroring the hot loop's loop-top check.
    c.a.alu_rr(ALU_CMP, R14, R15);
    const auto body = c.a.jcc8_fixup(CC_B);
    c.a.mov_ri32(RAX, pc);
    c.a.jmp32(c.pause_stub);
    c.a.patch_rel8(body);
    if (emit_instr(c, pc)) {
      ++stats.compiled;
    } else {
      ++stats.deopt;
    }
  }
  for (const auto& [pos, pc] : c.pc_fixups) {
    c.a.patch_rel32(pos, c.pc_offset[pc]);
  }

  auto jp = std::shared_ptr<JitProgram>(new JitProgram());
  if (!jp->buf_.install(c.a.data(), c.a.size())) return nullptr;
  jp->prog_ = &p;
  stats.code_bytes = c.a.size();
  jp->stats_ = stats;
  jp->entries_.resize(n);
  const auto base = reinterpret_cast<std::uint64_t>(jp->buf_.base());
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    jp->entries_[pc] = base + c.pc_offset[pc];
  }
  return jp;
}

}  // namespace ft::jit
