// Runtime half of the JIT: the helpers emitted code calls for anything that
// touches interpreter-owned state. All Vm access funnels through VmAccess
// (the one friend the Vm declares for the JIT).
#include "jit/jit_runtime.h"

#include <cmath>

#include "util/bits.h"
#include "vm/interp.h"
#include "vm/interp_shared.h"

namespace ft::jit {

struct VmAccess {
  static std::uint64_t call(JitContext* ctx, std::uint64_t pc) {
    vm::Vm& vm = *ctx->vm;
    if (vm.dframes_.size() >= vm.opts_.max_call_depth) {
      ctx->exit_trap = static_cast<std::uint32_t>(vm::TrapKind::CallDepth);
      return 1;
    }
    const vm::DecodedInstr& ins = ctx->prog->code()[pc];
    vm::Vm::DFrame& caller = vm.dframes_.back();
    caller.pc = static_cast<std::uint32_t>(pc) + 1;  // resume point
    // push_dframe reads `caller` only before its final push_back, so the
    // reference staying valid through the call is guaranteed.
    vm.push_dframe(ins, caller, nullptr);
    ctx->slots = vm.slots_.data();  // the slot stack may have grown
    ctx->frame_base = ctx->slots + vm.dframes_.back().reg_base;
    return 0;
  }

  static std::uint64_t ret(JitContext* ctx, std::uint64_t ret_bits) {
    vm::Vm& vm = *ctx->vm;
    if (vm.dframes_.size() == 1) return ~std::uint64_t{0};  // entry frame
    const vm::Vm::DFrame fr = vm.dframes_.back();
    vm.sp_ = fr.saved_sp;
    vm.slot_top_ = fr.reg_base;
    vm.arg_loc_top_ = fr.arg_loc_base;
    vm.dframes_.pop_back();
    const vm::Vm::DFrame& caller = vm.dframes_.back();
    if (fr.ret_reg != ir::kNoReg) {
      vm.slots_[caller.reg_base + fr.ret_reg] = ret_bits;
    }
    ctx->frame_base = ctx->slots + caller.reg_base;
    return caller.pc;
  }

  static std::uint64_t alloca_bytes(JitContext* ctx, std::uint64_t size) {
    vm::Vm& vm = *ctx->vm;
    const std::uint64_t aligned = (vm.sp_ + 7) & ~std::uint64_t{7};
    if (aligned + size > vm.mem_.size()) {
      ctx->exit_trap = static_cast<std::uint32_t>(vm::TrapKind::StackOverflow);
      return ~std::uint64_t{0};
    }
    vm.sp_ = aligned + size;
    return aligned;
  }

  static std::uint64_t rand_bits(JitContext* ctx) {
    return util::f64_to_bits(ctx->vm->randlc_.next());
  }

  static void emit(JitContext* ctx, std::uint64_t bits, ir::Type type) {
    ctx->vm->outputs_.push_back({bits, type});
  }

  static void emit_trunc(JitContext* ctx, std::uint64_t bits, bool is_f32,
                         int digits) {
    const double x = is_f32
                         ? static_cast<double>(util::bits_to_f32(bits))
                         : util::bits_to_f64(bits);
    const double r = vm::detail::round_to_digits(x, digits);
    ctx->vm->outputs_.push_back({util::f64_to_bits(r), ir::Type::F64});
  }

  static void region_enter(JitContext* ctx, std::uint32_t rid) {
    vm::Vm& vm = *ctx->vm;
    vm.apply_region_entry_fault(rid);
    vm.region_counts_[rid]++;
  }
};

}  // namespace ft::jit

using ft::jit::JitContext;
using ft::jit::VmAccess;

extern "C" {

std::uint64_t ft_jit_helper_call(JitContext* ctx, std::uint64_t pc) {
  return VmAccess::call(ctx, pc);
}

std::uint64_t ft_jit_helper_ret(JitContext* ctx, std::uint64_t ret_bits) {
  return VmAccess::ret(ctx, ret_bits);
}

std::uint64_t ft_jit_helper_alloca(JitContext* ctx, std::uint64_t size) {
  return VmAccess::alloca_bytes(ctx, size);
}

std::uint64_t ft_jit_helper_rand(JitContext* ctx) {
  return VmAccess::rand_bits(ctx);
}

void ft_jit_helper_emit(JitContext* ctx, std::uint64_t bits,
                        std::uint32_t type) {
  VmAccess::emit(ctx, bits, static_cast<ft::ir::Type>(type));
}

void ft_jit_helper_emit_trunc(JitContext* ctx, std::uint64_t bits,
                              std::uint32_t is_f32, std::uint32_t digits) {
  VmAccess::emit_trunc(ctx, bits, is_f32 != 0, static_cast<int>(digits));
}

void ft_jit_helper_region_enter(JitContext* ctx, std::uint64_t rid) {
  VmAccess::region_enter(ctx, static_cast<std::uint32_t>(rid));
}

std::uint64_t ft_jit_helper_floor64(std::uint64_t bits) {
  return ft::util::f64_to_bits(std::floor(ft::util::bits_to_f64(bits)));
}

std::uint64_t ft_jit_helper_floor32(std::uint64_t bits) {
  return ft::util::f32_to_bits(std::floor(ft::util::bits_to_f32(bits)));
}

}  // extern "C"
