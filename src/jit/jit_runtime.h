/// @file
/// The contract between emitted native code and the interpreter.
///
/// A JitContext is the calling convention of compiled programs: the native
/// driver (Vm::run_jit, src/vm/interp_jit.cpp) fills one in, calls the
/// code buffer's entry, and reads back how and where execution stopped.
/// Field offsets are fixed — the emitter addresses them as raw
/// displacements off the context register — and pinned by static_asserts
/// below, so a layout change breaks the build instead of the generated
/// code.
///
/// Operations a template cannot (or should not) inline — frame push/pop,
/// stack allocation, RNG, output emission, region-entry faults, floor —
/// call the extern "C" ft_jit_helper_* functions, which mutate the owning
/// Vm through the jit::VmAccess friend door. Helpers never apply ResultBit
/// flips: the driver guarantees native code only runs over retired-index
/// ranges where the armed flip cannot fire (the flip instruction itself is
/// always interpreted).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ft::vm {
class Vm;
class DecodedProgram;
}  // namespace ft::vm

namespace ft::jit {

/// Why the native code returned to the driver.
enum class ExitReason : std::uint32_t {
  Limit = 0,     ///< retired count reached stop_limit; machine still running
  Trap = 1,      ///< exit_trap fired at exit_pc (which did not retire)
  Finished = 2,  ///< top-level Ret retired; exit_pc stays at the Ret
  Deopt = 3,     ///< unsupported instruction at exit_pc: interpret one step
};

/// In/out machine-state block for one native burst. The emitted prologue
/// loads the hot fields into registers; helpers and the exit stubs write
/// the out fields back.
struct JitContext {
  std::uint64_t* slots;             ///< 0x00 slot stack base (regs + args)
  std::uint8_t* mem;                ///< 0x08 memory image base
  std::uint64_t mem_size;           ///< 0x10 memory image size in bytes
  std::uint64_t stop_limit;         ///< 0x18 pause when retired reaches this
  std::uint64_t retired;            ///< 0x20 in: resume count; out: new count
  std::uint64_t* frame_base;        ///< 0x28 &slots[top frame's reg_base]
  std::uint64_t entry_pc;           ///< 0x30 flat pc to start executing at
  std::uint32_t exit_pc;            ///< 0x38 out: pc where the burst stopped
  std::uint32_t exit_reason;        ///< 0x3c out: ExitReason
  std::uint32_t exit_trap;          ///< 0x40 out: vm::TrapKind when Trap
  std::uint32_t track_writes;       ///< 0x44 nonzero: maintain dirty bitmap
  std::uint64_t* dirty;             ///< 0x48 page-dirty bitmap (or null)
  const std::uint64_t* entries;     ///< 0x50 per-pc native code addresses
  vm::Vm* vm;                       ///< 0x58 owning machine (helpers)
  const vm::DecodedProgram* prog;   ///< 0x60 decoded form (helpers)
};

static_assert(offsetof(JitContext, slots) == 0x00);
static_assert(offsetof(JitContext, mem) == 0x08);
static_assert(offsetof(JitContext, mem_size) == 0x10);
static_assert(offsetof(JitContext, stop_limit) == 0x18);
static_assert(offsetof(JitContext, retired) == 0x20);
static_assert(offsetof(JitContext, frame_base) == 0x28);
static_assert(offsetof(JitContext, entry_pc) == 0x30);
static_assert(offsetof(JitContext, exit_pc) == 0x38);
static_assert(offsetof(JitContext, exit_reason) == 0x3c);
static_assert(offsetof(JitContext, exit_trap) == 0x40);
static_assert(offsetof(JitContext, track_writes) == 0x44);
static_assert(offsetof(JitContext, dirty) == 0x48);
static_assert(offsetof(JitContext, entries) == 0x50);
static_assert(offsetof(JitContext, vm) == 0x58);
static_assert(offsetof(JitContext, prog) == 0x60);

/// The single named door through which the JIT runtime (helpers below and
/// the compiler's frame bookkeeping) touches Vm private state. Declared a
/// friend by vm::Vm; defined in jit_runtime.cpp.
struct VmAccess;

}  // namespace ft::jit

// --- runtime helpers called from emitted code --------------------------------
// SysV AMD64 calling convention; every signature keeps its arguments in
// integer registers so the templates marshal with plain moves.

extern "C" {

/// Push the callee frame of the Call at `pc` (caller resume pc = pc + 1).
/// Returns 0 on success; 1 after setting ctx->exit_trap on a call-depth
/// trap. Refreshes ctx->slots / ctx->frame_base (the slot stack may grow).
std::uint64_t ft_jit_helper_call(ft::jit::JitContext* ctx, std::uint64_t pc);

/// Pop the top frame, committing `ret_bits` to the caller's result register
/// if the Call wanted one. Returns the caller's resume pc, or ~0 when the
/// popped frame was the entry frame (program finished). Refreshes
/// ctx->frame_base.
std::uint64_t ft_jit_helper_ret(ft::jit::JitContext* ctx,
                                std::uint64_t ret_bits);

/// Bump-allocate `size` bytes on the VM stack segment (8-byte aligned).
/// Returns the address, or ~0 after setting ctx->exit_trap on overflow.
std::uint64_t ft_jit_helper_alloca(ft::jit::JitContext* ctx,
                                   std::uint64_t size);

/// Next randlc() double, as IEEE bits.
std::uint64_t ft_jit_helper_rand(ft::jit::JitContext* ctx);

/// Append {bits, type} to the program's output vector.
void ft_jit_helper_emit(ft::jit::JitContext* ctx, std::uint64_t bits,
                        std::uint32_t type);

/// EmitTrunc: round to `digits` significant decimals and append as F64.
void ft_jit_helper_emit_trunc(ft::jit::JitContext* ctx, std::uint64_t bits,
                              std::uint32_t is_f32, std::uint32_t digits);

/// RegionEnter bookkeeping: apply a pending region-entry fault, then count
/// the instance.
void ft_jit_helper_region_enter(ft::jit::JitContext* ctx, std::uint64_t rid);

/// std::floor on F64 / F32 bits (pure; no context).
std::uint64_t ft_jit_helper_floor64(std::uint64_t bits);
std::uint64_t ft_jit_helper_floor32(std::uint64_t bits);

}  // extern "C"
