#include "jit/code_buffer.h"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define FT_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define FT_JIT_HAVE_MMAP 0
#endif

namespace ft::jit {

CodeBuffer::~CodeBuffer() { release(); }

CodeBuffer::CodeBuffer(CodeBuffer&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, 0)) {}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, 0);
  }
  return *this;
}

bool CodeBuffer::install(const std::uint8_t* code, std::size_t size) {
#if FT_JIT_HAVE_MMAP
  release();
  if (size == 0) return false;
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t mapped = (size + page - 1) & ~(page - 1);
  void* mem = mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return false;
  std::memcpy(mem, code, size);
  if (mprotect(mem, mapped, PROT_READ | PROT_EXEC) != 0) {
    munmap(mem, mapped);
    return false;
  }
  base_ = static_cast<std::uint8_t*>(mem);
  size_ = size;
  mapped_ = mapped;
  return true;
#else
  (void)code;
  (void)size;
  return false;
#endif
}

void CodeBuffer::release() noexcept {
#if FT_JIT_HAVE_MMAP
  if (base_ != nullptr) munmap(base_, mapped_);
#endif
  base_ = nullptr;
  size_ = 0;
  mapped_ = 0;
}

}  // namespace ft::jit
