/// @file
/// Executable code mapping with W^X discipline.
///
/// The JIT never holds a writable+executable page: code is emitted into an
/// ordinary std::vector (jit/x64_emitter.h), then install() maps fresh
/// anonymous pages read-write, copies the bytes in, and flips the mapping
/// to read-execute. The mapping lives until the CodeBuffer is destroyed —
/// compiled programs are immutable, so there is no patching-after-install
/// and never a second protection transition.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ft::jit {

class CodeBuffer {
 public:
  CodeBuffer() = default;
  ~CodeBuffer();

  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;
  CodeBuffer(CodeBuffer&& other) noexcept;
  CodeBuffer& operator=(CodeBuffer&& other) noexcept;

  /// Map `size` bytes (page-rounded) RW, copy `code` in, remap RX.
  /// Returns false (leaving the buffer empty) if the platform cannot
  /// provide executable mappings or either syscall fails.
  [[nodiscard]] bool install(const std::uint8_t* code, std::size_t size);

  /// Base of the executable mapping (null until install() succeeds).
  [[nodiscard]] const std::uint8_t* base() const noexcept { return base_; }
  /// Bytes of code installed (not the page-rounded mapping size).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void release() noexcept;

  std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;    // installed code bytes
  std::size_t mapped_ = 0;  // page-rounded mapping length
};

}  // namespace ft::jit
