/// @file
/// Minimal x86-64 instruction emitter for the baseline template JIT.
///
/// Append-only byte buffer plus one method per instruction form the
/// per-opcode templates need (jit_program.cpp) — not a general assembler.
/// Memory operands handle the SIB/disp encoding quirks (RSP/R12 force a
/// SIB byte; RBP/R13 force an explicit displacement); everything emitted
/// is position-independent (branches are rel8/rel32, patched against code
/// offsets, never absolute addresses), so the finished byte vector can be
/// copied into an executable mapping at any base.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ft::jit {

/// x86-64 general-purpose register numbers (REX-extended encoding).
enum Reg : std::uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/// XMM register numbers (only 0/1 are used by the templates).
enum Xmm : std::uint8_t { XMM0 = 0, XMM1 = 1 };

/// Condition codes in hardware encoding order: `Jcc`/`SETcc`/`CMOVcc` are
/// all `base + cc`. The negation of any condition is `cc ^ 1`.
enum Cc : std::uint8_t {
  CC_O = 0, CC_NO = 1, CC_B = 2, CC_AE = 3, CC_E = 4, CC_NE = 5,
  CC_BE = 6, CC_A = 7, CC_S = 8, CC_NS = 9, CC_P = 10, CC_NP = 11,
  CC_L = 12, CC_GE = 13, CC_LE = 14, CC_G = 15,
};

/// ALU /r and /digit encodings share one ordering: opcode = op*8 + form,
/// immediate forms use the value as the ModRM reg digit.
enum Alu : std::uint8_t {
  ALU_ADD = 0, ALU_OR = 1, ALU_ADC = 2, ALU_SBB = 3,
  ALU_AND = 4, ALU_SUB = 5, ALU_XOR = 6, ALU_CMP = 7,
};

class X64Emitter {
 public:
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  // --- raw appends -----------------------------------------------------------
  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  // --- stack / moves ---------------------------------------------------------
  void push(Reg r) {
    if (r >= R8) u8(0x41);
    u8(0x50 + (r & 7));
  }
  void pop(Reg r) {
    if (r >= R8) u8(0x41);
    u8(0x58 + (r & 7));
  }
  /// mov dst, src (64-bit).
  void mov_rr(Reg dst, Reg src) {
    rex_rr(true, src, dst);
    u8(0x89);
    modrm(3, src, dst);
  }
  /// movabs dst, imm64 — or the shorter zero/sign-extending forms when the
  /// immediate allows. The templates lean on this for constants, helper
  /// addresses, and 64-bit masks.
  void mov_ri64(Reg dst, std::uint64_t imm) {
    if (imm <= 0xffffffffull) {
      mov_ri32(dst, static_cast<std::uint32_t>(imm));  // B8+r zero-extends
    } else if (static_cast<std::int64_t>(imm) ==
               static_cast<std::int32_t>(imm)) {
      rex_rr(true, static_cast<Reg>(0), dst);  // C7 /0 sign-extends imm32
      u8(0xC7);
      modrm(3, static_cast<Reg>(0), dst);
      u32(static_cast<std::uint32_t>(imm));
    } else {
      if (dst >= R8) u8(0x49); else u8(0x48);
      u8(0xB8 + (dst & 7));
      u64(imm);
    }
  }
  /// mov dst32, imm32 (zero-extends to 64).
  void mov_ri32(Reg dst, std::uint32_t imm) {
    if (dst >= R8) u8(0x41);
    u8(0xB8 + (dst & 7));
    u32(imm);
  }

  // --- loads / stores, [base + disp] -----------------------------------------
  /// mov dst, qword [base + disp].
  void load64(Reg dst, Reg base, std::int32_t disp) {
    rex_rr(true, dst, base);
    u8(0x8B);
    mem(dst, base, disp);
  }
  /// mov qword [base + disp], src.
  void store64(Reg base, std::int32_t disp, Reg src) {
    rex_rr(true, src, base);
    u8(0x89);
    mem(src, base, disp);
  }
  /// mov dword [base + disp], src32.
  void store32(Reg base, std::int32_t disp, Reg src) {
    rex_rr(false, src, base);
    u8(0x89);
    mem(src, base, disp);
  }
  /// mov dword [base + disp], imm32.
  void store32_imm(Reg base, std::int32_t disp, std::uint32_t imm) {
    rex_rr(false, static_cast<Reg>(0), base);
    u8(0xC7);
    mem(static_cast<Reg>(0), base, disp);
    u32(imm);
  }
  /// cmp reg, qword [base + disp].
  void cmp_r_mem64(Reg reg, Reg base, std::int32_t disp) {
    rex_rr(true, reg, base);
    u8(0x3B);
    mem(reg, base, disp);
  }
  /// cmp dword [base + disp], imm8 (sign-extended).
  void cmp_mem32_imm8(Reg base, std::int32_t disp, std::int8_t imm) {
    rex_rr(false, static_cast<Reg>(7), base);
    u8(0x83);
    mem(static_cast<Reg>(7), base, disp);
    u8(static_cast<std::uint8_t>(imm));
  }

  // --- loads / stores, [base + index] (byte-scaled) --------------------------
  /// mov dst, qword [base + index].
  void load64_bi(Reg dst, Reg base, Reg index) {
    rex_rxb(true, dst, index, base);
    u8(0x8B);
    sib_mem(dst, base, index, 0);
  }
  /// movsxd dst, dword [base + index].
  void load32_sx_bi(Reg dst, Reg base, Reg index) {
    rex_rxb(true, dst, index, base);
    u8(0x63);
    sib_mem(dst, base, index, 0);
  }
  /// mov dst32, dword [base + index] (zero-extends).
  void load32_zx_bi(Reg dst, Reg base, Reg index) {
    rex_rxb(false, dst, index, base);
    u8(0x8B);
    sib_mem(dst, base, index, 0);
  }
  /// movzx dst32, byte [base + index].
  void load8_zx_bi(Reg dst, Reg base, Reg index) {
    rex_rxb(false, dst, index, base);
    u8(0x0F);
    u8(0xB6);
    sib_mem(dst, base, index, 0);
  }
  /// mov qword [base + index], src.
  void store64_bi(Reg base, Reg index, Reg src) {
    rex_rxb(true, src, index, base);
    u8(0x89);
    sib_mem(src, base, index, 0);
  }
  /// mov dword [base + index], src32.
  void store32_bi(Reg base, Reg index, Reg src) {
    rex_rxb(false, src, index, base);
    u8(0x89);
    sib_mem(src, base, index, 0);
  }
  /// mov byte [base + index], src8 (low byte of src).
  void store8_bi(Reg base, Reg index, Reg src) {
    // A REX prefix (even empty) selects SIL/DIL over AH-family encodings;
    // rex_rxb emits one whenever any extended register participates, and
    // the templates only store AL/CL here, so no forced REX is needed.
    rex_rxb(false, src, index, base);
    u8(0x88);
    sib_mem(src, base, index, 0);
  }
  /// jmp qword [base + index*8].
  void jmp_mem_bi8(Reg base, Reg index) {
    rex_rxb(false, static_cast<Reg>(4), index, base);
    u8(0xFF);
    sib_mem(static_cast<Reg>(4), base, index, 3);
  }
  /// bts qword [base], bitoff — bit-string form: bit `bitoff` of the array
  /// of 64-bit words at [base], i.e. base[bitoff >> 6] |= 1 << (bitoff & 63).
  void bts_mem64(Reg base, Reg bitoff) {
    rex_rr(true, bitoff, base);
    u8(0x0F);
    u8(0xAB);
    mem(bitoff, base, 0);
  }

  // --- ALU -------------------------------------------------------------------
  /// op dst, src (64-bit).
  void alu_rr(Alu op, Reg dst, Reg src) {
    rex_rr(true, src, dst);
    u8(static_cast<std::uint8_t>(op * 8 + 1));
    modrm(3, src, dst);
  }
  /// op dst, imm8 (sign-extended, 64-bit).
  void alu_ri8(Alu op, Reg dst, std::int8_t imm) {
    rex_rr(true, static_cast<Reg>(op), dst);
    u8(0x83);
    modrm(3, static_cast<Reg>(op), dst);
    u8(static_cast<std::uint8_t>(imm));
  }
  /// op dst32, imm32 (32-bit form — zero-extends the result).
  void alu32_ri32(Alu op, Reg dst, std::uint32_t imm) {
    rex_rr(false, static_cast<Reg>(op), dst);
    u8(0x81);
    modrm(3, static_cast<Reg>(op), dst);
    u32(imm);
  }
  /// test dst, src (64-bit).
  void test_rr(Reg a, Reg b) {
    rex_rr(true, b, a);
    u8(0x85);
    modrm(3, b, a);
  }
  /// test al, imm8.
  void test_al_imm8(std::uint8_t imm) {
    u8(0xA8);
    u8(imm);
  }
  /// imul dst, src (64-bit).
  void imul_rr(Reg dst, Reg src) {
    rex_rr(true, dst, src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, dst, src);
  }
  /// inc reg (64-bit).
  void inc_r(Reg r) {
    rex_rr(true, static_cast<Reg>(0), r);
    u8(0xFF);
    modrm(3, static_cast<Reg>(0), r);
  }
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  /// idiv reg (64-bit; rdx:rax / reg).
  void idiv_r(Reg r) {
    rex_rr(true, static_cast<Reg>(7), r);
    u8(0xF7);
    modrm(3, static_cast<Reg>(7), r);
  }
  /// shl/shr/sar reg, cl (64-bit). digit: 4 = shl, 5 = shr, 7 = sar.
  void shift_cl(std::uint8_t digit, Reg r) {
    rex_rr(true, static_cast<Reg>(digit), r);
    u8(0xD3);
    modrm(3, static_cast<Reg>(digit), r);
  }
  /// shr reg, imm8 (64-bit logical right).
  void shr_imm(Reg r, std::uint8_t imm) {
    rex_rr(true, static_cast<Reg>(5), r);
    u8(0xC1);
    modrm(3, static_cast<Reg>(5), r);
    u8(imm);
  }
  /// movsxd dst, src32 (sign-extend the low 32 bits of src).
  void movsxd(Reg dst, Reg src) {
    rex_rr(true, dst, src);
    u8(0x63);
    modrm(3, dst, src);
  }
  /// mov dst32, src32 (zero-extends to 64).
  void mov_rr32(Reg dst, Reg src) {
    rex_rr(false, src, dst);
    u8(0x89);
    modrm(3, src, dst);
  }
  /// setcc low byte of reg (AL/CL only — no REX handling for SPL/DIL).
  void setcc(Cc cc, Reg r) {
    assert(r <= RBX && "setcc templates only target AL..BL");
    u8(0x0F);
    u8(0x90 + cc);
    modrm(3, static_cast<Reg>(0), r);
  }
  /// movzx dst32, low byte of src (AL/CL only).
  void movzx8(Reg dst, Reg src) {
    assert(src <= RBX && "movzx templates only read AL..BL");
    rex_rr(false, dst, src);
    u8(0x0F);
    u8(0xB6);
    modrm(3, dst, src);
  }
  /// cmovcc dst, src (64-bit).
  void cmovcc(Cc cc, Reg dst, Reg src) {
    rex_rr(true, dst, src);
    u8(0x0F);
    u8(0x40 + cc);
    modrm(3, dst, src);
  }
  /// lea dst, [base + disp].
  void lea(Reg dst, Reg base, std::int32_t disp) {
    rex_rr(true, dst, base);
    u8(0x8D);
    mem(dst, base, disp);
  }

  // --- SSE scalar ------------------------------------------------------------
  /// movq xmm, reg64.
  void movq_xr(Xmm x, Reg r) {
    u8(0x66);
    rex_rr(true, static_cast<Reg>(x), r);
    u8(0x0F);
    u8(0x6E);
    modrm(3, static_cast<Reg>(x), r);
  }
  /// movq reg64, xmm.
  void movq_rx(Reg r, Xmm x) {
    u8(0x66);
    rex_rr(true, static_cast<Reg>(x), r);
    u8(0x0F);
    u8(0x7E);
    modrm(3, static_cast<Reg>(x), r);
  }
  /// movd xmm, reg32.
  void movd_xr(Xmm x, Reg r) {
    u8(0x66);
    rex_rr(false, static_cast<Reg>(x), r);
    u8(0x0F);
    u8(0x6E);
    modrm(3, static_cast<Reg>(x), r);
  }
  /// movd reg32, xmm (zero-extends to 64).
  void movd_rx(Reg r, Xmm x) {
    u8(0x66);
    rex_rr(false, static_cast<Reg>(x), r);
    u8(0x0F);
    u8(0x7E);
    modrm(3, static_cast<Reg>(x), r);
  }
  /// Two-operand scalar SSE op: prefix 0F opcode /r (prefix 0 = none).
  void sse_op(std::uint8_t prefix, std::uint8_t opcode, Xmm dst, Xmm src) {
    if (prefix != 0) u8(prefix);
    u8(0x0F);
    u8(opcode);
    modrm(3, static_cast<Reg>(dst), static_cast<Reg>(src));
  }
  void addsd(Xmm d, Xmm s) { sse_op(0xF2, 0x58, d, s); }
  void subsd(Xmm d, Xmm s) { sse_op(0xF2, 0x5C, d, s); }
  void mulsd(Xmm d, Xmm s) { sse_op(0xF2, 0x59, d, s); }
  void divsd(Xmm d, Xmm s) { sse_op(0xF2, 0x5E, d, s); }
  void addss(Xmm d, Xmm s) { sse_op(0xF3, 0x58, d, s); }
  void subss(Xmm d, Xmm s) { sse_op(0xF3, 0x5C, d, s); }
  void mulss(Xmm d, Xmm s) { sse_op(0xF3, 0x59, d, s); }
  void divss(Xmm d, Xmm s) { sse_op(0xF3, 0x5E, d, s); }
  void sqrtsd(Xmm d, Xmm s) { sse_op(0xF2, 0x51, d, s); }
  void sqrtss(Xmm d, Xmm s) { sse_op(0xF3, 0x51, d, s); }
  void ucomisd(Xmm d, Xmm s) { sse_op(0x66, 0x2E, d, s); }
  void cvtss2sd(Xmm d, Xmm s) { sse_op(0xF3, 0x5A, d, s); }
  void cvtsd2ss(Xmm d, Xmm s) { sse_op(0xF2, 0x5A, d, s); }
  /// cvtsi2sd xmm, reg64.
  void cvtsi2sd(Xmm x, Reg r) {
    u8(0xF2);
    rex_rr(true, static_cast<Reg>(x), r);
    u8(0x0F);
    u8(0x2A);
    modrm(3, static_cast<Reg>(x), r);
  }
  /// cvttsd2si reg64, xmm (truncating).
  void cvttsd2si(Reg r, Xmm x) {
    u8(0xF2);
    rex_rr(true, r, static_cast<Reg>(x));
    u8(0x0F);
    u8(0x2C);
    modrm(3, r, static_cast<Reg>(x));
  }

  // --- control flow ----------------------------------------------------------
  /// jcc rel8 with the displacement unknown: returns the offset of the rel8
  /// byte; patch with patch_rel8() once the target is emitted.
  [[nodiscard]] std::size_t jcc8_fixup(Cc cc) {
    u8(0x70 + cc);
    u8(0);
    return size() - 1;
  }
  /// Resolve a jcc8_fixup to jump to the current position.
  void patch_rel8(std::size_t fixup_pos) {
    const std::ptrdiff_t rel = static_cast<std::ptrdiff_t>(size()) -
                               static_cast<std::ptrdiff_t>(fixup_pos) - 1;
    assert(rel >= -128 && rel <= 127 && "rel8 branch target out of range");
    buf_[fixup_pos] = static_cast<std::uint8_t>(rel);
  }
  /// jmp rel32 to the (possibly not yet emitted) code offset `target`;
  /// returns the offset of the rel32 field for deferred patching.
  std::size_t jmp32(std::size_t target) {
    u8(0xE9);
    return rel32_to(target);
  }
  /// jcc rel32 to code offset `target`.
  std::size_t jcc32(Cc cc, std::size_t target) {
    u8(0x0F);
    u8(0x80 + cc);
    return rel32_to(target);
  }
  /// Re-point the rel32 at `fixup_pos` to code offset `target` (used for
  /// forward branches whose target offset is known only after emission).
  void patch_rel32(std::size_t fixup_pos, std::size_t target) {
    const auto rel = static_cast<std::int64_t>(target) -
                     (static_cast<std::int64_t>(fixup_pos) + 4);
    for (int i = 0; i < 4; ++i) {
      buf_[fixup_pos + i] =
          static_cast<std::uint8_t>(static_cast<std::uint64_t>(rel) >> (8 * i));
    }
  }
  /// call reg.
  void call_r(Reg r) {
    if (r >= R8) u8(0x41);
    u8(0xFF);
    modrm(3, static_cast<Reg>(2), r);
  }
  void ret() { u8(0xC3); }

 private:
  void modrm(std::uint8_t mod, Reg reg, Reg rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  /// REX for reg/rm (or reg/base) encodings; emitted only when needed.
  void rex_rr(bool w, Reg reg, Reg rm) {
    const std::uint8_t rex = 0x40 | (w ? 8 : 0) | (reg >= R8 ? 4 : 0) |
                             (rm >= R8 ? 1 : 0);
    if (rex != 0x40) u8(rex);
  }
  /// REX covering an index register as well (SIB encodings).
  void rex_rxb(bool w, Reg reg, Reg index, Reg base) {
    const std::uint8_t rex = 0x40 | (w ? 8 : 0) | (reg >= R8 ? 4 : 0) |
                             (index >= R8 ? 2 : 0) | (base >= R8 ? 1 : 0);
    if (rex != 0x40) u8(rex);
  }
  /// ModRM(+SIB)+disp for [base + disp]. RSP/R12 need a SIB byte; RBP/R13
  /// cannot use the disp-less mod=00 form.
  void mem(Reg reg, Reg base, std::int32_t disp) {
    const bool need_sib = (base & 7) == RSP;
    const bool need_disp = disp != 0 || (base & 7) == RBP;
    const std::uint8_t mod =
        !need_disp ? 0 : (disp >= -128 && disp <= 127 ? 1 : 2);
    modrm(mod, reg, need_sib ? RSP : base);
    if (need_sib) {
      u8(static_cast<std::uint8_t>((RSP << 3) | (base & 7)));  // no index
    }
    if (mod == 1) {
      u8(static_cast<std::uint8_t>(disp));
    } else if (mod == 2) {
      u32(static_cast<std::uint32_t>(disp));
    }
  }
  /// ModRM+SIB for [base + index*2^scale] (no displacement). RSP cannot be
  /// an index; RBP/R13 as base force the disp8=0 form.
  void sib_mem(Reg reg, Reg base, Reg index, std::uint8_t scale) {
    assert((index & 7) != RSP && "RSP cannot encode as a SIB index");
    const bool need_disp = (base & 7) == RBP;
    modrm(need_disp ? 1 : 0, reg, RSP);
    u8(static_cast<std::uint8_t>((scale << 6) | ((index & 7) << 3) |
                                 (base & 7)));
    if (need_disp) u8(0);
  }
  std::size_t rel32_to(std::size_t target) {
    const std::size_t pos = size();
    u32(0);
    patch_rel32(pos, target);
    return pos;
  }

  std::vector<std::uint8_t> buf_;
};

}  // namespace ft::jit
