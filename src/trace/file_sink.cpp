#include "trace/file_sink.h"

namespace ft::trace {

namespace {
// Header layout matches trace/file.cpp so read_trace_file can load these.
constexpr std::uint64_t kMagic = 0x46545452'43453031ull;  // "FTTRCE01"
struct Header {
  std::uint64_t magic;
  std::uint64_t record_size;
  std::uint64_t count;
};
}  // namespace

StreamingFileTracer::StreamingFileTracer(const std::string& path,
                                         std::size_t buffer_records) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) return;
  buffer_.reserve(buffer_records);
  const Header placeholder{kMagic, sizeof(vm::DynInstr), 0};
  std::fwrite(&placeholder, sizeof placeholder, 1, file_);
}

StreamingFileTracer::~StreamingFileTracer() { close(); }

void StreamingFileTracer::on_instruction(const vm::DynInstr& d) {
  if (!file_) return;
  buffer_.push_back(d);
  count_++;
  if (buffer_.size() == buffer_.capacity()) {
    std::fwrite(buffer_.data(), sizeof(vm::DynInstr), buffer_.size(), file_);
    buffer_.clear();
  }
}

void StreamingFileTracer::close() {
  if (!file_) return;
  if (!buffer_.empty()) {
    std::fwrite(buffer_.data(), sizeof(vm::DynInstr), buffer_.size(), file_);
    buffer_.clear();
  }
  const Header final_header{kMagic, sizeof(vm::DynInstr), count_};
  std::fseek(file_, 0, SEEK_SET);
  std::fwrite(&final_header, sizeof final_header, 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace ft::trace
