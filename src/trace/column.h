/// @file
/// Columnar trace substrate.
///
/// The legacy Trace is an array-of-structs vector of ~128-byte vm::DynInstr
/// records, and every record duplicates static facts (func/block/instr,
/// opcode, predicate, type, operand count, line, aux) that the decoded
/// program already holds once per flat pc. ColumnTrace stores one traced
/// execution as structure-of-arrays *dynamic* columns keyed by flat pc:
///
///   pc          u32  flat pc into DecodedProgram::code() — resolves every
///                    static field of the record
///   activation  u32  frame instance executing the instruction — resolves
///                    register locations (reg_loc(activation, reg))
///   result_bits u64  the committed/stored/emitted value (0 when none)
///   ops_offset  u32  per-record start into the packed operand-bits pool
///   op_bits     u64  pool: one entry per non-empty recorded operand
///
/// plus a rare-escape side list (`extras`) for the few locations that are
/// not derivable from the columns: Arg-operand locations (they flow in from
/// the caller) and the caller-side register a Ret commits to. Everything
/// else a DynInstr carries is reconstructed: memory effective addresses are
/// the recorded pointer/address operand values, the branch bit is bit 0 of
/// the recorded condition, operand types come from the pre-resolved Src
/// descriptors, and record indices are row numbers (a ColumnTrace always
/// holds one contiguous stream from dynamic instruction 0).
///
/// Net effect (the "memory of a trace"): ~20 fixed bytes + 8 bytes per
/// recorded operand instead of 128, a 3-4x resident-size reduction on the
/// paper workloads, measured by bench/trace_substrate_ab.cpp.
///
/// The decoded engine appends into a ColumnTrace directly (the direct-emit
/// instantiation of the hot loop, vm/interp.cpp) — no DynInstr is
/// materialized and no virtual observer dispatch runs per record. Analyses
/// read through TraceView, a zero-copy span whose cursor materializes a
/// bit-identical vm::DynInstr on demand (pinned against the legacy observer
/// path by tests/column_trace_test.cpp).
///
/// A ColumnTrace either OWNS its columns (the appending form above) or
/// BORROWS them from externally managed memory — the zero-copy load path of
/// the persistent store (store/trace_io.h), which mmaps the on-disk
/// structure-of-arrays segments and adopts them without touching a byte.
/// Borrowed traces are read-only (appending asserts); every reader —
/// materialize, TraceView, the columnar scans — works identically on both
/// forms, so a golden trace produced in one process serves analyses and
/// campaigns in any number of later processes.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "vm/decode.h"
#include "vm/observer.h"

namespace ft::trace {

class TraceView;

class ColumnTrace {
 public:
  ColumnTrace() = default;
  /// The trace resolves static record fields through `program`; holding the
  /// shared_ptr keeps the decoded form (not the module it points into)
  /// alive for the trace's lifetime.
  explicit ColumnTrace(std::shared_ptr<const vm::DecodedProgram> program)
      : prog_(std::move(program)) {}

  [[nodiscard]] const vm::DecodedProgram& program() const noexcept {
    return *prog_;
  }
  [[nodiscard]] const std::shared_ptr<const vm::DecodedProgram>&
  program_ptr() const noexcept {
    return prog_;
  }

  /// Escape-list entry: a location (or raw bits) that cannot be derived
  /// from the columns. Deliberately padding-free (three u64 fields) so the
  /// in-memory array IS the on-disk segment — the store writes it verbatim
  /// and the mmap loader adopts it back without translation.
  struct Extra {
    std::uint64_t row;
    std::uint64_t loc;   // a Location, or raw bits for kLoadValueSlot
    std::uint64_t slot;  // operand slot, kResultSlot, or kLoadValueSlot
  };
  static_assert(sizeof(Extra) == 24, "Extra is the on-disk escape record");

  /// Raw structure-of-arrays view of the dynamic columns: the serialization
  /// surface of the persistent store (store/trace_io.h) and the adoption
  /// point of its zero-copy mmap loader.
  struct RawColumns {
    const std::uint32_t* pc = nullptr;
    const std::uint32_t* activation = nullptr;
    const std::uint32_t* ops_offset = nullptr;
    const std::uint64_t* result_bits = nullptr;
    const std::uint64_t* op_bits = nullptr;
    const Extra* extras = nullptr;
    std::size_t rows = 0;
    std::size_t ops = 0;
    std::size_t num_extras = 0;
  };

  [[nodiscard]] RawColumns raw() const noexcept {
    if (borrowed_) return bor_;
    RawColumns c;
    c.pc = pc_.data();
    c.activation = activation_.data();
    c.ops_offset = ops_offset_.data();
    c.result_bits = result_bits_.data();
    c.op_bits = op_bits_.data();
    c.extras = extras_.data();
    c.rows = pc_.size();
    c.ops = op_bits_.size();
    c.num_extras = extras_.size();
    return c;
  }

  /// Construct a read-only trace over externally owned columns (an mmap'd
  /// store segment). The memory behind `cols` must outlive the trace — the
  /// store loader guarantees it with an aliasing shared_ptr that pins the
  /// mapping to the returned trace.
  [[nodiscard]] static ColumnTrace adopt(
      std::shared_ptr<const vm::DecodedProgram> program,
      const RawColumns& cols) {
    ColumnTrace t(std::move(program));
    t.borrowed_ = true;
    t.bor_ = cols;
    return t;
  }
  /// True for mmap-adopted traces (read-only; appending asserts).
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  [[nodiscard]] std::size_t size() const noexcept {
    return borrowed_ ? bor_.rows : pc_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  // --- appending (inlined into the Vm's direct-emit hot loop) ----------------
  /// Open record `row == size()` for the instruction at `pc`, executed by
  /// frame instance `activation`. Operand bits (and escapes) follow via
  /// push_op/push_op_loc; the result is filled by set_result and defaults
  /// to "none".
  void begin_record(std::uint32_t pc, std::uint64_t activation) {
    assert(!borrowed_ && "mmap-adopted traces are read-only");
    assert(activation <= ~std::uint32_t{0} &&
           "columnar traces index frames with 32-bit activations");
    pc_.push_back(pc);
    activation_.push_back(static_cast<std::uint32_t>(activation));
    ops_offset_.push_back(static_cast<std::uint32_t>(op_bits_.size()));
    result_bits_.push_back(0);
  }
  /// Append the value of the next non-empty recorded operand.
  void push_op(std::uint64_t bits) { op_bits_.push_back(bits); }
  /// Escape: record slot `slot` holds a location that cannot be derived
  /// from the columns (an Arg operand's caller-provided location).
  void push_op_loc(std::uint8_t slot, vm::Location loc) {
    extras_.push_back(Extra{pc_.size() - 1, loc, slot});
  }
  void set_result(std::uint64_t bits) { result_bits_.back() = bits; }
  /// Escape: the open record commits its result outside the executing frame
  /// (Ret writing the caller's destination register).
  void set_result_loc(vm::Location loc) {
    extras_.push_back(Extra{pc_.size() - 1, loc, kResultSlot});
  }
  /// Escape: a result-bit fault flipped this Load's committed value, so the
  /// recorded memory-cell operand (pre-flip) no longer equals the result
  /// column. At most one record per faulty run takes this path.
  void set_load_value(std::uint64_t bits) {
    extras_.push_back(Extra{pc_.size() - 1, bits, kLoadValueSlot});
  }
  /// Drop rows >= `rows` — the direct-emit loop pre-opens a record per
  /// fetched instruction and rolls the last one back if it traps mid-flight.
  void truncate_to(std::uint64_t rows) {
    assert(!borrowed_ && "mmap-adopted traces are read-only");
    if (rows >= size()) return;
    op_bits_.resize(ops_offset_[rows]);
    pc_.resize(rows);
    activation_.resize(rows);
    ops_offset_.resize(rows);
    result_bits_.resize(rows);
    while (!extras_.empty() && extras_.back().row >= rows) extras_.pop_back();
  }
  void reserve(std::size_t records) {
    pc_.reserve(records);
    activation_.reserve(records);
    ops_offset_.reserve(records);
    result_bits_.reserve(records);
    op_bits_.reserve(records * 2);
  }

  /// Append one already-materialized record (the lockstep diff path, which
  /// steps two VMs and records the faulty side). `pc` is the record's flat
  /// pc (Vm::next_pc() before the step). Reconstructs to a record
  /// bit-identical to `d`.
  void append(const vm::DynInstr& d, std::uint32_t pc);

  // --- reading ---------------------------------------------------------------
  /// Reconstruct row `row` into `out`, bit-identical to the DynInstr the
  /// observer path would have delivered.
  void materialize(std::size_t row, vm::DynInstr& out) const;
  [[nodiscard]] vm::DynInstr record(std::size_t row) const {
    vm::DynInstr d;
    materialize(row, d);
    return d;
  }

  /// Cheap static peeks that skip materialization (columnar scans).
  [[nodiscard]] ir::Opcode opcode_at(std::size_t row) const noexcept {
    return prog_->code()[pc_col()[row]].op;
  }
  [[nodiscard]] std::int64_t aux_at(std::size_t row) const noexcept {
    return prog_->code()[pc_col()[row]].aux;
  }

  [[nodiscard]] TraceView view() const noexcept;
  /// Records with dynamic index in [begin, end) — same contract as
  /// Trace::slice; indices equal rows here.
  [[nodiscard]] TraceView slice(std::uint64_t begin, std::uint64_t end) const
      noexcept;

  /// Resident bytes of the dynamic columns (capacity-independent: what the
  /// records themselves occupy). The sizing note in README.md and the
  /// bytes/record gate in scripts/bench_smoke.sh are computed from this.
  /// For a borrowed trace this equals the mapped segment payload.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    const auto c = raw();
    return c.rows * (2 * sizeof(std::uint32_t) + sizeof(std::uint32_t) +
                     sizeof(std::uint64_t)) +
           c.ops * sizeof(std::uint64_t) + c.num_extras * sizeof(Extra);
  }
  [[nodiscard]] double bytes_per_record() const noexcept {
    return empty() ? 0.0
                   : static_cast<double>(resident_bytes()) /
                         static_cast<double>(size());
  }

  /// Extra::slot sentinels (public: the store loader validates slots of a
  /// mapped escape list against them before serving the trace).
  static constexpr std::uint64_t kResultSlot = 0xFF;
  static constexpr std::uint64_t kLoadValueSlot = 0xFE;

 private:
  // Column read accessors: one predictable branch selects owned vectors or
  // the borrowed (mmap'd) arrays. Readers are analysis paths; the direct-
  // emit hot loop only appends and never pays it.
  [[nodiscard]] const std::uint32_t* pc_col() const noexcept {
    return borrowed_ ? bor_.pc : pc_.data();
  }
  [[nodiscard]] const std::uint32_t* activation_col() const noexcept {
    return borrowed_ ? bor_.activation : activation_.data();
  }
  [[nodiscard]] const std::uint32_t* ops_offset_col() const noexcept {
    return borrowed_ ? bor_.ops_offset : ops_offset_.data();
  }
  [[nodiscard]] const std::uint64_t* result_bits_col() const noexcept {
    return borrowed_ ? bor_.result_bits : result_bits_.data();
  }
  [[nodiscard]] const std::uint64_t* op_bits_col() const noexcept {
    return borrowed_ ? bor_.op_bits : op_bits_.data();
  }
  [[nodiscard]] const Extra* extras_col() const noexcept {
    return borrowed_ ? bor_.extras : extras_.data();
  }
  [[nodiscard]] std::size_t num_extras() const noexcept {
    return borrowed_ ? bor_.num_extras : extras_.size();
  }

  /// Location of operand slot `i` (descriptor `s`) of a record executed by
  /// `activation`; escapes are resolved by the caller.
  [[nodiscard]] static vm::Location derived_src_loc(
      const vm::Src& s, std::uint64_t activation) noexcept {
    return s.kind == vm::SrcKind::Reg ? vm::reg_loc(activation, s.index)
                                      : vm::kNoLoc;
  }
  /// First escape entry of `row` (extras are appended in row order).
  [[nodiscard]] std::size_t extras_lower_bound(std::uint64_t row) const;

  std::shared_ptr<const vm::DecodedProgram> prog_;
  std::vector<std::uint32_t> pc_;
  std::vector<std::uint32_t> activation_;
  std::vector<std::uint32_t> ops_offset_;
  std::vector<std::uint64_t> result_bits_;
  std::vector<std::uint64_t> op_bits_;
  std::vector<Extra> extras_;
  bool borrowed_ = false;
  RawColumns bor_;  // valid only when borrowed_
};

/// Zero-copy span over a ColumnTrace: [begin, end) rows. Iteration
/// materializes each record into a cursor-owned DynInstr, so analyses can
/// range-for a TraceView exactly as they range-for a record span.
class TraceView {
 public:
  TraceView() = default;
  TraceView(const ColumnTrace* t, std::size_t begin, std::size_t end)
      : trace_(t), begin_(begin), end_(end) {}

  [[nodiscard]] std::size_t size() const noexcept { return end_ - begin_; }
  [[nodiscard]] bool empty() const noexcept { return begin_ == end_; }
  [[nodiscard]] const ColumnTrace& trace() const noexcept { return *trace_; }

  /// i-th record of the view (relative).
  [[nodiscard]] vm::DynInstr record(std::size_t i) const {
    return trace_->record(begin_ + i);
  }

  /// Records with dynamic index in [begin, end), intersected with this
  /// view (same contract as Trace::slice; indices equal rows).
  [[nodiscard]] TraceView slice(std::uint64_t begin, std::uint64_t end) const
      noexcept {
    const auto lo = std::max<std::uint64_t>(begin, begin_);
    const auto hi = std::min<std::uint64_t>(end, end_);
    return lo < hi ? TraceView(trace_, lo, hi) : TraceView(trace_, end_, end_);
  }
  /// First `n` records of the view.
  [[nodiscard]] TraceView prefix(std::size_t n) const noexcept {
    return TraceView(trace_, begin_, begin_ + std::min(n, size()));
  }

  class iterator {
   public:
    iterator(const ColumnTrace* t, std::size_t row) : trace_(t), row_(row) {}
    const vm::DynInstr& operator*() const {
      if (!filled_) {
        trace_->materialize(row_, rec_);
        filled_ = true;
      }
      return rec_;
    }
    iterator& operator++() {
      ++row_;
      filled_ = false;
      return *this;
    }
    bool operator!=(const iterator& o) const noexcept {
      return row_ != o.row_;
    }
    bool operator==(const iterator& o) const noexcept {
      return row_ == o.row_;
    }

   private:
    const ColumnTrace* trace_;
    std::size_t row_;
    mutable vm::DynInstr rec_;
    mutable bool filled_ = false;
  };

  [[nodiscard]] iterator begin() const { return iterator(trace_, begin_); }
  [[nodiscard]] iterator end() const { return iterator(trace_, end_); }

 private:
  const ColumnTrace* trace_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

inline TraceView ColumnTrace::view() const noexcept {
  return TraceView(this, 0, size());
}

inline TraceView ColumnTrace::slice(std::uint64_t begin,
                                    std::uint64_t end) const noexcept {
  return view().slice(begin, end);
}

}  // namespace ft::trace
