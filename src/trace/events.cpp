#include "trace/events.h"

#include <algorithm>

namespace ft::trace {

// ---------------------------------------------------------------------------
// CSR implementation
// ---------------------------------------------------------------------------

template <class Range>
LocationEvents LocationEvents::build_range(const Range& records,
                                           std::size_t num_records) {
  LocationEvents ev;
  // Count pass: one walk of the records (a TraceView materializes each
  // record exactly once here) assigns dense slots, counts per-location
  // reads/writes, and flattens every event to a (slot, index) triple so
  // the fill pass needs no second walk and no hash lookups. The slot map
  // is the only hashed structure; it holds one entry per distinct
  // location, so sizing it from a fraction of the record count keeps the
  // bucket array proportionate (locations repeat heavily in loops).
  ev.slot_.reserve(num_records / 16 + 16);
  struct FlatEvent {
    std::uint64_t index;
    std::uint32_t slot;
    bool is_write;
  };
  std::vector<FlatEvent> flat;
  flat.reserve(num_records * 2);
  std::vector<std::uint64_t> read_count, write_count;
  const auto slot_of = [&](vm::Location l) -> std::uint32_t {
    const auto [it, inserted] =
        ev.slot_.try_emplace(l, static_cast<std::uint32_t>(ev.slot_.size()));
    if (inserted) {
      read_count.push_back(0);
      write_count.push_back(0);
    }
    return it->second;
  };
  for (const vm::DynInstr& r : records) {
    for (unsigned i = 0; i < r.nops; ++i) {
      if (r.op_loc[i] != vm::kNoLoc) {
        const auto s = slot_of(r.op_loc[i]);
        read_count[s]++;
        flat.push_back({r.index, s, /*is_write=*/false});
      }
    }
    if (r.result_loc != vm::kNoLoc) {
      const auto s = slot_of(r.result_loc);
      write_count[s]++;
      flat.push_back({r.index, s, /*is_write=*/true});
    }
  }

  // Offsets by exclusive prefix sum; the fill reuses the count arrays as
  // write cursors.
  const std::size_t nloc = ev.slot_.size();
  ev.read_off_.assign(nloc + 1, 0);
  ev.write_off_.assign(nloc + 1, 0);
  for (std::size_t s = 0; s < nloc; ++s) {
    ev.read_off_[s + 1] = ev.read_off_[s] + read_count[s];
    ev.write_off_[s + 1] = ev.write_off_[s] + write_count[s];
    read_count[s] = ev.read_off_[s];
    write_count[s] = ev.write_off_[s];
  }
  ev.reads_.resize(ev.read_off_.back());
  ev.writes_.resize(ev.write_off_.back());

  // Fill pass over the flat events. Dynamic order leaves every span sorted.
  for (const auto& e : flat) {
    if (e.is_write) {
      ev.writes_[write_count[e.slot]++] = e.index;
    } else {
      ev.reads_[read_count[e.slot]++] = e.index;
    }
  }
  return ev;
}

LocationEvents LocationEvents::build(std::span<const vm::DynInstr> records) {
  return build_range(records, records.size());
}

LocationEvents LocationEvents::build(TraceView records) {
  return build_range(records, records.size());
}

std::span<const std::uint64_t> LocationEvents::span_of(
    vm::Location l, const std::vector<std::uint64_t>& seq,
    const std::vector<std::uint64_t>& off) const {
  const auto it = slot_.find(l);
  if (it == slot_.end()) return {};
  return {seq.data() + off[it->second],
          static_cast<std::size_t>(off[it->second + 1] - off[it->second])};
}

namespace {
/// First index strictly greater than `index` in a sorted span, kNoIndex
/// when none.
std::uint64_t first_after(std::span<const std::uint64_t> seq,
                          std::uint64_t index) {
  const auto it = std::upper_bound(seq.begin(), seq.end(), index);
  return it == seq.end() ? LocationEvents::kNoIndex : *it;
}
}  // namespace

std::uint64_t LocationEvents::next_read_after(vm::Location l,
                                              std::uint64_t index) const {
  return first_after(span_of(l, reads_, read_off_), index);
}

std::uint64_t LocationEvents::next_write_after(vm::Location l,
                                               std::uint64_t index) const {
  return first_after(span_of(l, writes_, write_off_), index);
}

bool LocationEvents::touched_after(vm::Location l, std::uint64_t index) const {
  const auto it = slot_.find(l);
  if (it == slot_.end()) return false;
  const auto s = it->second;
  const std::span<const std::uint64_t> reads{
      reads_.data() + read_off_[s],
      static_cast<std::size_t>(read_off_[s + 1] - read_off_[s])};
  const std::span<const std::uint64_t> writes{
      writes_.data() + write_off_[s],
      static_cast<std::size_t>(write_off_[s + 1] - write_off_[s])};
  // Spans are sorted: anything after `index` shows in the last element.
  return (!reads.empty() && reads.back() > index) ||
         (!writes.empty() && writes.back() > index);
}

std::uint64_t LocationEvents::read_before_overwrite_after(
    vm::Location l, std::uint64_t index) const {
  const auto nr = next_read_after(l, index);
  if (nr == kNoIndex) return kNoIndex;
  const auto nw = next_write_after(l, index);
  // A write strictly before the read kills the value first. At equal
  // indices the read wins: one record consumes its operands before it
  // commits its result.
  return (nw != kNoIndex && nw < nr) ? kNoIndex : nr;
}

// ---------------------------------------------------------------------------
// Legacy map-of-vectors reference implementation
// ---------------------------------------------------------------------------

LegacyLocationEvents LegacyLocationEvents::build(
    std::span<const vm::DynInstr> records) {
  LegacyLocationEvents ev;
  // Bucket hint: locations repeat heavily (loops), so the distinct count is
  // a small fraction of the record count — reserving one bucket per record
  // made the empty bucket array dwarf the events themselves on
  // multi-million-record traces.
  ev.map_.reserve(records.size() / 16 + 16);
  for (const auto& r : records) {
    for (unsigned i = 0; i < r.nops; ++i) {
      if (r.op_loc[i] != vm::kNoLoc) {
        ev.map_[r.op_loc[i]].push_back({r.index, /*is_write=*/false});
      }
    }
    if (r.result_loc != vm::kNoLoc) {
      ev.map_[r.result_loc].push_back({r.index, /*is_write=*/true});
    }
  }
  return ev;
}

namespace {
/// First event with index strictly greater than `index`.
std::vector<LocEvent>::const_iterator first_event_after(
    const std::vector<LocEvent>& evs, std::uint64_t index) {
  return std::upper_bound(
      evs.begin(), evs.end(), index,
      [](std::uint64_t v, const LocEvent& e) { return v < e.index; });
}
}  // namespace

std::uint64_t LegacyLocationEvents::next_read_after(
    vm::Location l, std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_event_after(*evs, index); it != evs->end(); ++it) {
    if (!it->is_write) return it->index;
  }
  return kNoIndex;
}

std::uint64_t LegacyLocationEvents::next_write_after(
    vm::Location l, std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_event_after(*evs, index); it != evs->end(); ++it) {
    if (it->is_write) return it->index;
  }
  return kNoIndex;
}

bool LegacyLocationEvents::touched_after(vm::Location l,
                                         std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return false;
  return first_event_after(*evs, index) != evs->end();
}

std::uint64_t LegacyLocationEvents::read_before_overwrite_after(
    vm::Location l, std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_event_after(*evs, index); it != evs->end(); ++it) {
    if (it->is_write) return kNoIndex;
    return it->index;  // first post-index event is a read
  }
  return kNoIndex;
}

}  // namespace ft::trace
