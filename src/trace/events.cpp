#include "trace/events.h"

#include <algorithm>

namespace ft::trace {

LocationEvents LocationEvents::build(std::span<const vm::DynInstr> records) {
  LocationEvents ev;
  // Size the bucket array up front: multi-million-record traces otherwise
  // rehash the map a dozen times while it grows incrementally. The record
  // count is the right hint — locations repeat heavily (loops), so the
  // distinct-location count stays at or below it in practice.
  ev.map_.reserve(records.size());
  for (const auto& r : records) {
    for (unsigned i = 0; i < r.nops; ++i) {
      if (r.op_loc[i] != vm::kNoLoc) {
        ev.map_[r.op_loc[i]].push_back({r.index, /*is_write=*/false});
      }
    }
    if (r.result_loc != vm::kNoLoc) {
      ev.map_[r.result_loc].push_back({r.index, /*is_write=*/true});
    }
  }
  return ev;
}

namespace {
/// First event with index strictly greater than `index`.
std::vector<LocEvent>::const_iterator first_after(
    const std::vector<LocEvent>& evs, std::uint64_t index) {
  return std::upper_bound(
      evs.begin(), evs.end(), index,
      [](std::uint64_t v, const LocEvent& e) { return v < e.index; });
}
}  // namespace

std::uint64_t LocationEvents::next_read_after(vm::Location l,
                                              std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_after(*evs, index); it != evs->end(); ++it) {
    if (!it->is_write) return it->index;
  }
  return kNoIndex;
}

std::uint64_t LocationEvents::next_write_after(vm::Location l,
                                               std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_after(*evs, index); it != evs->end(); ++it) {
    if (it->is_write) return it->index;
  }
  return kNoIndex;
}

bool LocationEvents::touched_after(vm::Location l, std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return false;
  return first_after(*evs, index) != evs->end();
}

std::uint64_t LocationEvents::read_before_overwrite_after(
    vm::Location l, std::uint64_t index) const {
  const auto* evs = events(l);
  if (!evs) return kNoIndex;
  for (auto it = first_after(*evs, index); it != evs->end(); ++it) {
    if (it->is_write) return kNoIndex;
    return it->index;  // first post-index event is a read
  }
  return kNoIndex;
}

}  // namespace ft::trace
