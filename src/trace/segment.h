// Region segmentation: turning the marker stream (RegionEnter/RegionExit)
// into code-region *instances* (§III-A: "a code region can have many dynamic
// instances, each of which corresponds to one invocation of the code region
// at runtime"). Works both streaming (as an observer) and post-hoc over a
// materialized trace.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "trace/collector.h"
#include "trace/column.h"
#include "vm/observer.h"

namespace ft::trace {

struct RegionInstance {
  std::uint32_t region_id = 0;
  std::uint32_t instance = 0;       // nth dynamic entry of this region
  std::uint64_t enter_index = 0;    // dyn index of the RegionEnter record
  std::uint64_t exit_index = 0;     // dyn index of the RegionExit record
  bool complete = false;            // false if the run ended mid-region

  /// Dynamic-instruction span strictly inside the region (markers excluded).
  [[nodiscard]] std::uint64_t body_begin() const noexcept {
    return enter_index + 1;
  }
  [[nodiscard]] std::uint64_t body_end() const noexcept { return exit_index; }
  [[nodiscard]] std::uint64_t body_length() const noexcept {
    return exit_index > enter_index ? exit_index - enter_index - 1 : 0;
  }

  bool operator==(const RegionInstance&) const = default;
};

/// Streaming segmenter. Feed records (possibly via the VM observer hook);
/// finish() closes any open regions at the last seen index.
class RegionSegmenter final : public vm::ExecObserver {
 public:
  void on_instruction(const vm::DynInstr& d) override;

  /// Close unterminated regions (crashed runs); idempotent.
  void finish();

  [[nodiscard]] const std::vector<RegionInstance>& instances() const noexcept {
    return instances_;
  }
  [[nodiscard]] std::vector<RegionInstance> take() noexcept {
    finish();
    return std::move(instances_);
  }

 private:
  struct Open {
    std::uint32_t region_id;
    std::size_t instance_slot;  // index into instances_
  };
  std::vector<RegionInstance> instances_;
  std::vector<Open> stack_;
  std::vector<std::uint32_t> counts_;
  std::uint64_t last_index_ = 0;
};

/// Post-hoc segmentation of a materialized trace.
[[nodiscard]] std::vector<RegionInstance> segment_regions(
    std::span<const vm::DynInstr> records);

/// Columnar fast path: only marker rows are touched — the opcode of every
/// record is a static lookup through the pc column, so no record is
/// materialized at all.
[[nodiscard]] std::vector<RegionInstance> segment_regions(
    const ColumnTrace& trace);

/// All instances of one region, in dynamic order.
[[nodiscard]] std::vector<RegionInstance> instances_of(
    std::span<const RegionInstance> all, std::uint32_t region_id);

/// The nth instance of a region, if present.
[[nodiscard]] std::optional<RegionInstance> find_instance(
    std::span<const RegionInstance> all, std::uint32_t region_id,
    std::uint32_t instance);

/// Section cut points for the compositional engine (src/compose/): the
/// sorted unique region-instance boundaries (enter_index and
/// exit_index + 1 of every complete instance) strictly inside
/// (0, total_rows), thinned evenly to at most `max_cuts` entries. The
/// caller prepends 0 to obtain section begins. Returns empty when the
/// trace has no usable interior boundary.
[[nodiscard]] std::vector<std::uint64_t> section_boundaries(
    std::span<const RegionInstance> instances, std::uint64_t total_rows,
    std::size_t max_cuts);

}  // namespace ft::trace
