// In-memory dynamic traces.
//
// A Trace is the materialized stream of DynInstr records for one execution
// (one MPI rank). Campaign runs never materialize traces (the fast VM path);
// analysis runs do, optionally bounded, and the per-region "trace splitting"
// of §IV-A is a cheap span slice over the record vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vm/observer.h"

namespace ft::trace {

struct Trace {
  std::vector<vm::DynInstr> records;

  [[nodiscard]] std::size_t size() const noexcept { return records.size(); }
  [[nodiscard]] bool empty() const noexcept { return records.empty(); }
  [[nodiscard]] std::span<const vm::DynInstr> span() const noexcept {
    return records;
  }
  /// Slice of records with dynamic index in [begin, end).
  [[nodiscard]] std::span<const vm::DynInstr> slice(std::uint64_t begin,
                                                    std::uint64_t end) const;
};

/// Observer that appends every record to a Trace, up to an optional cap.
class TraceCollector final : public vm::ExecObserver {
 public:
  explicit TraceCollector(std::size_t max_records = 0)
      : max_records_(max_records) {}

  void on_instruction(const vm::DynInstr& d) override {
    if (max_records_ != 0 && trace_.records.size() >= max_records_) {
      truncated_ = true;
      return;
    }
    trace_.records.push_back(d);
  }

  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take() noexcept { return std::move(trace_); }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

 private:
  Trace trace_;
  std::size_t max_records_;
  bool truncated_ = false;
};

}  // namespace ft::trace
