// Binary trace files (one per MPI rank, as in the paper's parallel tracer).
// Fixed-size little-endian records with a small header; no compression —
// the paper's answer to trace size is splitting, which we do by region.
#pragma once

#include <cstdint>
#include <string>

#include "trace/collector.h"

namespace ft::trace {

/// Serialize a trace. Returns false on I/O failure.
bool write_trace_file(const std::string& path, const Trace& t);

/// Deserialize a trace written by write_trace_file. Returns false on I/O or
/// format error (bad magic / truncated payload).
bool read_trace_file(const std::string& path, Trace& out);

/// Conventional per-rank path: "<stem>.rank<r>.fttrace".
[[nodiscard]] std::string rank_trace_path(const std::string& stem, int rank);

}  // namespace ft::trace
