// Per-location event index: for every location touched by a trace, the
// ordered list of reads and writes. This is the "will this value be
// referenced again?" oracle behind the ACL table's liveness (§III-C) and
// the input/output classification of code regions (§III-B).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "vm/observer.h"

namespace ft::trace {

struct LocEvent {
  std::uint64_t index;  // dynamic instruction index
  bool is_write;        // write (result/store) vs read (operand use)
};

class LocationEvents {
 public:
  /// Build the index from a record span. Reads are operand locations;
  /// writes are result locations (register defs and memory stores).
  static LocationEvents build(std::span<const vm::DynInstr> records);

  [[nodiscard]] const std::vector<LocEvent>* events(vm::Location l) const {
    const auto it = map_.find(l);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Index of the last read of `l` strictly after `index`; kNoIndex if none.
  [[nodiscard]] std::uint64_t next_read_after(vm::Location l,
                                              std::uint64_t index) const;
  /// Index of the next write to `l` strictly after `index`; kNoIndex if none.
  [[nodiscard]] std::uint64_t next_write_after(vm::Location l,
                                               std::uint64_t index) const;
  /// True if `l` has any read strictly after `index`.
  [[nodiscard]] bool read_after(vm::Location l, std::uint64_t index) const {
    return next_read_after(l, index) != kNoIndex;
  }
  /// True if `l` has any event (read or write) strictly after `index`.
  [[nodiscard]] bool touched_after(vm::Location l, std::uint64_t index) const;

  /// First event index of `l` at or after `index` that is a read occurring
  /// before any intervening write ("value flows out"), kNoIndex otherwise.
  [[nodiscard]] std::uint64_t read_before_overwrite_after(
      vm::Location l, std::uint64_t index) const;

  [[nodiscard]] std::size_t num_locations() const noexcept {
    return map_.size();
  }

  static constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

 private:
  std::unordered_map<vm::Location, std::vector<LocEvent>> map_;
};

}  // namespace ft::trace
