// Per-location event index: for every location touched by a trace, the
// ordered reads and writes of it. This is the "will this value be
// referenced again?" oracle behind the ACL table's liveness (§III-C) and
// the input/output classification of code regions (§III-B).
//
// LocationEvents is a flat CSR index built in one count-then-fill pass:
// locations hash to dense slots, and each slot owns a contiguous span of a
// single sorted read-index array and a single sorted write-index array.
// Liveness queries (next_read_after / next_write_after / touched_after /
// read_before_overwrite_after) are then one hash lookup plus a binary
// search over the location's span — the map-of-vectors implementation
// paid the lookup plus a linear scan over interleaved events, and its
// per-location vector headers tripled the resident size.
//
// LegacyLocationEvents keeps that map-of-vectors builder as the A/B
// reference; tests/column_trace_test.cpp pins the two implementations
// query-by-query.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/column.h"
#include "vm/observer.h"

namespace ft::trace {

struct LocEvent {
  std::uint64_t index;  // dynamic instruction index
  bool is_write;        // write (result/store) vs read (operand use)
};

class LocationEvents {
 public:
  /// Build the index from a record range. Reads are operand locations;
  /// writes are result locations (register defs and memory stores).
  static LocationEvents build(std::span<const vm::DynInstr> records);
  static LocationEvents build(TraceView records);

  /// Index of the first read of `l` strictly after `index`; kNoIndex if none.
  [[nodiscard]] std::uint64_t next_read_after(vm::Location l,
                                              std::uint64_t index) const;
  /// Index of the next write to `l` strictly after `index`; kNoIndex if none.
  [[nodiscard]] std::uint64_t next_write_after(vm::Location l,
                                               std::uint64_t index) const;
  /// True if `l` has any read strictly after `index`.
  [[nodiscard]] bool read_after(vm::Location l, std::uint64_t index) const {
    return next_read_after(l, index) != kNoIndex;
  }
  /// True if `l` has any event (read or write) strictly after `index`.
  [[nodiscard]] bool touched_after(vm::Location l, std::uint64_t index) const;

  /// First event index of `l` at or after `index` that is a read occurring
  /// before any intervening write ("value flows out"), kNoIndex otherwise.
  /// A read and a write at the same index order read-first (operands are
  /// consumed before the result commits).
  [[nodiscard]] std::uint64_t read_before_overwrite_after(
      vm::Location l, std::uint64_t index) const;

  [[nodiscard]] std::size_t num_locations() const noexcept {
    return slot_.size();
  }
  [[nodiscard]] std::size_t num_events() const noexcept {
    return reads_.size() + writes_.size();
  }

  static constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

 private:
  template <class Range>
  static LocationEvents build_range(const Range& records,
                                    std::size_t num_records);

  /// Events of `l` in `seq` (reads_ or writes_): the slot's span.
  [[nodiscard]] std::span<const std::uint64_t> span_of(
      vm::Location l, const std::vector<std::uint64_t>& seq,
      const std::vector<std::uint64_t>& off) const;

  std::unordered_map<vm::Location, std::uint32_t> slot_;  // loc -> dense id
  // CSR arrays: slot s owns reads_[read_off_[s], read_off_[s+1]) and
  // writes_[write_off_[s], write_off_[s+1]), each sorted by construction
  // (records are scanned in dynamic order).
  std::vector<std::uint64_t> read_off_;
  std::vector<std::uint64_t> write_off_;
  std::vector<std::uint64_t> reads_;
  std::vector<std::uint64_t> writes_;
};

/// The pre-CSR map-of-vectors implementation, kept as the A/B reference
/// for the flat index (same queries, same results, measurably slower and
/// larger). Not used by any analysis path.
class LegacyLocationEvents {
 public:
  static LegacyLocationEvents build(std::span<const vm::DynInstr> records);

  [[nodiscard]] const std::vector<LocEvent>* events(vm::Location l) const {
    const auto it = map_.find(l);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::uint64_t next_read_after(vm::Location l,
                                              std::uint64_t index) const;
  [[nodiscard]] std::uint64_t next_write_after(vm::Location l,
                                               std::uint64_t index) const;
  [[nodiscard]] bool read_after(vm::Location l, std::uint64_t index) const {
    return next_read_after(l, index) != kNoIndex;
  }
  [[nodiscard]] bool touched_after(vm::Location l, std::uint64_t index) const;
  [[nodiscard]] std::uint64_t read_before_overwrite_after(
      vm::Location l, std::uint64_t index) const;

  [[nodiscard]] std::size_t num_locations() const noexcept {
    return map_.size();
  }

  static constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

 private:
  std::unordered_map<vm::Location, std::vector<LocEvent>> map_;
};

}  // namespace ft::trace
