#include "trace/file.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace ft::trace {

namespace {

constexpr std::uint64_t kMagic = 0x46545452'43453031ull;  // "FTTRCE01"

struct Header {
  std::uint64_t magic;
  std::uint64_t record_size;
  std::uint64_t count;
};

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool write_trace_file(const std::string& path, const Trace& t) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const Header h{kMagic, sizeof(vm::DynInstr), t.records.size()};
  if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) return false;
  if (!t.records.empty() &&
      std::fwrite(t.records.data(), sizeof(vm::DynInstr), t.records.size(),
                  f.get()) != t.records.size()) {
    return false;
  }
  return true;
}

bool read_trace_file(const std::string& path, Trace& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  Header h{};
  if (std::fread(&h, sizeof h, 1, f.get()) != 1) return false;
  if (h.magic != kMagic || h.record_size != sizeof(vm::DynInstr)) return false;
  out.records.assign(h.count, vm::DynInstr{});
  if (h.count != 0 && std::fread(out.records.data(), sizeof(vm::DynInstr),
                                 h.count, f.get()) != h.count) {
    out.records.clear();
    return false;
  }
  return true;
}

std::string rank_trace_path(const std::string& stem, int rank) {
  return stem + ".rank" + std::to_string(rank) + ".fttrace";
}

}  // namespace ft::trace
