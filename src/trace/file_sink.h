// Streaming per-rank trace sink: serializes records to disk as they retire
// (the LLVM-Tracer behaviour), with bounded memory. Used by the Fig. 4
// tracing-overhead experiment, where materializing every rank's trace in
// memory would be dishonest about cost.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "vm/observer.h"

namespace ft::trace {

class StreamingFileTracer final : public vm::ExecObserver {
 public:
  /// Opens `path` for writing; check ok() before use. Buffers `buffer_records`
  /// records between write() calls.
  explicit StreamingFileTracer(const std::string& path,
                               std::size_t buffer_records = 4096);
  ~StreamingFileTracer() override;

  StreamingFileTracer(const StreamingFileTracer&) = delete;
  StreamingFileTracer& operator=(const StreamingFileTracer&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return count_;
  }

  void on_instruction(const vm::DynInstr& d) override;

  /// Flush buffered records and finalize the header; called by the dtor.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::vector<vm::DynInstr> buffer_;
  std::uint64_t count_ = 0;
};

}  // namespace ft::trace
