// Trace statistics: dynamic opcode mix and per-region-instance instruction
// counts (the "#instr in an iteration" column of Table I).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "trace/segment.h"
#include "vm/observer.h"

namespace ft::trace {

struct OpcodeMix {
  std::array<std::uint64_t, 64> counts{};  // indexed by Opcode value
  std::uint64_t total = 0;

  void add(ir::Opcode op) noexcept {
    counts[static_cast<std::size_t>(op)]++;
    total++;
  }
  [[nodiscard]] std::uint64_t of(ir::Opcode op) const noexcept {
    return counts[static_cast<std::size_t>(op)];
  }
};

/// Dynamic opcode histogram of a record span.
[[nodiscard]] OpcodeMix opcode_mix(std::span<const vm::DynInstr> records);

/// Number of dynamic instructions inside one region instance (markers
/// excluded).
[[nodiscard]] std::uint64_t instructions_in(const RegionInstance& inst);

}  // namespace ft::trace
