#include "trace/stats.h"

namespace ft::trace {

OpcodeMix opcode_mix(std::span<const vm::DynInstr> records) {
  OpcodeMix mix;
  for (const auto& r : records) mix.add(r.op);
  return mix;
}

std::uint64_t instructions_in(const RegionInstance& inst) {
  return inst.body_length();
}

}  // namespace ft::trace
