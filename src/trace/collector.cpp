#include "trace/collector.h"

#include <algorithm>

namespace ft::trace {

std::span<const vm::DynInstr> Trace::slice(std::uint64_t begin,
                                           std::uint64_t end) const {
  // Records are stored in dynamic-index order; record i has index i when the
  // whole run was collected, but a capped/filtered collection may not start
  // at 0, so locate by index.
  auto lo = std::lower_bound(
      records.begin(), records.end(), begin,
      [](const vm::DynInstr& r, std::uint64_t v) { return r.index < v; });
  auto hi = std::lower_bound(
      lo, records.end(), end,
      [](const vm::DynInstr& r, std::uint64_t v) { return r.index < v; });
  if (lo == hi) return {};
  return {&*lo, static_cast<std::size_t>(hi - lo)};
}

}  // namespace ft::trace
