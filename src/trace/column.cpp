#include "trace/column.h"

namespace ft::trace {

using vm::SrcKind;

std::size_t ColumnTrace::extras_lower_bound(std::uint64_t row) const {
  const Extra* const extras = extras_col();
  std::size_t lo = 0, hi = num_extras();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (extras[mid].row < row) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void ColumnTrace::materialize(std::size_t row, vm::DynInstr& out) const {
  const vm::DecodedInstr& ins = prog_->code()[pc_col()[row]];
  out = vm::DynInstr{};
  out.index = row;
  out.func = ins.func;
  out.block = ins.block;
  out.instr = ins.instr;
  out.op = ins.op;
  out.pred = ins.pred;
  out.type = ins.type;
  out.nops = ins.nops;
  out.line = ins.line;
  out.aux = ins.aux;

  const std::uint64_t act = activation_col()[row];
  const vm::Src* const srcs = prog_->srcs() + ins.src_begin;
  const std::uint64_t* const pool = op_bits_col() + ops_offset_col()[row];
  const std::uint64_t* const results = result_bits_col();
  const Extra* const extras = extras_col();

  // Escaped locations of this row (rare: Arg operands, Ret commits).
  vm::Location esc_op[vm::kMaxTracedOps] = {vm::kNoLoc, vm::kNoLoc,
                                            vm::kNoLoc};
  vm::Location esc_result = vm::kNoLoc;
  std::uint64_t load_value = results[row];
  if (num_extras() != 0) {
    for (auto e = extras_lower_bound(row);
         e < num_extras() && extras[e].row == row; ++e) {
      switch (extras[e].slot) {
        case kResultSlot: esc_result = extras[e].loc; break;
        case kLoadValueSlot: load_value = extras[e].loc; break;
        default:
          esc_op[static_cast<std::size_t>(extras[e].slot)] = extras[e].loc;
          break;
      }
    }
  }
  const auto src_loc = [&](const vm::Src& s, unsigned src_slot) {
    return s.kind == SrcKind::Arg ? esc_op[src_slot] : derived_src_loc(s, act);
  };

  if (ins.op == ir::Opcode::Load) {
    // Record shape: [0] = the memory cell (loaded value), [1] = pointer dep.
    // The pool holds the pointer value; the loaded value is the result.
    const std::uint64_t ptr = pool[0];
    out.nops = 2;
    out.mem_addr = ptr;
    out.mem_size = store_size(ins.type);
    out.op_loc[0] = vm::mem_loc(ptr);
    out.op_bits[0] = load_value;  // pre-flip loaded value (== result unless
                                  // the fault flipped this very load)
    out.op_type[0] = ins.type;
    out.op_loc[1] = src_loc(srcs[0], 0);
    out.op_bits[1] = ptr;
    out.op_type[1] = ir::Type::Ptr;
    out.result_loc = vm::reg_loc(act, ins.result);
    out.result_bits = results[row];
    return;
  }

  const auto nrec = std::min<unsigned>(ins.src_count, vm::kMaxTracedOps);
  unsigned k = 0;
  for (unsigned i = 0; i < nrec; ++i) {
    const vm::Src& s = srcs[i];
    if (s.kind == SrcKind::None) continue;  // block/absent: slot stays empty
    out.op_bits[i] = pool[k++];
    out.op_type[i] = s.type;
    out.op_loc[i] = src_loc(s, i);
  }

  switch (ins.op) {
    case ir::Opcode::Store:
      // op slots: [0] = stored value (pre-flip), [1] = address; the result
      // column carries the committed (post-flip) bits.
      out.mem_addr = out.op_bits[1];
      out.mem_size = store_size(srcs[0].type);
      out.result_loc = vm::mem_loc(out.op_bits[1]);
      out.result_bits = results[row];
      break;
    case ir::Opcode::CondBr:
      out.branch_taken = (out.op_bits[0] & 1) != 0;
      break;
    case ir::Opcode::Ret:
      if (esc_result != vm::kNoLoc) {
        out.result_loc = esc_result;
        out.result_bits = results[row];
      }
      break;
    case ir::Opcode::Emit:
    case ir::Opcode::EmitTrunc:
      // Emitted bits are exposed for differential comparison, no location.
      out.result_bits = results[row];
      break;
    case ir::Opcode::Call:
      break;  // the result is committed (and recorded) by the matching Ret
    default:
      if (ins.result != ir::kNoReg) {
        out.result_loc = vm::reg_loc(act, ins.result);
        out.result_bits = results[row];
      }
      break;
  }
}

void ColumnTrace::append(const vm::DynInstr& d, std::uint32_t pc) {
  const vm::DecodedInstr& ins = prog_->code()[pc];
  const vm::Src* const srcs = prog_->srcs() + ins.src_begin;
  const auto nrec = std::min<unsigned>(ins.src_count, vm::kMaxTracedOps);

  // The activation column only exists to rebuild register locations, so any
  // derivable register location of the record reveals the value to store; a
  // record without one never reads the column back.
  std::uint64_t act = 0;
  if (vm::is_reg_loc(d.result_loc) && ins.op != ir::Opcode::Ret) {
    act = vm::loc_activation(d.result_loc);
  } else {
    for (unsigned i = 0; i < nrec; ++i) {
      if (srcs[i].kind != SrcKind::Reg) continue;
      act = vm::loc_activation(
          d.op_loc[ins.op == ir::Opcode::Load ? 1 : i]);
      break;
    }
  }

  begin_record(pc, act);
  if (ins.op == ir::Opcode::Load) {
    push_op(d.op_bits[1]);  // pointer value
    if (srcs[0].kind == SrcKind::Arg) push_op_loc(0, d.op_loc[1]);
    if (d.op_bits[0] != d.result_bits) set_load_value(d.op_bits[0]);
  } else {
    for (unsigned i = 0; i < nrec; ++i) {
      if (srcs[i].kind == SrcKind::None) continue;
      push_op(d.op_bits[i]);
      if (srcs[i].kind == SrcKind::Arg) push_op_loc(i, d.op_loc[i]);
    }
  }
  set_result(d.result_bits);
  if (ins.op == ir::Opcode::Ret && d.result_loc != vm::kNoLoc) {
    set_result_loc(d.result_loc);
  }
}

}  // namespace ft::trace
