#include "trace/segment.h"

#include <algorithm>

namespace ft::trace {

void RegionSegmenter::on_instruction(const vm::DynInstr& d) {
  last_index_ = d.index;
  if (d.op == ir::Opcode::RegionEnter) {
    const auto rid = static_cast<std::uint32_t>(d.aux);
    if (rid >= counts_.size()) counts_.resize(rid + 1, 0);
    RegionInstance inst;
    inst.region_id = rid;
    inst.instance = counts_[rid]++;
    inst.enter_index = d.index;
    instances_.push_back(inst);
    stack_.push_back(Open{rid, instances_.size() - 1});
  } else if (d.op == ir::Opcode::RegionExit) {
    const auto rid = static_cast<std::uint32_t>(d.aux);
    // Pop to the matching open region; tolerate mismatches from crashes.
    while (!stack_.empty()) {
      const Open open = stack_.back();
      stack_.pop_back();
      auto& inst = instances_[open.instance_slot];
      inst.exit_index = d.index;
      inst.complete = open.region_id == rid;
      if (open.region_id == rid) break;
    }
  }
}

void RegionSegmenter::finish() {
  while (!stack_.empty()) {
    const Open open = stack_.back();
    stack_.pop_back();
    auto& inst = instances_[open.instance_slot];
    inst.exit_index = last_index_ + 1;
    inst.complete = false;
  }
}

std::vector<RegionInstance> segment_regions(
    std::span<const vm::DynInstr> records) {
  RegionSegmenter seg;
  for (const auto& r : records) seg.on_instruction(r);
  return seg.take();
}

std::vector<RegionInstance> segment_regions(const ColumnTrace& trace) {
  // The segmenter only reads index/op/aux, and all three are cheap columnar
  // lookups — feed it skeleton records for the marker rows (plus the final
  // row, so finish() closes crashed regions at the right index).
  RegionSegmenter seg;
  vm::DynInstr d;
  for (std::size_t row = 0; row < trace.size(); ++row) {
    const auto op = trace.opcode_at(row);
    if (!ir::is_region_marker(op) && row + 1 != trace.size()) continue;
    d.index = row;
    d.op = op;
    d.aux = trace.aux_at(row);
    seg.on_instruction(d);
  }
  return seg.take();
}

std::vector<RegionInstance> instances_of(std::span<const RegionInstance> all,
                                         std::uint32_t region_id) {
  std::vector<RegionInstance> out;
  for (const auto& i : all) {
    if (i.region_id == region_id) out.push_back(i);
  }
  return out;
}

std::optional<RegionInstance> find_instance(std::span<const RegionInstance> all,
                                            std::uint32_t region_id,
                                            std::uint32_t instance) {
  for (const auto& i : all) {
    if (i.region_id == region_id && i.instance == instance) return i;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> section_boundaries(
    std::span<const RegionInstance> instances, std::uint64_t total_rows,
    std::size_t max_cuts) {
  std::vector<std::uint64_t> cuts;
  if (total_rows == 0 || max_cuts == 0) return cuts;
  cuts.reserve(instances.size() * 2);
  for (const auto& i : instances) {
    if (!i.complete) continue;
    if (i.enter_index > 0 && i.enter_index < total_rows) {
      cuts.push_back(i.enter_index);
    }
    const std::uint64_t after = i.exit_index + 1;
    if (after > 0 && after < total_rows) cuts.push_back(after);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.size() > max_cuts) {
    // Thin evenly: keep every (size/max_cuts)-th boundary so sections stay
    // balanced instead of truncating the tail into one giant section.
    std::vector<std::uint64_t> kept;
    kept.reserve(max_cuts);
    for (std::size_t k = 0; k < max_cuts; ++k) {
      kept.push_back(cuts[(k + 1) * cuts.size() / (max_cuts + 1)]);
    }
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    cuts = std::move(kept);
  }
  return cuts;
}

}  // namespace ft::trace
