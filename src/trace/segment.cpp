#include "trace/segment.h"

namespace ft::trace {

void RegionSegmenter::on_instruction(const vm::DynInstr& d) {
  last_index_ = d.index;
  if (d.op == ir::Opcode::RegionEnter) {
    const auto rid = static_cast<std::uint32_t>(d.aux);
    if (rid >= counts_.size()) counts_.resize(rid + 1, 0);
    RegionInstance inst;
    inst.region_id = rid;
    inst.instance = counts_[rid]++;
    inst.enter_index = d.index;
    instances_.push_back(inst);
    stack_.push_back(Open{rid, instances_.size() - 1});
  } else if (d.op == ir::Opcode::RegionExit) {
    const auto rid = static_cast<std::uint32_t>(d.aux);
    // Pop to the matching open region; tolerate mismatches from crashes.
    while (!stack_.empty()) {
      const Open open = stack_.back();
      stack_.pop_back();
      auto& inst = instances_[open.instance_slot];
      inst.exit_index = d.index;
      inst.complete = open.region_id == rid;
      if (open.region_id == rid) break;
    }
  }
}

void RegionSegmenter::finish() {
  while (!stack_.empty()) {
    const Open open = stack_.back();
    stack_.pop_back();
    auto& inst = instances_[open.instance_slot];
    inst.exit_index = last_index_ + 1;
    inst.complete = false;
  }
}

std::vector<RegionInstance> segment_regions(
    std::span<const vm::DynInstr> records) {
  RegionSegmenter seg;
  for (const auto& r : records) seg.on_instruction(r);
  return seg.take();
}

std::vector<RegionInstance> segment_regions(const ColumnTrace& trace) {
  // The segmenter only reads index/op/aux, and all three are cheap columnar
  // lookups — feed it skeleton records for the marker rows (plus the final
  // row, so finish() closes crashed regions at the right index).
  RegionSegmenter seg;
  vm::DynInstr d;
  for (std::size_t row = 0; row < trace.size(); ++row) {
    const auto op = trace.opcode_at(row);
    if (!ir::is_region_marker(op) && row + 1 != trace.size()) continue;
    d.index = row;
    d.op = op;
    d.aux = trace.aux_at(row);
    seg.on_instruction(d);
  }
  return seg.take();
}

std::vector<RegionInstance> instances_of(std::span<const RegionInstance> all,
                                         std::uint32_t region_id) {
  std::vector<RegionInstance> out;
  for (const auto& i : all) {
    if (i.region_id == region_id) out.push_back(i);
  }
  return out;
}

std::optional<RegionInstance> find_instance(std::span<const RegionInstance> all,
                                            std::uint32_t region_id,
                                            std::uint32_t instance) {
  for (const auto& i : all) {
    if (i.region_id == region_id && i.instance == instance) return i;
  }
  return std::nullopt;
}

}  // namespace ft::trace
