#include "harden/harden.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ir/verify.h"

namespace ft::harden {

namespace {

using ir::Instruction;
using ir::Opcode;
using ir::Operand;
using ir::OperandKind;
using ir::Type;

constexpr std::uint32_t kNoRegion = ~std::uint32_t{0};

/// Instructions DWC can duplicate: pure value producers whose re-execution
/// on the same operands is side-effect free and bit-deterministic. Rand
/// (RNG cursor), Alloca (stack bump), Call and the MPI ops are excluded;
/// Load is gated by config (pure between itself and its duplicate, which
/// is inserted immediately after — no store can intervene).
bool dwc_candidate(const Instruction& ins, const HardenConfig& cfg) {
  if (!ins.defines_register()) return false;
  if (is_int_binary(ins.op) || is_float_binary(ins.op) ||
      is_float_unary(ins.op) || is_cast(ins.op)) {
    return true;
  }
  switch (ins.op) {
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::Select:
    case Opcode::Gep:
      return true;
    case Opcode::Load:
      return cfg.dwc_loads;
    default:
      return false;
  }
}

/// One shadowed accumulator cell: an Alloca slot every use of which is a
/// same-typed direct Load/Store, with at least one accumulate chain
/// (load cell -> add -> store cell) inside a protected region.
struct CellPlan {
  std::uint32_t cell_reg = 0;    // Alloca result (the slot's address)
  std::uint32_t shadow_reg = 0;  // fresh Ptr register for the shadow slot
  Type type = Type::F64;
  std::int64_t alloca_aux = 8;
  std::uint32_t stats_region = kNoRegion;        // attribution
  std::vector<std::uint32_t> check_regions;      // exits that compare
};

/// One store to a protected cell that matches the accumulate idiom: the
/// shadow applies the same increment (same opcode, same operand order)
/// instead of copying the stored value, so a corrupted cell load or add
/// result diverges from the shadow.
struct AccumMirror {
  std::uint32_t cell_reg = 0;
  Opcode add_op = Opcode::FAdd;
  std::uint32_t load_pos = 0;  // operand slot of the cell load in the add
  Operand inc;                 // the other operand
};

/// Per-function transform plan, produced by the analysis walk and consumed
/// by the rebuild walk (both traverse blocks and instructions in the same
/// linear order, so plans key off the linear instruction index).
struct FunctionPlan {
  std::unordered_map<std::size_t, std::uint32_t> dwc;  // li -> stats region
  std::unordered_map<std::size_t, AccumMirror> accum;  // li of the Store
  std::unordered_set<std::size_t> plain_mirror;        // li of the Store
  std::map<std::uint32_t, CellPlan> cells;             // by cell_reg
  std::size_t comm_sites = 0;
};

struct RegionTally {
  std::size_t original = 0;
  std::size_t dwc_sites = 0;
  std::size_t abft_cells = 0;
  std::size_t added = 0;
};

/// Tracks which protected regions are statically active at a point of the
/// linear walk. Structured builder code emits RegionEnter, the body blocks,
/// then RegionExit in construction order, so the linear interval between
/// the markers is exactly the region body.
class ActiveRegions {
 public:
  explicit ActiveRegions(const std::unordered_set<std::uint32_t>* selected)
      : selected_(selected) {}

  void step(const Instruction& ins) {
    if (ins.op == Opcode::RegionEnter && selected_->count(rid(ins))) {
      stack_.push_back(rid(ins));
    } else if (ins.op == Opcode::RegionExit && !stack_.empty()) {
      const auto it = std::find(stack_.rbegin(), stack_.rend(), rid(ins));
      if (it != stack_.rend()) stack_.erase(std::next(it).base());
    }
  }

  [[nodiscard]] bool any() const noexcept { return !stack_.empty(); }
  [[nodiscard]] std::uint32_t top() const noexcept {
    return stack_.empty() ? kNoRegion : stack_.back();
  }

 private:
  static std::uint32_t rid(const Instruction& ins) noexcept {
    return static_cast<std::uint32_t>(ins.aux);
  }
  const std::unordered_set<std::uint32_t>* selected_;
  std::vector<std::uint32_t> stack_;
};

/// Append the DWC check for `ins` (already copied into `out`): duplicate,
/// bitwise-compare, trap. ICmp compares raw canonical register bits in all
/// three engines, so one Ne predicate covers ints, floats and pointers.
void emit_dwc(ir::Function& f, std::vector<Instruction>& out,
              const Instruction& ins) {
  Instruction dup = ins;
  dup.result = f.fresh_reg();
  out.push_back(dup);

  Instruction cmp;
  cmp.op = Opcode::ICmp;
  cmp.type = Type::I1;
  cmp.pred = ir::CmpPred::Ne;
  cmp.result = f.fresh_reg();
  cmp.line = ins.line;
  cmp.ops = {Operand::reg(ins.result, ins.type),
             Operand::reg(dup.result, ins.type)};
  out.push_back(cmp);

  Instruction trap;
  trap.op = Opcode::CheckTrap;
  trap.line = ins.line;
  trap.ops = {Operand::reg(cmp.result, Type::I1)};
  out.push_back(trap);
}

/// Append `shadow == cell` detector code (2 loads, bitwise compare, trap).
void emit_cell_check(ir::Function& f, std::vector<Instruction>& out,
                     const CellPlan& cell, std::uint32_t line) {
  Instruction lc;
  lc.op = Opcode::Load;
  lc.type = cell.type;
  lc.result = f.fresh_reg();
  lc.line = line;
  lc.ops = {Operand::reg(cell.cell_reg, Type::Ptr)};
  out.push_back(lc);

  Instruction ls = lc;
  ls.result = f.fresh_reg();
  ls.ops = {Operand::reg(cell.shadow_reg, Type::Ptr)};
  out.push_back(ls);

  Instruction cmp;
  cmp.op = Opcode::ICmp;
  cmp.type = Type::I1;
  cmp.pred = ir::CmpPred::Ne;
  cmp.result = f.fresh_reg();
  cmp.line = line;
  cmp.ops = {Operand::reg(lc.result, cell.type),
             Operand::reg(ls.result, cell.type)};
  out.push_back(cmp);

  Instruction trap;
  trap.op = Opcode::CheckTrap;
  trap.line = line;
  trap.ops = {Operand::reg(cmp.result, Type::I1)};
  out.push_back(trap);
}

/// Analysis walk of one function. Fills `plan`, tallies per-region static
/// instruction counts, allocates shadow registers.
void analyze_function(const ir::Function& f,
                      const std::unordered_set<std::uint32_t>& selected,
                      const HardenConfig& cfg, bool comm,
                      ir::Function& mutable_f, FunctionPlan& plan,
                      std::map<std::uint32_t, RegionTally>& tally) {
  // Register definition sites, by linear index and by pointer.
  std::unordered_map<std::uint32_t, const Instruction*> def;
  std::unordered_map<std::uint32_t, std::size_t> def_li;
  std::unordered_map<std::uint32_t, std::size_t> def_block;
  {
    std::size_t li = 0;
    for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
      for (const auto& ins : f.blocks[bi].instrs) {
        if (ins.defines_register()) {
          def[ins.result] = &ins;
          def_li[ins.result] = li;
          def_block[ins.result] = bi;
        }
        ++li;
      }
    }
  }

  // Candidate cells: ENTRY-BLOCK Alloca slots used only as direct same-typed
  // Load/Store addresses. Any other use (Gep arithmetic, call argument,
  // stored as a value) could alias the slot past the mirror's sight, so it
  // disqualifies the cell — a missed mirror would make a clean run trip the
  // detector. The entry-block restriction is a dominance guarantee: the
  // region-exit check loads every protected cell unconditionally, and an
  // Alloca inside a branch or loop body (e.g. a loop counter in a taken-
  // sometimes arm) may never have executed when the exit retires, leaving
  // the slot register undefined — the check would dereference garbage.
  std::unordered_map<std::uint32_t, std::optional<Type>> cell_type;
  if (!f.blocks.empty()) {
    for (const auto& ins : f.blocks[0].instrs) {
      if (ins.op == Opcode::Alloca) cell_type.emplace(ins.result, std::nullopt);
    }
  }
  auto disqualify = [&](std::uint32_t reg) { cell_type.erase(reg); };
  auto note_access = [&](std::uint32_t reg, Type t) {
    const auto it = cell_type.find(reg);
    if (it == cell_type.end()) return;
    if (!it->second) {
      it->second = t;
    } else if (*it->second != t) {
      disqualify(reg);
    }
  };
  for (const auto& b : f.blocks) {
    for (const auto& ins : b.instrs) {
      for (std::size_t oi = 0; oi < ins.ops.size(); ++oi) {
        const auto& op = ins.ops[oi];
        if (op.kind != OperandKind::Reg || !cell_type.count(op.id)) continue;
        const bool load_addr = ins.op == Opcode::Load && oi == 0;
        const bool store_addr = ins.op == Opcode::Store && oi == 1;
        if (load_addr) {
          note_access(op.id, ins.type);
        } else if (store_addr) {
          note_access(op.id, ins.ops[0].type);
        } else {
          disqualify(op.id);
        }
      }
    }
  }

  // Main walk: region tracking, DWC marks, accumulate-site detection.
  ActiveRegions active(&selected);
  std::map<std::uint32_t, std::size_t> dwc_count;  // per region, for the cap
  std::size_t li = 0;
  for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
    for (const auto& ins : f.blocks[bi].instrs) {
      const bool was_active = active.any();
      const std::uint32_t region = active.top();
      active.step(ins);
      if (was_active && !is_region_marker(ins.op)) {
        tally[region].original++;
      }

      if (cfg.dwc && was_active && dwc_candidate(ins, cfg) &&
          dwc_count[region] < cfg.max_dwc_per_region) {
        plan.dwc.emplace(li, region);
        dwc_count[region]++;
      }

      if (comm &&
          (ins.op == Opcode::MpiSend || ins.op == Opcode::MpiAllreduce)) {
        const std::size_t vi = ins.op == Opcode::MpiSend ? 1 : 0;
        if (vi < ins.ops.size() && ins.ops[vi].kind == OperandKind::Reg) {
          const auto it = def.find(ins.ops[vi].id);
          if (it != def.end() && dwc_candidate(*it->second, cfg) &&
              plan.dwc.emplace(def_li[ins.ops[vi].id], kNoRegion).second) {
            plan.comm_sites++;
          }
        }
      }

      if (cfg.abft && was_active && ins.op == Opcode::Store &&
          ins.ops.size() == 2 && ins.ops[1].kind == OperandKind::Reg &&
          cell_type.count(ins.ops[1].id) &&
          ins.ops[0].kind == OperandKind::Reg) {
        const std::uint32_t cell = ins.ops[1].id;
        const auto rit = def.find(ins.ops[0].id);
        if (rit != def.end() && def_block[ins.ops[0].id] == bi &&
            (rit->second->op == Opcode::Add ||
             rit->second->op == Opcode::FAdd)) {
          const auto& add = *rit->second;
          for (std::uint32_t k = 0; k < 2; ++k) {
            if (add.ops[k].kind != OperandKind::Reg) continue;
            const auto lit = def.find(add.ops[k].id);
            if (lit == def.end() || lit->second->op != Opcode::Load) continue;
            if (def_block[add.ops[k].id] != bi) continue;
            const auto& ld = *lit->second;
            if (ld.ops.empty() || ld.ops[0].kind != OperandKind::Reg ||
                ld.ops[0].id != cell) {
              continue;
            }
            AccumMirror m;
            m.cell_reg = cell;
            m.add_op = add.op;
            m.load_pos = k;
            m.inc = add.ops[1 - k];
            plan.accum.emplace(li, m);
            auto [cit, fresh] = plan.cells.try_emplace(cell);
            if (fresh) {
              cit->second.cell_reg = cell;
              cit->second.shadow_reg = mutable_f.fresh_reg();
              cit->second.type = *cell_type[cell];
              cit->second.alloca_aux = def[cell]->aux;
              cit->second.stats_region = region;
            }
            auto& checks = cit->second.check_regions;
            if (std::find(checks.begin(), checks.end(), region) ==
                checks.end()) {
              checks.push_back(region);
            }
            break;
          }
        }
      }
      ++li;
    }
  }

  // Every store to a protected cell must be mirrored — including init
  // stores outside any protected region — or shadow == cell breaks on
  // clean runs. Accumulate sites re-apply the increment; the rest copy.
  if (!plan.cells.empty()) {
    li = 0;
    for (const auto& b : f.blocks) {
      for (const auto& ins : b.instrs) {
        if (ins.op == Opcode::Store && ins.ops.size() == 2 &&
            ins.ops[1].kind == OperandKind::Reg &&
            plan.cells.count(ins.ops[1].id) && !plan.accum.count(li)) {
          plan.plain_mirror.insert(li);
        }
        ++li;
      }
    }
    for (const auto& [reg, cell] : plan.cells) {
      tally[cell.stats_region].abft_cells++;
    }
  }
}

/// Rebuild walk: copy every instruction, splicing in shadow allocas,
/// store mirrors, region-exit checks and DWC checks planned above.
void rebuild_function(ir::Function& f, const FunctionPlan& plan,
                      std::map<std::uint32_t, RegionTally>& tally,
                      std::size_t* comm_added) {
  std::size_t li = 0;
  for (auto& block : f.blocks) {
    std::vector<Instruction> out;
    out.reserve(block.instrs.size());
    for (const auto& ins : block.instrs) {
      if (ins.op == Opcode::RegionExit) {
        const auto rid = static_cast<std::uint32_t>(ins.aux);
        for (const auto& [reg, cell] : plan.cells) {
          if (std::find(cell.check_regions.begin(), cell.check_regions.end(),
                        rid) != cell.check_regions.end()) {
            const std::size_t before = out.size();
            emit_cell_check(f, out, cell, ins.line);
            tally[rid].added += out.size() - before;
          }
        }
      }
      out.push_back(ins);

      if (ins.op == Opcode::Alloca) {
        const auto cit = plan.cells.find(ins.result);
        if (cit != plan.cells.end()) {
          const auto& cell = cit->second;
          // The shadow slot, plus shadow := cell so the invariant holds
          // from birth even if the program reads before its first store.
          Instruction sh = ins;
          sh.result = cell.shadow_reg;
          out.push_back(sh);
          Instruction init_ld;
          init_ld.op = Opcode::Load;
          init_ld.type = cell.type;
          init_ld.result = f.fresh_reg();
          init_ld.line = ins.line;
          init_ld.ops = {Operand::reg(cell.cell_reg, Type::Ptr)};
          out.push_back(init_ld);
          Instruction init_st;
          init_st.op = Opcode::Store;
          init_st.line = ins.line;
          init_st.ops = {Operand::reg(init_ld.result, cell.type),
                         Operand::reg(cell.shadow_reg, Type::Ptr)};
          out.push_back(init_st);
          tally[cell.stats_region].added += 3;
        }
      }

      if (const auto ait = plan.accum.find(li); ait != plan.accum.end()) {
        const auto& m = ait->second;
        const auto& cell = plan.cells.at(m.cell_reg);
        Instruction ld;
        ld.op = Opcode::Load;
        ld.type = cell.type;
        ld.result = f.fresh_reg();
        ld.line = ins.line;
        ld.ops = {Operand::reg(cell.shadow_reg, Type::Ptr)};
        out.push_back(ld);
        Instruction add;
        add.op = m.add_op;
        add.type = cell.type;
        add.result = f.fresh_reg();
        add.line = ins.line;
        add.ops.resize(2);
        // Same opcode, same operand order as the original chain: the
        // shadow accumulates bit-identically on clean runs.
        add.ops[m.load_pos] = Operand::reg(ld.result, cell.type);
        add.ops[1 - m.load_pos] = m.inc;
        out.push_back(add);
        Instruction st;
        st.op = Opcode::Store;
        st.line = ins.line;
        st.ops = {Operand::reg(add.result, cell.type),
                  Operand::reg(cell.shadow_reg, Type::Ptr)};
        out.push_back(st);
        tally[cell.stats_region].added += 3;
      } else if (plan.plain_mirror.count(li)) {
        const auto& cell = plan.cells.at(ins.ops[1].id);
        Instruction st;
        st.op = Opcode::Store;
        st.line = ins.line;
        st.ops = {ins.ops[0], Operand::reg(cell.shadow_reg, Type::Ptr)};
        out.push_back(st);
        tally[cell.stats_region].added += 1;
      }

      if (const auto dit = plan.dwc.find(li); dit != plan.dwc.end()) {
        const std::size_t before = out.size();
        emit_dwc(f, out, ins);
        if (dit->second == kNoRegion) {
          *comm_added += out.size() - before;
        } else {
          tally[dit->second].added += out.size() - before;
          tally[dit->second].dwc_sites++;
        }
      }
      ++li;
    }
    block.instrs = std::move(out);
  }
}

}  // namespace

HardenResult harden_module(const ir::Module& m, const HardenConfig& config,
                           const std::vector<RegionGuide>& guides) {
  HardenResult out{m, {}, 0, 0, 0, {}};

  std::unordered_set<std::uint32_t> selected;
  bool comm = config.protect_comm;
  if (guides.empty()) {
    for (std::uint32_t r = 0; r < m.num_regions(); ++r) selected.insert(r);
  } else {
    for (const auto& g : guides) {
      if (g.success_rate < config.sr_threshold &&
          g.region_id < m.num_regions()) {
        selected.insert(g.region_id);
        comm = comm || g.escaping;
      }
    }
  }

  std::map<std::uint32_t, RegionTally> tally;
  for (const auto rid : selected) tally.emplace(rid, RegionTally{});
  std::size_t comm_added = 0;
  for (std::uint32_t fi = 0; fi < out.module.num_functions(); ++fi) {
    out.original_instructions += m.function(fi).instruction_count();
    FunctionPlan plan;
    analyze_function(m.function(fi), selected, config, comm,
                     out.module.function(fi), plan, tally);
    rebuild_function(out.module.function(fi), plan, tally, &comm_added);
    out.comm_sites += plan.comm_sites;
  }

  for (const auto& [rid, t] : tally) {
    RegionStats rs;
    rs.region_id = rid;
    rs.name = out.module.region(rid).name;
    rs.original_instructions = t.original;
    rs.dwc_sites = t.dwc_sites;
    rs.abft_cells = t.abft_cells;
    rs.added_instructions = t.added;
    out.added_instructions += t.added;
    out.regions.push_back(std::move(rs));
  }
  out.added_instructions += comm_added;

  out.module.layout();
  out.verify_errors = ir::verify(out.module);
  return out;
}

}  // namespace ft::harden
