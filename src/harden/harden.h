/// @file
/// Campaign-guided automatic hardening (IR-to-IR transform pass).
///
/// Consumes measured per-region resilience (success rates from a fault
/// campaign, optionally the cross-rank escape taxonomy) and inserts
/// protection only where resilience is low:
///
///   DWC   selective instruction duplication with compare-and-trap: every
///         pure value-producing instruction in a protected region is
///         re-executed on the same operands, the two results are compared
///         bitwise, and a mismatch raises TrapKind::DetectedFault through
///         the CheckTrap intrinsic. Detects result-register flips in the
///         duplicated chain within a couple of instructions (short
///         detection latency -> usually recoverable by rollback). Cannot
///         see memory corruption: both copies read the same cells.
///
///   ABFT  shadow accumulators on linear-algebra reduction cells (the CG
///         dot/spmv and MG restriction idiom: load cell -> add -> store
///         cell). Every store to a protected cell is mirrored into a
///         shadow slot — accumulate stores re-apply the increment to the
///         shadow, plain stores copy the value — so shadow == cell is a
///         bit-exact invariant of every clean run. A bitwise compare at
///         each RegionExit of the protected region traps on divergence.
///         Detects corruption of the cell itself (including region-entry
///         input-memory faults and wild stores through corrupted
///         addresses) that DWC is structurally blind to, at the price of
///         detection latency: the trap fires at region exit, so a
///         checkpoint taken mid-region may capture the corruption and
///         make the trial DetectedUnrecoverable.
///
///   Comm  boundary protection for multi-rank runs: when the rank
///         taxonomy flags escaping faults (absorbed-by-collective,
///         propagated, cross-rank corrupted output), the values flowing
///         into MpiSend / MpiAllreduce are DWC-checked immediately before
///         they enter the communication layer, wherever they are built.
///
/// Clean-run transparency: every inserted duplicate re-computes on the
/// original operands in the original order, so a clean (fault-free) run of
/// the hardened module produces output bit-identical to the original on
/// all three engines — pinned by tests/engine_fuzz_test.cpp. Every emitted
/// module is re-laid-out and ir::verify'd; errors are returned, never
/// swallowed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace ft::harden {

/// What to protect and how aggressively. The pass itself is purely
/// mechanical; policy (which regions are weak) arrives via RegionGuide.
struct HardenConfig {
  /// Regions with measured success rate strictly below this are protected.
  /// 1.0 protects every guided region; with an empty guide list the pass
  /// protects every region declared by the module (unguided mode).
  double sr_threshold = 1.0;
  bool dwc = true;
  bool abft = true;
  /// Duplicate Load results too. Loads dominate the internal-site
  /// population, so this buys coverage on load flips; it cannot help with
  /// corrupted memory (both copies read the same cell).
  bool dwc_loads = true;
  /// DWC-check values entering MpiSend/MpiAllreduce (rank-escape guided).
  bool protect_comm = false;
  /// Static cap on DWC sites per region (overhead throttle).
  std::size_t max_dwc_per_region = ~std::size_t{0};
};

/// Measured resilience of one module region (CampaignResult::success_rate
/// of the region campaign). `escaping` marks regions whose faults the
/// cross-rank taxonomy saw leave the injected rank.
struct RegionGuide {
  std::uint32_t region_id = 0;
  double success_rate = 0.0;
  bool escaping = false;
};

/// Static accounting for one protected region.
struct RegionStats {
  std::uint32_t region_id = 0;
  std::string name;
  std::size_t original_instructions = 0;  // static instrs in line range
  std::size_t dwc_sites = 0;              // instructions duplicated
  std::size_t abft_cells = 0;             // shadowed accumulator cells
  std::size_t added_instructions = 0;     // static instrs inserted

  [[nodiscard]] double overhead() const noexcept {
    return original_instructions == 0
               ? 0.0
               : 1.0 + static_cast<double>(added_instructions) /
                           static_cast<double>(original_instructions);
  }
};

struct HardenResult {
  ir::Module module;  // the hardened clone (re-laid-out)
  std::vector<RegionStats> regions;
  std::size_t comm_sites = 0;           // DWC checks at comm boundaries
  std::size_t added_instructions = 0;   // total static
  std::size_t original_instructions = 0;
  /// ir::verify findings on the emitted module; empty on success.
  std::vector<std::string> verify_errors;
};

/// Clone `m` and insert detectors. `guides` selects the protected regions
/// (see HardenConfig::sr_threshold); an empty list protects every declared
/// region. Comm-boundary checks are added when config.protect_comm is set
/// or any selected guide is flagged escaping.
[[nodiscard]] HardenResult harden_module(const ir::Module& m,
                                         const HardenConfig& config,
                                         const std::vector<RegionGuide>& guides = {});

}  // namespace ft::harden
