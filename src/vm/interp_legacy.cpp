// Legacy engine: walks the ir::Instruction representation directly. The
// reference implementation and the decoded engine's A/B baseline.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/bits.h"
#include "vm/interp.h"
#include "vm/interp_shared.h"

namespace ft::vm {

using ir::CmpPred;
using ir::Opcode;
using ir::Operand;
using ir::OperandKind;
using ir::Type;
using util::bits_to_f32;
using util::bits_to_f64;
using util::f32_to_bits;
using util::f64_to_bits;

Vm::OpVal Vm::eval(const Operand& o, const Frame& fr) const {
  switch (o.kind) {
    case OperandKind::Reg:
      return {fr.regs[o.id], reg_loc(fr.activation, o.id), o.type};
    case OperandKind::ImmI:
      return {canon_int(static_cast<std::uint64_t>(o.imm_i), o.type), kNoLoc,
              o.type};
    case OperandKind::ImmF:
      return {o.type == Type::F32
                  ? f32_to_bits(static_cast<float>(o.imm_f))
                  : f64_to_bits(o.imm_f),
              kNoLoc, o.type};
    case OperandKind::Arg:
      return {fr.arg_bits[o.id], fr.arg_locs[o.id], o.type};
    case OperandKind::Global:
      return {mod_->global(o.id).addr, kNoLoc, Type::Ptr};
    case OperandKind::Block:
    case OperandKind::None:
      break;
  }
  return {};
}

void Vm::push_frame(std::uint32_t func, const ir::Instruction& call_ins,
                    Frame& caller, DynInstr* out) {
  const auto& callee = mod_->function(func);
  Frame fr;
  fr.func = func;
  fr.activation = next_activation_++;
  fr.regs.assign(callee.num_regs, 0);
  fr.arg_bits.reserve(call_ins.ops.size());
  fr.arg_locs.reserve(call_ins.ops.size());
  for (std::size_t i = 0; i < call_ins.ops.size(); ++i) {
    const OpVal v = eval(call_ins.ops[i], caller);
    fr.arg_bits.push_back(v.bits);
    fr.arg_locs.push_back(v.loc);
    if (out && i < kMaxTracedOps) {
      out->op_loc[i] = v.loc;
      out->op_bits[i] = v.bits;
      out->op_type[i] = v.type;
    }
  }
  fr.saved_sp = sp_;
  fr.ret_reg = call_ins.result;
  frames_.push_back(std::move(fr));
}

Vm::Status Vm::step_legacy(DynInstr* out) {
  if (status_ != Status::Running) return status_;
  if (n_retired_ >= opts_.max_instructions) {
    set_trap(TrapKind::Hang);
    return status_;
  }

  Frame& fr = frames_.back();
  const auto& fn = mod_->function(fr.func);
  const auto& ins = fn.blocks[fr.block].instrs[fr.pc];

  if (out) {
    *out = DynInstr{};
    out->index = n_retired_;
    out->func = fr.func;
    out->block = fr.block;
    out->instr = fr.pc;
    out->op = ins.op;
    out->pred = ins.pred;
    out->type = ins.type;
    out->line = ins.line;
    out->aux = ins.aux;
    out->nops = static_cast<std::uint8_t>(
        std::min<std::size_t>(ins.ops.size(), kMaxTracedOps));
  }

  // Evaluate (up to 3) operands once; ops beyond 3 only occur for Call,
  // which re-evaluates its own argument list in push_frame.
  OpVal a{}, b{}, c{};
  const std::size_t nops = ins.ops.size();
  if (ins.op != Opcode::Call) {
    if (nops > 0 && ins.ops[0].kind != OperandKind::Block) {
      a = eval(ins.ops[0], fr);
    }
    if (nops > 1 && ins.ops[1].kind != OperandKind::Block) {
      b = eval(ins.ops[1], fr);
    }
    if (nops > 2 && ins.ops[2].kind != OperandKind::Block) {
      c = eval(ins.ops[2], fr);
    }
    if (out) {
      const OpVal* vals[3] = {&a, &b, &c};
      for (std::size_t i = 0; i < std::min<std::size_t>(nops, 3); ++i) {
        if (ins.ops[i].kind == OperandKind::Block) continue;
        out->op_loc[i] = vals[i]->loc;
        out->op_bits[i] = vals[i]->bits;
        out->op_type[i] = vals[i]->type;
      }
    }
  }

  std::uint64_t result = 0;
  bool has_res = ins.defines_register();
  Location result_location =
      has_res ? reg_loc(fr.activation, ins.result) : kNoLoc;
  bool advance_pc = true;

  const Type t = ins.type;
  const auto ia = static_cast<std::int64_t>(a.bits);
  const auto ib = static_cast<std::int64_t>(b.bits);

  switch (ins.op) {
    // --- integer binary -----------------------------------------------------
    case Opcode::Add:
      result = canon_int(a.bits + b.bits, t);
      break;
    case Opcode::Sub:
      result = canon_int(a.bits - b.bits, t);
      break;
    case Opcode::Mul:
      result = canon_int(a.bits * b.bits, t);
      break;
    case Opcode::SDiv:
    case Opcode::SRem: {
      if (ib == 0) {
        set_trap(TrapKind::DivByZero);
        return status_;
      }
      if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
        set_trap(TrapKind::IntOverflowDiv);
        return status_;
      }
      const std::int64_t r = ins.op == Opcode::SDiv ? ia / ib : ia % ib;
      result = canon_int(static_cast<std::uint64_t>(r), t);
      break;
    }
    case Opcode::And:
      result = canon_int(a.bits & b.bits, t);
      break;
    case Opcode::Or:
      result = canon_int(a.bits | b.bits, t);
      break;
    case Opcode::Xor:
      result = canon_int(a.bits ^ b.bits, t);
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      const unsigned width = bit_width(t);
      const std::uint64_t amt = b.bits;
      if (amt >= width) {
        set_trap(TrapKind::BadShift);
        return status_;
      }
      if (ins.op == Opcode::Shl) {
        result = canon_int(a.bits << amt, t);
      } else if (ins.op == Opcode::LShr) {
        const std::uint64_t ua = util::truncate_to(a.bits, width);
        result = canon_int(ua >> amt, t);
      } else {
        result = canon_int(static_cast<std::uint64_t>(ia >> amt), t);
      }
      break;
    }

    // --- floating binary ----------------------------------------------------
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits), y = bits_to_f32(b.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits), y = bits_to_f64(b.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- floating unary -----------------------------------------------------
    case Opcode::FNeg:
    case Opcode::FSqrt:
    case Opcode::FAbs:
    case Opcode::FFloor: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- comparisons --------------------------------------------------------
    case Opcode::ICmp: {
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = ia == ib; break;
        case CmpPred::Ne: r = ia != ib; break;
        case CmpPred::Lt: r = ia < ib; break;
        case CmpPred::Le: r = ia <= ib; break;
        case CmpPred::Gt: r = ia > ib; break;
        case CmpPred::Ge: r = ia >= ib; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::FCmp: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double y = b.type == Type::F32
                           ? static_cast<double>(bits_to_f32(b.bits))
                           : bits_to_f64(b.bits);
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = x == y; break;
        case CmpPred::Ne: r = x != y; break;
        case CmpPred::Lt: r = x < y; break;
        case CmpPred::Le: r = x <= y; break;
        case CmpPred::Gt: r = x > y; break;
        case CmpPred::Ge: r = x >= y; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::Select:
      result = (a.bits & 1) ? b.bits : c.bits;
      break;

    // --- casts ---------------------------------------------------------------
    case Opcode::Trunc:
      result = canon_int(a.bits, t);
      break;
    case Opcode::SExt:
      result = a.bits;  // canonical form is already sign-extended
      break;
    case Opcode::ZExt:
      result = util::truncate_to(a.bits, bit_width(a.type));
      break;
    case Opcode::FPTrunc:
      result = f32_to_bits(static_cast<float>(bits_to_f64(a.bits)));
      break;
    case Opcode::FPExt:
      result = f64_to_bits(static_cast<double>(bits_to_f32(a.bits)));
      break;
    case Opcode::FPToSI: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
        set_trap(TrapKind::FpDomain);
        return status_;
      }
      result = canon_int(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(x)),
                         t);
      break;
    }
    case Opcode::SIToFP: {
      const auto x = static_cast<double>(ia);
      result = t == Type::F32 ? f32_to_bits(static_cast<float>(x))
                              : f64_to_bits(x);
      break;
    }
    case Opcode::Bitcast:
      if (t == Type::I32) {
        result = canon_int(a.bits, t);  // keep I32 canonical (sign-extended)
      } else {
        result = bit_width(t) == 32 ? util::truncate_to(a.bits, 32) : a.bits;
      }
      break;

    // --- memory ---------------------------------------------------------------
    case Opcode::Alloca: {
      const auto size = static_cast<std::uint64_t>(ins.aux);
      const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
      if (aligned + size > mem_.size()) {
        set_trap(TrapKind::StackOverflow);
        return status_;
      }
      result = aligned;
      sp_ = aligned + size;
      break;
    }
    case Opcode::Load: {
      // Operand order in records: [0] = memory cell, [1] = pointer dep.
      const std::uint64_t addr = a.bits;
      const auto size = store_size(t);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = 0;
      std::memcpy(&bits, &mem_[addr], size);
      result = is_int(t) ? canon_int(bits, t) : bits;
      if (out) {
        out->mem_addr = addr;
        out->mem_size = size;
        out->nops = 2;
        out->op_loc[0] = mem_loc(addr);
        out->op_bits[0] = result;
        out->op_type[0] = t;
        out->op_loc[1] = a.loc;  // the pointer value's own location
        out->op_bits[1] = a.bits;
        out->op_type[1] = Type::Ptr;
      }
      break;
    }
    case Opcode::Store: {
      const std::uint64_t addr = b.bits;
      const auto size = store_size(a.type);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = a.bits;
      maybe_flip_result(bits);
      std::memcpy(&mem_[addr], &bits, size);
      has_res = false;
      result_location = mem_loc(addr);
      result = bits;
      if (out) {
        out->mem_addr = addr;
        out->mem_size = size;
      }
      break;
    }
    case Opcode::Gep: {
      // Unsigned multiply: a fault-corrupted index can overflow, and two's
      // complement wraparound (not signed-overflow UB) is the semantic all
      // three engine copies share.
      const std::uint64_t base = a.bits;
      result = base + b.bits * static_cast<std::uint64_t>(ins.aux);
      break;
    }

    // --- control -----------------------------------------------------------------
    case Opcode::Br:
      fr.block = ins.ops[0].id;
      fr.pc = 0;
      advance_pc = false;
      break;
    case Opcode::CondBr: {
      const bool taken = (a.bits & 1) != 0;
      fr.block = taken ? ins.ops[1].id : ins.ops[2].id;
      fr.pc = 0;
      advance_pc = false;
      if (out) out->branch_taken = taken;
      break;
    }
    case Opcode::Ret: {
      const bool has_val = !ins.ops.empty();
      const std::uint64_t ret_bits = has_val ? a.bits : 0;
      if (frames_.size() == 1) {
        status_ = Status::Finished;
        advance_pc = false;
      } else {
        sp_ = fr.saved_sp;
        const std::uint32_t dest_reg = fr.ret_reg;
        frames_.pop_back();
        Frame& caller = frames_.back();
        if (dest_reg != ir::kNoReg) {
          std::uint64_t bits = ret_bits;
          maybe_flip_result(bits);
          caller.regs[dest_reg] = bits;
          result_location = reg_loc(caller.activation, dest_reg);
          result = bits;
          if (out) {
            out->result_loc = result_location;
            out->result_bits = bits;
          }
        }
        advance_pc = false;  // caller pc was advanced at call time
      }
      has_res = false;
      break;
    }
    case Opcode::Call: {
      if (frames_.size() >= opts_.max_call_depth) {
        set_trap(TrapKind::CallDepth);
        return status_;
      }
      fr.pc++;  // resume point after return
      advance_pc = false;
      // NB: push_frame may reallocate frames_, invalidating `fr`; it takes
      // the caller by reference parameter to do its work first.
      push_frame(static_cast<std::uint32_t>(ins.aux), ins, fr, out);
      has_res = false;  // result is committed by Ret
      break;
    }

    // --- intrinsics -----------------------------------------------------------------
    case Opcode::Rand:
      result = f64_to_bits(randlc_.next());
      break;
    case Opcode::Emit: {
      outputs_.push_back({a.bits, a.type});
      // Expose the emitted bits for differential comparison (no location).
      if (out) out->result_bits = a.bits;
      break;
    }
    case Opcode::EmitTrunc: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double r = detail::round_to_digits(x, static_cast<int>(ins.aux));
      outputs_.push_back({f64_to_bits(r), Type::F64});
      // The *rounded* value is what the user sees; comparing it is what
      // makes Pattern 5 (data truncation) observable in the diff.
      if (out) out->result_bits = f64_to_bits(r);
      break;
    }
    case Opcode::RegionEnter: {
      const auto rid = static_cast<std::uint32_t>(ins.aux);
      apply_region_entry_fault(rid);
      region_counts_[rid]++;
      break;
    }
    case Opcode::RegionExit:
      break;

    // --- MiniMPI (null endpoint = single-rank world; see interp_shared.h) -----
    case Opcode::MpiRank:
      result = static_cast<std::uint64_t>(detail::mpi_rank_of(opts_.mpi));
      break;
    case Opcode::MpiSize:
      result = static_cast<std::uint64_t>(detail::mpi_size_of(opts_.mpi));
      break;
    case Opcode::MpiSend:
      detail::mpi_send_on(opts_.mpi, static_cast<std::int64_t>(a.bits),
                          bits_to_f64(b.bits));
      break;
    case Opcode::MpiRecv:
      result = f64_to_bits(
          detail::mpi_recv_on(opts_.mpi, static_cast<std::int64_t>(a.bits)));
      break;
    case Opcode::MpiAllreduce:
      result = f64_to_bits(detail::mpi_allreduce_on(
          opts_.mpi, bits_to_f64(a.bits),
          static_cast<ir::ReduceOp>(ins.aux)));
      break;
    case Opcode::MpiBarrier:
      detail::mpi_barrier_on(opts_.mpi);
      break;

    case Opcode::CheckTrap:
      // Hardening detector (src/harden/): trap-before-retire, like every
      // other trap — the detector instruction itself never commits.
      if ((a.bits & 1) != 0) {
        set_trap(TrapKind::DetectedFault);
        return status_;
      }
      break;
  }

  if (has_res) {
    maybe_flip_result(result);
    // `fr` may dangle only after Call/Ret, which set has_res = false.
    fr.regs[ins.result] = result;
  }

  if (out) {
    if (has_res || ins.op == Opcode::Store) {
      out->result_loc = result_location;
      out->result_bits = result;
    }
  }

  if (advance_pc) fr.pc++;
  n_retired_++;
  return status_;
}

}  // namespace ft::vm
