// The pre-decoded execution engine's program representation.
//
// A campaign runs thousands of trials of one module, but the tree-walking
// interpreter re-discovers the same static facts on every retired
// instruction: three levels of vector indirection to reach the
// ir::Instruction, an operand-kind switch per operand, immediate
// canonicalization, global-address lookups, and a heap-allocated register
// file per call frame. DecodedProgram lowers a laid-out ir::Module ONCE
// into a flat, cache-friendly instruction array:
//
//   * one contiguous DecodedInstr per static instruction, in function/block
//     order, addressed by a single flat pc (no per-block vectors);
//   * operands pre-resolved into Src descriptors — integer immediates are
//     pre-canonicalized (canon_int), float immediates pre-encoded to their
//     IEEE bit patterns, global operands pre-folded to their laid-out
//     addresses — so the hot loop never touches ir::Operand again;
//   * branch targets pre-resolved to dense flat pcs (target_taken /
//     target_fallthrough), so Br/CondBr are a single assignment;
//   * per-function frame metadata (register/param counts, entry pc) sized
//     for the Vm's single contiguous register/argument stack, eliminating
//     the per-frame std::vector allocations of the legacy engine.
//
// Dispatch over the decoded stream is a dense-opcode switch (Opcode is a
// dense uint8 enum, so the compiler emits a jump table); see
// Vm::step_decoded in interp.cpp.
//
// A DecodedProgram is immutable after decode() and holds only pointers into
// the module it was decoded from: share one instance (e.g. behind a
// shared_ptr, as core::AnalysisSession does) across any number of
// concurrent Vms. The decoded engine is record-by-record bit-identical to
// the legacy tree-walking engine (pinned by tests/decode_test.cpp), so
// traces, lockstep diffing and every downstream analysis are unaffected by
// which engine produced them.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace ft::vm {

/// Canonical in-register form shared by both engines: I1 is 0/1, I32 is
/// sign-extended to 64 bits, I64/Ptr are raw, floats are their IEEE
/// patterns (F32 zero-extended).
[[nodiscard]] constexpr std::uint64_t canon_int(std::uint64_t bits,
                                                ir::Type t) noexcept {
  switch (t) {
    case ir::Type::I1: return bits & 1;
    case ir::Type::I32:
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int32_t>(bits)));
    default: return bits;
  }
}

/// A pre-resolved operand. Reg/Arg keep their frame-relative slot index;
/// immediates and globals collapse to Const with the bits fully computed at
/// decode time. None marks block operands (branch targets live in
/// DecodedInstr) and absent operands, and evaluates to the empty value.
enum class SrcKind : std::uint8_t { None, Reg, Arg, Const };

struct Src {
  SrcKind kind = SrcKind::None;
  ir::Type type = ir::Type::Void;
  std::uint32_t index = 0;     // register / argument slot
  std::uint64_t bits = 0;      // pre-computed constant bits
};

/// One decoded instruction. Static record coordinates (func/block/instr)
/// ride along so DynInstr emission needs no reverse mapping.
struct DecodedInstr {
  ir::Opcode op = ir::Opcode::Br;
  ir::CmpPred pred = ir::CmpPred::None;
  ir::Type type = ir::Type::Void;
  std::uint8_t nops = 0;       // record operand count: min(#ops, kMaxTracedOps)
  std::uint32_t result = ir::kNoReg;
  std::uint32_t src_begin = 0;     // into DecodedProgram::srcs()
  std::uint16_t src_count = 0;     // full operand count (Call: argument count)
  std::uint16_t reserved = 0;
  std::uint32_t target_taken = 0;  // Br: target pc; CondBr: taken-branch pc
  std::uint32_t target_fall = 0;   // CondBr: not-taken-branch pc
  std::int64_t aux = 0;
  std::uint32_t func = 0;
  std::uint32_t block = 0;
  std::uint32_t instr = 0;         // index within block
  std::uint32_t line = 0;
};

/// Frame metadata of one function: everything the Vm needs to push a frame
/// onto its contiguous register/argument stack.
struct DecodedFunction {
  std::uint32_t entry_pc = 0;
  std::uint32_t num_regs = 0;
  std::uint32_t num_params = 0;
};

class DecodedProgram {
 public:
  /// Lower a laid-out module (Module::layout(), done by
  /// ProgramBuilder::finish()). The module must outlive the program.
  [[nodiscard]] static DecodedProgram decode(const ir::Module& m);

  [[nodiscard]] const ir::Module& module() const noexcept { return *mod_; }
  [[nodiscard]] const DecodedInstr* code() const noexcept {
    return code_.data();
  }
  [[nodiscard]] std::size_t code_size() const noexcept { return code_.size(); }
  [[nodiscard]] const Src* srcs() const noexcept { return srcs_.data(); }
  [[nodiscard]] const DecodedFunction& function(std::uint32_t f) const {
    return funcs_[f];
  }
  [[nodiscard]] std::size_t num_functions() const noexcept {
    return funcs_.size();
  }
  [[nodiscard]] std::uint32_t entry_pc() const noexcept {
    return funcs_[entry_].entry_pc;
  }
  [[nodiscard]] std::uint32_t entry_function() const noexcept { return entry_; }

 private:
  const ir::Module* mod_ = nullptr;
  std::vector<DecodedInstr> code_;
  std::vector<Src> srcs_;
  std::vector<DecodedFunction> funcs_;
  std::uint32_t entry_ = 0;
};

}  // namespace ft::vm
