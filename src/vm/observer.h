// Dynamic-instruction records and the observer hook.
//
// The VM invokes an ExecObserver after each retired instruction with a
// DynInstr record carrying everything LLVM-Tracer's trace format carries
// (instruction type, register names, operand values, §IV-A): static
// coordinates, operand/result locations and bit patterns, memory effective
// address and branch outcome. Tracers, region segmenters, ACL trackers and
// pattern counters are all observers; analyses can run streaming without
// materializing multi-gigabyte traces.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/instruction.h"
#include "vm/location.h"

namespace ft::vm {

inline constexpr unsigned kMaxTracedOps = 3;

struct DynInstr {
  std::uint64_t index = 0;  // dynamic instruction index, 0-based
  std::uint32_t func = 0;   // static coordinates
  std::uint32_t block = 0;
  std::uint32_t instr = 0;  // index within block
  ir::Opcode op = ir::Opcode::Br;
  ir::CmpPred pred = ir::CmpPred::None;
  ir::Type type = ir::Type::Void;
  std::uint8_t nops = 0;
  std::uint32_t line = 0;
  std::int64_t aux = 0;

  Location result_loc = kNoLoc;
  std::uint64_t result_bits = 0;

  std::array<Location, kMaxTracedOps> op_loc{};
  std::array<std::uint64_t, kMaxTracedOps> op_bits{};
  std::array<ir::Type, kMaxTracedOps> op_type{};

  std::uint64_t mem_addr = 0;  // effective address for load/store
  std::uint32_t mem_size = 0;
  bool branch_taken = false;  // for condbr
};

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  /// Called after every retired dynamic instruction (subject to enabled()).
  virtual void on_instruction(const DynInstr& d) = 0;
  /// Trace control: when false, the VM skips record construction and
  /// delivery for non-marker instructions. RegionEnter/RegionExit are
  /// always delivered so gating observers can toggle on region boundaries.
  [[nodiscard]] virtual bool enabled() const { return true; }
};

/// Region markers are always delivered (even through disabled observers) so
/// gating observers can toggle on region boundaries.
[[nodiscard]] inline bool is_region_marker(const DynInstr& d) noexcept {
  return ir::is_region_marker(d.op);
}

/// Observer pipeline with per-stage gating.
///
/// Each stage is an observer plus an optional per-record filter. A record is
/// delivered to a stage when the stage's own enabled() says so (region
/// markers bypass stage gating, mirroring the VM contract) and the filter —
/// if any — accepts it. The chain's enabled() is the OR over its stages, so
/// a fully gated pipeline keeps the VM on the fast path (no DynInstr
/// materialization outside marker instructions).
class ObserverChain final : public ExecObserver {
 public:
  /// Per-record predicate as a plain function pointer plus an opaque
  /// context — invoked once per delivered record, so the type-erased
  /// dispatch (and potential allocation) of std::function has no place
  /// here. Stateless filters (captureless lambdas) convert implicitly via
  /// the then() overload below; stateful ones pass their state as `ctx`.
  struct Filter {
    bool (*fn)(const DynInstr&, void*) = nullptr;
    void* ctx = nullptr;

    [[nodiscard]] explicit operator bool() const noexcept {
      return fn != nullptr;
    }
    [[nodiscard]] bool operator()(const DynInstr& d) const {
      return fn(d, ctx);
    }
  };

  /// Append a stage; records reach it subject to `o->enabled()`.
  ObserverChain& then(ExecObserver* o) { return then(o, Filter{}); }
  /// Append a stage with a stateless per-record filter (captureless
  /// lambdas decay to this). Filters see region markers too; stateful
  /// filters rely on that.
  ObserverChain& then(ExecObserver* o, bool (*fn)(const DynInstr&)) {
    return then(o, Filter{[](const DynInstr& d, void* ctx) {
                            return reinterpret_cast<bool (*)(const DynInstr&)>(
                                ctx)(d);
                          },
                          reinterpret_cast<void*>(fn)});
  }
  /// Append a stage with a contextful per-record filter.
  ObserverChain& then(ExecObserver* o, Filter filter) {
    stages_.push_back(Stage{o, filter});
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

  void on_instruction(const DynInstr& d) override {
    const bool marker = is_region_marker(d);
    for (auto& s : stages_) {
      if (!marker && !s.observer->enabled()) continue;
      if (s.filter && !s.filter(d)) continue;
      s.observer->on_instruction(d);
    }
  }

  /// True iff any stage wants records — the VM's fast-path gate.
  [[nodiscard]] bool enabled() const override {
    for (const auto& s : stages_) {
      if (s.observer->enabled()) return true;
    }
    return false;
  }

 private:
  struct Stage {
    ExecObserver* observer = nullptr;
    Filter filter;
  };
  std::vector<Stage> stages_;
};

/// Forwards records to a sink only inside one dynamic-instance window of a
/// region, markers of that window included ("selectively collect traces for
/// individual functions", §IV-A). enabled() tracks the window, so a chain
/// of gated sinks keeps the VM on the fast path outside the window.
class RegionWindowGate final : public ExecObserver {
 public:
  RegionWindowGate(ExecObserver* sink, std::uint32_t region_id,
                   std::uint32_t instance = 0)
      : sink_(sink), region_(region_id), instance_(instance) {}

  void on_instruction(const DynInstr& d) override {
    if (d.op == ir::Opcode::RegionEnter &&
        static_cast<std::uint32_t>(d.aux) == region_) {
      if (seen_++ == instance_) active_ = true;
      // Depth-count same-id re-entries so a region nested inside itself
      // does not close the window early (instances are numbered per
      // RegionEnter, matching trace::RegionSegmenter).
      if (active_) depth_++;
    }
    if (active_) sink_->on_instruction(d);
    if (d.op == ir::Opcode::RegionExit &&
        static_cast<std::uint32_t>(d.aux) == region_ && active_) {
      if (--depth_ == 0) active_ = false;
    }
  }

  [[nodiscard]] bool enabled() const override { return active_; }

 private:
  ExecObserver* sink_;
  std::uint32_t region_;
  std::uint32_t instance_;
  std::uint32_t seen_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Fans one VM execution out to several observers.
///
/// Deprecated: prefer ObserverChain, which adds per-stage gating and
/// filters. Kept for one release as the legacy fan-out primitive.
class MultiObserver final : public ExecObserver {
 public:
  void add(ExecObserver* o) { observers_.push_back(o); }
  void on_instruction(const DynInstr& d) override {
    const bool marker = is_region_marker(d);
    for (auto* o : observers_) {
      if (marker || o->enabled()) o->on_instruction(d);
    }
  }
  /// Enabled iff any child is — an always-true default here used to defeat
  /// the VM fast path even when every child was gated off.
  [[nodiscard]] bool enabled() const override {
    for (const auto* o : observers_) {
      if (o->enabled()) return true;
    }
    return false;
  }

 private:
  std::vector<ExecObserver*> observers_;
};

}  // namespace ft::vm
