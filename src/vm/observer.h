// Dynamic-instruction records and the observer hook.
//
// The VM invokes an ExecObserver after each retired instruction with a
// DynInstr record carrying everything LLVM-Tracer's trace format carries
// (instruction type, register names, operand values, §IV-A): static
// coordinates, operand/result locations and bit patterns, memory effective
// address and branch outcome. Tracers, region segmenters, ACL trackers and
// pattern counters are all observers; analyses can run streaming without
// materializing multi-gigabyte traces.
#pragma once

#include <array>
#include <cstdint>

#include "ir/instruction.h"
#include "vm/location.h"

namespace ft::vm {

inline constexpr unsigned kMaxTracedOps = 3;

struct DynInstr {
  std::uint64_t index = 0;  // dynamic instruction index, 0-based
  std::uint32_t func = 0;   // static coordinates
  std::uint32_t block = 0;
  std::uint32_t instr = 0;  // index within block
  ir::Opcode op = ir::Opcode::Br;
  ir::CmpPred pred = ir::CmpPred::None;
  ir::Type type = ir::Type::Void;
  std::uint8_t nops = 0;
  std::uint32_t line = 0;
  std::int64_t aux = 0;

  Location result_loc = kNoLoc;
  std::uint64_t result_bits = 0;

  std::array<Location, kMaxTracedOps> op_loc{};
  std::array<std::uint64_t, kMaxTracedOps> op_bits{};
  std::array<ir::Type, kMaxTracedOps> op_type{};

  std::uint64_t mem_addr = 0;  // effective address for load/store
  std::uint32_t mem_size = 0;
  bool branch_taken = false;  // for condbr
};

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  /// Called after every retired dynamic instruction (subject to enabled()).
  virtual void on_instruction(const DynInstr& d) = 0;
  /// Trace control: when false, the VM skips record construction and
  /// delivery for non-marker instructions. RegionEnter/RegionExit are
  /// always delivered so gating observers can toggle on region boundaries.
  [[nodiscard]] virtual bool enabled() const { return true; }
};

/// Fans one VM execution out to several observers.
class MultiObserver final : public ExecObserver {
 public:
  void add(ExecObserver* o) { observers_.push_back(o); }
  void on_instruction(const DynInstr& d) override {
    for (auto* o : observers_) o->on_instruction(d);
  }

 private:
  std::vector<ExecObserver*> observers_;
};

}  // namespace ft::vm
