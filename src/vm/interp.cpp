#include "vm/interp.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstring>
#include <limits>

#include "trace/column.h"
#include "util/bits.h"

namespace ft::vm {

using ir::CmpPred;
using ir::Opcode;
using ir::Operand;
using ir::OperandKind;
using ir::Type;
using util::bits_to_f32;
using util::bits_to_f64;
using util::f32_to_bits;
using util::f64_to_bits;

namespace {

// --- null-endpoint MiniMPI semantics -----------------------------------------
// A Vm with no MpiEndpoint behaves as a single-rank world (the contract in
// vm/mpi_endpoint.h, pinned by tests/mpi_test.cpp): rank 0, size 1, identity
// allreduce, no-op barrier. Point-to-point ops have no peer to pair with, so
// send drops its payload and recv yields 0.0 — a single-rank program that
// genuinely self-messages needs a real one-rank mpi::World. All three
// engines (legacy, decoded, decoded+traced) route through these helpers so
// the behavior is stated once instead of implied at every opcode site.

inline std::int64_t mpi_rank_of(const MpiEndpoint* ep) {
  return ep ? ep->rank() : 0;
}

inline std::int64_t mpi_size_of(const MpiEndpoint* ep) {
  return ep ? ep->size() : 1;
}

inline void mpi_send_on(MpiEndpoint* ep, std::int64_t dest, double value) {
  if (ep) ep->send(dest, value);
}

inline double mpi_recv_on(MpiEndpoint* ep, std::int64_t src) {
  return ep ? ep->recv(src) : 0.0;
}

inline double mpi_allreduce_on(MpiEndpoint* ep, double value,
                               ir::ReduceOp op) {
  return ep ? ep->allreduce(value, op) : value;
}

inline void mpi_barrier_on(MpiEndpoint* ep) {
  if (ep) ep->barrier();
}

/// Round `v` to `digits` significant decimal digits after the leading one,
/// exactly as the old snprintf("%.*e") / strtod round trip did in the C
/// locale — but locale-independent and allocation-free: std::to_chars and
/// std::from_chars are correctly rounded in both directions and ignore the
/// global locale. This sits on the retire path of every EmitTrunc.
double round_to_digits(double v, int digits) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::scientific, digits);
  // A digit count that overflows the buffer keeps more precision than the
  // value has anyway; fall back to the unrounded value.
  if (res.ec != std::errc{}) return v;
  double out = v;
  std::from_chars(buf, res.ptr, out);
  return out;
}

}  // namespace

double OutputValue::as_f64() const noexcept {
  switch (type) {
    case Type::F64: return bits_to_f64(bits);
    case Type::F32: return static_cast<double>(bits_to_f32(bits));
    default: return static_cast<double>(static_cast<std::int64_t>(bits));
  }
}

std::int64_t OutputValue::as_i64() const noexcept {
  if (is_float(type)) return static_cast<std::int64_t>(as_f64());
  return static_cast<std::int64_t>(bits);
}

void Vm::init_memory(const ir::Module& m) {
  mem_.assign(m.memory_size(), 0);
  if (opts_.track_writes && opts_.program) {
    const std::uint64_t pages =
        (mem_.size() + ((std::uint64_t{1} << kDirtyPageShift) - 1)) >>
        kDirtyPageShift;
    dirty_.assign((pages + 63) / 64, 0);
  }
  for (std::uint32_t g = 0; g < m.num_globals(); ++g) {
    const auto& gl = m.global(g);
    if (gl.init_bits.empty()) continue;
    const auto esz = store_size(gl.elem);
    for (std::size_t i = 0; i < gl.init_bits.size() && i < gl.count; ++i) {
      std::memcpy(&mem_[gl.addr + i * esz], &gl.init_bits[i], esz);
    }
  }
  sp_ = m.stack_base();
  region_counts_.assign(m.num_regions(), 0);
}

Vm::Vm(const ir::Module& m, VmOptions opts)
    : mod_(&m), prog_(opts.program), opts_(opts), randlc_(opts.rand_seed) {
  assert(m.laid_out() && "module must be laid out before execution");
  assert((!prog_ || &prog_->module() == &m) &&
         "VmOptions::program must be decoded from the module being run");
  assert((!opts_.column_sink || prog_) &&
         "VmOptions::column_sink requires the decoded engine");
  assert((!opts_.column_sink || (&opts_.column_sink->program() == prog_ &&
                                 opts_.column_sink->empty())) &&
         "column sink must be empty and built over the program being run");
  init_memory(m);

  if (prog_) {
    dframes_.reserve(opts_.max_call_depth);
    slots_.reserve(4096);
    const auto entry_fn = prog_->entry_function();
    const DecodedFunction& entry = prog_->function(entry_fn);
    DFrame main;
    main.func = entry_fn;
    main.activation = next_activation_++;
    main.pc = entry.entry_pc;
    main.reg_base = 0;
    main.arg_base = entry.num_regs;
    main.saved_sp = sp_;
    if (slots_.size() < entry.num_regs) slots_.resize(entry.num_regs);
    std::fill(slots_.begin(), slots_.begin() + entry.num_regs, 0);
    slot_top_ = entry.num_regs;
    dframes_.push_back(main);
  } else {
    Frame main;
    main.func = m.entry();
    main.activation = next_activation_++;
    main.regs.assign(m.function(m.entry()).num_regs, 0);
    main.saved_sp = sp_;
    frames_.push_back(std::move(main));
  }
}

Vm::Vm(const DecodedProgram& p, VmOptions opts)
    : Vm(p.module(), (opts.program = &p, opts)) {}

Vm::Vm(const DecodedProgram& p, const Snapshot& s, VmOptions opts)
    : mod_(&p.module()),
      prog_(&p),
      opts_((opts.program = &p, opts)),
      randlc_(opts.rand_seed) {
  assert(mod_->laid_out() && "module must be laid out before execution");
  assert(!opts_.observer && !opts_.column_sink &&
         "snapshot-constructed Vms run the untraced campaign path");
  dframes_.reserve(opts_.max_call_depth);
  restore(s);
}

Vm::OpVal Vm::eval(const Operand& o, const Frame& fr) const {
  switch (o.kind) {
    case OperandKind::Reg:
      return {fr.regs[o.id], reg_loc(fr.activation, o.id), o.type};
    case OperandKind::ImmI:
      return {canon_int(static_cast<std::uint64_t>(o.imm_i), o.type), kNoLoc,
              o.type};
    case OperandKind::ImmF:
      return {o.type == Type::F32
                  ? f32_to_bits(static_cast<float>(o.imm_f))
                  : f64_to_bits(o.imm_f),
              kNoLoc, o.type};
    case OperandKind::Arg:
      return {fr.arg_bits[o.id], fr.arg_locs[o.id], o.type};
    case OperandKind::Global:
      return {mod_->global(o.id).addr, kNoLoc, Type::Ptr};
    case OperandKind::Block:
    case OperandKind::None:
      break;
  }
  return {};
}

Vm::OpVal Vm::eval_src(const Src& s, const DFrame& fr) const {
  switch (s.kind) {
    case SrcKind::Reg:
      return {slots_[fr.reg_base + s.index], reg_loc(fr.activation, s.index),
              s.type};
    case SrcKind::Arg:
      return {slots_[fr.arg_base + s.index],
              arg_locs_[fr.arg_loc_base + s.index], s.type};
    case SrcKind::Const:
      return {s.bits, kNoLoc, s.type};
    case SrcKind::None:
      break;
  }
  return {};
}

bool Vm::mem_ok(std::uint64_t addr, std::uint32_t size) const {
  return addr >= ir::kGlobalBase && addr + size <= mem_.size() &&
         addr + size >= addr;
}

void Vm::set_trap(TrapKind t) noexcept {
  trap_ = t;
  status_ = Status::Trapped;
}

void Vm::maybe_flip_result(std::uint64_t& bits) {
  if (opts_.fault.kind == FaultPlan::Kind::ResultBit && !fault_fired_ &&
      n_retired_ == opts_.fault.dyn_index) {
    bits = util::flip_bit(bits, opts_.fault.bit);
    fault_fired_ = true;
  }
}

void Vm::apply_region_entry_fault(std::uint32_t rid) {
  const auto& plan = opts_.fault;
  if (plan.kind != FaultPlan::Kind::RegionInputMemoryBit || fault_fired_) {
    return;
  }
  if (rid != plan.region_id ||
      region_counts_[rid] != plan.region_instance) {
    return;
  }
  if (!mem_ok(plan.address, plan.width_bytes)) return;
  std::uint64_t word = read_word(plan.address, plan.width_bytes);
  word = util::flip_bit(word, plan.bit % (plan.width_bytes * 8));
  write_word(plan.address, plan.width_bytes, word);
  fault_fired_ = true;
}

std::uint64_t Vm::read_word(std::uint64_t addr, std::uint32_t size) const {
  assert(mem_ok(addr, size));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &mem_[addr], size);
  return bits;
}

void Vm::write_word(std::uint64_t addr, std::uint32_t size,
                    std::uint64_t bits) {
  assert(mem_ok(addr, size));
  std::memcpy(&mem_[addr], &bits, size);
  // dirty_ is non-empty exactly when write tracking is on; region-entry
  // faults route through here, so fault flips are tracked too.
  if (!dirty_.empty()) mark_dirty(addr, size);
}

std::uint32_t Vm::region_instances(std::uint32_t rid) const {
  return rid < region_counts_.size() ? region_counts_[rid] : 0;
}

bool Vm::next_is_region_marker() const {
  if (prog_) {
    return ir::is_region_marker(prog_->code()[dframes_.back().pc].op);
  }
  const Frame& fr = frames_.back();
  return ir::is_region_marker(
      mod_->function(fr.func).blocks[fr.block].instrs[fr.pc].op);
}

void Vm::push_frame(std::uint32_t func, const ir::Instruction& call_ins,
                    Frame& caller, DynInstr* out) {
  const auto& callee = mod_->function(func);
  Frame fr;
  fr.func = func;
  fr.activation = next_activation_++;
  fr.regs.assign(callee.num_regs, 0);
  fr.arg_bits.reserve(call_ins.ops.size());
  fr.arg_locs.reserve(call_ins.ops.size());
  for (std::size_t i = 0; i < call_ins.ops.size(); ++i) {
    const OpVal v = eval(call_ins.ops[i], caller);
    fr.arg_bits.push_back(v.bits);
    fr.arg_locs.push_back(v.loc);
    if (out && i < kMaxTracedOps) {
      out->op_loc[i] = v.loc;
      out->op_bits[i] = v.bits;
      out->op_type[i] = v.type;
    }
  }
  fr.saved_sp = sp_;
  fr.ret_reg = call_ins.result;
  frames_.push_back(std::move(fr));
}

void Vm::push_dframe(const DecodedInstr& call_ins, const DFrame& caller,
                     DynInstr* out) {
  const auto func = static_cast<std::uint32_t>(call_ins.aux);
  const DecodedFunction& callee = prog_->function(func);
  DFrame fr;
  fr.func = func;
  fr.activation = next_activation_++;
  fr.pc = callee.entry_pc;
  fr.reg_base = slot_top_;
  fr.arg_base = slot_top_ + callee.num_regs;
  fr.arg_loc_base = arg_loc_top_;
  fr.nargs = call_ins.src_count;
  fr.saved_sp = sp_;
  fr.ret_reg = call_ins.result;

  const std::uint32_t new_top = fr.arg_base + fr.nargs;
  if (slots_.size() < new_top) slots_.resize(new_top);
  if (arg_locs_.size() < arg_loc_top_ + fr.nargs) {
    arg_locs_.resize(arg_loc_top_ + fr.nargs);
  }
  std::fill(slots_.begin() + fr.reg_base, slots_.begin() + fr.arg_base, 0);

  const Src* const args = prog_->srcs() + call_ins.src_begin;
  for (std::uint32_t i = 0; i < fr.nargs; ++i) {
    const OpVal v = eval_src(args[i], caller);
    slots_[fr.arg_base + i] = v.bits;
    arg_locs_[fr.arg_loc_base + i] = v.loc;
    if (out && i < kMaxTracedOps) {
      out->op_loc[i] = v.loc;
      out->op_bits[i] = v.bits;
      out->op_type[i] = v.type;
    }
  }
  slot_top_ = new_top;
  arg_loc_top_ += fr.nargs;
  dframes_.push_back(fr);
}

// ---------------------------------------------------------------------------
// Decoded engine: dispatch over the flat pre-resolved instruction stream.
// Must stay semantically and record-by-record identical to step_legacy —
// tests/decode_test.cpp pins the equivalence across all ten workloads.
// ---------------------------------------------------------------------------

template <bool Traced>
Vm::Status Vm::step_decoded(DynInstr* out) {
  if (status_ != Status::Running) return status_;
  if (n_retired_ >= opts_.max_instructions) {
    set_trap(TrapKind::Hang);
    return status_;
  }

  DFrame& fr = dframes_.back();
  const DecodedInstr& ins = prog_->code()[fr.pc];

  if constexpr (Traced) {
    *out = DynInstr{};
    out->index = n_retired_;
    out->func = ins.func;
    out->block = ins.block;
    out->instr = ins.instr;
    out->op = ins.op;
    out->pred = ins.pred;
    out->type = ins.type;
    out->line = ins.line;
    out->aux = ins.aux;
    out->nops = ins.nops;
  } else {
    (void)out;
  }

  // Operands were pre-resolved at decode time; evaluating one is a slot
  // read (or nothing, for pre-folded constants). Block operands decode to
  // SrcKind::None and evaluate to the empty value, matching the legacy
  // engine's skip.
  const Src* const srcs = prog_->srcs() + ins.src_begin;
  OpVal a{}, b{}, c{};
  const std::size_t nsrc = ins.src_count;
  if (ins.op != Opcode::Call) {
    if (nsrc > 0) a = eval_src(srcs[0], fr);
    if (nsrc > 1) b = eval_src(srcs[1], fr);
    if (nsrc > 2) c = eval_src(srcs[2], fr);
    if constexpr (Traced) {
      const OpVal* vals[3] = {&a, &b, &c};
      for (std::size_t i = 0; i < std::min<std::size_t>(nsrc, 3); ++i) {
        out->op_loc[i] = vals[i]->loc;
        out->op_bits[i] = vals[i]->bits;
        out->op_type[i] = vals[i]->type;
      }
    }
  }

  std::uint64_t result = 0;
  bool has_res = ins.result != ir::kNoReg;
  Location result_location =
      has_res ? reg_loc(fr.activation, ins.result) : kNoLoc;
  bool advance_pc = true;

  const Type t = ins.type;
  const auto ia = static_cast<std::int64_t>(a.bits);
  const auto ib = static_cast<std::int64_t>(b.bits);

  switch (ins.op) {
    // --- integer binary -----------------------------------------------------
    case Opcode::Add:
      result = canon_int(a.bits + b.bits, t);
      break;
    case Opcode::Sub:
      result = canon_int(a.bits - b.bits, t);
      break;
    case Opcode::Mul:
      result = canon_int(a.bits * b.bits, t);
      break;
    case Opcode::SDiv:
    case Opcode::SRem: {
      if (ib == 0) {
        set_trap(TrapKind::DivByZero);
        return status_;
      }
      if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
        set_trap(TrapKind::IntOverflowDiv);
        return status_;
      }
      const std::int64_t r = ins.op == Opcode::SDiv ? ia / ib : ia % ib;
      result = canon_int(static_cast<std::uint64_t>(r), t);
      break;
    }
    case Opcode::And:
      result = canon_int(a.bits & b.bits, t);
      break;
    case Opcode::Or:
      result = canon_int(a.bits | b.bits, t);
      break;
    case Opcode::Xor:
      result = canon_int(a.bits ^ b.bits, t);
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      const unsigned width = bit_width(t);
      const std::uint64_t amt = b.bits;
      if (amt >= width) {
        set_trap(TrapKind::BadShift);
        return status_;
      }
      if (ins.op == Opcode::Shl) {
        result = canon_int(a.bits << amt, t);
      } else if (ins.op == Opcode::LShr) {
        const std::uint64_t ua = util::truncate_to(a.bits, width);
        result = canon_int(ua >> amt, t);
      } else {
        result = canon_int(static_cast<std::uint64_t>(ia >> amt), t);
      }
      break;
    }

    // --- floating binary ----------------------------------------------------
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits), y = bits_to_f32(b.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits), y = bits_to_f64(b.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- floating unary -----------------------------------------------------
    case Opcode::FNeg:
    case Opcode::FSqrt:
    case Opcode::FAbs:
    case Opcode::FFloor: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- comparisons --------------------------------------------------------
    case Opcode::ICmp: {
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = ia == ib; break;
        case CmpPred::Ne: r = ia != ib; break;
        case CmpPred::Lt: r = ia < ib; break;
        case CmpPred::Le: r = ia <= ib; break;
        case CmpPred::Gt: r = ia > ib; break;
        case CmpPred::Ge: r = ia >= ib; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::FCmp: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double y = b.type == Type::F32
                           ? static_cast<double>(bits_to_f32(b.bits))
                           : bits_to_f64(b.bits);
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = x == y; break;
        case CmpPred::Ne: r = x != y; break;
        case CmpPred::Lt: r = x < y; break;
        case CmpPred::Le: r = x <= y; break;
        case CmpPred::Gt: r = x > y; break;
        case CmpPred::Ge: r = x >= y; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::Select:
      result = (a.bits & 1) ? b.bits : c.bits;
      break;

    // --- casts ---------------------------------------------------------------
    case Opcode::Trunc:
      result = canon_int(a.bits, t);
      break;
    case Opcode::SExt:
      result = a.bits;  // canonical form is already sign-extended
      break;
    case Opcode::ZExt:
      result = util::truncate_to(a.bits, bit_width(a.type));
      break;
    case Opcode::FPTrunc:
      result = f32_to_bits(static_cast<float>(bits_to_f64(a.bits)));
      break;
    case Opcode::FPExt:
      result = f64_to_bits(static_cast<double>(bits_to_f32(a.bits)));
      break;
    case Opcode::FPToSI: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
        set_trap(TrapKind::FpDomain);
        return status_;
      }
      result = canon_int(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(x)),
                         t);
      break;
    }
    case Opcode::SIToFP: {
      const auto x = static_cast<double>(ia);
      result = t == Type::F32 ? f32_to_bits(static_cast<float>(x))
                              : f64_to_bits(x);
      break;
    }
    case Opcode::Bitcast:
      if (t == Type::I32) {
        result = canon_int(a.bits, t);  // keep I32 canonical (sign-extended)
      } else {
        result = bit_width(t) == 32 ? util::truncate_to(a.bits, 32) : a.bits;
      }
      break;

    // --- memory ---------------------------------------------------------------
    case Opcode::Alloca: {
      const auto size = static_cast<std::uint64_t>(ins.aux);
      const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
      if (aligned + size > mem_.size()) {
        set_trap(TrapKind::StackOverflow);
        return status_;
      }
      result = aligned;
      sp_ = aligned + size;
      break;
    }
    case Opcode::Load: {
      // Operand order in records: [0] = memory cell, [1] = pointer dep.
      const std::uint64_t addr = a.bits;
      const auto size = store_size(t);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = 0;
      std::memcpy(&bits, &mem_[addr], size);
      result = is_int(t) ? canon_int(bits, t) : bits;
      if constexpr (Traced) {
        out->mem_addr = addr;
        out->mem_size = size;
        out->nops = 2;
        out->op_loc[0] = mem_loc(addr);
        out->op_bits[0] = result;
        out->op_type[0] = t;
        out->op_loc[1] = a.loc;  // the pointer value's own location
        out->op_bits[1] = a.bits;
        out->op_type[1] = Type::Ptr;
      }
      break;
    }
    case Opcode::Store: {
      const std::uint64_t addr = b.bits;
      const auto size = store_size(a.type);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = a.bits;
      maybe_flip_result(bits);
      std::memcpy(&mem_[addr], &bits, size);
      if (!dirty_.empty()) mark_dirty(addr, size);
      has_res = false;
      result_location = mem_loc(addr);
      result = bits;
      if constexpr (Traced) {
        out->mem_addr = addr;
        out->mem_size = size;
      }
      break;
    }
    case Opcode::Gep: {
      // Unsigned multiply: a fault-corrupted index can overflow, and two's
      // complement wraparound (not signed-overflow UB) is the semantic all
      // three engine copies share.
      const std::uint64_t base = a.bits;
      result = base + b.bits * static_cast<std::uint64_t>(ins.aux);
      break;
    }

    // --- control -----------------------------------------------------------------
    case Opcode::Br:
      fr.pc = ins.target_taken;
      advance_pc = false;
      break;
    case Opcode::CondBr: {
      const bool taken = (a.bits & 1) != 0;
      fr.pc = taken ? ins.target_taken : ins.target_fall;
      advance_pc = false;
      if constexpr (Traced) out->branch_taken = taken;
      break;
    }
    case Opcode::Ret: {
      const bool has_val = nsrc > 0;
      const std::uint64_t ret_bits = has_val ? a.bits : 0;
      if (dframes_.size() == 1) {
        status_ = Status::Finished;
        advance_pc = false;
      } else {
        sp_ = fr.saved_sp;
        const std::uint32_t dest_reg = fr.ret_reg;
        slot_top_ = fr.reg_base;
        arg_loc_top_ = fr.arg_loc_base;
        dframes_.pop_back();
        DFrame& caller = dframes_.back();
        if (dest_reg != ir::kNoReg) {
          std::uint64_t bits = ret_bits;
          maybe_flip_result(bits);
          slots_[caller.reg_base + dest_reg] = bits;
          result_location = reg_loc(caller.activation, dest_reg);
          result = bits;
          if constexpr (Traced) {
            out->result_loc = result_location;
            out->result_bits = bits;
          }
        }
        advance_pc = false;  // caller pc was advanced at call time
      }
      has_res = false;
      break;
    }
    case Opcode::Call: {
      if (dframes_.size() >= opts_.max_call_depth) {
        set_trap(TrapKind::CallDepth);
        return status_;
      }
      fr.pc++;  // resume point after return
      advance_pc = false;
      // NB: push_dframe may reallocate dframes_, invalidating `fr`; it
      // copies what it needs from the caller frame before pushing.
      push_dframe(ins, fr, Traced ? out : nullptr);
      has_res = false;  // result is committed by Ret
      break;
    }

    // --- intrinsics -----------------------------------------------------------------
    case Opcode::Rand:
      result = f64_to_bits(randlc_.next());
      break;
    case Opcode::Emit: {
      outputs_.push_back({a.bits, a.type});
      // Expose the emitted bits for differential comparison (no location).
      if constexpr (Traced) out->result_bits = a.bits;
      break;
    }
    case Opcode::EmitTrunc: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double r = round_to_digits(x, static_cast<int>(ins.aux));
      outputs_.push_back({f64_to_bits(r), Type::F64});
      // The *rounded* value is what the user sees; comparing it is what
      // makes Pattern 5 (data truncation) observable in the diff.
      if constexpr (Traced) out->result_bits = f64_to_bits(r);
      break;
    }
    case Opcode::RegionEnter: {
      const auto rid = static_cast<std::uint32_t>(ins.aux);
      apply_region_entry_fault(rid);
      region_counts_[rid]++;
      break;
    }
    case Opcode::RegionExit:
      break;

    // --- MiniMPI (null endpoint = single-rank world; see helpers above) -------
    case Opcode::MpiRank:
      result = static_cast<std::uint64_t>(mpi_rank_of(opts_.mpi));
      break;
    case Opcode::MpiSize:
      result = static_cast<std::uint64_t>(mpi_size_of(opts_.mpi));
      break;
    case Opcode::MpiSend:
      mpi_send_on(opts_.mpi, static_cast<std::int64_t>(a.bits),
                  bits_to_f64(b.bits));
      break;
    case Opcode::MpiRecv:
      result = f64_to_bits(
          mpi_recv_on(opts_.mpi, static_cast<std::int64_t>(a.bits)));
      break;
    case Opcode::MpiAllreduce:
      result = f64_to_bits(mpi_allreduce_on(
          opts_.mpi, bits_to_f64(a.bits),
          static_cast<ir::ReduceOp>(ins.aux)));
      break;
    case Opcode::MpiBarrier:
      mpi_barrier_on(opts_.mpi);
      break;
  }

  if (has_res) {
    maybe_flip_result(result);
    // `fr` may dangle only after Call/Ret, which set has_res = false.
    slots_[fr.reg_base + ins.result] = result;
  }

  if constexpr (Traced) {
    if (has_res || ins.op == Opcode::Store) {
      out->result_loc = result_location;
      out->result_bits = result;
    }
  } else {
    (void)result_location;
  }

  if (advance_pc) fr.pc++;
  n_retired_++;
  return status_;
}

// ---------------------------------------------------------------------------
// Legacy engine: walks the ir::Instruction representation directly. The
// reference implementation and the decoded engine's A/B baseline.
// ---------------------------------------------------------------------------

Vm::Status Vm::step_legacy(DynInstr* out) {
  if (status_ != Status::Running) return status_;
  if (n_retired_ >= opts_.max_instructions) {
    set_trap(TrapKind::Hang);
    return status_;
  }

  Frame& fr = frames_.back();
  const auto& fn = mod_->function(fr.func);
  const auto& ins = fn.blocks[fr.block].instrs[fr.pc];

  if (out) {
    *out = DynInstr{};
    out->index = n_retired_;
    out->func = fr.func;
    out->block = fr.block;
    out->instr = fr.pc;
    out->op = ins.op;
    out->pred = ins.pred;
    out->type = ins.type;
    out->line = ins.line;
    out->aux = ins.aux;
    out->nops = static_cast<std::uint8_t>(
        std::min<std::size_t>(ins.ops.size(), kMaxTracedOps));
  }

  // Evaluate (up to 3) operands once; ops beyond 3 only occur for Call,
  // which re-evaluates its own argument list in push_frame.
  OpVal a{}, b{}, c{};
  const std::size_t nops = ins.ops.size();
  if (ins.op != Opcode::Call) {
    if (nops > 0 && ins.ops[0].kind != OperandKind::Block) {
      a = eval(ins.ops[0], fr);
    }
    if (nops > 1 && ins.ops[1].kind != OperandKind::Block) {
      b = eval(ins.ops[1], fr);
    }
    if (nops > 2 && ins.ops[2].kind != OperandKind::Block) {
      c = eval(ins.ops[2], fr);
    }
    if (out) {
      const OpVal* vals[3] = {&a, &b, &c};
      for (std::size_t i = 0; i < std::min<std::size_t>(nops, 3); ++i) {
        if (ins.ops[i].kind == OperandKind::Block) continue;
        out->op_loc[i] = vals[i]->loc;
        out->op_bits[i] = vals[i]->bits;
        out->op_type[i] = vals[i]->type;
      }
    }
  }

  std::uint64_t result = 0;
  bool has_res = ins.defines_register();
  Location result_location =
      has_res ? reg_loc(fr.activation, ins.result) : kNoLoc;
  bool advance_pc = true;

  const Type t = ins.type;
  const auto ia = static_cast<std::int64_t>(a.bits);
  const auto ib = static_cast<std::int64_t>(b.bits);

  switch (ins.op) {
    // --- integer binary -----------------------------------------------------
    case Opcode::Add:
      result = canon_int(a.bits + b.bits, t);
      break;
    case Opcode::Sub:
      result = canon_int(a.bits - b.bits, t);
      break;
    case Opcode::Mul:
      result = canon_int(a.bits * b.bits, t);
      break;
    case Opcode::SDiv:
    case Opcode::SRem: {
      if (ib == 0) {
        set_trap(TrapKind::DivByZero);
        return status_;
      }
      if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
        set_trap(TrapKind::IntOverflowDiv);
        return status_;
      }
      const std::int64_t r = ins.op == Opcode::SDiv ? ia / ib : ia % ib;
      result = canon_int(static_cast<std::uint64_t>(r), t);
      break;
    }
    case Opcode::And:
      result = canon_int(a.bits & b.bits, t);
      break;
    case Opcode::Or:
      result = canon_int(a.bits | b.bits, t);
      break;
    case Opcode::Xor:
      result = canon_int(a.bits ^ b.bits, t);
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      const unsigned width = bit_width(t);
      const std::uint64_t amt = b.bits;
      if (amt >= width) {
        set_trap(TrapKind::BadShift);
        return status_;
      }
      if (ins.op == Opcode::Shl) {
        result = canon_int(a.bits << amt, t);
      } else if (ins.op == Opcode::LShr) {
        const std::uint64_t ua = util::truncate_to(a.bits, width);
        result = canon_int(ua >> amt, t);
      } else {
        result = canon_int(static_cast<std::uint64_t>(ia >> amt), t);
      }
      break;
    }

    // --- floating binary ----------------------------------------------------
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits), y = bits_to_f32(b.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits), y = bits_to_f64(b.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- floating unary -----------------------------------------------------
    case Opcode::FNeg:
    case Opcode::FSqrt:
    case Opcode::FAbs:
    case Opcode::FFloor: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- comparisons --------------------------------------------------------
    case Opcode::ICmp: {
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = ia == ib; break;
        case CmpPred::Ne: r = ia != ib; break;
        case CmpPred::Lt: r = ia < ib; break;
        case CmpPred::Le: r = ia <= ib; break;
        case CmpPred::Gt: r = ia > ib; break;
        case CmpPred::Ge: r = ia >= ib; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::FCmp: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double y = b.type == Type::F32
                           ? static_cast<double>(bits_to_f32(b.bits))
                           : bits_to_f64(b.bits);
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = x == y; break;
        case CmpPred::Ne: r = x != y; break;
        case CmpPred::Lt: r = x < y; break;
        case CmpPred::Le: r = x <= y; break;
        case CmpPred::Gt: r = x > y; break;
        case CmpPred::Ge: r = x >= y; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::Select:
      result = (a.bits & 1) ? b.bits : c.bits;
      break;

    // --- casts ---------------------------------------------------------------
    case Opcode::Trunc:
      result = canon_int(a.bits, t);
      break;
    case Opcode::SExt:
      result = a.bits;  // canonical form is already sign-extended
      break;
    case Opcode::ZExt:
      result = util::truncate_to(a.bits, bit_width(a.type));
      break;
    case Opcode::FPTrunc:
      result = f32_to_bits(static_cast<float>(bits_to_f64(a.bits)));
      break;
    case Opcode::FPExt:
      result = f64_to_bits(static_cast<double>(bits_to_f32(a.bits)));
      break;
    case Opcode::FPToSI: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
        set_trap(TrapKind::FpDomain);
        return status_;
      }
      result = canon_int(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(x)),
                         t);
      break;
    }
    case Opcode::SIToFP: {
      const auto x = static_cast<double>(ia);
      result = t == Type::F32 ? f32_to_bits(static_cast<float>(x))
                              : f64_to_bits(x);
      break;
    }
    case Opcode::Bitcast:
      if (t == Type::I32) {
        result = canon_int(a.bits, t);  // keep I32 canonical (sign-extended)
      } else {
        result = bit_width(t) == 32 ? util::truncate_to(a.bits, 32) : a.bits;
      }
      break;

    // --- memory ---------------------------------------------------------------
    case Opcode::Alloca: {
      const auto size = static_cast<std::uint64_t>(ins.aux);
      const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
      if (aligned + size > mem_.size()) {
        set_trap(TrapKind::StackOverflow);
        return status_;
      }
      result = aligned;
      sp_ = aligned + size;
      break;
    }
    case Opcode::Load: {
      // Operand order in records: [0] = memory cell, [1] = pointer dep.
      const std::uint64_t addr = a.bits;
      const auto size = store_size(t);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = 0;
      std::memcpy(&bits, &mem_[addr], size);
      result = is_int(t) ? canon_int(bits, t) : bits;
      if (out) {
        out->mem_addr = addr;
        out->mem_size = size;
        out->nops = 2;
        out->op_loc[0] = mem_loc(addr);
        out->op_bits[0] = result;
        out->op_type[0] = t;
        out->op_loc[1] = a.loc;  // the pointer value's own location
        out->op_bits[1] = a.bits;
        out->op_type[1] = Type::Ptr;
      }
      break;
    }
    case Opcode::Store: {
      const std::uint64_t addr = b.bits;
      const auto size = store_size(a.type);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = a.bits;
      maybe_flip_result(bits);
      std::memcpy(&mem_[addr], &bits, size);
      has_res = false;
      result_location = mem_loc(addr);
      result = bits;
      if (out) {
        out->mem_addr = addr;
        out->mem_size = size;
      }
      break;
    }
    case Opcode::Gep: {
      // Unsigned multiply: a fault-corrupted index can overflow, and two's
      // complement wraparound (not signed-overflow UB) is the semantic all
      // three engine copies share.
      const std::uint64_t base = a.bits;
      result = base + b.bits * static_cast<std::uint64_t>(ins.aux);
      break;
    }

    // --- control -----------------------------------------------------------------
    case Opcode::Br:
      fr.block = ins.ops[0].id;
      fr.pc = 0;
      advance_pc = false;
      break;
    case Opcode::CondBr: {
      const bool taken = (a.bits & 1) != 0;
      fr.block = taken ? ins.ops[1].id : ins.ops[2].id;
      fr.pc = 0;
      advance_pc = false;
      if (out) out->branch_taken = taken;
      break;
    }
    case Opcode::Ret: {
      const bool has_val = !ins.ops.empty();
      const std::uint64_t ret_bits = has_val ? a.bits : 0;
      if (frames_.size() == 1) {
        status_ = Status::Finished;
        advance_pc = false;
      } else {
        sp_ = fr.saved_sp;
        const std::uint32_t dest_reg = fr.ret_reg;
        frames_.pop_back();
        Frame& caller = frames_.back();
        if (dest_reg != ir::kNoReg) {
          std::uint64_t bits = ret_bits;
          maybe_flip_result(bits);
          caller.regs[dest_reg] = bits;
          result_location = reg_loc(caller.activation, dest_reg);
          result = bits;
          if (out) {
            out->result_loc = result_location;
            out->result_bits = bits;
          }
        }
        advance_pc = false;  // caller pc was advanced at call time
      }
      has_res = false;
      break;
    }
    case Opcode::Call: {
      if (frames_.size() >= opts_.max_call_depth) {
        set_trap(TrapKind::CallDepth);
        return status_;
      }
      fr.pc++;  // resume point after return
      advance_pc = false;
      // NB: push_frame may reallocate frames_, invalidating `fr`; it takes
      // the caller by reference parameter to do its work first.
      push_frame(static_cast<std::uint32_t>(ins.aux), ins, fr, out);
      has_res = false;  // result is committed by Ret
      break;
    }

    // --- intrinsics -----------------------------------------------------------------
    case Opcode::Rand:
      result = f64_to_bits(randlc_.next());
      break;
    case Opcode::Emit: {
      outputs_.push_back({a.bits, a.type});
      // Expose the emitted bits for differential comparison (no location).
      if (out) out->result_bits = a.bits;
      break;
    }
    case Opcode::EmitTrunc: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double r = round_to_digits(x, static_cast<int>(ins.aux));
      outputs_.push_back({f64_to_bits(r), Type::F64});
      // The *rounded* value is what the user sees; comparing it is what
      // makes Pattern 5 (data truncation) observable in the diff.
      if (out) out->result_bits = f64_to_bits(r);
      break;
    }
    case Opcode::RegionEnter: {
      const auto rid = static_cast<std::uint32_t>(ins.aux);
      apply_region_entry_fault(rid);
      region_counts_[rid]++;
      break;
    }
    case Opcode::RegionExit:
      break;

    // --- MiniMPI (null endpoint = single-rank world; see helpers above) -------
    case Opcode::MpiRank:
      result = static_cast<std::uint64_t>(mpi_rank_of(opts_.mpi));
      break;
    case Opcode::MpiSize:
      result = static_cast<std::uint64_t>(mpi_size_of(opts_.mpi));
      break;
    case Opcode::MpiSend:
      mpi_send_on(opts_.mpi, static_cast<std::int64_t>(a.bits),
                  bits_to_f64(b.bits));
      break;
    case Opcode::MpiRecv:
      result = f64_to_bits(
          mpi_recv_on(opts_.mpi, static_cast<std::int64_t>(a.bits)));
      break;
    case Opcode::MpiAllreduce:
      result = f64_to_bits(mpi_allreduce_on(
          opts_.mpi, bits_to_f64(a.bits),
          static_cast<ir::ReduceOp>(ins.aux)));
      break;
    case Opcode::MpiBarrier:
      mpi_barrier_on(opts_.mpi);
      break;
  }

  if (has_res) {
    maybe_flip_result(result);
    // `fr` may dangle only after Call/Ret, which set has_res = false.
    fr.regs[ins.result] = result;
  }

  if (out) {
    if (has_res || ins.op == Opcode::Store) {
      out->result_loc = result_location;
      out->result_bits = result;
    }
  }

  if (advance_pc) fr.pc++;
  n_retired_++;
  return status_;
}

// ---------------------------------------------------------------------------
// Decoded hot loop: the run-to-completion path every campaign trial and —
// since the columnar-trace refactor — every full traced run takes. Machine
// state (retired count, current frame, code/operand base pointers) lives in
// locals; dispatch is computed goto where the toolchain supports
// labels-as-values (each opcode body ends in its own indirect jump, so the
// branch predictor learns per-opcode successor patterns), with a
// dense-opcode switch fallback elsewhere.
//
// Two instantiations:
//   * Traced == false — the no-observer campaign path (nothing recorded);
//   * Traced == true  — direct emission into VmOptions::column_sink: each
//     fetched instruction opens a columnar record (pc, activation, packed
//     operand bits), results land via set_result at commit time, and a
//     record whose instruction traps mid-flight is rolled back at `done`.
//     No DynInstr is materialized and no virtual observer dispatch runs.
//
// Semantics must stay identical to step_decoded — tests/decode_test.cpp
// pins the untraced equivalence against the legacy engine for all ten
// workloads, and tests/column_trace_test.cpp pins the emitted columnar
// records against the observer-collected DynInstr stream.
// ---------------------------------------------------------------------------

#if !defined(FT_VM_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define FT_VM_COMPUTED_GOTO 1
#else
#define FT_VM_COMPUTED_GOTO 0
#endif

template <bool Traced>
void Vm::run_decoded_hot() {
  if (status_ != Status::Running) return;

  const DecodedInstr* const code = prog_->code();
  const Src* const srcs_all = prog_->srcs();
  const std::uint64_t max_instr = opts_.max_instructions;
  // One compare serves both the hang budget and run_until()'s pause mark;
  // which of the two was hit is decided once, at `limit_reached`.
  const std::uint64_t stop_limit = std::min(max_instr, stop_at_);
  const bool fault_rb = opts_.fault.kind == FaultPlan::Kind::ResultBit;
  const bool track_writes = !dirty_.empty();
  std::uint64_t retired = n_retired_;
  DFrame* fr = &dframes_.back();
  const DecodedInstr* ins = nullptr;
  const Src* srcs = nullptr;
  trace::ColumnTrace* const sink = opts_.column_sink;
  (void)sink;  // only the Traced instantiation reads it
  // Retired count of the sink's row 0: zero on a fresh run, the resume
  // point when a run_until()-paused traced machine continues.
  std::uint64_t trace_base = 0;
  if constexpr (Traced) trace_base = retired - sink->size();
  (void)trace_base;

  // Operand value (bits only — locations are derived or escaped at emit
  // time). Const and None read the pre-computed bits; None carries 0,
  // matching the legacy engine's empty evaluation of absent operands.
  const auto val = [&](const Src& s) -> std::uint64_t {
    switch (s.kind) {
      case SrcKind::Reg: return slots_[fr->reg_base + s.index];
      case SrcKind::Arg: return slots_[fr->arg_base + s.index];
      default: return s.bits;
    }
  };
  // Fault application at commit time; `retired` is this instruction's
  // dynamic index (pre-increment), exactly as maybe_flip_result sees it.
  const auto flip = [&](std::uint64_t& bits) {
    if (fault_rb && !fault_fired_ && retired == opts_.fault.dyn_index) {
      bits = util::flip_bit(bits, opts_.fault.bit);
      fault_fired_ = true;
    }
  };
  // Commit a register-defining result (every defining opcode flips here,
  // mirroring the has_res path of the stepping engines). Traced: the
  // committed bits are the record's result column.
  const auto commit = [&](std::uint64_t bits) {
    flip(bits);
    slots_[fr->reg_base + ins->result] = bits;
    if constexpr (Traced) sink->set_result(bits);
  };
  // Open the columnar record of the fetched instruction: pc + activation
  // fixed columns, operand values into the packed pool, caller-provided
  // Arg locations into the escape list. Runs before the handler, so
  // operand values are read pre-commit (a = add a, b records the old a).
  const auto emit_record = [&] {
    if constexpr (Traced) {
      sink->begin_record(fr->pc, fr->activation);
      const auto nrec = std::min<unsigned>(ins->src_count, kMaxTracedOps);
      for (unsigned i = 0; i < nrec; ++i) {
        const Src& s = srcs[i];
        if (s.kind == SrcKind::None) continue;
        sink->push_op(val(s));
        if (s.kind == SrcKind::Arg) {
          sink->push_op_loc(static_cast<std::uint8_t>(i),
                            arg_locs_[fr->arg_loc_base + s.index]);
        }
      }
    }
  };

  static_assert(static_cast<int>(Opcode::MpiBarrier) == 48,
                "opcode set changed: update the hot-loop dispatch table");

#if FT_VM_COMPUTED_GOTO
  static const void* const kOpTable[] = {
      &&op_Add, &&op_Sub, &&op_Mul, &&op_SDiv, &&op_SRem,
      &&op_And, &&op_Or, &&op_Xor, &&op_Shl, &&op_LShr, &&op_AShr,
      &&op_FAdd, &&op_FSub, &&op_FMul, &&op_FDiv,
      &&op_FNeg, &&op_FSqrt, &&op_FAbs, &&op_FFloor,
      &&op_ICmp, &&op_FCmp, &&op_Select,
      &&op_Trunc, &&op_SExt, &&op_ZExt, &&op_FPTrunc, &&op_FPExt,
      &&op_FPToSI, &&op_SIToFP, &&op_Bitcast,
      &&op_Alloca, &&op_Load, &&op_Store, &&op_Gep,
      &&op_Br, &&op_CondBr, &&op_Ret, &&op_Call,
      &&op_Rand, &&op_Emit, &&op_EmitTrunc, &&op_RegionEnter, &&op_RegionExit,
      &&op_MpiRank, &&op_MpiSize, &&op_MpiSend, &&op_MpiRecv,
      &&op_MpiAllreduce, &&op_MpiBarrier,
  };
#define FT_OP(name) op_##name
#define FT_NEXT()                                            \
  do {                                                       \
    if (++retired >= stop_limit) goto limit_reached;         \
    ins = &code[fr->pc];                                     \
    srcs = srcs_all + ins->src_begin;                        \
    emit_record();                                           \
    goto* kOpTable[static_cast<std::uint8_t>(ins->op)];      \
  } while (0)

  if (retired >= stop_limit) goto limit_reached;
  ins = &code[fr->pc];
  srcs = srcs_all + ins->src_begin;
  emit_record();
  goto* kOpTable[static_cast<std::uint8_t>(ins->op)];
#else
#define FT_OP(name) case Opcode::name
#define FT_NEXT()                                            \
  {                                                          \
    ++retired;                                               \
    break;                                                   \
  }

  for (;;) {
    if (retired >= stop_limit) goto limit_reached;
    ins = &code[fr->pc];
    srcs = srcs_all + ins->src_begin;
    emit_record();
    switch (ins->op) {
#endif

  FT_OP(Add) : {
    commit(canon_int(val(srcs[0]) + val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Sub) : {
    commit(canon_int(val(srcs[0]) - val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Mul) : {
    commit(canon_int(val(srcs[0]) * val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SDiv) : FT_OP(SRem) : {
    const auto ia = static_cast<std::int64_t>(val(srcs[0]));
    const auto ib = static_cast<std::int64_t>(val(srcs[1]));
    if (ib == 0) {
      set_trap(TrapKind::DivByZero);
      goto done;
    }
    if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
      set_trap(TrapKind::IntOverflowDiv);
      goto done;
    }
    const std::int64_t r = ins->op == Opcode::SDiv ? ia / ib : ia % ib;
    commit(canon_int(static_cast<std::uint64_t>(r), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(And) : {
    commit(canon_int(val(srcs[0]) & val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Or) : {
    commit(canon_int(val(srcs[0]) | val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Xor) : {
    commit(canon_int(val(srcs[0]) ^ val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Shl) : FT_OP(LShr) : FT_OP(AShr) : {
    const unsigned width = bit_width(ins->type);
    const std::uint64_t x = val(srcs[0]);
    const std::uint64_t amt = val(srcs[1]);
    if (amt >= width) {
      set_trap(TrapKind::BadShift);
      goto done;
    }
    std::uint64_t r;
    if (ins->op == Opcode::Shl) {
      r = canon_int(x << amt, ins->type);
    } else if (ins->op == Opcode::LShr) {
      r = canon_int(util::truncate_to(x, width) >> amt, ins->type);
    } else {
      r = canon_int(static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(x) >> amt),
                    ins->type);
    }
    commit(r);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FAdd) : FT_OP(FSub) : FT_OP(FMul) : FT_OP(FDiv) : {
    const std::uint64_t xb = val(srcs[0]), yb = val(srcs[1]);
    std::uint64_t rb;
    if (ins->type == Type::F32) {
      const float x = bits_to_f32(xb), y = bits_to_f32(yb);
      float r = 0;
      switch (ins->op) {
        case Opcode::FAdd: r = x + y; break;
        case Opcode::FSub: r = x - y; break;
        case Opcode::FMul: r = x * y; break;
        default: r = x / y; break;
      }
      rb = f32_to_bits(r);
    } else {
      const double x = bits_to_f64(xb), y = bits_to_f64(yb);
      double r = 0;
      switch (ins->op) {
        case Opcode::FAdd: r = x + y; break;
        case Opcode::FSub: r = x - y; break;
        case Opcode::FMul: r = x * y; break;
        default: r = x / y; break;
      }
      rb = f64_to_bits(r);
    }
    commit(rb);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FNeg) : FT_OP(FSqrt) : FT_OP(FAbs) : FT_OP(FFloor) : {
    const std::uint64_t xb = val(srcs[0]);
    std::uint64_t rb;
    if (ins->type == Type::F32) {
      const float x = bits_to_f32(xb);
      float r = 0;
      switch (ins->op) {
        case Opcode::FNeg: r = -x; break;
        case Opcode::FSqrt: r = std::sqrt(x); break;
        case Opcode::FAbs: r = std::fabs(x); break;
        default: r = std::floor(x); break;
      }
      rb = f32_to_bits(r);
    } else {
      const double x = bits_to_f64(xb);
      double r = 0;
      switch (ins->op) {
        case Opcode::FNeg: r = -x; break;
        case Opcode::FSqrt: r = std::sqrt(x); break;
        case Opcode::FAbs: r = std::fabs(x); break;
        default: r = std::floor(x); break;
      }
      rb = f64_to_bits(r);
    }
    commit(rb);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(ICmp) : {
    const auto ia = static_cast<std::int64_t>(val(srcs[0]));
    const auto ib = static_cast<std::int64_t>(val(srcs[1]));
    bool r = false;
    switch (ins->pred) {
      case CmpPred::Eq: r = ia == ib; break;
      case CmpPred::Ne: r = ia != ib; break;
      case CmpPred::Lt: r = ia < ib; break;
      case CmpPred::Le: r = ia <= ib; break;
      case CmpPred::Gt: r = ia > ib; break;
      case CmpPred::Ge: r = ia >= ib; break;
      case CmpPred::None: break;
    }
    commit(r ? 1 : 0);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FCmp) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    const double y = srcs[1].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[1])))
                         : bits_to_f64(val(srcs[1]));
    bool r = false;
    switch (ins->pred) {
      case CmpPred::Eq: r = x == y; break;
      case CmpPred::Ne: r = x != y; break;
      case CmpPred::Lt: r = x < y; break;
      case CmpPred::Le: r = x <= y; break;
      case CmpPred::Gt: r = x > y; break;
      case CmpPred::Ge: r = x >= y; break;
      case CmpPred::None: break;
    }
    commit(r ? 1 : 0);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Select) : {
    commit((val(srcs[0]) & 1) ? val(srcs[1]) : val(srcs[2]));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Trunc) : {
    commit(canon_int(val(srcs[0]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SExt) : {
    commit(val(srcs[0]));  // canonical form is already sign-extended
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(ZExt) : {
    commit(util::truncate_to(val(srcs[0]), bit_width(srcs[0].type)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPTrunc) : {
    commit(f32_to_bits(static_cast<float>(bits_to_f64(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPExt) : {
    commit(f64_to_bits(static_cast<double>(bits_to_f32(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPToSI) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
      set_trap(TrapKind::FpDomain);
      goto done;
    }
    commit(canon_int(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(x)), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SIToFP) : {
    const auto x =
        static_cast<double>(static_cast<std::int64_t>(val(srcs[0])));
    commit(ins->type == Type::F32 ? f32_to_bits(static_cast<float>(x))
                                  : f64_to_bits(x));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Bitcast) : {
    const std::uint64_t x = val(srcs[0]);
    std::uint64_t r;
    if (ins->type == Type::I32) {
      r = canon_int(x, ins->type);  // keep I32 canonical (sign-extended)
    } else {
      r = bit_width(ins->type) == 32 ? util::truncate_to(x, 32) : x;
    }
    commit(r);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Alloca) : {
    const auto size = static_cast<std::uint64_t>(ins->aux);
    const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
    if (aligned + size > mem_.size()) {
      set_trap(TrapKind::StackOverflow);
      goto done;
    }
    sp_ = aligned + size;
    commit(aligned);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Load) : {
    const std::uint64_t addr = val(srcs[0]);
    const auto size = store_size(ins->type);
    if (!mem_ok(addr, size)) {
      set_trap(TrapKind::OutOfBounds);
      goto done;
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, &mem_[addr], size);
    const std::uint64_t loaded =
        is_int(ins->type) ? canon_int(bits, ins->type) : bits;
    commit(loaded);
    if constexpr (Traced) {
      // Rare escape: a result-bit fault on this very load makes the
      // recorded memory-cell operand (pre-flip) differ from the result.
      if (slots_[fr->reg_base + ins->result] != loaded) {
        sink->set_load_value(loaded);
      }
    }
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Store) : {
    const std::uint64_t addr = val(srcs[1]);
    const auto size = store_size(srcs[0].type);
    if (!mem_ok(addr, size)) {
      set_trap(TrapKind::OutOfBounds);
      goto done;
    }
    std::uint64_t bits = val(srcs[0]);
    flip(bits);
    std::memcpy(&mem_[addr], &bits, size);
    if (track_writes) mark_dirty(addr, size);
    if constexpr (Traced) sink->set_result(bits);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Gep) : {
    // Unsigned multiply — see the Gep note in the stepping engines.
    const std::uint64_t base = val(srcs[0]);
    commit(base + val(srcs[1]) * static_cast<std::uint64_t>(ins->aux));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Br) : {
    fr->pc = ins->target_taken;
    FT_NEXT();
  }
  FT_OP(CondBr) : {
    fr->pc = (val(srcs[0]) & 1) != 0 ? ins->target_taken : ins->target_fall;
    FT_NEXT();
  }
  FT_OP(Ret) : {
    const std::uint64_t ret_bits = ins->src_count > 0 ? val(srcs[0]) : 0;
    if (dframes_.size() == 1) {
      status_ = Status::Finished;
      ++retired;
      goto done;
    }
    sp_ = fr->saved_sp;
    const std::uint32_t dest_reg = fr->ret_reg;
    slot_top_ = fr->reg_base;
    arg_loc_top_ = fr->arg_loc_base;
    dframes_.pop_back();
    fr = &dframes_.back();
    if (dest_reg != ir::kNoReg) {
      std::uint64_t bits = ret_bits;
      flip(bits);
      slots_[fr->reg_base + dest_reg] = bits;
      if constexpr (Traced) {
        sink->set_result(bits);
        sink->set_result_loc(reg_loc(fr->activation, dest_reg));
      }
    }
    FT_NEXT();
  }
  FT_OP(Call) : {
    if (dframes_.size() >= opts_.max_call_depth) {
      set_trap(TrapKind::CallDepth);
      goto done;
    }
    fr->pc++;  // resume point after return
    push_dframe(*ins, *fr, nullptr);
    fr = &dframes_.back();
    FT_NEXT();
  }
  FT_OP(Rand) : {
    commit(f64_to_bits(randlc_.next()));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Emit) : {
    const std::uint64_t bits = val(srcs[0]);
    outputs_.push_back({bits, srcs[0].type});
    // The emitted bits are the record's comparable result (no location).
    if constexpr (Traced) sink->set_result(bits);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(EmitTrunc) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    const double r = round_to_digits(x, static_cast<int>(ins->aux));
    outputs_.push_back({f64_to_bits(r), Type::F64});
    if constexpr (Traced) sink->set_result(f64_to_bits(r));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(RegionEnter) : {
    const auto rid = static_cast<std::uint32_t>(ins->aux);
    apply_region_entry_fault(rid);
    region_counts_[rid]++;
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(RegionExit) : {
    fr->pc++;
    FT_NEXT();
  }
  // MiniMPI: a null endpoint is a single-rank world (helpers at the top of
  // this file state the exact semantics once for all three engines).
  FT_OP(MpiRank) : {
    commit(static_cast<std::uint64_t>(mpi_rank_of(opts_.mpi)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiSize) : {
    commit(static_cast<std::uint64_t>(mpi_size_of(opts_.mpi)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiSend) : {
    mpi_send_on(opts_.mpi, static_cast<std::int64_t>(val(srcs[0])),
                bits_to_f64(val(srcs[1])));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiRecv) : {
    commit(f64_to_bits(
        mpi_recv_on(opts_.mpi, static_cast<std::int64_t>(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiAllreduce) : {
    commit(f64_to_bits(mpi_allreduce_on(
        opts_.mpi, bits_to_f64(val(srcs[0])),
        static_cast<ir::ReduceOp>(ins->aux))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiBarrier) : {
    mpi_barrier_on(opts_.mpi);
    fr->pc++;
    FT_NEXT();
  }

#if !FT_VM_COMPUTED_GOTO
    }
  }
#endif
#undef FT_OP
#undef FT_NEXT

limit_reached:
  // Reaching run_until()'s pause mark is not a trap: the machine stays
  // Running and a later run resumes here. Only the hang budget traps.
  if (retired >= max_instr) set_trap(TrapKind::Hang);
done:
  n_retired_ = retired;
  // A record is opened per *fetched* instruction; an instruction that
  // trapped mid-execution did not retire, so its partial record rolls back.
  // Rows are counted relative to the sink (a resumed machine appends its
  // suffix to whatever the sink already holds).
  if constexpr (Traced) sink->truncate_to(retired - trace_base);
}

Vm::Status Vm::step(DynInstr* out) {
  if (prog_) {
    return out ? step_decoded<true>(out) : step_decoded<false>(nullptr);
  }
  return step_legacy(out);
}

// ---------------------------------------------------------------------------
// Snapshot / resume: the prefix-reuse primitives the snapshot-forked
// campaign scheduler (fault/campaign.cpp) is built on. Only the decoded
// engine supports them — campaigns run nowhere else.
// ---------------------------------------------------------------------------

void Vm::run_until(std::uint64_t target) {
  assert(prog_ && "run_until drives the decoded engine only");
  assert(!opts_.observer && "run_until bypasses the observer path");
  stop_at_ = target;
  if (opts_.column_sink) {
    run_decoded_hot<true>();
  } else {
    run_decoded_hot<false>();
  }
  stop_at_ = ~std::uint64_t{0};
}

void Vm::save(Snapshot& out) const {
  assert(prog_ && "snapshots capture decoded-engine state only");
  out.mem = mem_;
  out.frames = dframes_;
  out.slots.assign(slots_.begin(), slots_.begin() + slot_top_);
  out.arg_locs.assign(arg_locs_.begin(), arg_locs_.begin() + arg_loc_top_);
  out.outputs = outputs_;
  out.region_counts = region_counts_;
  out.sp = sp_;
  out.next_activation = next_activation_;
  out.retired = n_retired_;
  out.randlc = randlc_;
  out.trap = trap_;
  out.status = status_;
  out.fault_fired = fault_fired_;
}

Vm::Snapshot Vm::snapshot() const {
  Snapshot s;
  save(s);
  return s;
}

void Vm::sync_sink_to(std::uint64_t target_retired) {
  trace::ColumnTrace* const sink = opts_.column_sink;
  if (!sink || sink->empty()) return;
  // The sink's rows are a contiguous suffix ending at n_retired_. Restoring
  // to an earlier point rolls the rows past it back (restoring before the
  // sink's first row empties it); restoring *forward* of the executed
  // stream would leave rows claiming instructions that were never traced,
  // so it is rejected.
  assert(target_retired <= n_retired_ &&
         "cannot restore a traced Vm forward of its executed stream");
  const std::uint64_t base = n_retired_ - sink->size();
  sink->truncate_to(target_retired > base ? target_retired - base : 0);
}

void Vm::restore_machine_state(const Snapshot& s) {
  sync_sink_to(s.retired);
  dframes_ = s.frames;
  slots_.assign(s.slots.begin(), s.slots.end());
  slot_top_ = static_cast<std::uint32_t>(s.slots.size());
  arg_locs_.assign(s.arg_locs.begin(), s.arg_locs.end());
  arg_loc_top_ = static_cast<std::uint32_t>(s.arg_locs.size());
  outputs_ = s.outputs;
  region_counts_ = s.region_counts;
  sp_ = s.sp;
  next_activation_ = s.next_activation;
  n_retired_ = s.retired;
  randlc_ = s.randlc;
  trap_ = s.trap;
  status_ = s.status;
  fault_fired_ = s.fault_fired;
}

void Vm::restore(const Snapshot& s) {
  assert(prog_ && "snapshots restore decoded-engine state only");
  assert(s.mem.size() == prog_->module().memory_size() &&
         "snapshot must come from a Vm over the same module");
  mem_ = s.mem;
  if (opts_.track_writes && prog_) {
    const std::uint64_t pages =
        (mem_.size() + ((std::uint64_t{1} << kDirtyPageShift) - 1)) >>
        kDirtyPageShift;
    dirty_.assign((pages + 63) / 64, 0);  // full restore: everything clean
  }
  restore_machine_state(s);
}

void Vm::fork_from(Vm& golden, bool full) {
  assert(prog_ && golden.prog_ == prog_ &&
         "fork_from pairs two machines over one decoded program");
  assert(!dirty_.empty() && !golden.dirty_.empty() &&
         "fork_from requires VmOptions::track_writes on both machines");
  if (full) {
    mem_ = golden.mem_;
  } else {
    // Union of both machines' writes since their memories last matched:
    // everything else is identical by the precondition.
    constexpr std::uint64_t kPage = std::uint64_t{1} << kDirtyPageShift;
    for (std::size_t word = 0; word < dirty_.size(); ++word) {
      std::uint64_t bits = dirty_[word] | golden.dirty_[word];
      while (bits != 0) {
        const auto page = word * 64 +
                          static_cast<std::uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t begin = page << kDirtyPageShift;
        const std::uint64_t len = std::min(kPage, mem_.size() - begin);
        std::memcpy(&mem_[begin], &golden.mem_[begin], len);
      }
    }
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(golden.dirty_.begin(), golden.dirty_.end(), 0);

  sync_sink_to(golden.n_retired_);
  dframes_ = golden.dframes_;
  slots_.assign(golden.slots_.begin(),
                golden.slots_.begin() + golden.slot_top_);
  slot_top_ = golden.slot_top_;
  arg_locs_.assign(golden.arg_locs_.begin(),
                   golden.arg_locs_.begin() + golden.arg_loc_top_);
  arg_loc_top_ = golden.arg_loc_top_;
  outputs_ = golden.outputs_;
  region_counts_ = golden.region_counts_;
  sp_ = golden.sp_;
  next_activation_ = golden.next_activation_;
  n_retired_ = golden.n_retired_;
  randlc_ = golden.randlc_;
  trap_ = golden.trap_;
  status_ = golden.status_;
  fault_fired_ = golden.fault_fired_;
}

void Vm::restore_dirty(const Snapshot& s) {
  assert(prog_ && !dirty_.empty() &&
         "restore_dirty requires VmOptions::track_writes");
  assert(s.mem.size() == mem_.size() &&
         "snapshot must come from a Vm over the same module");
  // Copy back only the pages execution wrote since the memory last equaled
  // s.mem (the restore_dirty precondition); everything else is untouched.
  constexpr std::uint64_t kPage = std::uint64_t{1} << kDirtyPageShift;
  for (std::size_t word = 0; word < dirty_.size(); ++word) {
    std::uint64_t bits = dirty_[word];
    if (bits == 0) continue;
    dirty_[word] = 0;
    while (bits != 0) {
      const auto page = word * 64 +
                        static_cast<std::uint64_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint64_t begin = page << kDirtyPageShift;
      const std::uint64_t len = std::min(kPage, mem_.size() - begin);
      std::memcpy(&mem_[begin], &s.mem[begin], len);
    }
  }
  restore_machine_state(s);
}

bool Vm::state_equals(const Snapshot& s) const {
  assert(prog_);
  // Cheapest discriminators first: counters churn with every frame push
  // and retired instruction, so mismatched executions bail before the
  // memory-image compare.
  if (n_retired_ != s.retired || sp_ != s.sp ||
      next_activation_ != s.next_activation || status_ != s.status ||
      trap_ != s.trap) {
    return false;
  }
  if (dframes_.size() != s.frames.size() || slot_top_ != s.slots.size() ||
      arg_loc_top_ != s.arg_locs.size()) {
    return false;
  }
  if (!std::equal(s.frames.begin(), s.frames.end(), dframes_.begin())) {
    return false;
  }
  if (!std::equal(s.slots.begin(), s.slots.end(), slots_.begin())) {
    return false;
  }
  if (!std::equal(s.arg_locs.begin(), s.arg_locs.end(), arg_locs_.begin())) {
    return false;
  }
  if (outputs_ != s.outputs || region_counts_ != s.region_counts ||
      randlc_.state() != s.randlc.state()) {
    return false;
  }
  // Strided sample across the memory image before the full scan: a trial
  // that diverged in memory has usually propagated the corruption through
  // whole arrays by the time a probe runs, so a mismatch almost always
  // lands in the sample and the full-image compare is skipped. Equality
  // still requires the full compare below — the sample only fails fast.
  const std::size_t n = mem_.size();
  if (n >= 8192) {
    const std::size_t stride = n / 128;
    for (std::size_t i = stride / 2; i + 8 <= n; i += stride) {
      if (std::memcmp(&mem_[i], &s.mem[i], 8) != 0) return false;
    }
  }
  return mem_ == s.mem;
}

void Vm::set_fault(const FaultPlan& plan) noexcept {
  opts_.fault = plan;
  fault_fired_ = false;
}

RunResult Vm::run() {
  if (opts_.observer) {
    DynInstr rec;
    while (status_ == Status::Running) {
      // Trace control: skip record construction while the observer is
      // gated off, except for region markers (which toggle the gates).
      const bool deliver =
          opts_.observer->enabled() || next_is_region_marker();
      const auto before = n_retired_;
      if (step(deliver ? &rec : nullptr) == Status::Trapped) break;
      if (deliver && n_retired_ > before) {
        opts_.observer->on_instruction(rec);
      }
    }
  } else if (prog_ && opts_.column_sink) {
    run_decoded_hot<true>();
  } else if (prog_) {
    run_decoded_hot<false>();
  } else {
    while (status_ == Status::Running) step_legacy(nullptr);
  }
  return take_result();
}

RunResult Vm::take_result() {
  RunResult r;
  r.trap = trap_;
  r.instructions = n_retired_;
  r.fault_fired = fault_fired_;
  r.outputs = std::move(outputs_);
  return r;
}

RunResult Vm::run(const ir::Module& m, VmOptions opts) {
  Vm vm(m, opts);
  return vm.run();
}

RunResult Vm::run(const DecodedProgram& p, VmOptions opts) {
  Vm vm(p, opts);
  return vm.run();
}

}  // namespace ft::vm
