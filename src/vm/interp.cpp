// Machine-state plumbing shared by every execution engine: construction,
// memory/fault primitives, snapshot/restore/fork, and the run() dispatcher.
// The engines themselves live in their own translation units —
// interp_legacy.cpp (tree-walker), interp_decoded.cpp (decoded hot loop and
// stepper) and interp_jit.cpp (native driver) — so the shared helpers in
// interp_shared.h link from one definition instead of three copies.
#include "vm/interp.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "jit/jit_program.h"
#include "trace/column.h"
#include "util/bits.h"

namespace ft::vm {

using ir::Type;
using util::bits_to_f32;
using util::bits_to_f64;

double OutputValue::as_f64() const noexcept {
  switch (type) {
    case Type::F64: return bits_to_f64(bits);
    case Type::F32: return static_cast<double>(bits_to_f32(bits));
    default: return static_cast<double>(static_cast<std::int64_t>(bits));
  }
}

std::int64_t OutputValue::as_i64() const noexcept {
  if (is_float(type)) return static_cast<std::int64_t>(as_f64());
  return static_cast<std::int64_t>(bits);
}

void Vm::init_memory(const ir::Module& m) {
  mem_.assign(m.memory_size(), 0);
  if (opts_.track_writes && opts_.program) {
    const std::uint64_t pages =
        (mem_.size() + ((std::uint64_t{1} << kDirtyPageShift) - 1)) >>
        kDirtyPageShift;
    dirty_.assign((pages + 63) / 64, 0);
  }
  for (std::uint32_t g = 0; g < m.num_globals(); ++g) {
    const auto& gl = m.global(g);
    if (gl.init_bits.empty()) continue;
    const auto esz = store_size(gl.elem);
    for (std::size_t i = 0; i < gl.init_bits.size() && i < gl.count; ++i) {
      std::memcpy(&mem_[gl.addr + i * esz], &gl.init_bits[i], esz);
    }
  }
  sp_ = m.stack_base();
  region_counts_.assign(m.num_regions(), 0);
}

Vm::Vm(const ir::Module& m, VmOptions opts)
    : mod_(&m), prog_(opts.program), opts_(opts), randlc_(opts.rand_seed) {
  assert(m.laid_out() && "module must be laid out before execution");
  assert((!prog_ || &prog_->module() == &m) &&
         "VmOptions::program must be decoded from the module being run");
  assert((!opts_.column_sink || prog_) &&
         "VmOptions::column_sink requires the decoded engine");
  assert((!opts_.column_sink || (&opts_.column_sink->program() == prog_ &&
                                 opts_.column_sink->empty())) &&
         "column sink must be empty and built over the program being run");
  assert((!opts_.jit || &opts_.jit->program() == prog_) &&
         "VmOptions::jit must be compiled from the program being run");
  init_memory(m);
  if (opts_.count_opcodes) {
    opcode_counts_.assign(ir::kNumOpcodes, 0);
  }

  if (prog_) {
    dframes_.reserve(opts_.max_call_depth);
    slots_.reserve(4096);
    const auto entry_fn = prog_->entry_function();
    const DecodedFunction& entry = prog_->function(entry_fn);
    DFrame main;
    main.func = entry_fn;
    main.activation = next_activation_++;
    main.pc = entry.entry_pc;
    main.reg_base = 0;
    main.arg_base = entry.num_regs;
    main.saved_sp = sp_;
    if (slots_.size() < entry.num_regs) slots_.resize(entry.num_regs);
    std::fill(slots_.begin(), slots_.begin() + entry.num_regs, 0);
    slot_top_ = entry.num_regs;
    dframes_.push_back(main);
  } else {
    Frame main;
    main.func = m.entry();
    main.activation = next_activation_++;
    main.regs.assign(m.function(m.entry()).num_regs, 0);
    main.saved_sp = sp_;
    frames_.push_back(std::move(main));
  }
}

Vm::Vm(const DecodedProgram& p, VmOptions opts)
    : Vm(p.module(), (opts.program = &p, opts)) {}

Vm::Vm(const DecodedProgram& p, const Snapshot& s, VmOptions opts)
    : mod_(&p.module()),
      prog_(&p),
      opts_((opts.program = &p, opts)),
      randlc_(opts.rand_seed) {
  assert(mod_->laid_out() && "module must be laid out before execution");
  assert(!opts_.observer && !opts_.column_sink &&
         "snapshot-constructed Vms run the untraced campaign path");
  assert((!opts_.jit || &opts_.jit->program() == prog_) &&
         "VmOptions::jit must be compiled from the program being run");
  dframes_.reserve(opts_.max_call_depth);
  if (opts_.count_opcodes) {
    opcode_counts_.assign(ir::kNumOpcodes, 0);
  }
  restore(s);
}

bool Vm::mem_ok(std::uint64_t addr, std::uint32_t size) const {
  return addr >= ir::kGlobalBase && addr + size <= mem_.size() &&
         addr + size >= addr;
}

void Vm::set_trap(TrapKind t) noexcept {
  trap_ = t;
  status_ = Status::Trapped;
}

void Vm::maybe_flip_result(std::uint64_t& bits) {
  if (opts_.fault.kind == FaultPlan::Kind::ResultBit && !fault_fired_ &&
      n_retired_ == opts_.fault.dyn_index) {
    bits = util::flip_bit(bits, opts_.fault.bit);
    fault_fired_ = true;
  }
}

void Vm::apply_region_entry_fault(std::uint32_t rid) {
  const auto& plan = opts_.fault;
  if (plan.kind != FaultPlan::Kind::RegionInputMemoryBit || fault_fired_) {
    return;
  }
  if (rid != plan.region_id ||
      region_counts_[rid] != plan.region_instance) {
    return;
  }
  if (!mem_ok(plan.address, plan.width_bytes)) return;
  std::uint64_t word = read_word(plan.address, plan.width_bytes);
  word = util::flip_bit(word, plan.bit % (plan.width_bytes * 8));
  write_word(plan.address, plan.width_bytes, word);
  fault_fired_ = true;
}

std::uint64_t Vm::read_word(std::uint64_t addr, std::uint32_t size) const {
  assert(mem_ok(addr, size));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &mem_[addr], size);
  return bits;
}

void Vm::write_word(std::uint64_t addr, std::uint32_t size,
                    std::uint64_t bits) {
  assert(mem_ok(addr, size));
  std::memcpy(&mem_[addr], &bits, size);
  // dirty_ is non-empty exactly when write tracking is on; region-entry
  // faults route through here, so fault flips are tracked too.
  if (!dirty_.empty()) mark_dirty(addr, size);
}

std::uint32_t Vm::region_instances(std::uint32_t rid) const {
  return rid < region_counts_.size() ? region_counts_[rid] : 0;
}

bool Vm::next_is_region_marker() const {
  if (prog_) {
    return ir::is_region_marker(prog_->code()[dframes_.back().pc].op);
  }
  const Frame& fr = frames_.back();
  return ir::is_region_marker(
      mod_->function(fr.func).blocks[fr.block].instrs[fr.pc].op);
}

Vm::Status Vm::step(DynInstr* out) {
  if (prog_) {
    return out ? step_decoded<true>(out) : step_decoded<false>(nullptr);
  }
  return step_legacy(out);
}

// ---------------------------------------------------------------------------
// Snapshot / resume: the prefix-reuse primitives the snapshot-forked
// campaign scheduler (fault/campaign.cpp) is built on. Only the decoded
// engine supports them — campaigns run nowhere else. The JIT shares the
// interpreter's machine-state layout, so a snapshot taken under either
// engine restores into the other (pinned by tests/jit_test.cpp).
// ---------------------------------------------------------------------------

void Vm::save(Snapshot& out) const {
  assert(prog_ && "snapshots capture decoded-engine state only");
  out.mem = mem_;
  out.frames = dframes_;
  out.slots.assign(slots_.begin(), slots_.begin() + slot_top_);
  out.arg_locs.assign(arg_locs_.begin(), arg_locs_.begin() + arg_loc_top_);
  out.outputs = outputs_;
  out.region_counts = region_counts_;
  out.sp = sp_;
  out.next_activation = next_activation_;
  out.retired = n_retired_;
  out.randlc = randlc_;
  out.trap = trap_;
  out.status = status_;
  out.fault_fired = fault_fired_;
}

Vm::Snapshot Vm::snapshot() const {
  Snapshot s;
  save(s);
  return s;
}

void Vm::sync_sink_to(std::uint64_t target_retired) {
  trace::ColumnTrace* const sink = opts_.column_sink;
  if (!sink || sink->empty()) return;
  // The sink's rows are a contiguous suffix ending at n_retired_. Restoring
  // to an earlier point rolls the rows past it back (restoring before the
  // sink's first row empties it); restoring *forward* of the executed
  // stream would leave rows claiming instructions that were never traced,
  // so it is rejected.
  assert(target_retired <= n_retired_ &&
         "cannot restore a traced Vm forward of its executed stream");
  const std::uint64_t base = n_retired_ - sink->size();
  sink->truncate_to(target_retired > base ? target_retired - base : 0);
}

void Vm::restore_machine_state(const Snapshot& s) {
  sync_sink_to(s.retired);
  dframes_ = s.frames;
  slots_.assign(s.slots.begin(), s.slots.end());
  slot_top_ = static_cast<std::uint32_t>(s.slots.size());
  arg_locs_.assign(s.arg_locs.begin(), s.arg_locs.end());
  arg_loc_top_ = static_cast<std::uint32_t>(s.arg_locs.size());
  outputs_ = s.outputs;
  region_counts_ = s.region_counts;
  sp_ = s.sp;
  next_activation_ = s.next_activation;
  n_retired_ = s.retired;
  randlc_ = s.randlc;
  trap_ = s.trap;
  status_ = s.status;
  fault_fired_ = s.fault_fired;
}

void Vm::restore(const Snapshot& s) {
  assert(prog_ && "snapshots restore decoded-engine state only");
  assert(s.mem.size() == prog_->module().memory_size() &&
         "snapshot must come from a Vm over the same module");
  mem_ = s.mem;
  if (opts_.track_writes && prog_) {
    const std::uint64_t pages =
        (mem_.size() + ((std::uint64_t{1} << kDirtyPageShift) - 1)) >>
        kDirtyPageShift;
    dirty_.assign((pages + 63) / 64, 0);  // full restore: everything clean
  }
  restore_machine_state(s);
}

void Vm::fork_from(Vm& golden, bool full) {
  assert(prog_ && golden.prog_ == prog_ &&
         "fork_from pairs two machines over one decoded program");
  assert(!dirty_.empty() && !golden.dirty_.empty() &&
         "fork_from requires VmOptions::track_writes on both machines");
  if (full) {
    mem_ = golden.mem_;
  } else {
    // Union of both machines' writes since their memories last matched:
    // everything else is identical by the precondition.
    constexpr std::uint64_t kPage = std::uint64_t{1} << kDirtyPageShift;
    for (std::size_t word = 0; word < dirty_.size(); ++word) {
      std::uint64_t bits = dirty_[word] | golden.dirty_[word];
      while (bits != 0) {
        const auto page = word * 64 +
                          static_cast<std::uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t begin = page << kDirtyPageShift;
        const std::uint64_t len = std::min(kPage, mem_.size() - begin);
        std::memcpy(&mem_[begin], &golden.mem_[begin], len);
      }
    }
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(golden.dirty_.begin(), golden.dirty_.end(), 0);

  sync_sink_to(golden.n_retired_);
  dframes_ = golden.dframes_;
  slots_.assign(golden.slots_.begin(),
                golden.slots_.begin() + golden.slot_top_);
  slot_top_ = golden.slot_top_;
  arg_locs_.assign(golden.arg_locs_.begin(),
                   golden.arg_locs_.begin() + golden.arg_loc_top_);
  arg_loc_top_ = golden.arg_loc_top_;
  outputs_ = golden.outputs_;
  region_counts_ = golden.region_counts_;
  sp_ = golden.sp_;
  next_activation_ = golden.next_activation_;
  n_retired_ = golden.n_retired_;
  randlc_ = golden.randlc_;
  trap_ = golden.trap_;
  status_ = golden.status_;
  fault_fired_ = golden.fault_fired_;
}

void Vm::restore_dirty(const Snapshot& s) {
  assert(prog_ && !dirty_.empty() &&
         "restore_dirty requires VmOptions::track_writes");
  assert(s.mem.size() == mem_.size() &&
         "snapshot must come from a Vm over the same module");
  // Copy back only the pages execution wrote since the memory last equaled
  // s.mem (the restore_dirty precondition); everything else is untouched.
  constexpr std::uint64_t kPage = std::uint64_t{1} << kDirtyPageShift;
  for (std::size_t word = 0; word < dirty_.size(); ++word) {
    std::uint64_t bits = dirty_[word];
    if (bits == 0) continue;
    dirty_[word] = 0;
    while (bits != 0) {
      const auto page = word * 64 +
                        static_cast<std::uint64_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint64_t begin = page << kDirtyPageShift;
      const std::uint64_t len = std::min(kPage, mem_.size() - begin);
      std::memcpy(&mem_[begin], &s.mem[begin], len);
    }
  }
  restore_machine_state(s);
}

bool Vm::state_equals(const Snapshot& s) const {
  assert(prog_);
  // Cheapest discriminators first: counters churn with every frame push
  // and retired instruction, so mismatched executions bail before the
  // memory-image compare.
  if (n_retired_ != s.retired || sp_ != s.sp ||
      next_activation_ != s.next_activation || status_ != s.status ||
      trap_ != s.trap) {
    return false;
  }
  if (dframes_.size() != s.frames.size() || slot_top_ != s.slots.size() ||
      arg_loc_top_ != s.arg_locs.size()) {
    return false;
  }
  if (!std::equal(s.frames.begin(), s.frames.end(), dframes_.begin())) {
    return false;
  }
  if (!std::equal(s.slots.begin(), s.slots.end(), slots_.begin())) {
    return false;
  }
  if (!std::equal(s.arg_locs.begin(), s.arg_locs.end(), arg_locs_.begin())) {
    return false;
  }
  if (outputs_ != s.outputs || region_counts_ != s.region_counts ||
      randlc_.state() != s.randlc.state()) {
    return false;
  }
  // Strided sample across the memory image before the full scan: a trial
  // that diverged in memory has usually propagated the corruption through
  // whole arrays by the time a probe runs, so a mismatch almost always
  // lands in the sample and the full-image compare is skipped. Equality
  // still requires the full compare below — the sample only fails fast.
  const std::size_t n = mem_.size();
  if (n >= 8192) {
    const std::size_t stride = n / 128;
    for (std::size_t i = stride / 2; i + 8 <= n; i += stride) {
      if (std::memcmp(&mem_[i], &s.mem[i], 8) != 0) return false;
    }
  }
  return mem_ == s.mem;
}

bool Vm::control_equals(const Snapshot& s) const {
  assert(prog_);
  if (n_retired_ != s.retired || sp_ != s.sp ||
      next_activation_ != s.next_activation || status_ != s.status ||
      trap_ != s.trap) {
    return false;
  }
  if (dframes_.size() != s.frames.size() || slot_top_ != s.slots.size() ||
      arg_loc_top_ != s.arg_locs.size()) {
    return false;
  }
  if (!std::equal(s.frames.begin(), s.frames.end(), dframes_.begin())) {
    return false;
  }
  if (!std::equal(s.slots.begin(), s.slots.end(), slots_.begin())) {
    return false;
  }
  if (!std::equal(s.arg_locs.begin(), s.arg_locs.end(), arg_locs_.begin())) {
    return false;
  }
  return region_counts_ == s.region_counts &&
         randlc_.state() == s.randlc.state();
}

void Vm::set_fault(const FaultPlan& plan) noexcept {
  opts_.fault = plan;
  fault_fired_ = false;
}

void Vm::rollback(const Snapshot& s) {
  restore(s);
  // Clear any pending pause mark: both the hot loop and the JIT driver
  // fold stop_at_ into their stop limit, so a stale mark from the
  // interrupted pre-rollback run would silently cap the re-execution (and
  // misclassify the pause as a hang at the budget). The hang budget itself
  // stays the absolute max_instructions ceiling — restore() rewound
  // n_retired_, which is the other half of that comparison in every
  // engine. restore() also reset the dirty-page bitmap fully clean.
  stop_at_ = ~std::uint64_t{0};
  set_fault(FaultPlan::none());
}

RunResult Vm::run() {
  if (opts_.observer) {
    DynInstr rec;
    while (status_ == Status::Running) {
      // Trace control: skip record construction while the observer is
      // gated off, except for region markers (which toggle the gates).
      const bool deliver =
          opts_.observer->enabled() || next_is_region_marker();
      const auto before = n_retired_;
      if (step(deliver ? &rec : nullptr) == Status::Trapped) break;
      if (deliver && n_retired_ > before) {
        opts_.observer->on_instruction(rec);
      }
    }
  } else if (prog_ && opts_.column_sink) {
    run_decoded_hot<true>();
  } else if (prog_ && opts_.jit && opcode_counts_.empty()) {
    run_jit();
  } else if (prog_) {
    run_decoded_hot<false>();
  } else {
    while (status_ == Status::Running) step_legacy(nullptr);
  }
  return take_result();
}

RunResult Vm::take_result() {
  RunResult r;
  r.trap = trap_;
  r.instructions = n_retired_;
  r.fault_fired = fault_fired_;
  r.outputs = std::move(outputs_);
  return r;
}

RunResult Vm::run(const ir::Module& m, VmOptions opts) {
  Vm vm(m, opts);
  return vm.run();
}

RunResult Vm::run(const DecodedProgram& p, VmOptions opts) {
  Vm vm(p, opts);
  return vm.run();
}

}  // namespace ft::vm
