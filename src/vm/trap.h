// Abnormal-termination model. Traps map to the paper's "Crashed" fault
// manifestation (§II-A1): crashes and hangs.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::vm {

enum class TrapKind : std::uint8_t {
  None,            // ran to completion
  OutOfBounds,     // load/store outside mapped memory (segfault analog)
  DivByZero,       // integer division/remainder by zero
  IntOverflowDiv,  // INT_MIN / -1
  BadShift,        // shift amount >= bit width (UB in C; crashes here)
  FpDomain,        // fptosi of NaN / out-of-range value
  StackOverflow,   // alloca exhausted the stack segment
  CallDepth,       // runaway recursion
  Hang,            // instruction budget exhausted (hang/livelock analog)
  DetectedFault,   // a hardening detector (ir::Opcode::CheckTrap) fired —
                   // recoverable: the campaign driver rolls back to a
                   // checkpoint and re-executes (fault/campaign.h)
};

[[nodiscard]] constexpr std::string_view trap_name(TrapKind t) noexcept {
  switch (t) {
    case TrapKind::None: return "none";
    case TrapKind::OutOfBounds: return "out-of-bounds";
    case TrapKind::DivByZero: return "div-by-zero";
    case TrapKind::IntOverflowDiv: return "int-overflow-div";
    case TrapKind::BadShift: return "bad-shift";
    case TrapKind::FpDomain: return "fp-domain";
    case TrapKind::StackOverflow: return "stack-overflow";
    case TrapKind::CallDepth: return "call-depth";
    case TrapKind::Hang: return "hang";
    case TrapKind::DetectedFault: return "detected-fault";
  }
  return "?";
}

}  // namespace ft::vm
