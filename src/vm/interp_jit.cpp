// Native driver: alternates compiled-code bursts with single-instruction
// interpreter steps. The burst boundary invariants that keep the JIT
// bit-identical to the interpreter:
//
//   * Native code never applies ResultBit flips. An armed, unfired plan
//     clamps the burst's stop limit to the flip's dynamic index, so native
//     execution pauses exactly there and the flip instruction itself is
//     interpreted (one step through run_decoded_hot, whose commit path
//     applies the flip bit-exactly). RegionInputMemoryBit faults fire
//     inside the RegionEnter helper and need no boundary at all.
//   * Instructions without a template exit with ExitReason::Deopt; the
//     driver interprets that one instruction and re-enters native code.
//   * The guard at every entry point pauses when retired >= stop_limit, so
//     run_until() marks and the hang budget behave exactly as the hot
//     loop's loop-top check: pausing at the budget classifies as Hang only
//     when the budget itself was reached, and a trapping instruction never
//     retires.
#include <algorithm>
#include <cassert>

#include "jit/jit_program.h"
#include "jit/jit_runtime.h"
#include "vm/interp.h"

namespace ft::vm {

void Vm::run_jit() {
  const jit::JitProgram* const jp = opts_.jit;
  assert(prog_ && jp && &jp->program() == prog_ &&
         "run_jit requires a JitProgram compiled from the Vm's program");
  assert(!opts_.observer && !opts_.column_sink &&
         "the JIT path is untraced-only");

  const bool fault_rb = opts_.fault.kind == FaultPlan::Kind::ResultBit;
  // One interpreter step: the hot loop with the pause mark right after the
  // next instruction. Inherits flip/trap/Finished/Hang semantics wholesale.
  const auto interp_step = [&] {
    const std::uint64_t saved = stop_at_;
    stop_at_ = n_retired_ + 1;
    run_decoded_hot<false>();
    stop_at_ = saved;
  };

  for (;;) {
    if (status_ != Status::Running) return;
    const std::uint64_t stop = std::min(opts_.max_instructions, stop_at_);
    if (n_retired_ >= stop) {
      if (n_retired_ >= opts_.max_instructions) set_trap(TrapKind::Hang);
      return;
    }

    std::uint64_t native_stop = stop;
    if (fault_rb && !fault_fired_ && opts_.fault.dyn_index >= n_retired_) {
      if (opts_.fault.dyn_index == n_retired_) {
        interp_step();  // the flip commits through the interpreter
        continue;
      }
      native_stop = std::min(native_stop, opts_.fault.dyn_index);
    }

    jit::JitContext ctx;
    ctx.slots = slots_.data();
    ctx.mem = mem_.data();
    ctx.mem_size = mem_.size();
    ctx.stop_limit = native_stop;
    ctx.retired = n_retired_;
    ctx.frame_base = slots_.data() + dframes_.back().reg_base;
    ctx.entry_pc = dframes_.back().pc;
    ctx.exit_pc = 0;
    ctx.exit_reason = 0;
    ctx.exit_trap = 0;
    ctx.track_writes = dirty_.empty() ? 0 : 1;
    ctx.dirty = dirty_.empty() ? nullptr : dirty_.data();
    ctx.entries = jp->entries();
    ctx.vm = this;
    ctx.prog = prog_;

    jp->entry()(&ctx);

    n_retired_ = ctx.retired;
    dframes_.back().pc = ctx.exit_pc;
    switch (static_cast<jit::ExitReason>(ctx.exit_reason)) {
      case jit::ExitReason::Limit:
        break;  // loop top re-checks pause mark / flip index / hang budget
      case jit::ExitReason::Trap:
        set_trap(static_cast<TrapKind>(ctx.exit_trap));
        return;
      case jit::ExitReason::Finished:
        status_ = Status::Finished;
        return;
      case jit::ExitReason::Deopt:
        interp_step();
        break;
    }
  }
}

}  // namespace ft::vm
