// Fault plans: a description of one single-bit flip the VM applies while
// running (the FlipIt-analog injection mechanism, §IV-C).
#pragma once

#include <cstdint>

namespace ft::vm {

struct FaultPlan {
  enum class Kind : std::uint8_t {
    None,
    /// Flip `bit` of the result of dynamic instruction `dyn_index` before it
    /// is committed (register write or memory store). Models a soft error in
    /// the producing ALU/registers — faults on "internal locations".
    ResultBit,
    /// Flip `bit` of the memory word of width `width_bytes` at `address`
    /// when RegionEnter for (region_id, region_instance) retires. Models a
    /// corrupted *input location* of a code-region instance.
    RegionInputMemoryBit,
  };

  Kind kind = Kind::None;
  std::uint64_t dyn_index = 0;
  std::uint32_t region_id = 0;
  std::uint32_t region_instance = 0;
  std::uint64_t address = 0;
  std::uint32_t width_bytes = 8;
  std::uint32_t bit = 0;

  [[nodiscard]] bool armed() const noexcept { return kind != Kind::None; }

  [[nodiscard]] static FaultPlan none() { return {}; }

  [[nodiscard]] static FaultPlan result_bit(std::uint64_t dyn_index,
                                            std::uint32_t bit) {
    FaultPlan p;
    p.kind = Kind::ResultBit;
    p.dyn_index = dyn_index;
    p.bit = bit;
    return p;
  }

  [[nodiscard]] static FaultPlan region_input_bit(std::uint32_t region_id,
                                                  std::uint32_t instance,
                                                  std::uint64_t address,
                                                  std::uint32_t width_bytes,
                                                  std::uint32_t bit) {
    FaultPlan p;
    p.kind = Kind::RegionInputMemoryBit;
    p.region_id = region_id;
    p.region_instance = instance;
    p.address = address;
    p.width_bytes = width_bytes;
    p.bit = bit;
    return p;
  }
};

}  // namespace ft::vm
