#include "vm/decode.h"

#include <cassert>

#include "util/bits.h"
#include "vm/observer.h"

namespace ft::vm {

namespace {

Src decode_operand(const ir::Module& m, const ir::Operand& o) {
  Src s;
  switch (o.kind) {
    case ir::OperandKind::Reg:
      s.kind = SrcKind::Reg;
      s.type = o.type;
      s.index = o.id;
      break;
    case ir::OperandKind::Arg:
      s.kind = SrcKind::Arg;
      s.type = o.type;
      s.index = o.id;
      break;
    case ir::OperandKind::ImmI:
      s.kind = SrcKind::Const;
      s.type = o.type;
      s.bits = canon_int(static_cast<std::uint64_t>(o.imm_i), o.type);
      break;
    case ir::OperandKind::ImmF:
      s.kind = SrcKind::Const;
      s.type = o.type;
      s.bits = o.type == ir::Type::F32
                   ? util::f32_to_bits(static_cast<float>(o.imm_f))
                   : util::f64_to_bits(o.imm_f);
      break;
    case ir::OperandKind::Global:
      // Globals evaluate to their laid-out base address (type Ptr); folding
      // it here removes the per-use module lookup from the hot loop.
      s.kind = SrcKind::Const;
      s.type = ir::Type::Ptr;
      s.bits = m.global(o.id).addr;
      break;
    case ir::OperandKind::Block:
    case ir::OperandKind::None:
      break;  // stays SrcKind::None, evaluating to the empty value
  }
  return s;
}

}  // namespace

DecodedProgram DecodedProgram::decode(const ir::Module& m) {
  assert(m.laid_out() && "module must be laid out before decoding");
  DecodedProgram p;
  p.mod_ = &m;
  p.entry_ = m.entry();
  p.funcs_.resize(m.num_functions());

  // Pass 1: assign flat pcs — functions in order, blocks in order within a
  // function — so branch targets can be resolved densely in pass 2.
  std::vector<std::vector<std::uint32_t>> block_start(m.num_functions());
  std::uint32_t pc = 0;
  std::size_t total_ops = 0;
  for (std::uint32_t f = 0; f < m.num_functions(); ++f) {
    const auto& fn = m.function(f);
    auto& df = p.funcs_[f];
    df.entry_pc = pc;
    df.num_regs = fn.num_regs;
    df.num_params = static_cast<std::uint32_t>(fn.params.size());
    block_start[f].reserve(fn.blocks.size());
    for (const auto& b : fn.blocks) {
      block_start[f].push_back(pc);
      pc += static_cast<std::uint32_t>(b.instrs.size());
      for (const auto& ins : b.instrs) total_ops += ins.ops.size();
    }
  }
  p.code_.reserve(pc);
  p.srcs_.reserve(total_ops);

  // Pass 2: emit the flat stream with pre-resolved operands and targets.
  for (std::uint32_t f = 0; f < m.num_functions(); ++f) {
    const auto& fn = m.function(f);
    for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
      const auto& blk = fn.blocks[b];
      for (std::uint32_t i = 0; i < blk.instrs.size(); ++i) {
        const auto& ins = blk.instrs[i];
        DecodedInstr d;
        d.op = ins.op;
        d.pred = ins.pred;
        d.type = ins.type;
        d.nops = static_cast<std::uint8_t>(
            std::min<std::size_t>(ins.ops.size(), kMaxTracedOps));
        d.result = ins.result;
        d.aux = ins.aux;
        d.func = f;
        d.block = b;
        d.instr = i;
        d.line = ins.line;
        d.src_begin = static_cast<std::uint32_t>(p.srcs_.size());
        d.src_count = static_cast<std::uint16_t>(ins.ops.size());
        for (const auto& o : ins.ops) {
          p.srcs_.push_back(decode_operand(m, o));
        }
        if (ins.op == ir::Opcode::Br) {
          d.target_taken = block_start[f][ins.ops[0].id];
        } else if (ins.op == ir::Opcode::CondBr) {
          d.target_taken = block_start[f][ins.ops[1].id];
          d.target_fall = block_start[f][ins.ops[2].id];
        }
        p.code_.push_back(d);
      }
    }
  }
  return p;
}

}  // namespace ft::vm
