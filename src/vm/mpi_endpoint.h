// Interface the VM uses for MiniMPI intrinsics. A null endpoint behaves as
// a single-rank world: rank 0, size 1, identity allreduce, no-op barrier;
// p2p has no peer to pair with, so send drops its payload and recv yields
// 0.0 (a genuinely self-messaging single-rank program needs a one-rank
// mpi::World). The exact semantics live in one place — the mpi_*_on
// helpers at the top of vm/interp.cpp, shared by all three engines — and
// are pinned by tests/mpi_test.cpp. The real multi-rank runtime lives in
// src/mpi/.
#pragma once

#include <cstdint>

#include "ir/opcode.h"

namespace ft::vm {

class MpiEndpoint {
 public:
  virtual ~MpiEndpoint() = default;

  [[nodiscard]] virtual std::int64_t rank() const = 0;
  [[nodiscard]] virtual std::int64_t size() const = 0;

  /// Blocking point-to-point send/receive of one f64 payload.
  virtual void send(std::int64_t dest_rank, double value) = 0;
  [[nodiscard]] virtual double recv(std::int64_t src_rank) = 0;

  [[nodiscard]] virtual double allreduce(double value, ir::ReduceOp op) = 0;
  virtual void barrier() = 0;
};

}  // namespace ft::vm
