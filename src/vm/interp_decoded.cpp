// Decoded engine: dispatch over the flat pre-resolved instruction stream.
// Must stay semantically and record-by-record identical to step_legacy —
// tests/decode_test.cpp pins the equivalence across all ten workloads — and
// bit-identical to the JIT backend (tests/engine_fuzz_test.cpp pins that).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "trace/column.h"
#include "util/bits.h"
#include "vm/interp.h"
#include "vm/interp_shared.h"

namespace ft::vm {

using ir::CmpPred;
using ir::Opcode;
using ir::Type;
using util::bits_to_f32;
using util::bits_to_f64;
using util::f32_to_bits;
using util::f64_to_bits;

Vm::OpVal Vm::eval_src(const Src& s, const DFrame& fr) const {
  switch (s.kind) {
    case SrcKind::Reg:
      return {slots_[fr.reg_base + s.index], reg_loc(fr.activation, s.index),
              s.type};
    case SrcKind::Arg:
      return {slots_[fr.arg_base + s.index],
              arg_locs_[fr.arg_loc_base + s.index], s.type};
    case SrcKind::Const:
      return {s.bits, kNoLoc, s.type};
    case SrcKind::None:
      break;
  }
  return {};
}

void Vm::push_dframe(const DecodedInstr& call_ins, const DFrame& caller,
                     DynInstr* out) {
  const auto func = static_cast<std::uint32_t>(call_ins.aux);
  const DecodedFunction& callee = prog_->function(func);
  DFrame fr;
  fr.func = func;
  fr.activation = next_activation_++;
  fr.pc = callee.entry_pc;
  fr.reg_base = slot_top_;
  fr.arg_base = slot_top_ + callee.num_regs;
  fr.arg_loc_base = arg_loc_top_;
  fr.nargs = call_ins.src_count;
  fr.saved_sp = sp_;
  fr.ret_reg = call_ins.result;

  const std::uint32_t new_top = fr.arg_base + fr.nargs;
  if (slots_.size() < new_top) slots_.resize(new_top);
  if (arg_locs_.size() < arg_loc_top_ + fr.nargs) {
    arg_locs_.resize(arg_loc_top_ + fr.nargs);
  }
  std::fill(slots_.begin() + fr.reg_base, slots_.begin() + fr.arg_base, 0);

  const Src* const args = prog_->srcs() + call_ins.src_begin;
  for (std::uint32_t i = 0; i < fr.nargs; ++i) {
    const OpVal v = eval_src(args[i], caller);
    slots_[fr.arg_base + i] = v.bits;
    arg_locs_[fr.arg_loc_base + i] = v.loc;
    if (out && i < kMaxTracedOps) {
      out->op_loc[i] = v.loc;
      out->op_bits[i] = v.bits;
      out->op_type[i] = v.type;
    }
  }
  slot_top_ = new_top;
  arg_loc_top_ += fr.nargs;
  dframes_.push_back(fr);
}

template <bool Traced>
Vm::Status Vm::step_decoded(DynInstr* out) {
  if (status_ != Status::Running) return status_;
  if (n_retired_ >= opts_.max_instructions) {
    set_trap(TrapKind::Hang);
    return status_;
  }

  DFrame& fr = dframes_.back();
  const DecodedInstr& ins = prog_->code()[fr.pc];
  if (!opcode_counts_.empty()) {
    ++opcode_counts_[static_cast<std::uint8_t>(ins.op)];
  }

  if constexpr (Traced) {
    *out = DynInstr{};
    out->index = n_retired_;
    out->func = ins.func;
    out->block = ins.block;
    out->instr = ins.instr;
    out->op = ins.op;
    out->pred = ins.pred;
    out->type = ins.type;
    out->line = ins.line;
    out->aux = ins.aux;
    out->nops = ins.nops;
  } else {
    (void)out;
  }

  // Operands were pre-resolved at decode time; evaluating one is a slot
  // read (or nothing, for pre-folded constants). Block operands decode to
  // SrcKind::None and evaluate to the empty value, matching the legacy
  // engine's skip.
  const Src* const srcs = prog_->srcs() + ins.src_begin;
  OpVal a{}, b{}, c{};
  const std::size_t nsrc = ins.src_count;
  if (ins.op != Opcode::Call) {
    if (nsrc > 0) a = eval_src(srcs[0], fr);
    if (nsrc > 1) b = eval_src(srcs[1], fr);
    if (nsrc > 2) c = eval_src(srcs[2], fr);
    if constexpr (Traced) {
      const OpVal* vals[3] = {&a, &b, &c};
      for (std::size_t i = 0; i < std::min<std::size_t>(nsrc, 3); ++i) {
        out->op_loc[i] = vals[i]->loc;
        out->op_bits[i] = vals[i]->bits;
        out->op_type[i] = vals[i]->type;
      }
    }
  }

  std::uint64_t result = 0;
  bool has_res = ins.result != ir::kNoReg;
  Location result_location =
      has_res ? reg_loc(fr.activation, ins.result) : kNoLoc;
  bool advance_pc = true;

  const Type t = ins.type;
  const auto ia = static_cast<std::int64_t>(a.bits);
  const auto ib = static_cast<std::int64_t>(b.bits);

  switch (ins.op) {
    // --- integer binary -----------------------------------------------------
    case Opcode::Add:
      result = canon_int(a.bits + b.bits, t);
      break;
    case Opcode::Sub:
      result = canon_int(a.bits - b.bits, t);
      break;
    case Opcode::Mul:
      result = canon_int(a.bits * b.bits, t);
      break;
    case Opcode::SDiv:
    case Opcode::SRem: {
      if (ib == 0) {
        set_trap(TrapKind::DivByZero);
        return status_;
      }
      if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
        set_trap(TrapKind::IntOverflowDiv);
        return status_;
      }
      const std::int64_t r = ins.op == Opcode::SDiv ? ia / ib : ia % ib;
      result = canon_int(static_cast<std::uint64_t>(r), t);
      break;
    }
    case Opcode::And:
      result = canon_int(a.bits & b.bits, t);
      break;
    case Opcode::Or:
      result = canon_int(a.bits | b.bits, t);
      break;
    case Opcode::Xor:
      result = canon_int(a.bits ^ b.bits, t);
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      const unsigned width = bit_width(t);
      const std::uint64_t amt = b.bits;
      if (amt >= width) {
        set_trap(TrapKind::BadShift);
        return status_;
      }
      if (ins.op == Opcode::Shl) {
        result = canon_int(a.bits << amt, t);
      } else if (ins.op == Opcode::LShr) {
        const std::uint64_t ua = util::truncate_to(a.bits, width);
        result = canon_int(ua >> amt, t);
      } else {
        result = canon_int(static_cast<std::uint64_t>(ia >> amt), t);
      }
      break;
    }

    // --- floating binary ----------------------------------------------------
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits), y = bits_to_f32(b.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits), y = bits_to_f64(b.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FAdd: r = x + y; break;
          case Opcode::FSub: r = x - y; break;
          case Opcode::FMul: r = x * y; break;
          default: r = x / y; break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- floating unary -----------------------------------------------------
    case Opcode::FNeg:
    case Opcode::FSqrt:
    case Opcode::FAbs:
    case Opcode::FFloor: {
      if (t == Type::F32) {
        const float x = bits_to_f32(a.bits);
        float r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f32_to_bits(r);
      } else {
        const double x = bits_to_f64(a.bits);
        double r = 0;
        switch (ins.op) {
          case Opcode::FNeg: r = -x; break;
          case Opcode::FSqrt: r = std::sqrt(x); break;
          case Opcode::FAbs: r = std::fabs(x); break;
          default: r = std::floor(x); break;
        }
        result = f64_to_bits(r);
      }
      break;
    }

    // --- comparisons --------------------------------------------------------
    case Opcode::ICmp: {
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = ia == ib; break;
        case CmpPred::Ne: r = ia != ib; break;
        case CmpPred::Lt: r = ia < ib; break;
        case CmpPred::Le: r = ia <= ib; break;
        case CmpPred::Gt: r = ia > ib; break;
        case CmpPred::Ge: r = ia >= ib; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::FCmp: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double y = b.type == Type::F32
                           ? static_cast<double>(bits_to_f32(b.bits))
                           : bits_to_f64(b.bits);
      bool r = false;
      switch (ins.pred) {
        case CmpPred::Eq: r = x == y; break;
        case CmpPred::Ne: r = x != y; break;
        case CmpPred::Lt: r = x < y; break;
        case CmpPred::Le: r = x <= y; break;
        case CmpPred::Gt: r = x > y; break;
        case CmpPred::Ge: r = x >= y; break;
        case CmpPred::None: break;
      }
      result = r ? 1 : 0;
      break;
    }
    case Opcode::Select:
      result = (a.bits & 1) ? b.bits : c.bits;
      break;

    // --- casts ---------------------------------------------------------------
    case Opcode::Trunc:
      result = canon_int(a.bits, t);
      break;
    case Opcode::SExt:
      result = a.bits;  // canonical form is already sign-extended
      break;
    case Opcode::ZExt:
      result = util::truncate_to(a.bits, bit_width(a.type));
      break;
    case Opcode::FPTrunc:
      result = f32_to_bits(static_cast<float>(bits_to_f64(a.bits)));
      break;
    case Opcode::FPExt:
      result = f64_to_bits(static_cast<double>(bits_to_f32(a.bits)));
      break;
    case Opcode::FPToSI: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
        set_trap(TrapKind::FpDomain);
        return status_;
      }
      result = canon_int(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(x)),
                         t);
      break;
    }
    case Opcode::SIToFP: {
      const auto x = static_cast<double>(ia);
      result = t == Type::F32 ? f32_to_bits(static_cast<float>(x))
                              : f64_to_bits(x);
      break;
    }
    case Opcode::Bitcast:
      if (t == Type::I32) {
        result = canon_int(a.bits, t);  // keep I32 canonical (sign-extended)
      } else {
        result = bit_width(t) == 32 ? util::truncate_to(a.bits, 32) : a.bits;
      }
      break;

    // --- memory ---------------------------------------------------------------
    case Opcode::Alloca: {
      const auto size = static_cast<std::uint64_t>(ins.aux);
      const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
      if (aligned + size > mem_.size()) {
        set_trap(TrapKind::StackOverflow);
        return status_;
      }
      result = aligned;
      sp_ = aligned + size;
      break;
    }
    case Opcode::Load: {
      // Operand order in records: [0] = memory cell, [1] = pointer dep.
      const std::uint64_t addr = a.bits;
      const auto size = store_size(t);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = 0;
      std::memcpy(&bits, &mem_[addr], size);
      result = is_int(t) ? canon_int(bits, t) : bits;
      if constexpr (Traced) {
        out->mem_addr = addr;
        out->mem_size = size;
        out->nops = 2;
        out->op_loc[0] = mem_loc(addr);
        out->op_bits[0] = result;
        out->op_type[0] = t;
        out->op_loc[1] = a.loc;  // the pointer value's own location
        out->op_bits[1] = a.bits;
        out->op_type[1] = Type::Ptr;
      }
      break;
    }
    case Opcode::Store: {
      const std::uint64_t addr = b.bits;
      const auto size = store_size(a.type);
      if (!mem_ok(addr, size)) {
        set_trap(TrapKind::OutOfBounds);
        return status_;
      }
      std::uint64_t bits = a.bits;
      maybe_flip_result(bits);
      std::memcpy(&mem_[addr], &bits, size);
      if (!dirty_.empty()) mark_dirty(addr, size);
      has_res = false;
      result_location = mem_loc(addr);
      result = bits;
      if constexpr (Traced) {
        out->mem_addr = addr;
        out->mem_size = size;
      }
      break;
    }
    case Opcode::Gep: {
      // Unsigned multiply: a fault-corrupted index can overflow, and two's
      // complement wraparound (not signed-overflow UB) is the semantic all
      // three engine copies share.
      const std::uint64_t base = a.bits;
      result = base + b.bits * static_cast<std::uint64_t>(ins.aux);
      break;
    }

    // --- control -----------------------------------------------------------------
    case Opcode::Br:
      fr.pc = ins.target_taken;
      advance_pc = false;
      break;
    case Opcode::CondBr: {
      const bool taken = (a.bits & 1) != 0;
      fr.pc = taken ? ins.target_taken : ins.target_fall;
      advance_pc = false;
      if constexpr (Traced) out->branch_taken = taken;
      break;
    }
    case Opcode::Ret: {
      const bool has_val = nsrc > 0;
      const std::uint64_t ret_bits = has_val ? a.bits : 0;
      if (dframes_.size() == 1) {
        status_ = Status::Finished;
        advance_pc = false;
      } else {
        sp_ = fr.saved_sp;
        const std::uint32_t dest_reg = fr.ret_reg;
        slot_top_ = fr.reg_base;
        arg_loc_top_ = fr.arg_loc_base;
        dframes_.pop_back();
        DFrame& caller = dframes_.back();
        if (dest_reg != ir::kNoReg) {
          std::uint64_t bits = ret_bits;
          maybe_flip_result(bits);
          slots_[caller.reg_base + dest_reg] = bits;
          result_location = reg_loc(caller.activation, dest_reg);
          result = bits;
          if constexpr (Traced) {
            out->result_loc = result_location;
            out->result_bits = bits;
          }
        }
        advance_pc = false;  // caller pc was advanced at call time
      }
      has_res = false;
      break;
    }
    case Opcode::Call: {
      if (dframes_.size() >= opts_.max_call_depth) {
        set_trap(TrapKind::CallDepth);
        return status_;
      }
      fr.pc++;  // resume point after return
      advance_pc = false;
      // NB: push_dframe may reallocate dframes_, invalidating `fr`; it
      // copies what it needs from the caller frame before pushing.
      push_dframe(ins, fr, Traced ? out : nullptr);
      has_res = false;  // result is committed by Ret
      break;
    }

    // --- intrinsics -----------------------------------------------------------------
    case Opcode::Rand:
      result = f64_to_bits(randlc_.next());
      break;
    case Opcode::Emit: {
      outputs_.push_back({a.bits, a.type});
      // Expose the emitted bits for differential comparison (no location).
      if constexpr (Traced) out->result_bits = a.bits;
      break;
    }
    case Opcode::EmitTrunc: {
      const double x = a.type == Type::F32
                           ? static_cast<double>(bits_to_f32(a.bits))
                           : bits_to_f64(a.bits);
      const double r = detail::round_to_digits(x, static_cast<int>(ins.aux));
      outputs_.push_back({f64_to_bits(r), Type::F64});
      // The *rounded* value is what the user sees; comparing it is what
      // makes Pattern 5 (data truncation) observable in the diff.
      if constexpr (Traced) out->result_bits = f64_to_bits(r);
      break;
    }
    case Opcode::RegionEnter: {
      const auto rid = static_cast<std::uint32_t>(ins.aux);
      apply_region_entry_fault(rid);
      region_counts_[rid]++;
      break;
    }
    case Opcode::RegionExit:
      break;

    // --- MiniMPI (null endpoint = single-rank world; see interp_shared.h) -----
    case Opcode::MpiRank:
      result = static_cast<std::uint64_t>(detail::mpi_rank_of(opts_.mpi));
      break;
    case Opcode::MpiSize:
      result = static_cast<std::uint64_t>(detail::mpi_size_of(opts_.mpi));
      break;
    case Opcode::MpiSend:
      detail::mpi_send_on(opts_.mpi, static_cast<std::int64_t>(a.bits),
                          bits_to_f64(b.bits));
      break;
    case Opcode::MpiRecv:
      result = f64_to_bits(
          detail::mpi_recv_on(opts_.mpi, static_cast<std::int64_t>(a.bits)));
      break;
    case Opcode::MpiAllreduce:
      result = f64_to_bits(detail::mpi_allreduce_on(
          opts_.mpi, bits_to_f64(a.bits),
          static_cast<ir::ReduceOp>(ins.aux)));
      break;
    case Opcode::MpiBarrier:
      detail::mpi_barrier_on(opts_.mpi);
      break;

    case Opcode::CheckTrap:
      // Hardening detector (src/harden/): trap-before-retire, like every
      // other trap — the detector instruction itself never commits.
      if ((a.bits & 1) != 0) {
        set_trap(TrapKind::DetectedFault);
        return status_;
      }
      break;
  }

  if (has_res) {
    maybe_flip_result(result);
    // `fr` may dangle only after Call/Ret, which set has_res = false.
    slots_[fr.reg_base + ins.result] = result;
  }

  if constexpr (Traced) {
    if (has_res || ins.op == Opcode::Store) {
      out->result_loc = result_location;
      out->result_bits = result;
    }
  } else {
    (void)result_location;
  }

  if (advance_pc) fr.pc++;
  n_retired_++;
  return status_;
}

template Vm::Status Vm::step_decoded<true>(DynInstr* out);
template Vm::Status Vm::step_decoded<false>(DynInstr* out);

// ---------------------------------------------------------------------------
// Decoded hot loop: the run-to-completion path every campaign trial and —
// since the columnar-trace refactor — every full traced run takes. Machine
// state (retired count, current frame, code/operand base pointers) lives in
// locals; dispatch is computed goto where the toolchain supports
// labels-as-values (each opcode body ends in its own indirect jump, so the
// branch predictor learns per-opcode successor patterns), with a
// dense-opcode switch fallback elsewhere.
//
// Two instantiations:
//   * Traced == false — the no-observer campaign path (nothing recorded);
//   * Traced == true  — direct emission into VmOptions::column_sink: each
//     fetched instruction opens a columnar record (pc, activation, packed
//     operand bits), results land via set_result at commit time, and a
//     record whose instruction traps mid-flight is rolled back at `done`.
//     No DynInstr is materialized and no virtual observer dispatch runs.
//
// Semantics must stay identical to step_decoded — tests/decode_test.cpp
// pins the untraced equivalence against the legacy engine for all ten
// workloads, and tests/column_trace_test.cpp pins the emitted columnar
// records against the observer-collected DynInstr stream.
// ---------------------------------------------------------------------------

#if !defined(FT_VM_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define FT_VM_COMPUTED_GOTO 1
#else
#define FT_VM_COMPUTED_GOTO 0
#endif

template <bool Traced>
void Vm::run_decoded_hot() {
  if (status_ != Status::Running) return;

  const DecodedInstr* const code = prog_->code();
  const Src* const srcs_all = prog_->srcs();
  const std::uint64_t max_instr = opts_.max_instructions;
  // One compare serves both the hang budget and run_until()'s pause mark;
  // which of the two was hit is decided once, at `limit_reached`.
  const std::uint64_t stop_limit = std::min(max_instr, stop_at_);
  const bool fault_rb = opts_.fault.kind == FaultPlan::Kind::ResultBit;
  const bool track_writes = !dirty_.empty();
  // Dispatch counters (VmOptions::count_opcodes): one increment per fetch,
  // kept out of the common path by the null check.
  std::uint64_t* const opcount =
      opcode_counts_.empty() ? nullptr : opcode_counts_.data();
  std::uint64_t retired = n_retired_;
  DFrame* fr = &dframes_.back();
  const DecodedInstr* ins = nullptr;
  const Src* srcs = nullptr;
  trace::ColumnTrace* const sink = opts_.column_sink;
  (void)sink;  // only the Traced instantiation reads it
  // Retired count of the sink's row 0: zero on a fresh run, the resume
  // point when a run_until()-paused traced machine continues.
  std::uint64_t trace_base = 0;
  if constexpr (Traced) trace_base = retired - sink->size();
  (void)trace_base;

  // Operand value (bits only — locations are derived or escaped at emit
  // time). Const and None read the pre-computed bits; None carries 0,
  // matching the legacy engine's empty evaluation of absent operands.
  const auto val = [&](const Src& s) -> std::uint64_t {
    switch (s.kind) {
      case SrcKind::Reg: return slots_[fr->reg_base + s.index];
      case SrcKind::Arg: return slots_[fr->arg_base + s.index];
      default: return s.bits;
    }
  };
  // Fault application at commit time; `retired` is this instruction's
  // dynamic index (pre-increment), exactly as maybe_flip_result sees it.
  const auto flip = [&](std::uint64_t& bits) {
    if (fault_rb && !fault_fired_ && retired == opts_.fault.dyn_index) {
      bits = util::flip_bit(bits, opts_.fault.bit);
      fault_fired_ = true;
    }
  };
  // Commit a register-defining result (every defining opcode flips here,
  // mirroring the has_res path of the stepping engines). Traced: the
  // committed bits are the record's result column.
  const auto commit = [&](std::uint64_t bits) {
    flip(bits);
    slots_[fr->reg_base + ins->result] = bits;
    if constexpr (Traced) sink->set_result(bits);
  };
  // Open the columnar record of the fetched instruction: pc + activation
  // fixed columns, operand values into the packed pool, caller-provided
  // Arg locations into the escape list. Runs before the handler, so
  // operand values are read pre-commit (a = add a, b records the old a).
  const auto emit_record = [&] {
    if constexpr (Traced) {
      sink->begin_record(fr->pc, fr->activation);
      const auto nrec = std::min<unsigned>(ins->src_count, kMaxTracedOps);
      for (unsigned i = 0; i < nrec; ++i) {
        const Src& s = srcs[i];
        if (s.kind == SrcKind::None) continue;
        sink->push_op(val(s));
        if (s.kind == SrcKind::Arg) {
          sink->push_op_loc(static_cast<std::uint8_t>(i),
                            arg_locs_[fr->arg_loc_base + s.index]);
        }
      }
    }
  };

  static_assert(static_cast<int>(Opcode::CheckTrap) == 49,
                "opcode set changed: update the hot-loop dispatch table");

#if FT_VM_COMPUTED_GOTO
  static const void* const kOpTable[] = {
      &&op_Add, &&op_Sub, &&op_Mul, &&op_SDiv, &&op_SRem,
      &&op_And, &&op_Or, &&op_Xor, &&op_Shl, &&op_LShr, &&op_AShr,
      &&op_FAdd, &&op_FSub, &&op_FMul, &&op_FDiv,
      &&op_FNeg, &&op_FSqrt, &&op_FAbs, &&op_FFloor,
      &&op_ICmp, &&op_FCmp, &&op_Select,
      &&op_Trunc, &&op_SExt, &&op_ZExt, &&op_FPTrunc, &&op_FPExt,
      &&op_FPToSI, &&op_SIToFP, &&op_Bitcast,
      &&op_Alloca, &&op_Load, &&op_Store, &&op_Gep,
      &&op_Br, &&op_CondBr, &&op_Ret, &&op_Call,
      &&op_Rand, &&op_Emit, &&op_EmitTrunc, &&op_RegionEnter, &&op_RegionExit,
      &&op_MpiRank, &&op_MpiSize, &&op_MpiSend, &&op_MpiRecv,
      &&op_MpiAllreduce, &&op_MpiBarrier,
      &&op_CheckTrap,
  };
#define FT_OP(name) op_##name
#define FT_NEXT()                                            \
  do {                                                       \
    if (++retired >= stop_limit) goto limit_reached;         \
    ins = &code[fr->pc];                                     \
    srcs = srcs_all + ins->src_begin;                        \
    if (opcount) ++opcount[static_cast<std::uint8_t>(ins->op)]; \
    emit_record();                                           \
    goto* kOpTable[static_cast<std::uint8_t>(ins->op)];      \
  } while (0)

  if (retired >= stop_limit) goto limit_reached;
  ins = &code[fr->pc];
  srcs = srcs_all + ins->src_begin;
  if (opcount) ++opcount[static_cast<std::uint8_t>(ins->op)];
  emit_record();
  goto* kOpTable[static_cast<std::uint8_t>(ins->op)];
#else
#define FT_OP(name) case Opcode::name
#define FT_NEXT()                                            \
  {                                                          \
    ++retired;                                               \
    break;                                                   \
  }

  for (;;) {
    if (retired >= stop_limit) goto limit_reached;
    ins = &code[fr->pc];
    srcs = srcs_all + ins->src_begin;
    if (opcount) ++opcount[static_cast<std::uint8_t>(ins->op)];
    emit_record();
    switch (ins->op) {
#endif

  FT_OP(Add) : {
    commit(canon_int(val(srcs[0]) + val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Sub) : {
    commit(canon_int(val(srcs[0]) - val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Mul) : {
    commit(canon_int(val(srcs[0]) * val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SDiv) : FT_OP(SRem) : {
    const auto ia = static_cast<std::int64_t>(val(srcs[0]));
    const auto ib = static_cast<std::int64_t>(val(srcs[1]));
    if (ib == 0) {
      set_trap(TrapKind::DivByZero);
      goto done;
    }
    if (ia == std::numeric_limits<std::int64_t>::min() && ib == -1) {
      set_trap(TrapKind::IntOverflowDiv);
      goto done;
    }
    const std::int64_t r = ins->op == Opcode::SDiv ? ia / ib : ia % ib;
    commit(canon_int(static_cast<std::uint64_t>(r), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(And) : {
    commit(canon_int(val(srcs[0]) & val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Or) : {
    commit(canon_int(val(srcs[0]) | val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Xor) : {
    commit(canon_int(val(srcs[0]) ^ val(srcs[1]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Shl) : FT_OP(LShr) : FT_OP(AShr) : {
    const unsigned width = bit_width(ins->type);
    const std::uint64_t x = val(srcs[0]);
    const std::uint64_t amt = val(srcs[1]);
    if (amt >= width) {
      set_trap(TrapKind::BadShift);
      goto done;
    }
    std::uint64_t r;
    if (ins->op == Opcode::Shl) {
      r = canon_int(x << amt, ins->type);
    } else if (ins->op == Opcode::LShr) {
      r = canon_int(util::truncate_to(x, width) >> amt, ins->type);
    } else {
      r = canon_int(static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(x) >> amt),
                    ins->type);
    }
    commit(r);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FAdd) : FT_OP(FSub) : FT_OP(FMul) : FT_OP(FDiv) : {
    const std::uint64_t xb = val(srcs[0]), yb = val(srcs[1]);
    std::uint64_t rb;
    if (ins->type == Type::F32) {
      const float x = bits_to_f32(xb), y = bits_to_f32(yb);
      float r = 0;
      switch (ins->op) {
        case Opcode::FAdd: r = x + y; break;
        case Opcode::FSub: r = x - y; break;
        case Opcode::FMul: r = x * y; break;
        default: r = x / y; break;
      }
      rb = f32_to_bits(r);
    } else {
      const double x = bits_to_f64(xb), y = bits_to_f64(yb);
      double r = 0;
      switch (ins->op) {
        case Opcode::FAdd: r = x + y; break;
        case Opcode::FSub: r = x - y; break;
        case Opcode::FMul: r = x * y; break;
        default: r = x / y; break;
      }
      rb = f64_to_bits(r);
    }
    commit(rb);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FNeg) : FT_OP(FSqrt) : FT_OP(FAbs) : FT_OP(FFloor) : {
    const std::uint64_t xb = val(srcs[0]);
    std::uint64_t rb;
    if (ins->type == Type::F32) {
      const float x = bits_to_f32(xb);
      float r = 0;
      switch (ins->op) {
        case Opcode::FNeg: r = -x; break;
        case Opcode::FSqrt: r = std::sqrt(x); break;
        case Opcode::FAbs: r = std::fabs(x); break;
        default: r = std::floor(x); break;
      }
      rb = f32_to_bits(r);
    } else {
      const double x = bits_to_f64(xb);
      double r = 0;
      switch (ins->op) {
        case Opcode::FNeg: r = -x; break;
        case Opcode::FSqrt: r = std::sqrt(x); break;
        case Opcode::FAbs: r = std::fabs(x); break;
        default: r = std::floor(x); break;
      }
      rb = f64_to_bits(r);
    }
    commit(rb);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(ICmp) : {
    const auto ia = static_cast<std::int64_t>(val(srcs[0]));
    const auto ib = static_cast<std::int64_t>(val(srcs[1]));
    bool r = false;
    switch (ins->pred) {
      case CmpPred::Eq: r = ia == ib; break;
      case CmpPred::Ne: r = ia != ib; break;
      case CmpPred::Lt: r = ia < ib; break;
      case CmpPred::Le: r = ia <= ib; break;
      case CmpPred::Gt: r = ia > ib; break;
      case CmpPred::Ge: r = ia >= ib; break;
      case CmpPred::None: break;
    }
    commit(r ? 1 : 0);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FCmp) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    const double y = srcs[1].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[1])))
                         : bits_to_f64(val(srcs[1]));
    bool r = false;
    switch (ins->pred) {
      case CmpPred::Eq: r = x == y; break;
      case CmpPred::Ne: r = x != y; break;
      case CmpPred::Lt: r = x < y; break;
      case CmpPred::Le: r = x <= y; break;
      case CmpPred::Gt: r = x > y; break;
      case CmpPred::Ge: r = x >= y; break;
      case CmpPred::None: break;
    }
    commit(r ? 1 : 0);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Select) : {
    commit((val(srcs[0]) & 1) ? val(srcs[1]) : val(srcs[2]));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Trunc) : {
    commit(canon_int(val(srcs[0]), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SExt) : {
    commit(val(srcs[0]));  // canonical form is already sign-extended
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(ZExt) : {
    commit(util::truncate_to(val(srcs[0]), bit_width(srcs[0].type)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPTrunc) : {
    commit(f32_to_bits(static_cast<float>(bits_to_f64(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPExt) : {
    commit(f64_to_bits(static_cast<double>(bits_to_f32(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(FPToSI) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    if (std::isnan(x) || x < -9.3e18 || x > 9.3e18) {
      set_trap(TrapKind::FpDomain);
      goto done;
    }
    commit(canon_int(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(x)), ins->type));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(SIToFP) : {
    const auto x =
        static_cast<double>(static_cast<std::int64_t>(val(srcs[0])));
    commit(ins->type == Type::F32 ? f32_to_bits(static_cast<float>(x))
                                  : f64_to_bits(x));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Bitcast) : {
    const std::uint64_t x = val(srcs[0]);
    std::uint64_t r;
    if (ins->type == Type::I32) {
      r = canon_int(x, ins->type);  // keep I32 canonical (sign-extended)
    } else {
      r = bit_width(ins->type) == 32 ? util::truncate_to(x, 32) : x;
    }
    commit(r);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Alloca) : {
    const auto size = static_cast<std::uint64_t>(ins->aux);
    const std::uint64_t aligned = (sp_ + 7) & ~std::uint64_t{7};
    if (aligned + size > mem_.size()) {
      set_trap(TrapKind::StackOverflow);
      goto done;
    }
    sp_ = aligned + size;
    commit(aligned);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Load) : {
    const std::uint64_t addr = val(srcs[0]);
    const auto size = store_size(ins->type);
    if (!mem_ok(addr, size)) {
      set_trap(TrapKind::OutOfBounds);
      goto done;
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, &mem_[addr], size);
    const std::uint64_t loaded =
        is_int(ins->type) ? canon_int(bits, ins->type) : bits;
    commit(loaded);
    if constexpr (Traced) {
      // Rare escape: a result-bit fault on this very load makes the
      // recorded memory-cell operand (pre-flip) differ from the result.
      if (slots_[fr->reg_base + ins->result] != loaded) {
        sink->set_load_value(loaded);
      }
    }
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Store) : {
    const std::uint64_t addr = val(srcs[1]);
    const auto size = store_size(srcs[0].type);
    if (!mem_ok(addr, size)) {
      set_trap(TrapKind::OutOfBounds);
      goto done;
    }
    std::uint64_t bits = val(srcs[0]);
    flip(bits);
    std::memcpy(&mem_[addr], &bits, size);
    if (track_writes) mark_dirty(addr, size);
    if constexpr (Traced) sink->set_result(bits);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Gep) : {
    // Unsigned multiply — see the Gep note in the stepping engines.
    const std::uint64_t base = val(srcs[0]);
    commit(base + val(srcs[1]) * static_cast<std::uint64_t>(ins->aux));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Br) : {
    fr->pc = ins->target_taken;
    FT_NEXT();
  }
  FT_OP(CondBr) : {
    fr->pc = (val(srcs[0]) & 1) != 0 ? ins->target_taken : ins->target_fall;
    FT_NEXT();
  }
  FT_OP(Ret) : {
    const std::uint64_t ret_bits = ins->src_count > 0 ? val(srcs[0]) : 0;
    if (dframes_.size() == 1) {
      status_ = Status::Finished;
      ++retired;
      goto done;
    }
    sp_ = fr->saved_sp;
    const std::uint32_t dest_reg = fr->ret_reg;
    slot_top_ = fr->reg_base;
    arg_loc_top_ = fr->arg_loc_base;
    dframes_.pop_back();
    fr = &dframes_.back();
    if (dest_reg != ir::kNoReg) {
      std::uint64_t bits = ret_bits;
      flip(bits);
      slots_[fr->reg_base + dest_reg] = bits;
      if constexpr (Traced) {
        sink->set_result(bits);
        sink->set_result_loc(reg_loc(fr->activation, dest_reg));
      }
    }
    FT_NEXT();
  }
  FT_OP(Call) : {
    if (dframes_.size() >= opts_.max_call_depth) {
      set_trap(TrapKind::CallDepth);
      goto done;
    }
    fr->pc++;  // resume point after return
    push_dframe(*ins, *fr, nullptr);
    fr = &dframes_.back();
    FT_NEXT();
  }
  FT_OP(Rand) : {
    commit(f64_to_bits(randlc_.next()));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(Emit) : {
    const std::uint64_t bits = val(srcs[0]);
    outputs_.push_back({bits, srcs[0].type});
    // The emitted bits are the record's comparable result (no location).
    if constexpr (Traced) sink->set_result(bits);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(EmitTrunc) : {
    const double x = srcs[0].type == Type::F32
                         ? static_cast<double>(bits_to_f32(val(srcs[0])))
                         : bits_to_f64(val(srcs[0]));
    const double r = detail::round_to_digits(x, static_cast<int>(ins->aux));
    outputs_.push_back({f64_to_bits(r), Type::F64});
    if constexpr (Traced) sink->set_result(f64_to_bits(r));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(RegionEnter) : {
    const auto rid = static_cast<std::uint32_t>(ins->aux);
    apply_region_entry_fault(rid);
    region_counts_[rid]++;
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(RegionExit) : {
    fr->pc++;
    FT_NEXT();
  }
  // MiniMPI: a null endpoint is a single-rank world (interp_shared.h states
  // the exact semantics once for all engines).
  FT_OP(MpiRank) : {
    commit(static_cast<std::uint64_t>(detail::mpi_rank_of(opts_.mpi)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiSize) : {
    commit(static_cast<std::uint64_t>(detail::mpi_size_of(opts_.mpi)));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiSend) : {
    detail::mpi_send_on(opts_.mpi, static_cast<std::int64_t>(val(srcs[0])),
                        bits_to_f64(val(srcs[1])));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiRecv) : {
    commit(f64_to_bits(detail::mpi_recv_on(
        opts_.mpi, static_cast<std::int64_t>(val(srcs[0])))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiAllreduce) : {
    commit(f64_to_bits(detail::mpi_allreduce_on(
        opts_.mpi, bits_to_f64(val(srcs[0])),
        static_cast<ir::ReduceOp>(ins->aux))));
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(MpiBarrier) : {
    detail::mpi_barrier_on(opts_.mpi);
    fr->pc++;
    FT_NEXT();
  }
  FT_OP(CheckTrap) : {
    // Hardening detector: the trapping instruction never retires, so a
    // firing detector rolls its partial record back like every other trap.
    if ((val(srcs[0]) & 1) != 0) {
      set_trap(TrapKind::DetectedFault);
      goto done;
    }
    fr->pc++;
    FT_NEXT();
  }

#if !FT_VM_COMPUTED_GOTO
    }
  }
#endif
#undef FT_OP
#undef FT_NEXT

limit_reached:
  // Reaching run_until()'s pause mark is not a trap: the machine stays
  // Running and a later run resumes here. Only the hang budget traps.
  if (retired >= max_instr) set_trap(TrapKind::Hang);
done:
  n_retired_ = retired;
  // A record is opened per *fetched* instruction; an instruction that
  // trapped mid-execution did not retire, so its partial record rolls back.
  // Rows are counted relative to the sink (a resumed machine appends its
  // suffix to whatever the sink already holds).
  if constexpr (Traced) sink->truncate_to(retired - trace_base);
}

template void Vm::run_decoded_hot<true>();
template void Vm::run_decoded_hot<false>();

void Vm::run_until(std::uint64_t target) {
  assert(prog_ && "run_until drives the decoded engine only");
  assert(!opts_.observer && "run_until bypasses the observer path");
  stop_at_ = target;
  if (opts_.column_sink) {
    run_decoded_hot<true>();
  } else if (opts_.jit && opcode_counts_.empty()) {
    run_jit();
  } else {
    run_decoded_hot<false>();
  }
  stop_at_ = ~std::uint64_t{0};
}

}  // namespace ft::vm
