// Engine-shared execution helpers.
//
// The interpreter is split across translation units (interp.cpp for the
// machine-state plumbing, interp_legacy.cpp for the tree-walker,
// interp_decoded.cpp for the decoded hot loop, interp_jit.cpp for the native
// driver) and the JIT runtime helpers (jit/jit_runtime.cpp) retire the same
// intrinsics. Everything here is the single definition they all link
// against — the semantics are stated once instead of implied per engine.
#pragma once

#include <charconv>
#include <cstdint>

#include "ir/opcode.h"
#include "vm/mpi_endpoint.h"

namespace ft::vm::detail {

// --- null-endpoint MiniMPI semantics -----------------------------------------
// A Vm with no MpiEndpoint behaves as a single-rank world (the contract in
// vm/mpi_endpoint.h, pinned by tests/mpi_test.cpp): rank 0, size 1, identity
// allreduce, no-op barrier. Point-to-point ops have no peer to pair with, so
// send drops its payload and recv yields 0.0 — a single-rank program that
// genuinely self-messages needs a real one-rank mpi::World. All engines
// (legacy, decoded, decoded+traced, and the JIT's deopt path) route through
// these helpers so the behavior is stated once instead of per opcode site.

inline std::int64_t mpi_rank_of(const MpiEndpoint* ep) {
  return ep ? ep->rank() : 0;
}

inline std::int64_t mpi_size_of(const MpiEndpoint* ep) {
  return ep ? ep->size() : 1;
}

inline void mpi_send_on(MpiEndpoint* ep, std::int64_t dest, double value) {
  if (ep) ep->send(dest, value);
}

inline double mpi_recv_on(MpiEndpoint* ep, std::int64_t src) {
  return ep ? ep->recv(src) : 0.0;
}

inline double mpi_allreduce_on(MpiEndpoint* ep, double value,
                               ir::ReduceOp op) {
  return ep ? ep->allreduce(value, op) : value;
}

inline void mpi_barrier_on(MpiEndpoint* ep) {
  if (ep) ep->barrier();
}

/// Round `v` to `digits` significant decimal digits after the leading one,
/// exactly as the old snprintf("%.*e") / strtod round trip did in the C
/// locale — but locale-independent and allocation-free: std::to_chars and
/// std::from_chars are correctly rounded in both directions and ignore the
/// global locale. This sits on the retire path of every EmitTrunc, in every
/// engine (the JIT calls it through ft_jit_helper_emit_trunc).
inline double round_to_digits(double v, int digits) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::scientific, digits);
  // A digit count that overflows the buffer keeps more precision than the
  // value has anyway; fall back to the unrounded value.
  if (res.ec != std::errc{}) return v;
  double out = v;
  std::from_chars(buf, res.ptr, out);
  return out;
}

}  // namespace ft::vm::detail
