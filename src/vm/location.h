// Location encoding (§III-C of the paper).
//
// A *location* is where a value lives: a virtual-register instance or a
// memory word. The paper's ACL table is keyed by locations; we encode both
// flavours into one uint64 so trace records and taint sets stay flat:
//
//   0                                  -> "no location" (immediates, none)
//   [1, 2^48)                          -> memory address
//   bit 63 set | activation<<20 | reg  -> register `reg` of the activation
//
// Register locations are per *activation* (function-frame instance), so the
// same static register in two calls is two distinct locations — matching
// the dynamic-trace view of LLVM-Tracer.
#pragma once

#include <cstdint>
#include <string>

namespace ft::vm {

using Location = std::uint64_t;

inline constexpr Location kNoLoc = 0;
inline constexpr std::uint64_t kRegTag = std::uint64_t{1} << 63;
inline constexpr unsigned kRegBits = 20;  // up to 2^20 registers per function

[[nodiscard]] constexpr Location mem_loc(std::uint64_t address) noexcept {
  return address;
}

[[nodiscard]] constexpr Location reg_loc(std::uint64_t activation,
                                         std::uint32_t reg) noexcept {
  return kRegTag | (activation << kRegBits) | reg;
}

[[nodiscard]] constexpr bool is_reg_loc(Location l) noexcept {
  return (l & kRegTag) != 0;
}

[[nodiscard]] constexpr bool is_mem_loc(Location l) noexcept {
  return l != kNoLoc && !is_reg_loc(l);
}

[[nodiscard]] constexpr std::uint64_t loc_address(Location l) noexcept {
  return l;  // valid only for memory locations
}

[[nodiscard]] constexpr std::uint32_t loc_reg(Location l) noexcept {
  return static_cast<std::uint32_t>(l & ((1u << kRegBits) - 1));
}

[[nodiscard]] constexpr std::uint64_t loc_activation(Location l) noexcept {
  return (l & ~kRegTag) >> kRegBits;
}

[[nodiscard]] inline std::string loc_to_string(Location l) {
  if (l == kNoLoc) return "<none>";
  if (is_reg_loc(l)) {
    return "r" + std::to_string(loc_reg(l)) + "@" +
           std::to_string(loc_activation(l));
  }
  return "mem:" + std::to_string(loc_address(l));
}

}  // namespace ft::vm
