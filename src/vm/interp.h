/// @file
/// The MiniIR interpreter.
///
/// One Vm executes one module deterministically: same module + same options
/// (seed, fault plan) => bit-identical instruction stream. Determinism is
/// what lets FlipTracker match faulty runs against fault-free runs
/// record-by-record (the paper relies on record-and-replay for this, §V-B;
/// our VM is deterministic by construction).
///
/// Two execution engines, bit-identical by construction and pinned so by
/// tests/decode_test.cpp:
///   * decoded — constructed from a vm::DecodedProgram (vm/decode.h): flat
///     pre-resolved instruction stream dispatched over a dense-opcode jump
///     table, with one contiguous register/argument stack shared by all
///     frames (no per-frame heap allocation). This is the hot engine every
///     campaign trial runs on; decode once per program, execute thousands
///     of times.
///   * legacy — constructed from an ir::Module directly: walks the nested
///     ir::Instruction/ir::Operand representation. Kept as the reference
///     implementation and the A/B baseline for the decoded engine.
///
/// Three driving styles:
///   * Vm::run()  — run to completion. With VmOptions::column_sink set (and
///                  no observer), the decoded hot loop appends every record
///                  directly into the columnar trace — no DynInstr, no
///                  virtual dispatch. With an observer, records stream
///                  through the ExecObserver hook (the gating/selective
///                  path). With neither, nothing is materialized (the
///                  campaign fast path).
///   * Vm::step() — retire one instruction at a time; used by the lockstep
///                  differential engine (src/acl/) to compare a faulty and a
///                  fault-free execution.
///   * Vm::run_until() — run the decoded hot loop up to a target retired
///                  count and stop with the machine still Running. Paired
///                  with save()/restore()/fork_from() (Vm::Snapshot) this
///                  is what the snapshot-forked campaign scheduler
///                  (src/fault/) builds on: execute the golden prefix
///                  once (a cursor machine, resumed site to site, never
///                  from zero) and fork every injection trial at exactly
///                  its site instead of replaying the prefix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/module.h"
#include "util/rng.h"
#include "vm/decode.h"
#include "vm/fault_plan.h"
#include "vm/mpi_endpoint.h"
#include "vm/observer.h"
#include "vm/trap.h"

namespace ft::trace {
class ColumnTrace;
}  // namespace ft::trace

namespace ft::jit {
class JitProgram;
struct VmAccess;
}  // namespace ft::jit

namespace ft::vm {

struct OutputValue {
  std::uint64_t bits = 0;
  ir::Type type = ir::Type::F64;

  [[nodiscard]] double as_f64() const noexcept;
  [[nodiscard]] std::int64_t as_i64() const noexcept;

  bool operator==(const OutputValue&) const = default;
};

struct VmOptions {
  std::uint64_t max_instructions = std::uint64_t{1} << 31;
  double rand_seed = 314159265.0;  // NAS randlc default
  ExecObserver* observer = nullptr;
  FaultPlan fault{};
  MpiEndpoint* mpi = nullptr;
  std::uint32_t max_call_depth = 256;
  /// When set, the Vm executes this pre-decoded form of the module instead
  /// of walking the IR (the Vm(const DecodedProgram&, ...) constructor
  /// fills it in). Must be decoded from the module being run.
  const DecodedProgram* program = nullptr;
  /// When set (decoded engine only, must be empty, built over the same
  /// program), run() executes the direct-emit hot loop: every retired
  /// record is appended straight into the columnar trace — no DynInstr is
  /// materialized and no observer dispatch runs. Ignored when an observer
  /// is also set (the observer path keeps gating/streaming semantics).
  trace::ColumnTrace* column_sink = nullptr;
  /// Track which memory pages the machine writes (decoded engine): enables
  /// the incremental state transfers of the campaign scheduler —
  /// Vm::restore_dirty() (re-restore a snapshot copying only the pages
  /// dirtied since) and Vm::fork_from() (sync a trial machine to the
  /// golden cursor through the union of both machines' dirty pages).
  /// Costs a couple of ALU ops per retired Store.
  bool track_writes = false;
  /// When set (decoded engine, untraced runs only), run()/run_until()
  /// execute natively through this pre-compiled form of the program instead
  /// of the interpreter hot loop — golden-cursor advances, trial tails and
  /// convergence probes all go native. Must be compiled from the same
  /// DecodedProgram the Vm executes, and must outlive the Vm. Ignored on
  /// observer/column-sink runs (those need per-instruction recording) and
  /// when `count_opcodes` is set. The machine state layout is shared with
  /// the interpreter, so snapshots, fork_from() and run_until() stop marks
  /// behave identically; tests/engine_fuzz_test.cpp pins the equivalence.
  const jit::JitProgram* jit = nullptr;
  /// Count per-opcode dynamic dispatches in the decoded interpreter
  /// (Vm::opcode_counts()). Forces the interpreter even when `jit` is set —
  /// the counters are how the JIT's opcode coverage is ranked by
  /// retired-instruction share (core/analysis.h reports them per app).
  bool count_opcodes = false;
};

struct RunResult {
  TrapKind trap = TrapKind::None;
  std::uint64_t instructions = 0;
  bool fault_fired = false;
  std::vector<OutputValue> outputs;

  [[nodiscard]] bool completed() const noexcept {
    return trap == TrapKind::None;
  }
};

class Vm {
 public:
  enum class Status : std::uint8_t { Running, Finished, Trapped };

  /// A deep copy of the decoded engine's machine state mid-run (defined
  /// after the class; it names private frame types). See save()/restore().
  struct Snapshot;

  /// The module must outlive the Vm and must be laid out (Module::layout(),
  /// done by ProgramBuilder::finish()). Runs the legacy tree-walking engine
  /// unless `opts.program` carries a decoded form of `m`.
  explicit Vm(const ir::Module& m, VmOptions opts = {});

  /// Execute the decoded engine over `p` (which must outlive the Vm, as
  /// must the module it was decoded from).
  explicit Vm(const DecodedProgram& p, VmOptions opts = {});

  /// Construct the decoded engine directly in a snapshotted state: cheaper
  /// than construct-then-restore() because the golden memory image is never
  /// zeroed and re-initialized first (one full-image write per campaign
  /// trial on the snapshot-forked path). The snapshot must come from a Vm
  /// over the same program.
  Vm(const DecodedProgram& p, const Snapshot& s, VmOptions opts = {});

  /// Retire one instruction. If `out` is non-null it receives the dynamic
  /// record of the retired instruction (unset when the instruction trapped).
  Status step(DynInstr* out);

  /// Run to completion (or trap), feeding opts.observer if present.
  RunResult run();

  /// One-shot conveniences.
  static RunResult run(const ir::Module& m, VmOptions opts = {});
  static RunResult run(const DecodedProgram& p, VmOptions opts = {});

  // --- snapshot / resume (decoded engine only) -------------------------------
  /// Run the decoded hot loop until `target` instructions have retired in
  /// total (n_retired() == target), the program finishes/traps, or the
  /// hang budget (VmOptions::max_instructions) classifies the run as hung.
  /// Stopping at the target leaves status() == Running; calling again (or
  /// run()) resumes exactly where execution stopped. Honors an attached
  /// column sink; incompatible with an observer.
  void run_until(std::uint64_t target);

  /// Deep-copy the full machine state (memory image, frame stack, live
  /// register/argument slots, stack pointer, RNG, outputs, region counts,
  /// retired count) into `out`, reusing its buffers. Everything execution
  /// depends on is captured: restore() followed by any run is bit-identical
  /// to an execution that never snapshotted (pinned by
  /// tests/snapshot_test.cpp).
  void save(Snapshot& out) const;
  [[nodiscard]] Snapshot snapshot() const;

  /// Overwrite the machine state with `s` (taken from a Vm over the same
  /// decoded program with the same options). The fault plan is NOT part of
  /// the snapshot — arm the trial's plan afterwards with set_fault().
  void restore(const Snapshot& s);

  /// Incremental restore (requires VmOptions::track_writes): copy back only
  /// the memory pages written since the last (full or incremental) restore,
  /// then restore the cheap non-memory state as restore() does.
  /// PRECONDITION: the machine's memory last equaled `s.mem` (it was
  /// constructed from or restored to this same snapshot) and has since been
  /// mutated only through tracked execution — restoring to a *different*
  /// snapshot must go through restore().
  void restore_dirty(const Snapshot& s);

  /// Become a copy of `golden` (both machines over the same program with
  /// track_writes on). With `full`, the whole memory image is copied; with
  /// `full == false` only the pages either machine dirtied since the two
  /// last had identical memory are copied — the exact-fork step of the
  /// campaign scheduler, where `golden` is a cursor crawling the fault-free
  /// prefix and this machine reruns trial after trial. Clears BOTH
  /// machines' dirty bitmaps (they are in sync again).
  void fork_from(Vm& golden, bool full);

  /// True when the live machine state equals `s` bit for bit (memory,
  /// frames, live slots, sp, RNG, outputs, region counts, retired count,
  /// status). Deliberately ignores the fault-fired flag: the forked-trial
  /// convergence probe guards on fault_fired() itself before trusting
  /// state equality (an armed-but-unfired plan could still diverge later).
  [[nodiscard]] bool state_equals(const Snapshot& s) const;

  /// state_equals minus the memory image and emitted outputs: frames, live
  /// slots, sp, RNG, region counts, retired count and status all equal.
  /// The compositional engine (src/compose/) uses this to decide whether a
  /// faulty section exit differs from golden ONLY in data — in which case
  /// the difference is expressible as a (memory words, output slots) delta
  /// and eligible for symbolic propagation. Ignores fault_fired, like
  /// state_equals.
  [[nodiscard]] bool control_equals(const Snapshot& s) const;

  /// Re-arm the fault plan mid-life (clears the fired flag). Used by the
  /// campaign scheduler to reuse one restored machine for a new trial.
  void set_fault(const FaultPlan& plan) noexcept;

  /// Checkpoint/rollback recovery re-entry (fault/campaign.h,
  /// RecoveryPolicy): restore `s` and disarm the fault plan, so the
  /// re-execution runs clean from the checkpoint. The contract is uniform
  /// across all three engines — the retired count rewinds to the
  /// checkpoint's while the hang budget stays the absolute
  /// VmOptions::max_instructions ceiling (the re-executed tail gets
  /// exactly the headroom the original execution had at the checkpoint),
  /// any pending run_until() pause mark is cleared, and the dirty-page
  /// bitmap is reset fully clean (a rolled-back machine shares no write
  /// history with any fork partner; the next fork_from must be full).
  /// Pinned cross-engine by tests/jit_test.cpp: a rollback from a
  /// native-cursor (JIT) run and from an interpreter run re-execute to
  /// state_equals-identical machines.
  void rollback(const Snapshot& s);

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] TrapKind trap() const noexcept { return trap_; }
  [[nodiscard]] std::uint64_t instructions_retired() const noexcept {
    return n_retired_;
  }
  [[nodiscard]] bool fault_fired() const noexcept { return fault_fired_; }
  [[nodiscard]] const std::vector<OutputValue>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] RunResult take_result();

  /// Raw memory access (bounds-checked; aborts on misuse). Used by fault
  /// tooling and tests to read/poke program state.
  [[nodiscard]] std::uint64_t read_word(std::uint64_t addr,
                                        std::uint32_t size_bytes) const;
  void write_word(std::uint64_t addr, std::uint32_t size_bytes,
                  std::uint64_t bits);
  [[nodiscard]] std::span<const std::uint8_t> memory() const noexcept {
    return mem_;
  }

  /// How many instances of region `rid` have been entered so far.
  [[nodiscard]] std::uint32_t region_instances(std::uint32_t rid) const;

  /// Flat pc of the next instruction to retire (decoded engine only). The
  /// lockstep differential engine pairs this with step() to append faulty
  /// records into a ColumnTrace without a static-coordinate lookup.
  [[nodiscard]] std::uint32_t next_pc() const noexcept {
    return dframes_.back().pc;
  }

  /// Per-opcode dynamic dispatch counts (indexed by ir::Opcode), collected
  /// by the decoded interpreter when VmOptions::count_opcodes is set; empty
  /// otherwise. A fetched-but-trapping instruction is counted (it was
  /// dispatched), so on a clean run the sum equals instructions_retired().
  [[nodiscard]] std::span<const std::uint64_t> opcode_counts() const noexcept {
    return opcode_counts_;
  }

 private:
  /// The JIT runtime helpers (jit/jit_runtime.cpp) mutate machine state on
  /// behalf of emitted code — frame push/pop, RNG, outputs, region faults —
  /// through this single named door instead of N friend functions.
  friend struct jit::VmAccess;
  // --- legacy engine ---------------------------------------------------------
  struct Frame {
    std::uint32_t func = 0;
    std::uint64_t activation = 0;
    std::uint32_t block = 0;
    std::uint32_t pc = 0;
    std::vector<std::uint64_t> regs;
    std::vector<std::uint64_t> arg_bits;
    std::vector<Location> arg_locs;
    std::uint64_t saved_sp = 0;
    // Where the Call result goes when this frame returns.
    std::uint32_t ret_reg = ir::kNoReg;
  };

  // --- decoded engine --------------------------------------------------------
  // Frames index into one contiguous slot stack (`slots_`): registers at
  // [reg_base, arg_base), argument bits at [arg_base, arg_base + nargs).
  // Argument locations live on a parallel stack (`arg_locs_`). Pushing a
  // frame bumps the tops; popping restores them — no heap allocation after
  // the stacks reach their high-water mark.
  struct DFrame {
    std::uint32_t func = 0;
    std::uint64_t activation = 0;
    std::uint32_t pc = 0;  // flat index into DecodedProgram::code()
    std::uint32_t reg_base = 0;
    std::uint32_t arg_base = 0;
    std::uint32_t arg_loc_base = 0;
    std::uint32_t nargs = 0;
    std::uint64_t saved_sp = 0;
    std::uint32_t ret_reg = ir::kNoReg;

    bool operator==(const DFrame&) const = default;
  };

  struct OpVal {
    std::uint64_t bits = 0;
    Location loc = kNoLoc;
    ir::Type type = ir::Type::Void;
  };

  /// Keep an attached column sink consistent with a restore to
  /// `target_retired`: rows past the restore point roll back (the sink's
  /// rows are a contiguous suffix of the executed stream).
  void sync_sink_to(std::uint64_t target_retired);

  // --- write tracking (page-granular dirty bitmap) ---------------------------
  static constexpr std::uint64_t kDirtyPageShift = 12;  // 4 KiB pages
  void mark_dirty(std::uint64_t addr, std::uint32_t size) noexcept {
    const std::uint64_t first = addr >> kDirtyPageShift;
    const std::uint64_t last = (addr + size - 1) >> kDirtyPageShift;
    for (std::uint64_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }
  void restore_machine_state(const Snapshot& s);

  OpVal eval(const ir::Operand& o, const Frame& fr) const;
  OpVal eval_src(const Src& s, const DFrame& fr) const;
  void push_frame(std::uint32_t func, const ir::Instruction& call_ins,
                  Frame& caller, DynInstr* out);
  void push_dframe(const DecodedInstr& call_ins, const DFrame& caller,
                   DynInstr* out);
  Status step_legacy(DynInstr* out);
  template <bool Traced>
  Status step_decoded(DynInstr* out);
  template <bool Traced>
  void run_decoded_hot();
  /// Native driver (interp_jit.cpp): alternates compiled-code bursts with
  /// single-instruction interpreter steps at deopt sites and the armed
  /// ResultBit flip index. Requires opts_.jit over prog_, untraced.
  void run_jit();
  [[nodiscard]] bool next_is_region_marker() const;
  [[nodiscard]] bool mem_ok(std::uint64_t addr, std::uint32_t size) const;
  void init_memory(const ir::Module& m);
  void set_trap(TrapKind t) noexcept;
  void maybe_flip_result(std::uint64_t& bits);
  void apply_region_entry_fault(std::uint32_t rid);

  const ir::Module* mod_;
  const DecodedProgram* prog_ = nullptr;  // non-null => decoded engine
  VmOptions opts_;
  std::vector<std::uint8_t> mem_;
  std::vector<std::uint64_t> dirty_;  // page bitmap; only with track_writes
  std::vector<Frame> frames_;
  std::vector<DFrame> dframes_;
  std::vector<std::uint64_t> slots_;  // contiguous regs+args, decoded engine
  std::vector<Location> arg_locs_;
  std::uint32_t slot_top_ = 0;
  std::uint32_t arg_loc_top_ = 0;
  /// Hot-loop stop mark for run_until(): execution pauses (status stays
  /// Running) once n_retired_ reaches this, independent of the hang budget.
  std::uint64_t stop_at_ = ~std::uint64_t{0};
  std::uint64_t sp_ = 0;
  std::uint64_t next_activation_ = 1;
  std::uint64_t n_retired_ = 0;
  std::vector<OutputValue> outputs_;
  std::vector<std::uint32_t> region_counts_;
  std::vector<std::uint64_t> opcode_counts_;  // only with count_opcodes
  util::Randlc randlc_;
  TrapKind trap_ = TrapKind::None;
  Status status_ = Status::Running;
  bool fault_fired_ = false;
};

/// The decoded engine's complete machine state at one retired-instruction
/// boundary. Snapshots are plain value types: copy/move them freely, reuse
/// one as a save() target across calls (buffers are recycled), and share a
/// const snapshot across threads — restore() only reads it. Restoring costs
/// a handful of memcpys (dominated by the memory image), which is what
/// makes forking a campaign trial from a snapshot cheap next to replaying
/// the golden prefix it encodes.
struct Vm::Snapshot {
  std::vector<std::uint8_t> mem;
  std::vector<DFrame> frames;
  std::vector<std::uint64_t> slots;       // live prefix [0, slot_top)
  std::vector<Location> arg_locs;         // live prefix [0, arg_loc_top)
  std::vector<OutputValue> outputs;
  std::vector<std::uint32_t> region_counts;
  std::uint64_t sp = 0;
  std::uint64_t next_activation = 1;
  std::uint64_t retired = 0;
  util::Randlc randlc;
  TrapKind trap = TrapKind::None;
  Status status = Status::Running;
  bool fault_fired = false;

  /// Heap bytes the snapshot holds (capacity-independent) — a sizing aid
  /// for callers budgeting snapshot retention. (The campaign scheduler's
  /// waypoint cap estimates from the module's memory size instead, which
  /// dominates every snapshot and is known before any snapshot exists.)
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return mem.size() + frames.size() * sizeof(DFrame) +
           slots.size() * sizeof(std::uint64_t) +
           arg_locs.size() * sizeof(Location) +
           outputs.size() * sizeof(OutputValue) +
           region_counts.size() * sizeof(std::uint32_t);
  }
};

}  // namespace ft::vm
