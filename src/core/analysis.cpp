#include "core/analysis.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <stdexcept>

#include "jit/jit_program.h"
#include "store/artifact_store.h"
#include "util/stopwatch.h"
#include "vm/interp.h"

namespace ft::core {

// ---------------------------------------------------------------------------
// AnalysisSession
// ---------------------------------------------------------------------------

AnalysisSession::AnalysisSession(apps::AppSpec app)
    : app_(std::move(app)),
      program_(std::make_shared<const vm::DecodedProgram>(
          vm::DecodedProgram::decode(app_.module))) {
  // Compile the native backend once per session and wire it into the base
  // options: every untraced run downstream of these options — the golden
  // run, campaign golden cursors, trial tails, convergence probes —
  // executes natively, while traced/observed/counted runs keep the
  // interpreter (Vm's engine dispatch arbitrates per run). A null compile
  // (unsupported target, FT_VM_NO_JIT, mapping failure) degrades to the
  // decoded interpreter with no behavior change — the engines are
  // bit-identical by construction.
  if (jit::JitProgram::runtime_enabled()) {
    jit_ = jit::JitProgram::compile(*program_);
    app_.base.jit = jit_.get();
  }
}

const std::shared_ptr<const vm::RunResult>& AnalysisSession::golden_locked() {
  if (!golden_) {
    if (store_) {
      if (auto cached = store_->load_golden(
              store::golden_key(module_hash(), options_hash()))) {
        golden_ = std::make_shared<const vm::RunResult>(std::move(*cached));
        return golden_;
      }
    }
    auto run = vm::Vm::run(*program_, app_.base);
    if (!run.completed()) {
      throw std::runtime_error("fault-free run of '" + app_.name +
                               "' trapped: " +
                               std::string(vm::trap_name(run.trap)));
    }
    golden_ = std::make_shared<const vm::RunResult>(std::move(run));
    if (store_) {
      store_->publish_golden(store::golden_key(module_hash(), options_hash()),
                             *golden_);
    }
  }
  return golden_;
}

const std::shared_ptr<const trace::ColumnTrace>&
AnalysisSession::trace_locked() {
  if (!trace_) {
    if (store_) {
      // Store-first: mmap the persisted golden trace segments and adopt
      // them zero-copy (store/trace_io.h) — every TraceView reader runs
      // over the mapped columns; no traced execution happens at all.
      if (auto loaded = store_->load_trace(
              store::trace_key(module_hash(), options_hash()), program_,
              module_hash())) {
        trace_ = std::move(loaded);
        return trace_;
      }
    }
    // Direct-emit traced run: the decoded hot loop appends columnar
    // records itself — no observer, no DynInstr materialization.
    trace::ColumnTrace sink(program_);
    if (golden_) sink.reserve(golden_->instructions);
    vm::VmOptions opts = app_.base;
    opts.observer = nullptr;  // an observer would win over the sink
    opts.column_sink = &sink;
    auto run = vm::Vm::run(*program_, opts);
    if (!run.completed()) {
      throw std::runtime_error("traced fault-free run of '" + app_.name +
                               "' trapped");
    }
    traced_executed_.fetch_add(run.instructions, std::memory_order_relaxed);
    if (!golden_) {
      golden_ = std::make_shared<const vm::RunResult>(std::move(run));
    }
    trace_ = std::make_shared<const trace::ColumnTrace>(std::move(sink));
    if (store_) {
      store_->publish_trace(store::trace_key(module_hash(), options_hash()),
                            *trace_, module_hash());
      store_->publish_golden(store::golden_key(module_hash(), options_hash()),
                             *golden_);
    }
  }
  return trace_;
}

const std::shared_ptr<const std::vector<trace::RegionInstance>>&
AnalysisSession::instances_locked() {
  if (!instances_) {
    // Columnar fast path: marker opcodes resolve through the pc column, so
    // segmentation touches no record at all.
    instances_ = std::make_shared<const std::vector<trace::RegionInstance>>(
        trace::segment_regions(*trace_locked()));
  }
  return instances_;
}

const std::shared_ptr<const trace::LocationEvents>&
AnalysisSession::events_locked() {
  if (!events_) {
    events_ = std::make_shared<const trace::LocationEvents>(
        trace::LocationEvents::build(trace_locked()->view()));
  }
  return events_;
}

std::shared_ptr<const fault::SiteEnumerationResult>
AnalysisSession::sites_locked(std::uint32_t region_id,
                              std::uint32_t instance) {
  const auto k = key(region_id, instance);
  if (const auto it = sites_.find(k); it != sites_.end()) return it->second;
  const std::uint64_t sk =
      store_ ? store::sites_key(module_hash(), options_hash(), region_id,
                                instance)
             : 0;
  if (store_) {
    if (auto cached = store_->load_sites(sk)) {
      auto sites = std::make_shared<const fault::SiteEnumerationResult>(
          std::move(*cached));
      sites_.emplace(k, sites);
      return sites;
    }
  }
  auto sites = std::make_shared<const fault::SiteEnumerationResult>(
      fault::enumerate_sites_from_trace(trace_locked()->view(),
                                        *instances_locked(),
                                        *events_locked(), region_id,
                                        instance));
  sites_.emplace(k, sites);
  if (store_) store_->publish_sites(sk, *sites);
  return sites;
}

std::shared_ptr<const vm::RunResult> AnalysisSession::golden() {
  std::lock_guard lock(mu_);
  return golden_locked();
}

std::shared_ptr<const trace::ColumnTrace> AnalysisSession::golden_trace() {
  std::lock_guard lock(mu_);
  return trace_locked();
}

std::shared_ptr<const std::vector<trace::RegionInstance>>
AnalysisSession::region_instances() {
  std::lock_guard lock(mu_);
  return instances_locked();
}

std::shared_ptr<const trace::LocationEvents> AnalysisSession::golden_events() {
  std::lock_guard lock(mu_);
  return events_locked();
}

std::shared_ptr<const patterns::PatternRates>
AnalysisSession::pattern_rates() {
  std::lock_guard lock(mu_);
  if (!rates_) {
    rates_ = std::make_shared<const patterns::PatternRates>(
        patterns::measure_rates(trace_locked()->view(), *events_locked()));
  }
  return rates_;
}

std::shared_ptr<const fault::SiteEnumerationResult>
AnalysisSession::region_sites(std::uint32_t region_id,
                              std::uint32_t instance) {
  std::lock_guard lock(mu_);
  return sites_locked(region_id, instance);
}

std::shared_ptr<const fault::SiteEnumerationResult>
AnalysisSession::whole_program_sites() {
  std::lock_guard lock(mu_);
  if (!whole_sites_) {
    const std::uint64_t sk =
        store_ ? store::sites_key(module_hash(), options_hash(),
                                  store::kWholeProgram, store::kWholeProgram)
               : 0;
    if (store_) {
      if (auto cached = store_->load_sites(sk)) {
        whole_sites_ = std::make_shared<const fault::SiteEnumerationResult>(
            std::move(*cached));
        return whole_sites_;
      }
    }
    // The whole-program enumeration performs its own traced run.
    auto ws = fault::enumerate_whole_program_sites(*program_, app_.base);
    traced_executed_.fetch_add(ws.fault_free_instructions,
                               std::memory_order_relaxed);
    whole_sites_ =
        std::make_shared<const fault::SiteEnumerationResult>(std::move(ws));
    if (store_) store_->publish_sites(sk, *whole_sites_);
  }
  return whole_sites_;
}

std::shared_ptr<const fault::RankEnumeration>
AnalysisSession::rank_enumeration(std::int64_t nranks) {
  std::lock_guard lock(mu_);
  if (const auto it = rank_enums_.find(nranks); it != rank_enums_.end()) {
    return it->second;
  }
  auto en = std::make_shared<const fault::RankEnumeration>(
      fault::enumerate_rank_sites(program_, nranks, app_.base,
                                  /*keep_traces=*/false));
  rank_enums_.emplace(nranks, en);
  return en;
}

std::shared_ptr<const dddg::Graph> AnalysisSession::region_dddg(
    std::uint32_t region_id, std::uint32_t instance) {
  std::lock_guard lock(mu_);
  const auto k = key(region_id, instance);
  if (const auto it = dddgs_.find(k); it != dddgs_.end()) return it->second;
  const auto inst =
      trace::find_instance(*instances_locked(), region_id, instance);
  auto graph = std::make_shared<const dddg::Graph>(
      inst ? dddg::Graph::build(
                 trace_locked()->slice(inst->body_begin(), inst->body_end()))
           : dddg::Graph{});
  dddgs_.emplace(k, graph);
  return graph;
}

std::optional<regions::RegionIo> AnalysisSession::region_io(
    std::uint32_t region_id, std::uint32_t instance) {
  std::lock_guard lock(mu_);
  const auto inst =
      trace::find_instance(*instances_locked(), region_id, instance);
  if (!inst) return std::nullopt;
  return regions::classify_io(
      trace_locked()->slice(inst->body_begin(), inst->body_end()),
      *events_locked(), *inst);
}

void AnalysisSession::attach_store(std::shared_ptr<store::ArtifactStore> s) {
  std::lock_guard lock(mu_);
  if (store_ || !s) return;  // first attach wins
  // Derive the stable content hashes once: every store key of this session
  // mixes them, so equal hashes across processes address the same bytes.
  module_hash_.store(store::hash_module(app_.module),
                     std::memory_order_relaxed);
  options_hash_.store(store::hash_options(app_.base),
                      std::memory_order_relaxed);
  store_ = std::move(s);
}

std::shared_ptr<store::ArtifactStore> AnalysisSession::store() const {
  std::lock_guard lock(mu_);
  return store_;
}

void AnalysisSession::invalidate_trace() {
  std::lock_guard lock(mu_);
  trace_.reset();
  instances_.reset();
  events_.reset();
  rates_.reset();
}

void AnalysisSession::invalidate_all() {
  std::lock_guard lock(mu_);
  golden_.reset();
  trace_.reset();
  instances_.reset();
  events_.reset();
  rates_.reset();
  whole_sites_.reset();
  rank_enums_.clear();
  sites_.clear();
  dddgs_.clear();
}

fault::CampaignResult AnalysisSession::region_campaign(
    std::uint32_t region_id, std::uint32_t instance, fault::TargetClass target,
    const fault::CampaignConfig& config) {
  const auto sites = region_sites(region_id, instance);
  const auto golden_run = golden();
  auto* pool = config.pool ? config.pool : &util::default_executor();
  return fault::run_prepared_campaign(
      *program_, fault::prepare_campaign(*sites, target, app_.base, config),
      golden_run->outputs, app_.verifier, *pool);
}

fault::CampaignResult AnalysisSession::app_campaign(
    const fault::CampaignConfig& config) {
  const auto sites = whole_program_sites();
  const auto golden_run = golden();
  auto* pool = config.pool ? config.pool : &util::default_executor();
  return fault::run_prepared_campaign(
      *program_,
      fault::prepare_campaign(*sites, fault::TargetClass::Internal, app_.base,
                              config),
      golden_run->outputs, app_.verifier, *pool);
}

compose::ComposedResult AnalysisSession::run_compositional(
    const fault::CampaignConfig& config) {
  // Same population and golden artifacts as app_campaign; the trace and
  // region instances additionally drive the section decomposition. Fetch
  // everything through the cached accessors so a store-served trace is
  // reused and a warm store can serve the summaries too.
  const auto sites = whole_program_sites();
  const auto golden_run = golden();
  const auto trace = golden_trace();
  const auto instances = region_instances();
  auto* pool = config.pool ? config.pool : &util::default_executor();
  auto prepared = fault::prepare_campaign(
      *sites, fault::TargetClass::Internal, app_.base, config);
  const auto plan =
      compose::plan_sections(*program_, *trace, *instances, prepared);
  compose::ComposeOptions opts;
  {
    std::lock_guard lock(mu_);
    opts.store = store_;
  }
  opts.options_hash = options_hash();
  opts.config = config;
  return compose::run_composed_campaign(*program_, prepared, plan,
                                        golden_run->outputs, app_.verifier,
                                        *pool, opts);
}

fault::RankCampaignResult AnalysisSession::rank_campaign(
    const fault::RankCampaignConfig& config) {
  const auto en = rank_enumeration(config.nranks);
  const auto prepared = fault::prepare_rank_campaign(*en, app_.base, config);
  auto* pool = config.pool ? config.pool : &util::default_executor();
  return fault::run_rank_campaign(*program_, prepared, app_.verifier, *pool);
}

std::size_t AnalysisSession::diff_reserve_hint() const {
  std::lock_guard lock(mu_);
  // A clean-vs-faulty lockstep stream has exactly one record per golden
  // instruction until divergence — the right reserve when it is known.
  return golden_ ? static_cast<std::size_t>(golden_->instructions) : 0;
}

acl::DiffResult AnalysisSession::diff_with(const vm::FaultPlan& plan,
                                           std::size_t max_records) const {
  acl::DiffOptions opts;
  opts.base = app_.base;
  opts.fault = plan;
  opts.max_records = max_records;
  opts.reserve_records = diff_reserve_hint();
  return acl::diff_run(*program_, opts);
}

acl::ColumnDiff AnalysisSession::column_diff_with(
    const vm::FaultPlan& plan, std::size_t max_records) const {
  acl::DiffOptions opts;
  opts.base = app_.base;
  opts.fault = plan;
  opts.max_records = max_records;
  opts.reserve_records = diff_reserve_hint();
  return acl::diff_run_columnar(program_, opts);
}

patterns::PatternReport AnalysisSession::patterns_for(
    const vm::FaultPlan& plan, std::size_t max_records) const {
  const auto diff = column_diff_with(plan, max_records);
  const auto events = trace::LocationEvents::build(diff.records());
  patterns::DetectOptions opts;
  if (plan.kind == vm::FaultPlan::Kind::RegionInputMemoryBit) {
    opts.seed_loc = vm::mem_loc(plan.address);
    // Seed at the matching RegionEnter record (where the VM flipped the
    // word); fall back to 0 if the marker is past the usable prefix. The
    // scan is columnar: opcode and aux resolve through the pc column.
    std::uint32_t count = 0;
    for (std::size_t row = 0; row < diff.usable_records(); ++row) {
      if (diff.faulty.opcode_at(row) != ir::Opcode::RegionEnter ||
          static_cast<std::uint32_t>(diff.faulty.aux_at(row)) !=
              plan.region_id) {
        continue;
      }
      if (count == plan.region_instance) {
        opts.seed_index = row;
        break;
      }
      count++;
    }
  }
  return patterns::detect_patterns(diff, events, opts);
}

// ---------------------------------------------------------------------------
// AnalysisRequest builder
// ---------------------------------------------------------------------------

AnalysisRequest& AnalysisRequest::app(std::string name) {
  apps_.push_back(AppRef{std::move(name), std::nullopt, nullptr});
  return *this;
}

AnalysisRequest& AnalysisRequest::app(apps::AppSpec spec) {
  apps_.push_back(AppRef{spec.name, std::move(spec), nullptr});
  return *this;
}

AnalysisRequest& AnalysisRequest::session(
    std::shared_ptr<AnalysisSession> s) {
  apps_.push_back(AppRef{s->app().name, std::nullopt, std::move(s)});
  return *this;
}

AnalysisRequest& AnalysisRequest::analysis_regions(std::uint32_t instance) {
  scope_ = RegionScope::AnalysisRegions;
  scope_instance_ = instance;
  return *this;
}

AnalysisRequest& AnalysisRequest::region(std::string name,
                                         std::uint32_t instance) {
  scope_ = RegionScope::NamedRegions;
  named_regions_.emplace_back(std::move(name), instance);
  return *this;
}

AnalysisRequest& AnalysisRequest::main_loop_iterations() {
  scope_ = RegionScope::MainLoopIterations;
  return *this;
}

AnalysisRequest& AnalysisRequest::target(fault::TargetClass t) {
  if (std::find(targets_.begin(), targets_.end(), t) == targets_.end()) {
    targets_.push_back(t);
  }
  return *this;
}

AnalysisRequest& AnalysisRequest::success_rates(
    const fault::CampaignConfig& cfg) {
  region_campaign_ = cfg;
  return *this;
}

AnalysisRequest& AnalysisRequest::app_campaign(
    const fault::CampaignConfig& cfg) {
  app_campaign_ = cfg;
  return *this;
}

AnalysisRequest& AnalysisRequest::compositional(
    const fault::CampaignConfig& cfg) {
  compositional_ = cfg;
  return *this;
}

AnalysisRequest& AnalysisRequest::rank_campaign(
    const fault::RankCampaignConfig& cfg) {
  rank_campaign_ = cfg;
  return *this;
}

AnalysisRequest& AnalysisRequest::opcode_profile() {
  want_opcode_profile_ = true;
  return *this;
}

std::vector<std::pair<ir::Opcode, std::uint64_t>> OpcodeProfile::ranked()
    const {
  std::vector<std::pair<ir::Opcode, std::uint64_t>> v;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0) {
      v.emplace_back(static_cast<ir::Opcode>(i), counts[i]);
    }
  }
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return v;
}

AnalysisRequest& AnalysisRequest::pattern_rates() {
  want_pattern_rates_ = true;
  return *this;
}

AnalysisRequest& AnalysisRequest::region_io() {
  want_region_io_ = true;
  return *this;
}

AnalysisRequest& AnalysisRequest::store_dir(std::string dir) {
  store_dir_ = std::move(dir);
  return *this;
}

AnalysisRequest& AnalysisRequest::store(
    std::shared_ptr<store::ArtifactStore> s) {
  store_ = std::move(s);
  return *this;
}

AnalysisRequest& AnalysisRequest::pool(util::Executor* p) {
  pool_ = p;
  return *this;
}

AnalysisRequest& AnalysisRequest::execution(ExecutionMode mode) {
  mode_ = mode;
  return *this;
}

AnalysisRequest& AnalysisRequest::on_progress(
    std::function<void(const UnitProgress&)> fn) {
  progress_ = std::move(fn);
  return *this;
}

AnalysisRequest& AnalysisRequest::keep_traces(bool keep) {
  keep_traces_ = keep;
  return *this;
}

// ---------------------------------------------------------------------------
// AnalysisReport lookup
// ---------------------------------------------------------------------------

const AnalysisEntry* AnalysisReport::find(std::string_view app,
                                          std::string_view region_name,
                                          fault::TargetClass target,
                                          std::uint32_t instance) const {
  for (const auto& e : entries) {
    if (e.app == app && e.region_name == region_name && e.target == target &&
        e.instance == instance) {
      return &e;
    }
  }
  return nullptr;
}

const AppReport* AnalysisReport::find_app(std::string_view app) const {
  for (const auto& a : apps) {
    if (a.app == app) return &a;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// run_analysis: the batched executor
// ---------------------------------------------------------------------------

namespace {

/// One campaign scheduled into the shared work queue: either a region
/// entry's campaign or an app-level campaign. The unit pins the session's
/// decoded program and golden snapshot, so workers touch only immutable
/// shared state — no decode, no session lock — per trial.
struct CampaignUnit {
  std::shared_ptr<AnalysisSession> session;
  std::shared_ptr<const vm::DecodedProgram> program;
  std::shared_ptr<const vm::RunResult> golden;
  fault::PreparedCampaign prepared;
  std::size_t entry_index = ~std::size_t{0};  // into report.entries, or
  std::size_t app_index = ~std::size_t{0};    // into report.apps
  /// Content-addressed key the unit's outcome counts publish under after
  /// execution (0 when the request runs without a store). Units whose key
  /// HIT the store are never built — their entries are filled verbatim.
  std::uint64_t store_key = 0;
};

struct UnitCounts {
  std::atomic<std::size_t> success{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> crashed{0};
  std::atomic<std::size_t> detected_recovered{0};
  std::atomic<std::size_t> detected_unrecoverable{0};
  std::atomic<std::size_t> early_exits{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> prefix_saved{0};
  std::atomic<std::uint64_t> convergence_saved{0};
};

/// Per-unit mutable state of the batched executor: lazily-built waypoint
/// snapshots (first touching chunk builds, last finishing chunk frees) and
/// the counters that outlive the freed snapshots.
struct UnitRuntime {
  std::once_flag once;
  fault::CampaignSnapshots snapshots;
  std::vector<std::uint32_t> order;       // fork_schedule over the snapshots
  std::atomic<std::size_t> remaining{0};  // trials not yet finished
  std::uint64_t snapshots_taken = 0;
  std::uint64_t resume_depth = 0;
  /// Highest trials_done already streamed to the progress hook (guarded by
  /// the executor's progress mutex) — keeps snapshots monotone per unit
  /// when chunks race to report.
  std::size_t progress_done = 0;
};

/// One cross-rank campaign scheduled into the shared work queue. Trials
/// (whole worlds, one Vm per rank) interleave with scalar campaign trials
/// on the same pool; rank-local waypoint snapshots are built lazily by the
/// first chunk that touches the unit and freed by the last.
struct RankUnit {
  std::shared_ptr<AnalysisSession> session;
  std::shared_ptr<const vm::DecodedProgram> program;
  fault::PreparedRankCampaign prepared;
  std::size_t app_index = ~std::size_t{0};  // into report.apps
};

/// Per-rank-unit state of the batched executor: the shared taxonomy
/// accumulator (fault::RankCampaignAccumulator owns ALL per-trial
/// bookkeeping, so batched results cannot drift from run_rank_campaign)
/// plus the lazily-built rank-local snapshots.
struct RankUnitCounts {
  explicit RankUnitCounts(std::size_t nranks) : acc(nranks) {}

  fault::RankCampaignAccumulator acc;
  std::once_flag once;
  fault::RankSnapshots snapshots;
  std::atomic<std::size_t> remaining{0};
  std::uint64_t snapshots_taken = 0;
  std::size_t progress_done = 0;  // see UnitRuntime::progress_done
};

fault::CampaignResult unit_result(const CampaignUnit& unit,
                                  const UnitCounts& counts,
                                  const UnitRuntime& runtime) {
  fault::CampaignResult r;
  r.trials = unit.prepared.plans.size();
  r.population_bits = unit.prepared.population_bits;
  r.success = counts.success.load();
  r.failed = counts.failed.load();
  r.crashed = counts.crashed.load();
  r.detected_recovered = counts.detected_recovered.load();
  r.detected_unrecoverable = counts.detected_unrecoverable.load();
  r.instructions_retired = counts.instructions.load();
  r.snapshots_taken = runtime.snapshots_taken;
  r.resume_depth = runtime.resume_depth;
  r.prefix_instructions_saved = counts.prefix_saved.load();
  r.convergence_instructions_saved = counts.convergence_saved.load();
  r.early_exits = counts.early_exits.load();
  return r;
}

/// Fold one unit's campaign result into the report's rollup counters.
void fold_prefix_reuse(AnalysisReport& report,
                       const fault::CampaignResult& result) {
  report.total_instructions += result.instructions_retired;
  report.instructions_saved += result.prefix_instructions_saved +
                               result.convergence_instructions_saved;
  report.snapshots_taken += result.snapshots_taken;
  report.early_exits += result.early_exits;
  report.max_resume_depth =
      std::max(report.max_resume_depth, result.resume_depth);
}

/// The concrete (region_id, name, instance) rows one request selects for
/// one application.
struct RegionRow {
  std::uint32_t region_id = 0;
  std::string name;
  std::uint32_t instance = 0;
};

}  // namespace

AnalysisReport run_analysis(const AnalysisRequest& request) {
  const util::Stopwatch total;
  AnalysisReport report;
  // Pool resolution: the request's pool wins; otherwise a pool carried in
  // a campaign config is honored (matching run_campaign's contract), and
  // two configs naming different pools is a contradiction we reject
  // rather than silently picking one.
  auto* pool = request.pool_;
  if (!pool) {
    util::Executor* config_pools[] = {
        request.region_campaign_ ? request.region_campaign_->pool : nullptr,
        request.app_campaign_ ? request.app_campaign_->pool : nullptr,
        request.compositional_ ? request.compositional_->pool : nullptr,
        request.rank_campaign_ ? request.rank_campaign_->pool : nullptr,
    };
    for (auto* p : config_pools) {
      if (!p) continue;
      if (pool && pool != p) {
        throw std::invalid_argument(
            "run_analysis: campaign configs name different pools; set "
            "AnalysisRequest::pool instead");
      }
      pool = p;
    }
  }
  if (!pool) pool = &util::default_executor();
  report.pool_workers = pool->size();

  // Optional persistent artifact store: an explicit store wins; a store_dir
  // opens (or creates) one for this request. Counters are reported as
  // deltas so a store shared across requests still reads per-request.
  std::shared_ptr<store::ArtifactStore> store = request.store_;
  if (!store && !request.store_dir_.empty()) {
    store = std::make_shared<store::ArtifactStore>(request.store_dir_);
  }
  const auto store_base =
      store ? store->counters() : store::ArtifactStore::Counters{};
  std::size_t cached_trials = 0;  // trials of campaigns served from store
  std::size_t composed_trials = 0;  // trials closed by the compositional path

  auto targets = request.targets_;
  if (targets.empty()) targets.push_back(fault::TargetClass::Internal);

  std::vector<CampaignUnit> units;
  std::vector<RankUnit> rank_units;

  for (const auto& ref : request.apps_) {
    // 1. Materialize the session (reusing caller-owned ones).
    std::shared_ptr<AnalysisSession> session = ref.session;
    const bool internal_session = session == nullptr;
    if (!session) {
      session = std::make_shared<AnalysisSession>(
          ref.spec ? *ref.spec : apps::build_app(ref.name));
    }
    if (store) session->attach_store(store);
    const std::uint64_t traced_before =
        session->traced_instructions_executed();
    const std::uint64_t mh = session->module_hash();
    const std::uint64_t oh = session->options_hash();
    const auto& spec = session->app();
    // The AppRef name is the report key in every case: the registry name
    // for name refs ("CG", matching what the caller will look up), and the
    // spec name for explicit specs and caller sessions (set when the ref
    // was built). Keying off the ref keeps labels stable when the service
    // front end swaps a name ref for a shared session.
    const std::string& label = ref.name;

    AppReport app_report;
    app_report.app = label;
    const auto golden_run = session->golden();
    app_report.golden_instructions = golden_run->instructions;
    if (request.want_pattern_rates_) {
      app_report.rates = *session->pattern_rates();
    }
    if (request.want_opcode_profile_) {
      // One counted interpreter run: count_opcodes forces the decoded hot
      // loop (native code does not count dispatches), and on a clean run
      // the counts sum to the retired-instruction total.
      vm::VmOptions opts = spec.base;
      opts.count_opcodes = true;
      vm::Vm counted(*session->program(), opts);
      counted.run();
      OpcodeProfile prof;
      const auto counts = counted.opcode_counts();
      prof.counts.assign(counts.begin(), counts.end());
      for (std::size_t op = 0; op < prof.counts.size(); ++op) {
        if (jit::JitProgram::opcode_compiled(static_cast<ir::Opcode>(op))) {
          prof.jit_compiled_dispatches += prof.counts[op];
        } else {
          prof.jit_deopt_dispatches += prof.counts[op];
        }
      }
      const auto* code = session->program()->code();
      for (std::size_t pc = 0; pc < session->program()->code_size(); ++pc) {
        if (jit::JitProgram::opcode_compiled(code[pc].op)) {
          ++prof.jit_static_compiled;
        } else {
          ++prof.jit_static_deopt;
        }
      }
      app_report.opcode_profile = std::move(prof);
    }

    // 2. Resolve the region sweep for this application.
    std::vector<RegionRow> rows;
    switch (request.scope_) {
      case RegionScope::AnalysisRegions:
        for (const auto& rd : spec.analysis_regions) {
          rows.push_back(RegionRow{rd.id, rd.name, request.scope_instance_});
        }
        break;
      case RegionScope::NamedRegions:
        for (const auto& [name, instance] : request.named_regions_) {
          const auto* rd = spec.find_region(name);
          if (!rd) {
            throw std::invalid_argument("run_analysis: app '" + spec.name +
                                        "' has no region '" + name + "'");
          }
          rows.push_back(RegionRow{rd->id, rd->name, instance});
        }
        break;
      case RegionScope::MainLoopIterations: {
        const auto& name = spec.module.region(spec.main_region).name;
        for (int it = 0; it < spec.main_iters; ++it) {
          rows.push_back(RegionRow{spec.main_region, name,
                                   static_cast<std::uint32_t>(it)});
        }
        break;
      }
      case RegionScope::None:
        break;
    }

    // 3. Build entries and prepare their campaigns (plans drawn up-front,
    //    per unit, from the request seed — schedule-invariant).
    for (const auto& row : rows) {
      const auto sites = session->region_sites(row.region_id, row.instance);
      std::optional<regions::RegionIo> io;
      if (request.want_region_io_ && sites->region_found) {
        io = session->region_io(row.region_id, row.instance);
      }
      for (const auto target : targets) {
        AnalysisEntry entry;
        entry.app = label;
        entry.region_id = row.region_id;
        entry.region_name = row.name;
        entry.instance = row.instance;
        entry.target = target;
        entry.region_found = sites->region_found;
        entry.io = io;
        const auto entry_index = report.entries.size();
        report.entries.push_back(std::move(entry));

        if (request.region_campaign_ && sites->region_found) {
          const std::uint64_t ck =
              store ? store::campaign_key(mh, oh, row.region_id, row.instance,
                                          target, *request.region_campaign_)
                    : 0;
          if (store) {
            if (auto cached = store->load_campaign(ck)) {
              // Cache hit: the unit is never built and no trial runs; the
              // stored outcome counts are served verbatim.
              report.entries[entry_index].campaign = *cached;
              ++report.campaigns_from_store;
              cached_trials += cached->trials;
              continue;
            }
          }
          CampaignUnit unit;
          unit.session = session;
          unit.program = session->program();
          unit.golden = golden_run;
          unit.prepared = fault::prepare_campaign(
              *sites, target, spec.base, *request.region_campaign_);
          unit.entry_index = entry_index;
          unit.store_key = ck;
          report.entries[entry_index].campaign.population_bits =
              unit.prepared.population_bits;
          report.entries[entry_index].campaign.trials =
              unit.prepared.plans.size();
          units.push_back(std::move(unit));
        }
      }
    }

    if (request.app_campaign_) {
      const std::uint64_t ck =
          store ? store::campaign_key(mh, oh, store::kWholeProgram,
                                      store::kWholeProgram,
                                      fault::TargetClass::Internal,
                                      *request.app_campaign_)
                : 0;
      bool served = false;
      if (store) {
        if (auto cached = store->load_campaign(ck)) {
          // Served verbatim — the whole-program site enumeration (its own
          // traced run on a cold cache) is skipped entirely.
          app_report.whole_app = *cached;
          ++report.campaigns_from_store;
          cached_trials += cached->trials;
          served = true;
        }
      }
      if (!served) {
        CampaignUnit unit;
        unit.session = session;
        unit.program = session->program();
        unit.golden = golden_run;
        unit.prepared =
            fault::prepare_campaign(*session->whole_program_sites(),
                                    fault::TargetClass::Internal, spec.base,
                                    *request.app_campaign_);
        unit.app_index = report.apps.size();
        unit.store_key = ck;
        units.push_back(std::move(unit));
      }
    }

    if (request.compositional_) {
      // Runs inline (not in the batched queue): the per-section summary and
      // per-plan resolution phases are themselves parallel_fors on the
      // shared pool, and the section planner needs the golden trace before
      // step 4 drops it.
      auto cfg = *request.compositional_;
      if (!cfg.pool) cfg.pool = pool;
      auto composed = session->run_compositional(cfg);
      composed_trials += composed.counts.trials;
      report.sections_composed += composed.sections_composed;
      report.sections_reexecuted += composed.sections_reexecuted;
      report.summary_store_hits += composed.summary_store_hits;
      report.trials_avoided += composed.trials_avoided;
      app_report.compositional = std::move(composed);
    }

    if (request.rank_campaign_) {
      RankUnit unit;
      unit.session = session;
      unit.program = session->program();
      unit.prepared = fault::prepare_rank_campaign(
          *session->rank_enumeration(request.rank_campaign_->nranks),
          spec.base, *request.rank_campaign_);
      unit.app_index = report.apps.size();
      rank_units.push_back(std::move(unit));
    }

    report.apps.push_back(std::move(app_report));

    // 4. Bound memory: internally built sessions drop their bulk trace once
    //    campaign prep is done (the old reset_trace() discipline).
    if (internal_session && !request.keep_traces_) {
      session->invalidate_trace();
    }

    // Traced golden work this app actually executed during artifact prep
    // (0 when trace + enumerations were all served from the store).
    report.golden_traced_instructions +=
        session->traced_instructions_executed() - traced_before;
  }

  // 5. Execute every campaign trial of every unit as one batched queue —
  //    scalar trials and whole-world rank trials interleaved.
  report.campaign_units = units.size() + rank_units.size();
  std::vector<std::size_t> offsets(units.size() + 1, 0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    offsets[u + 1] = offsets[u] + units[u].prepared.plans.size();
  }
  report.total_trials = offsets.back();
  for (const auto& unit : rank_units) {
    report.total_trials += unit.prepared.plans.size();
  }
  // Scheduled trials execute; store-served campaigns contribute their
  // (identical) trial counts to total_trials only — so total_trials reads
  // the same cold or warm while trials_executed proves what actually ran.
  report.trials_executed = report.total_trials;
  report.total_trials += cached_trials;
  // Compositionally closed trials count toward the request's total; the
  // per-app ComposedResult proof counters break down how many of them
  // resolved with zero execution.
  report.total_trials += composed_trials;

  const util::Stopwatch campaign_sw;
  std::vector<UnitCounts> counts(units.size());
  std::deque<RankUnitCounts> rank_counts;
  for (const auto& unit : rank_units) {
    rank_counts.emplace_back(static_cast<std::size_t>(unit.prepared.nranks))
        .remaining.store(unit.prepared.plans.size());
  }
  if (request.mode_ == ExecutionMode::Batched) {
    // The global queue is chunked per unit: each scalar chunk task owns one
    // TrialRunner (machine reuse across its trials); each rank chunk runs
    // whole worlds (one per trial, nranks VM threads each). A unit's
    // waypoint snapshots are placed lazily by the first chunk that touches
    // it (workers on other units keep draining the queue meanwhile) and
    // freed by the last chunk to finish, so peak snapshot memory tracks
    // the units in flight, not the whole request.
    struct TrialChunk {
      bool rank = false;      // scalar unit or rank-campaign unit
      std::size_t unit = 0;
      std::size_t begin = 0;  // plan indices within the unit
      std::size_t end = 0;
    };
    std::vector<TrialChunk> chunks;
    std::vector<UnitRuntime> runtimes(units.size());
    // Progress streaming: one snapshot at a time under this mutex, counts
    // loaded inside the critical section so every field is monotone per
    // unit; stale boundary reports (a chunk that finished earlier but lost
    // the race to report) are dropped via progress_done. The hook never
    // feeds back into results.
    std::mutex progress_mu;
    const auto& progress = request.progress_;
    auto emit_scalar = [&](std::size_t u, std::size_t left) {
      const auto& unit = units[u];
      UnitProgress p;
      p.trials_total = unit.prepared.plans.size();
      p.trials_done = p.trials_total - left;
      p.done = left == 0;
      if (unit.entry_index != ~std::size_t{0}) {
        const auto& e = report.entries[unit.entry_index];
        p.app = e.app;
        p.region_id = e.region_id;
        p.region_name = e.region_name;
        p.instance = e.instance;
        p.target = e.target;
      } else {
        p.app = report.apps[unit.app_index].app;
        p.whole_app = true;
      }
      std::lock_guard lock(progress_mu);
      auto& rt = runtimes[u];
      if (p.trials_done <= rt.progress_done && !p.done) return;
      rt.progress_done = p.trials_done;
      p.success = counts[u].success.load();
      p.failed = counts[u].failed.load();
      p.crashed = counts[u].crashed.load();
      p.detected_recovered = counts[u].detected_recovered.load();
      p.detected_unrecoverable = counts[u].detected_unrecoverable.load();
      progress(p);
    };
    auto emit_rank = [&](std::size_t u, std::size_t left) {
      const auto& unit = rank_units[u];
      UnitProgress p;
      p.app = report.apps[unit.app_index].app;
      p.rank = true;
      p.trials_total = unit.prepared.plans.size();
      p.trials_done = p.trials_total - left;
      p.done = left == 0;
      std::lock_guard lock(progress_mu);
      auto& rc = rank_counts[u];
      if (p.trials_done <= rc.progress_done && !p.done) return;
      rc.progress_done = p.trials_done;
      progress(p);
    };
    for (std::size_t u = 0; u < units.size(); ++u) {
      const std::size_t n = units[u].prepared.plans.size();
      runtimes[u].remaining.store(n);
      if (n == 0) continue;
      const std::size_t chunk =
          std::clamp<std::size_t>(n / (pool->size() * 8), 1, 32);
      for (std::size_t b = 0; b < n; b += chunk) {
        chunks.push_back(TrialChunk{false, u, b, std::min(n, b + chunk)});
      }
    }
    for (std::size_t u = 0; u < rank_units.size(); ++u) {
      const std::size_t n = rank_units[u].prepared.plans.size();
      if (n == 0) continue;
      // Rank trials are whole multi-rank executions: smaller chunks keep
      // the shared queue balanced against the cheaper scalar trials.
      const std::size_t chunk = fault::rank_campaign_chunk(n, pool->size());
      for (std::size_t b = 0; b < n; b += chunk) {
        chunks.push_back(TrialChunk{true, u, b, std::min(n, b + chunk)});
      }
    }
    if (!chunks.empty()) {
      pool->parallel_for(chunks.size(), [&](std::size_t c) {
        const auto& [is_rank, u, begin, end] = chunks[c];
        if (is_rank) {
          const auto& unit = rank_units[u];
          auto& rc = rank_counts[u];
          std::call_once(rc.once, [&] {
            rc.snapshots =
                fault::prepare_rank_snapshots(*unit.program, unit.prepared);
            rc.snapshots_taken = rc.snapshots.snapshots_taken;
          });
          for (std::size_t pos = begin; pos < end; ++pos) {
            std::uint64_t instr = 0, prefix = 0;
            const auto trial = fault::run_rank_trial(
                *unit.program, unit.prepared, rc.snapshots, pos,
                unit.session->app().verifier, &instr, &prefix);
            rc.acc.add(trial,
                       static_cast<std::size_t>(unit.prepared.plan_rank[pos]),
                       instr, prefix);
          }
          const std::size_t left =
              rc.remaining.fetch_sub(end - begin) - (end - begin);
          if (left == 0) rc.snapshots = fault::RankSnapshots{};
          if (progress) emit_rank(u, left);
          return;
        }
        const auto& unit = units[u];
        auto& rt = runtimes[u];
        std::call_once(rt.once, [&] {
          rt.snapshots =
              fault::prepare_snapshots(*unit.program, unit.prepared);
          rt.order = fault::fork_schedule(unit.prepared);
          rt.snapshots_taken = rt.snapshots.waypoints.size();
          rt.resume_depth = rt.snapshots.resume_depth;
        });
        fault::TrialRunner runner(*unit.program, unit.prepared, rt.snapshots,
                                  unit.golden->outputs,
                                  unit.session->app().verifier);
        for (std::size_t pos = begin; pos < end; ++pos) {
          const std::size_t i = rt.order.empty() ? pos : rt.order[pos];
          fault::TrialAccounting acct;
          switch (runner.run(i, &acct)) {
            case fault::Outcome::VerificationSuccess:
              counts[u].success.fetch_add(1);
              break;
            case fault::Outcome::VerificationFailed:
              counts[u].failed.fetch_add(1);
              break;
            case fault::Outcome::Crashed:
              counts[u].crashed.fetch_add(1);
              break;
            case fault::Outcome::DetectedRecovered:
              counts[u].detected_recovered.fetch_add(1);
              break;
            case fault::Outcome::DetectedUnrecoverable:
              counts[u].detected_unrecoverable.fetch_add(1);
              break;
          }
          counts[u].instructions.fetch_add(acct.instructions);
          counts[u].prefix_saved.fetch_add(acct.prefix_saved);
          counts[u].convergence_saved.fetch_add(acct.convergence_saved);
          if (acct.early_exit) counts[u].early_exits.fetch_add(1);
        }
        // Last finisher of the unit releases its waypoint memory. The
        // seq_cst decrement also orders every finished chunk's count
        // updates before the left == 0 observation, so the final progress
        // snapshot carries the unit's exact outcome counts.
        const std::size_t left =
            rt.remaining.fetch_sub(end - begin) - (end - begin);
        if (left == 0) rt.snapshots = fault::CampaignSnapshots{};
        if (progress) emit_scalar(u, left);
      });
      report.pool_batches = 1;
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto result = unit_result(units[u], counts[u], runtimes[u]);
      fold_prefix_reuse(report, result);
      if (store && units[u].store_key != 0) {
        store->publish_campaign(units[u].store_key, result);
      }
      if (units[u].entry_index != ~std::size_t{0}) {
        report.entries[units[u].entry_index].campaign = result;
      } else {
        report.apps[units[u].app_index].whole_app = result;
      }
    }
    for (std::size_t u = 0; u < rank_units.size(); ++u) {
      const auto result = rank_counts[u].acc.result(
          rank_units[u].prepared, rank_counts[u].snapshots_taken);
      report.total_instructions += result.instructions_retired;
      report.instructions_saved += result.prefix_instructions_saved;
      report.snapshots_taken += result.snapshots_taken;
      report.apps[rank_units[u].app_index].rank_campaign = result;
    }
  } else {
    // Legacy mode: one blocking parallel_for per unit, serializing between
    // regions exactly as the facade-era call pattern did (same decoded
    // engine and same snapshot-forked trials — this mode A/Bs the
    // scheduling, not the interpreter or the fork policy).
    for (const auto& unit : units) {
      const auto& spec = unit.session->app();
      const auto result = fault::run_prepared_campaign(
          *unit.program, unit.prepared, unit.golden->outputs, spec.verifier,
          *pool);
      report.pool_batches += unit.prepared.plans.empty() ? 0 : 1;
      fold_prefix_reuse(report, result);
      if (store && unit.store_key != 0) {
        store->publish_campaign(unit.store_key, result);
      }
      if (unit.entry_index != ~std::size_t{0}) {
        report.entries[unit.entry_index].campaign = result;
      } else {
        report.apps[unit.app_index].whole_app = result;
      }
    }
    for (const auto& unit : rank_units) {
      const auto result = fault::run_rank_campaign(
          *unit.program, unit.prepared, unit.session->app().verifier, *pool);
      report.pool_batches += unit.prepared.plans.empty() ? 0 : 1;
      report.total_instructions += result.instructions_retired;
      report.instructions_saved += result.prefix_instructions_saved;
      report.snapshots_taken += result.snapshots_taken;
      report.apps[unit.app_index].rank_campaign = result;
    }
  }
  if (store) {
    const auto c = store->counters();
    report.store_hits = c.hits - store_base.hits;
    report.store_misses = c.misses - store_base.misses;
    report.store_bytes_read = c.bytes_read - store_base.bytes_read;
    report.store_bytes_written = c.bytes_written - store_base.bytes_written;
  }
  report.campaign_ms = campaign_sw.millis();
  report.wall_ms = total.millis();
  return report;
}

// ---------------------------------------------------------------------------
// Campaign-guided hardening: campaign -> transform -> re-campaign.
// ---------------------------------------------------------------------------

HardenReport AnalysisRequest::harden(const harden::HardenConfig& config) const {
  return run_hardening(*this, config);
}

HardenReport run_hardening(const AnalysisRequest& request,
                           const harden::HardenConfig& config) {
  if (!request.region_campaign_) {
    throw std::invalid_argument(
        "run_hardening: the request must ask for success_rates — the "
        "baseline region campaign is what guides the pass");
  }
  HardenReport out;
  out.baseline = run_analysis(request);

  // Transform each application using its own baseline rows as the guide,
  // then re-run the same request against the hardened variants. The copy
  // keeps the pool, store, configs and region sweep; only the apps change.
  AnalysisRequest hardened_request = request;
  hardened_request.apps_.clear();
  for (const auto& ref : request.apps_) {
    apps::AppSpec spec = ref.session ? ref.session->app()
                         : ref.spec  ? *ref.spec
                                     : apps::build_app(ref.name);
    const std::string& app_name = ref.name;

    // Comm protection switches on when the rank taxonomy saw any fault
    // leave the injected rank (or the caller forced it via the config).
    bool escaping = false;
    if (const AppReport* ar = out.baseline.find_app(app_name)) {
      if (ar->rank_campaign) {
        escaping = ar->rank_campaign->absorbed_by_collective +
                       ar->rank_campaign->propagated +
                       ar->rank_campaign->corrupted_output >
                   0;
      }
    }

    std::vector<harden::RegionGuide> guides;
    for (const auto& e : out.baseline.entries) {
      if (e.app != app_name || !e.region_found) continue;
      if (e.target != fault::TargetClass::Internal) continue;
      guides.push_back(harden::RegionGuide{e.region_id,
                                           e.campaign.success_rate(),
                                           escaping});
    }

    harden::HardenResult hr =
        harden::harden_module(spec.module, config, guides);
    if (!hr.verify_errors.empty()) {
      std::string msg = "run_hardening: hardened module for '" + app_name +
                        "' failed ir::verify:";
      for (const auto& err : hr.verify_errors) msg += "\n  " + err;
      throw std::runtime_error(msg);
    }

    HardenedApp happ;
    happ.app = app_name;
    happ.spec = std::move(spec);  // regions/verifier/base carry over
    happ.spec.module = std::move(hr.module);
    // Registry specs may carry a display name that differs from the
    // registry key the baseline report is keyed by ("CG" vs "cg"); pin the
    // hardened spec to the baseline name so the joined reports line up.
    happ.spec.name = app_name;
    happ.pass_stats = std::move(hr.regions);
    happ.comm_sites = hr.comm_sites;
    happ.comm_guided = !config.protect_comm && escaping && hr.comm_sites > 0;
    out.apps.push_back(std::move(happ));
    // Same spec.name, so the joined reports line up row-for-row.
    hardened_request.apps_.push_back(
        AnalysisRequest::AppRef{app_name, out.apps.back().spec, nullptr});
  }

  out.hardened = run_analysis(hardened_request);

  // Join: one row per (protected region, baseline instance) pairing the
  // guiding success rate with the hardened re-campaign's coverage.
  for (auto& happ : out.apps) {
    for (const auto& e : out.baseline.entries) {
      if (e.app != happ.app || !e.region_found) continue;
      if (e.target != fault::TargetClass::Internal) continue;
      const harden::RegionStats* st = nullptr;
      for (const auto& s : happ.pass_stats) {
        if (s.region_id == e.region_id) { st = &s; break; }
      }
      if (!st) continue;  // region was above the threshold — not protected
      HardenRegionRow row;
      row.region_id = e.region_id;
      row.region_name = e.region_name;
      row.instance = e.instance;
      row.baseline_success_rate = e.campaign.success_rate();
      if (const AnalysisEntry* h = out.hardened.find(
              happ.app, e.region_name, fault::TargetClass::Internal,
              e.instance)) {
        row.hardened_success_rate = h->campaign.effective_success_rate();
        row.detection_rate = h->campaign.detection_rate();
      }
      row.dwc_sites = st->dwc_sites;
      row.abft_cells = st->abft_cells;
      row.original_instructions = st->original_instructions;
      row.added_instructions = st->added_instructions;
      happ.regions.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace ft::core
