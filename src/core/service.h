/// @file
/// Async campaign service: the thin front end that multiplexes many
/// concurrent AnalysisRequests onto one shared work-stealing scheduler and
/// one shared artifact store (the "campaign-as-a-service" shape in
/// ROADMAP.md).
///
/// What the service adds over calling run_analysis directly:
///
///  * Admission from many threads — submit() is safe to call concurrently;
///    each admitted request executes as a task on the shared scheduler and
///    resolves a future with its AnalysisReport. All requests' campaign
///    chunks interleave on the same worker deques, so a short survey is not
///    stuck behind a long one (work stealing + help-first waiting, see
///    util/scheduler.h).
///
///  * Golden-artifact dedup — apps named by registry name resolve to ONE
///    shared AnalysisSession per name via call_once-style futures: the first
///    request builds (or store-loads) the golden run/trace/sites, every
///    concurrent and later request reuses them. AnalysisSession's caches are
///    already thread-safe, so sharing is free.
///
///  * In-flight store-key dedup — campaign outcome keys get single-flight
///    semantics: when request A is already computing key K, request B's
///    lookup waits for A's publish and then serves the (bit-identical)
///    stored counts instead of re-running the trials. A failed producer
///    releases its claims so waiters recompute — no hangs.
///
///  * Progress streaming — a per-request subscriber receives
///    UnitProgress snapshots (tagged with the request id) as chunks
///    complete, the feed an interactive resilience dashboard consumes.
///
/// Determinism: none of this changes results. Reports are bit-identical to
/// a serial run_analysis of the same request — sharing sessions and stores
/// only changes where artifacts come from, which the store/trials_executed
/// proof counters make observable (tests/service_test.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/analysis.h"
#include "util/thread_pool.h"

namespace ft::store {
class ArtifactStore;
}  // namespace ft::store

namespace ft::core {

/// Configuration of a CampaignService.
struct ServiceOptions {
  /// Executor all admitted requests run on; nullptr means
  /// util::default_executor() (the process-wide work-stealing scheduler).
  util::Executor* scheduler = nullptr;
  /// Shared artifact store (wins over store_dir). Requests that do not
  /// carry their own store run against it through the single-flight view.
  std::shared_ptr<store::ArtifactStore> store;
  /// When non-empty and no store was given, open (or create) one here.
  std::string store_dir;
};

/// One progress snapshot of one admitted request.
struct ServiceSnapshot {
  std::uint64_t request_id = 0;
  UnitProgress unit;
};
using ServiceSubscriber = std::function<void(const ServiceSnapshot&)>;

/// The async front end. Thread-safe; destruction waits for every admitted
/// request to finish. See the file comment for semantics.
class CampaignService {
 public:
  explicit CampaignService(ServiceOptions opts = {});
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admit a request. Returns a future resolving to its report (or to the
  /// exception run_analysis threw). The request is rewritten against the
  /// service's shared state: registry-name apps resolve to shared sessions,
  /// an unset store seam gets the service store behind the single-flight
  /// view, an unset pool seam gets the service scheduler. A non-empty
  /// subscriber streams per-unit progress snapshots tagged with this
  /// request's id.
  std::future<AnalysisReport> submit(AnalysisRequest request,
                                     ServiceSubscriber subscriber = {});

  /// submit() + get(): the blocking convenience spelling. Must be called
  /// from outside the service's scheduler — a worker blocking on its own
  /// queue's future is a deadlock waiting to happen.
  AnalysisReport run(AnalysisRequest request,
                     ServiceSubscriber subscriber = {});

  /// The shared session for a registry app name, building it (first caller)
  /// or waiting for/reusing the in-flight or cached one. Throws what
  /// apps::build_app / session construction threw; a failed build is not
  /// cached, so a later call retries.
  std::shared_ptr<AnalysisSession> session_for(const std::string& name);

  struct Stats {
    std::uint64_t requests_admitted = 0;
    std::uint64_t requests_completed = 0;
    std::uint64_t requests_failed = 0;
    /// Sessions built by session_for (first requester per app name).
    std::uint64_t sessions_created = 0;
    /// session_for calls served by an existing (or in-flight) session.
    std::uint64_t sessions_shared = 0;
    /// Store-key lookups that waited for another request's in-flight
    /// compute instead of computing themselves.
    std::uint64_t flights_joined = 0;
    /// Requests admitted but not yet completed/failed.
    std::size_t inflight = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// The shared store (null when the service runs storeless).
  [[nodiscard]] const std::shared_ptr<store::ArtifactStore>& store()
      const noexcept {
    return store_;
  }

  /// Single-flight state shared by the per-request store views (opaque;
  /// defined in service.cpp).
  struct FlightTable;

 private:
  AnalysisReport execute(std::uint64_t id, AnalysisRequest request,
                         ServiceSubscriber subscriber);

  util::Executor* scheduler_ = nullptr;
  std::shared_ptr<store::ArtifactStore> store_;
  std::shared_ptr<FlightTable> flights_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t inflight_ = 0;  // guarded by mu_
  std::map<std::string,
           std::shared_future<std::shared_ptr<AnalysisSession>>>
      sessions_;  // guarded by mu_

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
  std::atomic<std::uint64_t> sessions_created_{0};
  std::atomic<std::uint64_t> sessions_shared_{0};
};

}  // namespace ft::core
