/// @file
/// The composable analysis API (Fig. 1 of the paper, as a library).
///
/// Three layers replace the old FlipTracker facade:
///
///  * AnalysisSession — owns one application's executable form and golden
///    artifacts (pre-decoded program, fault-free run, trace, region
///    instances, location events, per-region site enumerations and DDDGs)
///    behind thread-safe, explicitly invalidatable caches. The module is
///    decoded once (vm/decode.h) at construction and every run the session
///    performs — golden, traced, diffed, or campaign trial — executes the
///    decoded engine; campaigns share the immutable decoded program across
///    all pool workers. Sessions are cheap to construct from an
///    apps::AppSpec and safe to share across executor workers and across
///    concurrent requests (core/service.h); every accessor returns a
///    shared_ptr snapshot so invalidation never pulls data out from under a
///    concurrent reader.
///
///  * AnalysisRequest / AnalysisReport — a declarative request ("these apps,
///    these regions, these target classes, these analyses") executed by
///    run_analysis(), which schedules every region campaign of every
///    requested application as ONE batched work queue on a shared pool.
///    The old facade parallelized only within one region_campaign call, so
///    multi-region sweeps serialized between regions; here all trials of
///    all (app, region, target) units interleave and the report carries
///    timing/throughput metadata the bench harness serializes.
///
///  * vm::ObserverChain (src/vm/observer.h) — the observer-pipeline layer
///    the session builds its traced runs on.
///
/// The deprecated FlipTracker shim was removed after its one promised
/// release; see README.md ("Migrating from FlipTracker") for the mapping.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "acl/diff.h"
#include "apps/app.h"
#include "compose/compose.h"
#include "dddg/graph.h"
#include "fault/campaign.h"
#include "fault/rank_campaign.h"
#include "fault/sites.h"
#include "harden/harden.h"
#include "ir/opcode.h"
#include "patterns/detect.h"
#include "patterns/rates.h"
#include "regions/io.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "trace/segment.h"
#include "util/thread_pool.h"

namespace ft::store {
class ArtifactStore;
}  // namespace ft::store

namespace ft::jit {
class JitProgram;
}  // namespace ft::jit

namespace ft::core {

// ---------------------------------------------------------------------------
// Layer 1: the per-application artifact cache.
// ---------------------------------------------------------------------------

class AnalysisSession {
 public:
  explicit AnalysisSession(apps::AppSpec app);

  [[nodiscard]] const apps::AppSpec& app() const noexcept { return app_; }

  /// The application's pre-decoded executable form (vm/decode.h), built
  /// once at session construction and shared immutably by every run the
  /// session performs — golden/traced runs, lockstep diffs, and all
  /// campaign trials on all pool workers. Campaign executors hold this
  /// alongside the golden snapshot so no per-trial decode happens anywhere.
  ///
  /// Lifetime: the decoded program refers into the session-owned module,
  /// so the snapshot is valid only while the session lives. Anything that
  /// keeps the program past a call must pin the session too, as
  /// run_analysis's CampaignUnit does.
  [[nodiscard]] const std::shared_ptr<const vm::DecodedProgram>& program()
      const noexcept {
    return program_;
  }

  /// The native x64 program (jit/jit_program.h) compiled once at session
  /// construction, or null when the JIT is unsupported on this target or
  /// disabled via FT_VM_NO_JIT. When present it is already wired into the
  /// session's base VmOptions, so every untraced run the session performs
  /// — golden runs, campaign golden cursors, trial tails, convergence
  /// probes — executes natively, while traced/observed/counted runs keep
  /// the interpreter (the engine dispatch in Vm::run() arbitrates).
  [[nodiscard]] const jit::JitProgram* jit() const noexcept {
    return jit_.get();
  }

  // --- golden artifacts (lazy, cached, thread-safe) -------------------------
  /// Fault-free run (no tracing). Throws if the fault-free run traps.
  std::shared_ptr<const vm::RunResult> golden();
  /// Fault-free traced run on the columnar substrate (trace/column.h): the
  /// decoded engine emits records straight into the ColumnTrace, and every
  /// downstream golden artifact (region instances, location events, site
  /// enumerations, DDDGs, IO classification, pattern rates) reads it
  /// through TraceView spans. Costs ~20 bytes + 8 per recorded operand per
  /// dynamic instruction (vs 128 for a DynInstr vector); dropped with
  /// invalidate_trace().
  std::shared_ptr<const trace::ColumnTrace> golden_trace();
  std::shared_ptr<const std::vector<trace::RegionInstance>> region_instances();
  std::shared_ptr<const trace::LocationEvents> golden_events();
  /// Fault-free pattern rates of the whole program (Table IV features).
  std::shared_ptr<const patterns::PatternRates> pattern_rates();

  // --- derived per-region artifacts (lazy, cached, thread-safe) -------------
  /// Site enumeration of one region instance, computed from the cached
  /// golden trace (one traced run serves every region of the app).
  std::shared_ptr<const fault::SiteEnumerationResult> region_sites(
      std::uint32_t region_id, std::uint32_t instance);
  /// Internal sites over the whole run (Tables III/IV campaigns).
  std::shared_ptr<const fault::SiteEnumerationResult> whole_program_sites();
  /// DDDG of one region instance of the golden trace.
  std::shared_ptr<const dddg::Graph> region_dddg(std::uint32_t region_id,
                                                 std::uint32_t instance);
  /// Input/output/internal classification of one region instance.
  [[nodiscard]] std::optional<regions::RegionIo> region_io(
      std::uint32_t region_id, std::uint32_t instance);

  // --- persistent artifact store (optional) ---------------------------------
  /// Attach a content-addressed artifact store (store/artifact_store.h):
  /// golden runs, golden traces, site enumerations and campaign outcome
  /// counts are looked up in the store before computing and published after
  /// computing. First attach wins (set-if-unset), and the session's stable
  /// content hashes are derived once on attach. A store hit is
  /// bit-identical to a compute by construction — pinned by
  /// tests/store_test.cpp — so attaching a store changes cost, never
  /// results.
  void attach_store(std::shared_ptr<store::ArtifactStore> s);
  [[nodiscard]] std::shared_ptr<store::ArtifactStore> store() const;
  /// Stable content hash of the laid-out module / of the base execution
  /// options (store/artifact_store.h key inputs); 0 until a store is
  /// attached.
  [[nodiscard]] std::uint64_t module_hash() const noexcept {
    return module_hash_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t options_hash() const noexcept {
    return options_hash_.load(std::memory_order_relaxed);
  }
  /// Dynamic instructions this session actually executed on traced golden
  /// runs (trace production and whole-program site enumeration). Serving
  /// those artifacts from the store does not grow it — the warm-path proof
  /// counter behind AnalysisReport::golden_traced_instructions.
  [[nodiscard]] std::uint64_t traced_instructions_executed() const noexcept {
    return traced_executed_.load(std::memory_order_relaxed);
  }

  // --- invalidation ---------------------------------------------------------
  /// Drop the bulk trace artifacts (trace, region instances, location
  /// events, pattern rates). Compact derived summaries (site enumerations,
  /// DDDGs) are kept: they are what campaigns consume after the trace is
  /// no longer needed. Concurrent readers holding snapshots are unaffected.
  void invalidate_trace();
  /// Drop every cached artifact, including the golden run and the compact
  /// derived summaries.
  void invalidate_all();

  // --- multi-rank golden artifacts (lazy, cached per world size) ------------
  /// Site population, per-rank golden outputs/communication logs and fork
  /// limits of one `nranks`-rank execution (fault/rank_campaign.h). Compact
  /// — the per-rank traces are dropped after enumeration — so it survives
  /// invalidate_trace() like the other campaign-feeding summaries; use
  /// fault::enumerate_rank_sites directly when the traces themselves are
  /// needed. A serial app is a valid target too: every rank then runs the
  /// full problem and the campaign measures replicated-execution resilience.
  std::shared_ptr<const fault::RankEnumeration> rank_enumeration(
      std::int64_t nranks);

  // --- campaigns ------------------------------------------------------------
  [[nodiscard]] fault::CampaignResult region_campaign(
      std::uint32_t region_id, std::uint32_t instance,
      fault::TargetClass target, const fault::CampaignConfig& config);
  /// Whole-application campaign (internal sites over the full run).
  [[nodiscard]] fault::CampaignResult app_campaign(
      const fault::CampaignConfig& config);
  /// Cross-rank campaign at config.nranks: inject into one rank per trial
  /// while all ranks run, classified with the cross-rank outcome taxonomy.
  [[nodiscard]] fault::RankCampaignResult rank_campaign(
      const fault::RankCampaignConfig& config);
  /// Whole-application campaign executed compositionally (src/compose/):
  /// the same site population and plans as app_campaign, but closed
  /// per-section — summaries loaded from the attached store when warm,
  /// outcomes composed symbolically where the delta allows. Counts are
  /// bit-identical to app_campaign(config) by construction; the
  /// ComposedResult proof counters show how much execution was avoided.
  [[nodiscard]] compose::ComposedResult run_compositional(
      const fault::CampaignConfig& config);

  // --- per-plan analyses (stateless; safe from any thread) ------------------
  /// Differential run under one fault plan (array-of-structs faulty
  /// stream; prefer column_diff_with for bulk analyses).
  [[nodiscard]] acl::DiffResult diff_with(const vm::FaultPlan& plan,
                                          std::size_t max_records = 0) const;
  /// Differential run on the columnar substrate (~4x smaller faulty
  /// stream, direct column appends instead of 128-byte record pushes).
  [[nodiscard]] acl::ColumnDiff column_diff_with(
      const vm::FaultPlan& plan, std::size_t max_records = 0) const;
  /// ACL series + pattern detection for one fault plan. Runs on the
  /// columnar differential pipeline.
  [[nodiscard]] patterns::PatternReport patterns_for(
      const vm::FaultPlan& plan, std::size_t max_records = 0) const;

 private:
  // All *_locked helpers assume mu_ is held and may compute + fill caches.
  const std::shared_ptr<const vm::RunResult>& golden_locked();
  const std::shared_ptr<const trace::ColumnTrace>& trace_locked();
  /// Record-count reserve hint for differential runs: the golden
  /// instruction count when the golden run is cached, else 0.
  [[nodiscard]] std::size_t diff_reserve_hint() const;
  const std::shared_ptr<const std::vector<trace::RegionInstance>>&
  instances_locked();
  const std::shared_ptr<const trace::LocationEvents>& events_locked();
  std::shared_ptr<const fault::SiteEnumerationResult> sites_locked(
      std::uint32_t region_id, std::uint32_t instance);

  static std::uint64_t key(std::uint32_t region_id,
                           std::uint32_t instance) noexcept {
    return (std::uint64_t{region_id} << 32) | instance;
  }

  apps::AppSpec app_;
  // Immutable after construction (no lock needed): the decoded executable
  // and its native compilation (null when unavailable).
  std::shared_ptr<const vm::DecodedProgram> program_;
  std::shared_ptr<const jit::JitProgram> jit_;
  mutable std::mutex mu_;
  std::shared_ptr<store::ArtifactStore> store_;  // guarded by mu_
  std::atomic<std::uint64_t> module_hash_{0};    // set once on attach_store
  std::atomic<std::uint64_t> options_hash_{0};
  std::atomic<std::uint64_t> traced_executed_{0};
  std::shared_ptr<const vm::RunResult> golden_;
  std::shared_ptr<const trace::ColumnTrace> trace_;
  std::shared_ptr<const std::vector<trace::RegionInstance>> instances_;
  std::shared_ptr<const trace::LocationEvents> events_;
  std::shared_ptr<const patterns::PatternRates> rates_;
  std::shared_ptr<const fault::SiteEnumerationResult> whole_sites_;
  std::unordered_map<std::int64_t,
                     std::shared_ptr<const fault::RankEnumeration>>
      rank_enums_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const fault::SiteEnumerationResult>>
      sites_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const dddg::Graph>>
      dddgs_;
};

// ---------------------------------------------------------------------------
// Layer 2: the declarative request / report model.
// ---------------------------------------------------------------------------

/// Which region-instance sweep a request covers (uniform across its apps).
enum class RegionScope : std::uint8_t {
  /// Every AppSpec::analysis_regions entry at one fixed instance (Fig. 5).
  AnalysisRegions,
  /// An explicit list of named regions, each with its own instance.
  NamedRegions,
  /// The main-loop region, one entry per iteration [0, main_iters) (Fig. 6).
  MainLoopIterations,
  /// No region sweep (whole-app analyses only, Table IV).
  None,
};

/// How the campaigns of a request are scheduled.
enum class ExecutionMode : std::uint8_t {
  /// All trials of all (app, region, target) units interleave on one
  /// shared work queue — regions and apps execute concurrently.
  Batched,
  /// One blocking run_campaign per unit, as the old facade drove it.
  /// Kept for A/B comparison (scripts/bench_smoke.sh, determinism tests).
  LegacyPerRegion,
};

/// One (app, region instance, target class) result row.
struct AnalysisEntry {
  std::string app;
  std::uint32_t region_id = 0;
  std::string region_name;
  std::uint32_t instance = 0;
  fault::TargetClass target = fault::TargetClass::Internal;
  /// False when the region instance does not occur in the golden trace;
  /// such entries carry empty results.
  bool region_found = false;
  /// Filled when the request asked for success rates.
  fault::CampaignResult campaign;
  /// Filled when the request asked for region IO classification.
  std::optional<regions::RegionIo> io;
};

/// Per-opcode dynamic dispatch profile of one application's fault-free run
/// (VmOptions::count_opcodes) with the JIT coverage split layered on top:
/// which opcodes dominate retired instructions, and what share of them
/// executes natively vs deopts to the interpreter.
struct OpcodeProfile {
  /// Dispatch counts indexed by ir::Opcode; sums to golden_instructions on
  /// a clean run (every dispatched instruction retires).
  std::vector<std::uint64_t> counts;
  /// Retired instructions whose opcode has a native JIT template.
  std::uint64_t jit_compiled_dispatches = 0;
  /// Retired instructions whose opcode deopts (the MiniMPI ops).
  std::uint64_t jit_deopt_dispatches = 0;
  /// Static split of the decoded instruction stream: how many flat
  /// instructions compile to a native template vs a deopt exit.
  std::uint32_t jit_static_compiled = 0;
  std::uint32_t jit_static_deopt = 0;
  /// Opcodes ranked by retired-instruction share, descending; zero-count
  /// opcodes are omitted.
  [[nodiscard]] std::vector<std::pair<ir::Opcode, std::uint64_t>> ranked()
      const;
};

/// Per-application results that are not tied to one region.
struct AppReport {
  std::string app;
  std::uint64_t golden_instructions = 0;
  std::optional<patterns::PatternRates> rates;
  std::optional<fault::CampaignResult> whole_app;
  /// Filled when the request asked for a cross-rank campaign: the
  /// multi-rank outcome taxonomy at the requested world size.
  std::optional<fault::RankCampaignResult> rank_campaign;
  /// Filled when the request asked for an opcode profile.
  std::optional<OpcodeProfile> opcode_profile;
  /// Filled when the request asked for a compositional campaign: the
  /// composed whole-app outcome counts plus per-run proof counters.
  std::optional<compose::ComposedResult> compositional;
};

struct AnalysisReport {
  std::vector<AnalysisEntry> entries;
  std::vector<AppReport> apps;

  // --- scheduling / throughput metadata -------------------------------------
  double wall_ms = 0.0;      // end-to-end run_analysis time
  double campaign_ms = 0.0;  // time spent in the injection work queue
  std::size_t campaign_units = 0;  // (app, region, target) + app campaigns
  std::size_t total_trials = 0;    // injections across all units
  /// Dynamic instructions retired across all campaign trials (the decoded
  /// engine's throughput figure of merit; see bench/vm_engine_ab.cpp).
  std::uint64_t total_instructions = 0;
  // --- prefix-reuse rollup (snapshot-forked scheduler, all units) -----------
  /// Instructions trials did NOT execute: golden prefixes reused through
  /// snapshot forks plus tails cut by early convergence exits.
  std::uint64_t instructions_saved = 0;
  std::uint64_t snapshots_taken = 0;  // waypoint snapshots across all units
  std::uint64_t early_exits = 0;      // trials classified at a probe
  /// Deepest golden resume point of any unit (the longest serial prefix the
  /// scheduler had to execute once).
  std::uint64_t max_resume_depth = 0;
  /// Injection work-queue dispatches (batched: 1). Snapshot preparation is
  /// artifact prep and is not counted here.
  std::size_t pool_batches = 0;
  std::size_t pool_workers = 0;

  // --- artifact-store metadata (zero unless a store was attached) -----------
  /// Trials actually executed by this run: total_trials minus the trials of
  /// campaigns served verbatim from the store. A fully warm run reports 0.
  std::size_t trials_executed = 0;
  /// Campaign units whose outcome counts came from the store.
  std::size_t campaigns_from_store = 0;
  /// Dynamic instructions executed by traced golden runs during this
  /// request (trace production + whole-program enumeration); 0 when every
  /// golden artifact was served from the store.
  std::uint64_t golden_traced_instructions = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t store_bytes_read = 0;
  std::uint64_t store_bytes_written = 0;

  // --- compositional proof counters (zero unless requested) -----------------
  /// Rolled up across every app's ComposedResult: symbolic propagation
  /// steps, sections re-summarized by execution, section summaries served
  /// from the store, and trials classified with zero trial execution.
  /// After a one-function edit against a warm store, sections_reexecuted
  /// stays below the section total while trials_avoided stays positive —
  /// the observable form of the incremental claim (docs/campaign-lifecycle.md).
  std::uint64_t sections_composed = 0;
  std::uint64_t sections_reexecuted = 0;
  std::uint64_t summary_store_hits = 0;
  std::uint64_t trials_avoided = 0;

  [[nodiscard]] double trials_per_second() const noexcept {
    return campaign_ms > 0.0
               ? static_cast<double>(total_trials) / (campaign_ms / 1e3)
               : 0.0;
  }
  [[nodiscard]] double instructions_per_second() const noexcept {
    return campaign_ms > 0.0
               ? static_cast<double>(total_instructions) / (campaign_ms / 1e3)
               : 0.0;
  }

  [[nodiscard]] const AnalysisEntry* find(
      std::string_view app, std::string_view region_name,
      fault::TargetClass target, std::uint32_t instance = 0) const;
  [[nodiscard]] const AppReport* find_app(std::string_view app) const;
};

// ---------------------------------------------------------------------------
// Campaign-guided hardening (src/harden) wired end-to-end.
// ---------------------------------------------------------------------------

/// One protected region's before/after row: the baseline campaign that
/// guided the pass joined against the re-campaign of the hardened module.
struct HardenRegionRow {
  std::uint32_t region_id = 0;
  std::string region_name;
  std::uint32_t instance = 0;
  /// Measured resilience that selected this region for protection.
  double baseline_success_rate = 0.0;
  /// Hardened-module resilience counting detected-and-recovered trials as
  /// verified (CampaignResult::effective_success_rate).
  double hardened_success_rate = 0.0;
  /// Share of hardened-module trials a detector caught (recovered or not).
  double detection_rate = 0.0;
  std::size_t dwc_sites = 0;
  std::size_t abft_cells = 0;
  std::size_t original_instructions = 0;  // static, region body
  std::size_t added_instructions = 0;     // static, inserted by the pass
  /// Static instruction multiplier of the protected region (>= 1.0).
  [[nodiscard]] double overhead() const noexcept {
    return original_instructions == 0
               ? 1.0
               : 1.0 + static_cast<double>(added_instructions) /
                           static_cast<double>(original_instructions);
  }
};

/// One application's hardening outcome: the emitted variant plus the
/// coverage-vs-overhead rows of every protected region.
struct HardenedApp {
  std::string app;
  /// The hardened executable form (spec.name matches the original app, so
  /// the joined reports line up row-for-row).
  apps::AppSpec spec;
  /// Static accounting straight from the transform pass.
  std::vector<harden::RegionStats> pass_stats;
  std::size_t comm_sites = 0;  // DWC checks at MpiSend/MpiAllreduce feeds
  /// True when comm protection was turned on by the rank taxonomy (escaping
  /// faults observed) rather than by HardenConfig::protect_comm.
  bool comm_guided = false;
  std::vector<HardenRegionRow> regions;
};

/// Result of run_hardening: the guiding baseline report, the re-campaign of
/// the hardened variants, and the per-app join.
struct HardenReport {
  AnalysisReport baseline;
  AnalysisReport hardened;
  std::vector<HardenedApp> apps;
};

/// One executing campaign unit's aggregate counts at a chunk boundary —
/// what AnalysisRequest::on_progress streams while a batched run executes.
/// Counts are cumulative and monotone per unit; the snapshot with
/// `done == true` carries the unit's exact final counts (identical to the
/// matching report entry). Rank units stream trial progress only — their
/// cross-rank outcome taxonomy is aggregated in the final report.
struct UnitProgress {
  std::string app;
  /// True for whole-app campaign units (region fields are zero/empty).
  bool whole_app = false;
  /// True for cross-rank campaign units (outcome fields stay zero).
  bool rank = false;
  std::uint32_t region_id = 0;
  std::string region_name;
  std::uint32_t instance = 0;
  fault::TargetClass target = fault::TargetClass::Internal;
  std::size_t trials_total = 0;
  std::size_t trials_done = 0;
  // Scalar-unit outcome counts so far (CampaignResult field names).
  std::size_t success = 0;
  std::size_t failed = 0;
  std::size_t crashed = 0;
  std::size_t detected_recovered = 0;
  std::size_t detected_unrecoverable = 0;
  bool done = false;
};

/// Builder-style request. Example (Fig. 5 shape):
///
///   auto report = core::run_analysis(
///       core::AnalysisRequest()
///           .app("CG").app("MG")
///           .analysis_regions()
///           .target(fault::TargetClass::Internal)
///           .target(fault::TargetClass::Input)
///           .success_rates(cfg));
class AnalysisRequest {
 public:
  // --- applications ---------------------------------------------------------
  /// Add an application by registry name (built when the request runs).
  AnalysisRequest& app(std::string name);
  /// Add an explicit application spec (hardened variants, custom programs).
  AnalysisRequest& app(apps::AppSpec spec);
  /// Add a caller-owned session, sharing its cached golden artifacts.
  AnalysisRequest& session(std::shared_ptr<AnalysisSession> s);

  // --- region sweep (default: no region entries) ----------------------------
  AnalysisRequest& analysis_regions(std::uint32_t instance = 0);
  AnalysisRequest& region(std::string name, std::uint32_t instance = 0);
  AnalysisRequest& main_loop_iterations();

  // --- target classes (default: Internal only) ------------------------------
  AnalysisRequest& target(fault::TargetClass t);

  // --- analyses -------------------------------------------------------------
  /// Per-region fault-injection success rates with this campaign config.
  AnalysisRequest& success_rates(const fault::CampaignConfig& cfg);
  /// Whole-application campaign per app with this config.
  AnalysisRequest& app_campaign(const fault::CampaignConfig& cfg);
  /// Cross-rank campaign per app at cfg.nranks — the multi-rank entry of
  /// the request schema. Rank-campaign trials (one world each, all ranks
  /// running) batch onto the same shared pool as every scalar campaign:
  /// worlds are chunked across pool workers inside the ONE batched queue.
  AnalysisRequest& rank_campaign(const fault::RankCampaignConfig& cfg);
  /// Whole-application campaign per app executed compositionally
  /// (AnalysisSession::run_compositional): same counts as app_campaign with
  /// the same config, but closed per-section with store-served summaries —
  /// AppReport::compositional plus the report's proof-counter rollup.
  AnalysisRequest& compositional(const fault::CampaignConfig& cfg);
  /// Fault-free pattern rates per app (Table IV features).
  AnalysisRequest& pattern_rates();
  /// Per-opcode dynamic dispatch profile per app (one counted interpreter
  /// run under VmOptions::count_opcodes) with the JIT compiled-vs-deopt
  /// coverage split — AppReport::opcode_profile.
  AnalysisRequest& opcode_profile();
  /// Input/output/internal classification per region entry.
  AnalysisRequest& region_io();

  // --- persistent artifact store --------------------------------------------
  /// Run against the content-addressed artifact store rooted at `dir`
  /// (created if missing): golden runs/traces, site enumerations and
  /// campaign outcome counts are served from the store when present and
  /// published when computed. A second run of the same request against a
  /// populated store produces bit-identical results while executing zero
  /// campaign trials and zero golden traced instructions — the report's
  /// store counters prove it (docs/campaign-lifecycle.md).
  AnalysisRequest& store_dir(std::string dir);
  /// Share an already-open store across requests (wins over store_dir).
  AnalysisRequest& store(std::shared_ptr<store::ArtifactStore> s);

  // --- execution ------------------------------------------------------------
  /// Pool the batched work queue runs on. When unset, a pool named by the
  /// campaign configs is honored (two configs naming different pools is
  /// rejected); otherwise util::default_executor() (the work-stealing scheduler).
  AnalysisRequest& pool(util::Executor* p);
  AnalysisRequest& execution(ExecutionMode mode);
  /// Stream per-unit aggregate snapshots as campaign chunks complete
  /// (Batched mode only; LegacyPerRegion ignores the hook). The callback is
  /// invoked under an internal mutex — one snapshot at a time — from
  /// whichever executor thread finished a chunk, so it must not re-enter
  /// run_analysis or block on the executor. Snapshots never affect results.
  AnalysisRequest& on_progress(std::function<void(const UnitProgress&)> fn);
  /// Keep golden traces of internally built sessions after artifact prep
  /// (default: dropped to bound memory, as the old reset_trace() flow did).
  AnalysisRequest& keep_traces(bool keep = true);

  // --- hardening ------------------------------------------------------------
  /// Convenience spelling of run_hardening(*this, config).
  [[nodiscard]] HardenReport harden(const harden::HardenConfig& config) const;

 private:
  friend AnalysisReport run_analysis(const AnalysisRequest& request);
  friend HardenReport run_hardening(const AnalysisRequest& request,
                                    const harden::HardenConfig& config);
  // The async front end (core/service.h) rewrites admitted requests in
  // place: registry-name apps resolve to shared sessions, the service store
  // and scheduler fill the unset seams.
  friend class CampaignService;

  struct AppRef {
    std::string name;                          // registry name, or
    std::optional<apps::AppSpec> spec;         // explicit spec, or
    std::shared_ptr<AnalysisSession> session;  // caller-owned session
  };
  std::vector<AppRef> apps_;
  RegionScope scope_ = RegionScope::None;
  std::uint32_t scope_instance_ = 0;
  std::vector<std::pair<std::string, std::uint32_t>> named_regions_;
  std::vector<fault::TargetClass> targets_;
  std::optional<fault::CampaignConfig> region_campaign_;
  std::optional<fault::CampaignConfig> app_campaign_;
  std::optional<fault::CampaignConfig> compositional_;
  std::optional<fault::RankCampaignConfig> rank_campaign_;
  bool want_pattern_rates_ = false;
  bool want_opcode_profile_ = false;
  bool want_region_io_ = false;
  std::string store_dir_;
  std::shared_ptr<store::ArtifactStore> store_;
  util::Executor* pool_ = nullptr;
  ExecutionMode mode_ = ExecutionMode::Batched;
  std::function<void(const UnitProgress&)> progress_;
  bool keep_traces_ = false;
};

/// Execute a request. Campaign results are deterministic in the request
/// (plans are drawn up-front per unit from CampaignConfig::seed) and
/// independent of pool size and execution mode. Throws std::invalid_argument
/// for unknown app/region names and propagates golden-run failures.
[[nodiscard]] AnalysisReport run_analysis(const AnalysisRequest& request);

/// Campaign -> transform -> re-campaign in one call:
///
///   1. run_analysis(request) measures baseline per-region resilience (the
///      request must ask for success_rates; Internal-target entries guide
///      the pass) and, when a rank campaign was requested, the cross-rank
///      escape taxonomy;
///   2. each application is hardened by harden::harden_module with
///      RegionGuides built from its baseline rows — comm-boundary checks
///      switch on automatically for apps whose rank taxonomy saw escaping
///      faults (absorbed-by-collective / propagated / corrupted output);
///   3. the same request re-runs against the hardened variants on the same
///      batched pool, store and configs.
///
/// Both reports and the per-region coverage/overhead join are returned.
/// Campaign determinism carries over: both legs draw plans from the same
/// seeds, so the report is independent of pool size and fork policy.
/// Throws std::runtime_error if a hardened module fails ir::verify and
/// std::invalid_argument for requests without a success-rate campaign.
[[nodiscard]] HardenReport run_hardening(const AnalysisRequest& request,
                                         const harden::HardenConfig& config);

}  // namespace ft::core
