// The FlipTracker facade (Fig. 1 of the paper).
//
// Ties the substrate together for one application: fault-free golden run
// and trace, region segmentation (step a), isolated region fault injection
// (steps b-c), differential ACL / DDDG analysis (step d), pattern detection
// and pattern-rate extraction. The bench harness and the examples drive
// everything through this class.
#pragma once

#include <memory>
#include <optional>

#include "acl/diff.h"
#include "acl/table.h"
#include "apps/app.h"
#include "dddg/graph.h"
#include "fault/campaign.h"
#include "patterns/detect.h"
#include "patterns/rates.h"
#include "regions/io.h"
#include "regions/tolerance.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "trace/segment.h"

namespace ft::core {

class FlipTracker {
 public:
  explicit FlipTracker(apps::AppSpec app);

  [[nodiscard]] const apps::AppSpec& app() const noexcept { return app_; }

  // --- golden artifacts (computed lazily, cached) ---------------------------
  /// Fault-free run (no tracing).
  const vm::RunResult& golden();
  /// Fault-free traced run. Costs memory proportional to the dynamic
  /// instruction count; dropped with reset_trace().
  const trace::Trace& golden_trace();
  const std::vector<trace::RegionInstance>& region_instances();
  const trace::LocationEvents& golden_events();
  void reset_trace();

  // --- campaigns (Figs. 5/6, Tables III/IV) ----------------------------------
  [[nodiscard]] fault::SiteEnumerationResult enumerate_region_sites(
      std::uint32_t region_id, std::uint32_t instance);
  [[nodiscard]] fault::CampaignResult region_campaign(
      std::uint32_t region_id, std::uint32_t instance,
      fault::TargetClass target, const fault::CampaignConfig& config);
  /// Whole-application campaign (internal sites over the full run).
  [[nodiscard]] fault::CampaignResult app_campaign(
      const fault::CampaignConfig& config);

  // --- analyses ---------------------------------------------------------------
  /// Differential run under one fault plan.
  [[nodiscard]] acl::DiffResult diff_with(const vm::FaultPlan& plan,
                                          std::size_t max_records = 0) const;
  /// ACL series + pattern detection for one fault plan.
  [[nodiscard]] patterns::PatternReport patterns_for(
      const vm::FaultPlan& plan, std::size_t max_records = 0) const;
  /// Fault-free pattern rates of the whole program (Table IV features).
  [[nodiscard]] patterns::PatternRates pattern_rates();
  /// DDDG of one region instance of the golden trace.
  [[nodiscard]] dddg::Graph region_dddg(std::uint32_t region_id,
                                        std::uint32_t instance);
  /// Input/output/internal classification of one region instance.
  [[nodiscard]] std::optional<regions::RegionIo> region_io(
      std::uint32_t region_id, std::uint32_t instance);

 private:
  apps::AppSpec app_;
  std::optional<vm::RunResult> golden_;
  std::optional<trace::Trace> trace_;
  std::optional<std::vector<trace::RegionInstance>> instances_;
  std::optional<trace::LocationEvents> events_;
};

}  // namespace ft::core
