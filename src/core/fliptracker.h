// DEPRECATED: the FlipTracker facade is now a thin shim over
// core::AnalysisSession (core/analysis.h) and will be removed after one
// release. New code should construct an AnalysisSession directly (same
// per-app surface, but thread-safe and shareable) or describe whole
// experiments declaratively with AnalysisRequest / run_analysis, which
// batches every region campaign of every app onto one shared work queue.
//
// Migration map:
//   FlipTracker t(spec);             -> AnalysisSession s(spec);
//   t.golden()                       -> *s.golden()           (shared_ptr)
//   t.golden_trace()                 -> *s.golden_trace()
//   t.region_instances()             -> *s.region_instances()
//   t.golden_events()                -> *s.golden_events()
//   t.reset_trace()                  -> s.invalidate_trace()
//   t.enumerate_region_sites(r, i)   -> *s.region_sites(r, i) (cached now)
//   t.region_campaign(...)           -> s.region_campaign(...)
//   t.app_campaign(cfg)              -> s.app_campaign(cfg)
//   t.diff_with / patterns_for       -> unchanged on the session
//   t.pattern_rates()                -> *s.pattern_rates()
//   t.region_dddg(r, i)              -> *s.region_dddg(r, i)  (cached now)
//   t.region_io(r, i)                -> s.region_io(r, i)
//   hand-rolled loops over apps x regions x targets
//                                    -> AnalysisRequest + run_analysis
#pragma once

#include <memory>
#include <optional>

#include "core/analysis.h"

namespace ft::core {

class FlipTracker {
 public:
  explicit FlipTracker(apps::AppSpec app);

  [[nodiscard]] const apps::AppSpec& app() const noexcept {
    return session_->app();
  }

  /// The session this shim delegates to (an escape hatch for incremental
  /// migration).
  [[nodiscard]] const std::shared_ptr<AnalysisSession>& session()
      const noexcept {
    return session_;
  }

  // --- golden artifacts (computed lazily, cached) ---------------------------
  /// Fault-free run (no tracing).
  const vm::RunResult& golden();
  /// Fault-free traced run. Costs memory proportional to the dynamic
  /// instruction count; dropped with reset_trace().
  const trace::Trace& golden_trace();
  const std::vector<trace::RegionInstance>& region_instances();
  const trace::LocationEvents& golden_events();
  void reset_trace();

  // --- campaigns (Figs. 5/6, Tables III/IV) ----------------------------------
  [[nodiscard]] fault::SiteEnumerationResult enumerate_region_sites(
      std::uint32_t region_id, std::uint32_t instance);
  [[nodiscard]] fault::CampaignResult region_campaign(
      std::uint32_t region_id, std::uint32_t instance,
      fault::TargetClass target, const fault::CampaignConfig& config);
  /// Whole-application campaign (internal sites over the full run).
  [[nodiscard]] fault::CampaignResult app_campaign(
      const fault::CampaignConfig& config);

  // --- analyses ---------------------------------------------------------------
  /// Differential run under one fault plan.
  [[nodiscard]] acl::DiffResult diff_with(const vm::FaultPlan& plan,
                                          std::size_t max_records = 0) const;
  /// ACL series + pattern detection for one fault plan.
  [[nodiscard]] patterns::PatternReport patterns_for(
      const vm::FaultPlan& plan, std::size_t max_records = 0) const;
  /// Fault-free pattern rates of the whole program (Table IV features).
  [[nodiscard]] patterns::PatternRates pattern_rates();
  /// DDDG of one region instance of the golden trace.
  [[nodiscard]] dddg::Graph region_dddg(std::uint32_t region_id,
                                        std::uint32_t instance);
  /// Input/output/internal classification of one region instance.
  [[nodiscard]] std::optional<regions::RegionIo> region_io(
      std::uint32_t region_id, std::uint32_t instance);

 private:
  std::shared_ptr<AnalysisSession> session_;
  // Pinned snapshots backing the reference-returning accessors above; reset
  // by reset_trace() together with the session caches.
  std::shared_ptr<const vm::RunResult> golden_;
  std::shared_ptr<const trace::Trace> trace_;
  std::shared_ptr<const std::vector<trace::RegionInstance>> instances_;
  std::shared_ptr<const trace::LocationEvents> events_;
};

}  // namespace ft::core
