#include "core/service.h"

#include <atomic>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/app.h"
#include "store/artifact_store.h"

namespace ft::core {

// ---------------------------------------------------------------------------
// Single-flight store view
// ---------------------------------------------------------------------------

/// In-flight compute state shared by every per-request store view: one
/// Flight per (kind, key) currently being computed by some request.
struct CampaignService::FlightTable {
  struct Flight {
    const void* owner = nullptr;  // the view that claimed the key
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;       // guarded by mu
    bool published = false;  // guarded by mu
  };
  using Key = std::pair<int, std::uint64_t>;

  std::mutex mu;
  std::map<Key, std::shared_ptr<Flight>> map;  // guarded by mu
  std::atomic<std::uint64_t> joined{0};
};

namespace {

using FlightTable = CampaignService::FlightTable;

constexpr int kCampaignKind = 0;

/// Per-request delegating view over the shared store that gives campaign
/// outcome keys single-flight semantics: a miss either claims the key (the
/// caller computes and publishes) or waits for the claiming request's
/// publish and then serves the stored counts. Golden/trace/sites keys pass
/// through — their dedup already happens at the shared-session layer.
///
/// Failure safety: a claimed key the owning request never publishes (a
/// thrown golden run, a failed store write) is released when the view is
/// destroyed at request teardown, waking waiters with published == false so
/// they loop and claim the compute themselves. Claims are per-view, so one
/// request's failure never wedges another's key.
class SingleFlightStore final : public store::ArtifactStore {
 public:
  SingleFlightStore(std::shared_ptr<store::ArtifactStore> inner,
                    std::shared_ptr<CampaignService::FlightTable> table)
      : store::ArtifactStore(inner->root()),
        inner_(std::move(inner)),
        table_(std::move(table)) {}

  ~SingleFlightStore() override {
    // Release every claim the request never published (it failed or threw):
    // waiters wake, observe published == false, and compute themselves.
    std::vector<FlightTable::Key> leaked;
    {
      std::lock_guard lock(table_->mu);
      leaked = claims_;
    }
    for (const auto& k : leaked) complete(k, /*published=*/false);
  }

  std::optional<fault::CampaignResult> load_campaign(
      std::uint64_t key) override {
    const FlightTable::Key k{kCampaignKind, key};
    for (;;) {
      if (auto r = inner_->load_campaign(key)) return r;
      std::shared_ptr<FlightTable::Flight> flight;
      bool claimed = false;
      {
        std::lock_guard lock(table_->mu);
        auto it = table_->map.find(k);
        if (it == table_->map.end()) {
          auto f = std::make_shared<FlightTable::Flight>();
          f->owner = this;
          table_->map.emplace(k, std::move(f));
          claims_.push_back(k);
          claimed = true;
        } else if (it->second->owner == this) {
          // A key is claimed once per request (run_analysis looks each
          // campaign key up once); seeing our own claim again would mean
          // waiting on ourselves, so treat it as our own miss.
          return std::nullopt;
        } else {
          flight = it->second;
        }
      }
      if (claimed) {
        // The producer may have published and retired its flight between
        // our miss above and our claim — publishes hit the inner store
        // BEFORE the flight completes, so a recheck now observes any such
        // result and we never recompute stored counts. Waiters who joined
        // the short-lived claim wake with published == true and reload.
        if (auto r = inner_->load_campaign(key)) {
          complete(k, /*published=*/true);
          return r;
        }
        return std::nullopt;  // this request owns the compute
      }
      table_->joined.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock lock(flight->mu);
      flight->cv.wait(lock, [&] { return flight->done; });
      if (!flight->published) continue;  // producer failed: retry/claim
      // Producer published: the reload above serves the stored counts.
    }
  }

  bool publish_campaign(std::uint64_t key,
                        const fault::CampaignResult& r) override {
    const bool ok = inner_->publish_campaign(key, r);
    complete({kCampaignKind, key}, ok);
    return ok;
  }

  // Everything else delegates; session-level sharing already dedups the
  // golden artifacts behind these.
  std::shared_ptr<const trace::ColumnTrace> load_trace(
      std::uint64_t key, std::shared_ptr<const vm::DecodedProgram> program,
      std::uint64_t program_hash) override {
    return inner_->load_trace(key, std::move(program), program_hash);
  }
  bool publish_trace(std::uint64_t key, const trace::ColumnTrace& t,
                     std::uint64_t program_hash) override {
    return inner_->publish_trace(key, t, program_hash);
  }
  std::optional<vm::RunResult> load_golden(std::uint64_t key) override {
    return inner_->load_golden(key);
  }
  bool publish_golden(std::uint64_t key, const vm::RunResult& run) override {
    return inner_->publish_golden(key, run);
  }
  std::optional<fault::SiteEnumerationResult> load_sites(
      std::uint64_t key) override {
    return inner_->load_sites(key);
  }
  bool publish_sites(std::uint64_t key,
                     const fault::SiteEnumerationResult& s) override {
    return inner_->publish_sites(key, s);
  }
  std::optional<std::string> load_summary(std::uint64_t key) override {
    return inner_->load_summary(key);
  }
  bool publish_summary(std::uint64_t key,
                       const std::string& payload) override {
    return inner_->publish_summary(key, payload);
  }
  Counters counters() const noexcept override { return inner_->counters(); }

 private:
  void complete(const FlightTable::Key& k, bool published) {
    std::shared_ptr<FlightTable::Flight> flight;
    {
      std::lock_guard lock(table_->mu);
      auto it = table_->map.find(k);
      if (it == table_->map.end() || it->second->owner != this) return;
      flight = it->second;
      table_->map.erase(it);
      std::erase(claims_, k);
    }
    {
      std::lock_guard lock(flight->mu);
      flight->done = true;
      flight->published = published;
    }
    flight->cv.notify_all();
  }

  std::shared_ptr<store::ArtifactStore> inner_;
  std::shared_ptr<CampaignService::FlightTable> table_;
  std::vector<FlightTable::Key> claims_;  // guarded by table_->mu
};

}  // namespace

// ---------------------------------------------------------------------------
// CampaignService
// ---------------------------------------------------------------------------

CampaignService::CampaignService(ServiceOptions opts)
    : scheduler_(opts.scheduler ? opts.scheduler : &util::default_executor()),
      store_(std::move(opts.store)),
      flights_(std::make_shared<FlightTable>()) {
  if (!store_ && !opts.store_dir.empty()) {
    store_ = std::make_shared<store::ArtifactStore>(opts.store_dir);
  }
}

CampaignService::~CampaignService() {
  // Every admitted request task captures `this`; wait them out.
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::shared_ptr<AnalysisSession> CampaignService::session_for(
    const std::string& name) {
  std::shared_future<std::shared_ptr<AnalysisSession>> fut;
  std::promise<std::shared_ptr<AnalysisSession>> prom;
  bool creator = false;
  {
    std::lock_guard lock(mu_);
    auto it = sessions_.find(name);
    if (it != sessions_.end()) {
      fut = it->second;
      sessions_shared_.fetch_add(1, std::memory_order_relaxed);
    } else {
      creator = true;
      fut = prom.get_future().share();
      sessions_.emplace(name, fut);
      sessions_created_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (creator) {
    // Build outside the lock: concurrent requesters of the same app wait on
    // the shared future (call_once semantics), requesters of other apps
    // proceed. A failed build is uncached so the next caller retries.
    try {
      auto session = std::make_shared<AnalysisSession>(apps::build_app(name));
      if (store_) session->attach_store(store_);
      prom.set_value(std::move(session));
    } catch (...) {
      {
        std::lock_guard lock(mu_);
        sessions_.erase(name);
      }
      prom.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

AnalysisReport CampaignService::execute(std::uint64_t id,
                                        AnalysisRequest request,
                                        ServiceSubscriber subscriber) {
  // Admission rewrites the request against the shared state; results are
  // unchanged by construction (same specs, same seeds, same configs).
  for (auto& ref : request.apps_) {
    if (!ref.session && !ref.spec) ref.session = session_for(ref.name);
  }
  if (store_ && !request.store_ && request.store_dir_.empty()) {
    request.store_ = std::make_shared<SingleFlightStore>(store_, flights_);
  }
  if (!request.pool_) request.pool_ = scheduler_;
  if (subscriber) {
    request.progress_ = [id, subscriber = std::move(subscriber)](
                            const UnitProgress& unit) {
      subscriber(ServiceSnapshot{id, unit});
    };
  }
  return run_analysis(request);
}

std::future<AnalysisReport> CampaignService::submit(
    AnalysisRequest request, ServiceSubscriber subscriber) {
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  requests_admitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    ++inflight_;
  }
  auto promise = std::make_shared<std::promise<AnalysisReport>>();
  auto fut = promise->get_future();
  scheduler_->submit([this, id, promise, request = std::move(request),
                      subscriber = std::move(subscriber)]() mutable {
    // All service bookkeeping happens BEFORE the promise resolves, and the
    // notify happens under mu_: once a client observes the future (or a
    // stats() snapshot taken after it), the counters are final, and the
    // destructor — released by the inflight_ decrement — can never see this
    // task still touching idle_cv_.
    const auto finish = [this] {
      std::lock_guard lock(mu_);
      --inflight_;
      idle_cv_.notify_all();
    };
    try {
      auto report = execute(id, std::move(request), std::move(subscriber));
      requests_completed_.fetch_add(1, std::memory_order_relaxed);
      finish();
      promise->set_value(std::move(report));
    } catch (...) {
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      finish();
      promise->set_exception(std::current_exception());
    }
  });
  return fut;
}

AnalysisReport CampaignService::run(AnalysisRequest request,
                                    ServiceSubscriber subscriber) {
  return submit(std::move(request), std::move(subscriber)).get();
}

CampaignService::Stats CampaignService::stats() const {
  Stats s;
  s.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  s.requests_completed = requests_completed_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.sessions_shared = sessions_shared_.load(std::memory_order_relaxed);
  s.flights_joined = flights_->joined.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  s.inflight = inflight_;
  return s;
}

}  // namespace ft::core
