#include "core/fliptracker.h"

#include <stdexcept>

namespace ft::core {

FlipTracker::FlipTracker(apps::AppSpec app) : app_(std::move(app)) {}

const vm::RunResult& FlipTracker::golden() {
  if (!golden_) {
    golden_ = vm::Vm::run(app_.module, app_.base);
    if (!golden_->completed()) {
      throw std::runtime_error("fault-free run of '" + app_.name +
                               "' trapped: " +
                               std::string(vm::trap_name(golden_->trap)));
    }
  }
  return *golden_;
}

const trace::Trace& FlipTracker::golden_trace() {
  if (!trace_) {
    trace::TraceCollector collector;
    vm::VmOptions opts = app_.base;
    opts.observer = &collector;
    const auto run = vm::Vm::run(app_.module, opts);
    if (!run.completed()) {
      throw std::runtime_error("traced fault-free run of '" + app_.name +
                               "' trapped");
    }
    if (!golden_) golden_ = run;
    trace_ = collector.take();
  }
  return *trace_;
}

const std::vector<trace::RegionInstance>& FlipTracker::region_instances() {
  if (!instances_) {
    instances_ = trace::segment_regions(golden_trace().span());
  }
  return *instances_;
}

const trace::LocationEvents& FlipTracker::golden_events() {
  if (!events_) {
    events_ = trace::LocationEvents::build(golden_trace().span());
  }
  return *events_;
}

void FlipTracker::reset_trace() {
  trace_.reset();
  instances_.reset();
  events_.reset();
}

fault::SiteEnumerationResult FlipTracker::enumerate_region_sites(
    std::uint32_t region_id, std::uint32_t instance) {
  return fault::enumerate_sites(app_.module, region_id, instance, app_.base);
}

fault::CampaignResult FlipTracker::region_campaign(
    std::uint32_t region_id, std::uint32_t instance, fault::TargetClass target,
    const fault::CampaignConfig& config) {
  const auto sites = enumerate_region_sites(region_id, instance);
  return fault::run_campaign(app_.module, sites, target, golden().outputs,
                             app_.verifier, app_.base, config);
}

fault::CampaignResult FlipTracker::app_campaign(
    const fault::CampaignConfig& config) {
  const auto sites =
      fault::enumerate_whole_program_sites(app_.module, app_.base);
  return fault::run_campaign(app_.module, sites, fault::TargetClass::Internal,
                             golden().outputs, app_.verifier, app_.base,
                             config);
}

acl::DiffResult FlipTracker::diff_with(const vm::FaultPlan& plan,
                                       std::size_t max_records) const {
  acl::DiffOptions opts;
  opts.base = app_.base;
  opts.fault = plan;
  opts.max_records = max_records;
  return acl::diff_run(app_.module, opts);
}

patterns::PatternReport FlipTracker::patterns_for(
    const vm::FaultPlan& plan, std::size_t max_records) const {
  const auto diff = diff_with(plan, max_records);
  const auto events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(diff.faulty.records.data(),
                                    diff.usable_records()));
  patterns::DetectOptions opts;
  if (plan.kind == vm::FaultPlan::Kind::RegionInputMemoryBit) {
    opts.seed_loc = vm::mem_loc(plan.address);
    // Seed at the matching RegionEnter record (where the VM flipped the
    // word); fall back to 0 if the marker is past the usable prefix.
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < diff.usable_records(); ++i) {
      const auto& r = diff.faulty.records[i];
      if (r.op == ir::Opcode::RegionEnter &&
          static_cast<std::uint32_t>(r.aux) == plan.region_id) {
        if (count == plan.region_instance) {
          opts.seed_index = r.index;
          break;
        }
        count++;
      }
    }
  }
  return patterns::detect_patterns(diff, events, opts);
}

patterns::PatternRates FlipTracker::pattern_rates() {
  return patterns::measure_rates(golden_trace().span(), golden_events());
}

dddg::Graph FlipTracker::region_dddg(std::uint32_t region_id,
                                     std::uint32_t instance) {
  const auto inst =
      trace::find_instance(region_instances(), region_id, instance);
  if (!inst) return dddg::Graph{};
  return dddg::Graph::build(
      golden_trace().slice(inst->body_begin(), inst->body_end()));
}

std::optional<regions::RegionIo> FlipTracker::region_io(
    std::uint32_t region_id, std::uint32_t instance) {
  const auto inst =
      trace::find_instance(region_instances(), region_id, instance);
  if (!inst) return std::nullopt;
  return regions::classify_io(
      golden_trace().slice(inst->body_begin(), inst->body_end()),
      golden_events(), *inst);
}

}  // namespace ft::core
