#include "core/fliptracker.h"

namespace ft::core {

FlipTracker::FlipTracker(apps::AppSpec app)
    : session_(std::make_shared<AnalysisSession>(std::move(app))) {}

const vm::RunResult& FlipTracker::golden() {
  golden_ = session_->golden();
  return *golden_;
}

const trace::Trace& FlipTracker::golden_trace() {
  trace_ = session_->golden_trace();
  return *trace_;
}

const std::vector<trace::RegionInstance>& FlipTracker::region_instances() {
  instances_ = session_->region_instances();
  return *instances_;
}

const trace::LocationEvents& FlipTracker::golden_events() {
  events_ = session_->golden_events();
  return *events_;
}

void FlipTracker::reset_trace() {
  trace_.reset();
  instances_.reset();
  events_.reset();
  session_->invalidate_trace();
}

fault::SiteEnumerationResult FlipTracker::enumerate_region_sites(
    std::uint32_t region_id, std::uint32_t instance) {
  return *session_->region_sites(region_id, instance);
}

fault::CampaignResult FlipTracker::region_campaign(
    std::uint32_t region_id, std::uint32_t instance, fault::TargetClass target,
    const fault::CampaignConfig& config) {
  return session_->region_campaign(region_id, instance, target, config);
}

fault::CampaignResult FlipTracker::app_campaign(
    const fault::CampaignConfig& config) {
  return session_->app_campaign(config);
}

acl::DiffResult FlipTracker::diff_with(const vm::FaultPlan& plan,
                                       std::size_t max_records) const {
  return session_->diff_with(plan, max_records);
}

patterns::PatternReport FlipTracker::patterns_for(
    const vm::FaultPlan& plan, std::size_t max_records) const {
  return session_->patterns_for(plan, max_records);
}

patterns::PatternRates FlipTracker::pattern_rates() {
  return *session_->pattern_rates();
}

dddg::Graph FlipTracker::region_dddg(std::uint32_t region_id,
                                     std::uint32_t instance) {
  return *session_->region_dddg(region_id, instance);
}

std::optional<regions::RegionIo> FlipTracker::region_io(
    std::uint32_t region_id, std::uint32_t instance) {
  return session_->region_io(region_id, instance);
}

}  // namespace ft::core
