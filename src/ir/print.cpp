#include "ir/print.h"

#include <sstream>

#include "util/strfmt.h"

namespace ft::ir {

namespace {

std::string operand_str(const Operand& o, const Module& m) {
  switch (o.kind) {
    case OperandKind::Reg:
      return util::format("%r{}:{}", o.id, type_name(o.type));
    case OperandKind::ImmI:
      return util::format("{}:{}", o.imm_i, type_name(o.type));
    case OperandKind::ImmF:
      return util::format("{:g}:{}", o.imm_f, type_name(o.type));
    case OperandKind::Arg:
      return util::format("%arg{}", o.id);
    case OperandKind::Global:
      return util::format("@{}", m.global(o.id).name);
    case OperandKind::Block:
      return util::format("^bb{}", o.id);
    case OperandKind::None:
      return "<none>";
  }
  return "?";
}

}  // namespace

std::string to_string(const Instruction& ins, const Module& m) {
  std::string s;
  if (ins.defines_register()) {
    s += util::format("%r{} = ", ins.result);
  }
  s += opcode_name(ins.op);
  if (ins.pred != CmpPred::None) {
    s += util::format(".{}", pred_name(ins.pred));
  }
  if (ins.type != Type::Void) {
    s += util::format(" {}", type_name(ins.type));
  }
  bool first = true;
  for (const auto& o : ins.ops) {
    s += first ? " " : ", ";
    first = false;
    s += operand_str(o, m);
  }
  switch (ins.op) {
    case Opcode::Gep:
      s += util::format(" stride={}", ins.aux);
      break;
    case Opcode::Alloca:
      s += util::format(" size={}", ins.aux);
      break;
    case Opcode::Call:
      s += util::format(" @{}", m.function(static_cast<std::uint32_t>(ins.aux)).name);
      break;
    case Opcode::RegionEnter:
    case Opcode::RegionExit:
      s += util::format(" region={}",
                       m.region(static_cast<std::uint32_t>(ins.aux)).name);
      break;
    case Opcode::EmitTrunc:
      s += util::format(" digits={}", ins.aux);
      break;
    case Opcode::MpiAllreduce:
      s += util::format(" op={}", ins.aux);
      break;
    default:
      break;
  }
  return s;
}

void print(const Function& f, const Module& m, std::ostream& os) {
  os << "func @" << f.name << '(';
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << '%' << f.params[i].name << ':' << type_name(f.params[i].type);
  }
  os << ") -> " << type_name(f.ret) << " {\n";
  for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
    os << "^bb" << bi;
    if (!f.blocks[bi].name.empty()) os << " ; " << f.blocks[bi].name;
    os << ":\n";
    for (const auto& ins : f.blocks[bi].instrs) {
      os << "  " << to_string(ins, m) << '\n';
    }
  }
  os << "}\n";
}

void print(const Module& m, std::ostream& os) {
  os << "module @" << m.name() << '\n';
  for (std::uint32_t g = 0; g < m.num_globals(); ++g) {
    const auto& gl = m.global(g);
    os << util::format("global @{} : {} x {}\n", gl.name, gl.count,
                      type_name(gl.elem));
  }
  for (std::uint32_t r = 0; r < m.num_regions(); ++r) {
    const auto& reg = m.region(r);
    os << util::format("region #{} '{}' {}:{}-{}\n", r, reg.name, reg.file,
                      reg.line_begin, reg.line_end);
  }
  for (std::uint32_t f = 0; f < m.num_functions(); ++f) {
    print(m.function(f), m, os);
  }
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  print(m, os);
  return os.str();
}

}  // namespace ft::ir
