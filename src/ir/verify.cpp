#include "ir/verify.h"

#include <unordered_set>

#include "util/strfmt.h"

namespace ft::ir {

namespace {

void verify_function(const Module& m, std::uint32_t fid,
                     std::vector<std::string>& errs) {
  const Function& f = m.function(fid);
  auto err = [&](std::string msg) {
    errs.push_back(util::format("function '{}': {}", f.name, std::move(msg)));
  };

  if (f.blocks.empty()) {
    err("has no blocks");
    return;
  }

  // Pass 1: collect defined registers; detect duplicate definitions.
  std::unordered_set<std::uint32_t> defined;
  for (const auto& b : f.blocks) {
    for (const auto& ins : b.instrs) {
      if (!ins.defines_register()) continue;
      if (!has_result(ins.op)) {
        err(util::format("{} cannot define a register", opcode_name(ins.op)));
      }
      if (ins.result >= f.num_regs) {
        err(util::format("register r{} out of range", ins.result));
      }
      if (!defined.insert(ins.result).second) {
        err(util::format("register r{} defined more than once", ins.result));
      }
    }
  }

  // Pass 2: per-instruction checks.
  for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
    const auto& b = f.blocks[bi];
    if (b.instrs.empty() || !is_terminator(b.instrs.back().op)) {
      err(util::format("block {} ('{}') does not end with a terminator", bi,
                      b.name));
    }
    for (std::size_t ii = 0; ii < b.instrs.size(); ++ii) {
      const auto& ins = b.instrs[ii];
      if (is_terminator(ins.op) && ii + 1 != b.instrs.size()) {
        err(util::format("terminator mid-block in block {} ('{}')", bi, b.name));
      }
      if (has_result(ins.op) && !ins.defines_register()) {
        err(util::format("{} must define a register", opcode_name(ins.op)));
      }
      for (const auto& op : ins.ops) {
        switch (op.kind) {
          case OperandKind::Reg:
            if (!defined.count(op.id)) {
              err(util::format("use of undefined register r{}", op.id));
            }
            break;
          case OperandKind::Arg:
            if (op.id >= f.params.size()) {
              err(util::format("arg index {} out of range", op.id));
            }
            break;
          case OperandKind::Global:
            if (op.id >= m.num_globals()) {
              err(util::format("global index {} out of range", op.id));
            }
            break;
          case OperandKind::Block:
            if (op.id >= f.blocks.size()) {
              err(util::format("branch target {} out of range", op.id));
            }
            break;
          case OperandKind::ImmI:
          case OperandKind::ImmF:
          case OperandKind::None:
            break;
        }
      }
      if (is_int_binary(ins.op) || is_float_binary(ins.op)) {
        if (ins.ops.size() != 2) {
          err(util::format("{} expects 2 operands", opcode_name(ins.op)));
        } else if (ins.ops[0].type != ins.type || ins.ops[1].type != ins.type) {
          err(util::format("{} operand/result type mismatch",
                          opcode_name(ins.op)));
        }
        if (is_int_binary(ins.op) && !is_int(ins.type)) {
          err(util::format("{} on non-integer type", opcode_name(ins.op)));
        }
        if (is_float_binary(ins.op) && !is_float(ins.type)) {
          err(util::format("{} on non-float type", opcode_name(ins.op)));
        }
      }
      if ((ins.op == Opcode::ICmp || ins.op == Opcode::FCmp) &&
          ins.pred == CmpPred::None) {
        err("cmp without predicate");
      }
      if (ins.op == Opcode::Call) {
        if (static_cast<std::size_t>(ins.aux) >= m.num_functions()) {
          err(util::format("call to out-of-range function {}", ins.aux));
        } else {
          const auto& callee = m.function(static_cast<std::uint32_t>(ins.aux));
          if (callee.params.size() != ins.ops.size()) {
            err(util::format("call to '{}' with {} args, expected {}",
                            callee.name, ins.ops.size(),
                            callee.params.size()));
          }
        }
      }
      if (is_region_marker(ins.op) &&
          static_cast<std::size_t>(ins.aux) >= m.num_regions()) {
        err(util::format("region marker references undeclared region {}",
                        ins.aux));
      }
      if (ins.op == Opcode::Gep && ins.aux <= 0) {
        err("gep with non-positive stride");
      }
      if (ins.op == Opcode::CheckTrap &&
          (ins.ops.size() != 1 || ins.ops[0].type != Type::I1)) {
        err("check.trap expects one i1 operand");
      }
      if (ins.op == Opcode::Alloca && ins.aux <= 0) {
        err("alloca with non-positive size");
      }
    }
  }
}

}  // namespace

std::vector<std::string> verify(const Module& m) {
  std::vector<std::string> errs;
  if (m.num_functions() == 0) {
    errs.emplace_back("module has no functions");
    return errs;
  }
  if (m.entry() >= m.num_functions()) {
    errs.emplace_back("entry function out of range");
  } else if (!m.function(m.entry()).params.empty()) {
    errs.emplace_back("entry function must take no parameters");
  }
  for (std::uint32_t f = 0; f < m.num_functions(); ++f) {
    verify_function(m, f, errs);
  }
  return errs;
}

bool is_valid(const Module& m) { return verify(m).empty(); }

}  // namespace ft::ir
