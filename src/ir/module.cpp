#include "ir/module.h"

namespace ft::ir {

namespace {
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}
}  // namespace

std::uint64_t Module::layout() {
  if (laid_out_) return stack_base_;
  std::uint64_t cursor = kGlobalBase;
  for (auto& g : globals_) {
    cursor = align_up(cursor, 8);
    g.addr = cursor;
    cursor += g.size_bytes();
  }
  stack_base_ = align_up(cursor, 16);
  memory_size_ = stack_base_ + stack_bytes_;
  laid_out_ = true;
  return stack_base_;
}

}  // namespace ft::ir
