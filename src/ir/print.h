// Textual dump of MiniIR, LLVM-assembly flavoured. Used in tests and for
// debugging workload builders; not a stable serialization format.
#pragma once

#include <ostream>
#include <string>

#include "ir/module.h"

namespace ft::ir {

void print(const Module& m, std::ostream& os);
void print(const Function& f, const Module& m, std::ostream& os);

[[nodiscard]] std::string to_string(const Module& m);
[[nodiscard]] std::string to_string(const Instruction& ins, const Module& m);

}  // namespace ft::ir
