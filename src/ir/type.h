// Scalar type system of MiniIR. Mirrors the subset of LLVM types that the
// paper's workloads exercise: 1-bit booleans, 32/64-bit integers, 32/64-bit
// IEEE floats and raw pointers into the VM's linear memory.
#pragma once

#include <cstdint>
#include <string_view>

namespace ft::ir {

enum class Type : std::uint8_t {
  Void,
  I1,
  I32,
  I64,
  F32,
  F64,
  Ptr,
};

[[nodiscard]] constexpr bool is_int(Type t) noexcept {
  return t == Type::I1 || t == Type::I32 || t == Type::I64;
}

[[nodiscard]] constexpr bool is_float(Type t) noexcept {
  return t == Type::F32 || t == Type::F64;
}

/// Width in bits of a value of this type (pointers are 64-bit).
[[nodiscard]] constexpr unsigned bit_width(Type t) noexcept {
  switch (t) {
    case Type::I1: return 1;
    case Type::I32: return 32;
    case Type::F32: return 32;
    case Type::I64: return 64;
    case Type::F64: return 64;
    case Type::Ptr: return 64;
    case Type::Void: return 0;
  }
  return 0;
}

/// Bytes a value of this type occupies in VM memory (I1 stores as 1 byte).
[[nodiscard]] constexpr unsigned store_size(Type t) noexcept {
  switch (t) {
    case Type::I1: return 1;
    case Type::I32: return 4;
    case Type::F32: return 4;
    case Type::I64: return 8;
    case Type::F64: return 8;
    case Type::Ptr: return 8;
    case Type::Void: return 0;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view type_name(Type t) noexcept {
  switch (t) {
    case Type::Void: return "void";
    case Type::I1: return "i1";
    case Type::I32: return "i32";
    case Type::I64: return "i64";
    case Type::F32: return "f32";
    case Type::F64: return "f64";
    case Type::Ptr: return "ptr";
  }
  return "?";
}

}  // namespace ft::ir
