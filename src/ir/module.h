// Modules: functions + global arrays + the code-region registry (§III-A).
//
// Memory layout of a module (one linear byte-addressed space per VM):
//   [0, kGlobalBase)            : unmapped guard page; null-ish accesses trap
//   [kGlobalBase, stack_base)   : globals, laid out by layout()
//   [stack_base, memory_size)   : the Alloca stack, bump-allocated per frame
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.h"

namespace ft::ir {

inline constexpr std::uint64_t kGlobalBase = 64;

struct Global {
  std::string name;
  Type elem = Type::F64;
  std::uint64_t count = 1;  // number of elements
  std::uint64_t addr = 0;   // assigned by Module::layout()
  // Optional initial element values as raw bit patterns; empty = zeroed.
  std::vector<std::uint64_t> init_bits;

  [[nodiscard]] std::uint64_t size_bytes() const {
    return count * store_size(elem);
  }
};

/// A code region declared by the program (loop or inter-loop block).
struct RegionInfo {
  std::string name;
  std::string file;
  std::uint32_t line_begin = 0;
  std::uint32_t line_end = 0;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- functions -----------------------------------------------------------
  std::uint32_t add_function(Function f) {
    functions_.push_back(std::move(f));
    return static_cast<std::uint32_t>(functions_.size() - 1);
  }
  [[nodiscard]] const Function& function(std::uint32_t id) const {
    return functions_[id];
  }
  [[nodiscard]] Function& function(std::uint32_t id) { return functions_[id]; }
  [[nodiscard]] std::size_t num_functions() const { return functions_.size(); }
  [[nodiscard]] std::optional<std::uint32_t> find_function(
      std::string_view name) const {
    for (std::uint32_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].name == name) return i;
    }
    return std::nullopt;
  }

  void set_entry(std::uint32_t f) { entry_ = f; }
  [[nodiscard]] std::uint32_t entry() const noexcept { return entry_; }

  // --- globals -------------------------------------------------------------
  std::uint32_t add_global(Global g) {
    globals_.push_back(std::move(g));
    laid_out_ = false;
    return static_cast<std::uint32_t>(globals_.size() - 1);
  }
  [[nodiscard]] const Global& global(std::uint32_t id) const {
    return globals_[id];
  }
  [[nodiscard]] Global& global(std::uint32_t id) { return globals_[id]; }
  [[nodiscard]] std::size_t num_globals() const { return globals_.size(); }
  [[nodiscard]] std::optional<std::uint32_t> find_global(
      std::string_view name) const {
    for (std::uint32_t i = 0; i < globals_.size(); ++i) {
      if (globals_[i].name == name) return i;
    }
    return std::nullopt;
  }

  // --- regions -------------------------------------------------------------
  std::uint32_t add_region(RegionInfo r) {
    regions_.push_back(std::move(r));
    return static_cast<std::uint32_t>(regions_.size() - 1);
  }
  [[nodiscard]] const RegionInfo& region(std::uint32_t id) const {
    return regions_[id];
  }
  [[nodiscard]] RegionInfo& region(std::uint32_t id) { return regions_[id]; }
  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  [[nodiscard]] std::optional<std::uint32_t> find_region(
      std::string_view name) const {
    for (std::uint32_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].name == name) return i;
    }
    return std::nullopt;
  }

  // --- memory layout -------------------------------------------------------
  /// Assign global addresses; idempotent. Returns the first free address
  /// after all globals (== stack base).
  std::uint64_t layout();

  [[nodiscard]] bool laid_out() const noexcept { return laid_out_; }
  [[nodiscard]] std::uint64_t stack_base() const noexcept { return stack_base_; }

  /// Total VM memory size (stack region included).
  [[nodiscard]] std::uint64_t memory_size() const noexcept {
    return memory_size_;
  }
  void set_stack_bytes(std::uint64_t bytes) { stack_bytes_ = bytes; }

 private:
  std::string name_;
  std::vector<Function> functions_;
  std::vector<Global> globals_;
  std::vector<RegionInfo> regions_;
  std::uint32_t entry_ = 0;
  bool laid_out_ = false;
  std::uint64_t stack_base_ = kGlobalBase;
  std::uint64_t stack_bytes_ = 1u << 20;  // 1 MiB default stack
  std::uint64_t memory_size_ = 0;
};

}  // namespace ft::ir
