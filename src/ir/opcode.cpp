#include "ir/opcode.h"

namespace ft::ir {

std::string_view opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::SRem: return "srem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FNeg: return "fneg";
    case Opcode::FSqrt: return "fsqrt";
    case Opcode::FAbs: return "fabs";
    case Opcode::FFloor: return "ffloor";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Select: return "select";
    case Opcode::Trunc: return "trunc";
    case Opcode::SExt: return "sext";
    case Opcode::ZExt: return "zext";
    case Opcode::FPTrunc: return "fptrunc";
    case Opcode::FPExt: return "fpext";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "gep";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Ret: return "ret";
    case Opcode::Call: return "call";
    case Opcode::Rand: return "rand";
    case Opcode::Emit: return "emit";
    case Opcode::EmitTrunc: return "emit.trunc";
    case Opcode::RegionEnter: return "region.enter";
    case Opcode::RegionExit: return "region.exit";
    case Opcode::MpiRank: return "mpi.rank";
    case Opcode::MpiSize: return "mpi.size";
    case Opcode::MpiSend: return "mpi.send";
    case Opcode::MpiRecv: return "mpi.recv";
    case Opcode::MpiAllreduce: return "mpi.allreduce";
    case Opcode::MpiBarrier: return "mpi.barrier";
    case Opcode::CheckTrap: return "check.trap";
  }
  return "?";
}

std::string_view pred_name(CmpPred p) noexcept {
  switch (p) {
    case CmpPred::None: return "none";
    case CmpPred::Eq: return "eq";
    case CmpPred::Ne: return "ne";
    case CmpPred::Lt: return "lt";
    case CmpPred::Le: return "le";
    case CmpPred::Gt: return "gt";
    case CmpPred::Ge: return "ge";
  }
  return "?";
}

}  // namespace ft::ir
