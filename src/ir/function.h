// Functions and basic blocks of MiniIR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace ft::ir {

struct Param {
  Type type = Type::I64;
  std::string name;
};

struct BasicBlock {
  std::string name;
  std::vector<Instruction> instrs;
};

struct Function {
  std::string name;
  Type ret = Type::Void;
  std::vector<Param> params;
  std::vector<BasicBlock> blocks;  // block 0 is the entry
  std::uint32_t num_regs = 0;      // next fresh virtual register id

  [[nodiscard]] std::uint32_t fresh_reg() { return num_regs++; }

  [[nodiscard]] std::size_t instruction_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.instrs.size();
    return n;
  }
};

}  // namespace ft::ir
