// Instructions and operands of MiniIR.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ir/opcode.h"
#include "ir/type.h"

namespace ft::ir {

inline constexpr std::uint32_t kNoReg = std::numeric_limits<std::uint32_t>::max();

enum class OperandKind : std::uint8_t {
  None,
  Reg,     // virtual register defined earlier in the function
  ImmI,    // integer immediate (also used for I1)
  ImmF,    // floating immediate
  Arg,     // function parameter index
  Global,  // module global index (yields its base address, type Ptr)
  Block,   // branch target block index
};

struct Operand {
  OperandKind kind = OperandKind::None;
  Type type = Type::Void;
  std::uint32_t id = 0;  // reg / arg / global / block index
  std::int64_t imm_i = 0;
  double imm_f = 0.0;

  [[nodiscard]] static Operand reg(std::uint32_t r, Type t) {
    Operand o;
    o.kind = OperandKind::Reg;
    o.type = t;
    o.id = r;
    return o;
  }
  [[nodiscard]] static Operand imm(std::int64_t v, Type t = Type::I64) {
    Operand o;
    o.kind = OperandKind::ImmI;
    o.type = t;
    o.imm_i = v;
    return o;
  }
  [[nodiscard]] static Operand fimm(double v, Type t = Type::F64) {
    Operand o;
    o.kind = OperandKind::ImmF;
    o.type = t;
    o.imm_f = v;
    return o;
  }
  [[nodiscard]] static Operand arg(std::uint32_t index, Type t) {
    Operand o;
    o.kind = OperandKind::Arg;
    o.type = t;
    o.id = index;
    return o;
  }
  [[nodiscard]] static Operand global(std::uint32_t index) {
    Operand o;
    o.kind = OperandKind::Global;
    o.type = Type::Ptr;
    o.id = index;
    return o;
  }
  [[nodiscard]] static Operand block(std::uint32_t index) {
    Operand o;
    o.kind = OperandKind::Block;
    o.type = Type::Void;
    o.id = index;
    return o;
  }
};

/// One MiniIR instruction. `aux` multiplexes per-opcode metadata:
///   Gep        -> element stride in bytes
///   Alloca     -> allocation size in bytes
///   Call       -> callee function index
///   EmitTrunc  -> number of significant decimal digits kept
///   RegionEnter/Exit -> region id
///   MpiAllreduce     -> ReduceOp
struct Instruction {
  Opcode op = Opcode::Br;
  Type type = Type::Void;          // result type (Void if no result)
  CmpPred pred = CmpPred::None;    // for ICmp / FCmp
  std::uint32_t result = kNoReg;   // defined virtual register
  std::uint32_t line = 0;          // builder source line (for Table I)
  std::int64_t aux = 0;
  std::vector<Operand> ops;

  [[nodiscard]] bool defines_register() const noexcept {
    return result != kNoReg;
  }
};

}  // namespace ft::ir
