// Opcode set of MiniIR. Deliberately shaped like unoptimized LLVM IR —
// locals live in memory through Alloca/Load/Store and each instruction
// defines a fresh virtual register — because that is the form LLVM-Tracer
// instruments in the paper, and it is what makes DDDG construction and the
// pattern detectors (shift, truncation, conditional, overwrite) natural.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ft::ir {

enum class Opcode : std::uint8_t {
  // Integer binary arithmetic / bitwise.
  Add, Sub, Mul, SDiv, SRem,
  And, Or, Xor, Shl, LShr, AShr,
  // Floating-point binary arithmetic.
  FAdd, FSub, FMul, FDiv,
  // Floating-point unary intrinsics.
  FNeg, FSqrt, FAbs, FFloor,
  // Comparisons (produce I1).
  ICmp, FCmp,
  // Ternary select: (i1, a, b) -> a or b.
  Select,
  // Casts.
  Trunc, SExt, ZExt, FPTrunc, FPExt, FPToSI, SIToFP, Bitcast,
  // Memory.
  Alloca, Load, Store, Gep,
  // Control flow.
  Br, CondBr, Ret, Call,
  // Runtime intrinsics.
  Rand,         // next randlc() double in (0,1)
  Emit,         // append operand to the program's output vector
  EmitTrunc,    // like Emit, but rounded to `aux` decimal digits ("%12.6e")
  RegionEnter,  // aux = region id (code-region model, §III-A)
  RegionExit,   // aux = region id
  // MiniMPI intrinsics.
  MpiRank, MpiSize, MpiSend, MpiRecv, MpiAllreduce, MpiBarrier,
  // Hardening intrinsic (src/harden/): traps with TrapKind::DetectedFault
  // when its I1 operand is true. Emitted by the DWC/ABFT detector passes;
  // never produced by the workload builders themselves. Appended at the
  // end of the enum so pre-hardening modules keep their opcode values
  // (and content hashes) unchanged.
  CheckTrap,
};

/// Number of opcodes (dense enum: dispatch/count tables size to this).
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::CheckTrap) + 1;

/// Predicates for ICmp/FCmp (floating comparisons are the ordered forms).
enum class CmpPred : std::uint8_t {
  None, Eq, Ne, Lt, Le, Gt, Ge,
};

/// Reduction operators for MpiAllreduce (stored in `aux`).
enum class ReduceOp : std::int64_t { Sum = 0, Min = 1, Max = 2 };

[[nodiscard]] constexpr bool is_int_binary(Opcode op) noexcept {
  return op >= Opcode::Add && op <= Opcode::AShr;
}

[[nodiscard]] constexpr bool is_float_binary(Opcode op) noexcept {
  return op >= Opcode::FAdd && op <= Opcode::FDiv;
}

[[nodiscard]] constexpr bool is_float_unary(Opcode op) noexcept {
  return op >= Opcode::FNeg && op <= Opcode::FFloor;
}

[[nodiscard]] constexpr bool is_shift(Opcode op) noexcept {
  return op == Opcode::Shl || op == Opcode::LShr || op == Opcode::AShr;
}

[[nodiscard]] constexpr bool is_cast(Opcode op) noexcept {
  return op >= Opcode::Trunc && op <= Opcode::Bitcast;
}

/// Casts that can discard information (Pattern 5 candidates).
[[nodiscard]] constexpr bool is_narrowing_cast(Opcode op) noexcept {
  return op == Opcode::Trunc || op == Opcode::FPTrunc || op == Opcode::FPToSI;
}

[[nodiscard]] constexpr bool is_terminator(Opcode op) noexcept {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

[[nodiscard]] constexpr bool is_region_marker(Opcode op) noexcept {
  return op == Opcode::RegionEnter || op == Opcode::RegionExit;
}

/// Instructions that write a result register.
[[nodiscard]] constexpr bool has_result(Opcode op) noexcept {
  switch (op) {
    case Opcode::Store:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::Emit:
    case Opcode::EmitTrunc:
    case Opcode::RegionEnter:
    case Opcode::RegionExit:
    case Opcode::MpiSend:
    case Opcode::MpiBarrier:
    case Opcode::CheckTrap:
      return false;
    default:
      return true;
  }
}

[[nodiscard]] std::string_view opcode_name(Opcode op) noexcept;
[[nodiscard]] std::string_view pred_name(CmpPred p) noexcept;

}  // namespace ft::ir
