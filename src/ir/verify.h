// Structural verification of MiniIR modules. Run after building every
// workload (and by tests) so malformed programs fail fast instead of
// producing nonsense traces.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace ft::ir {

/// Returns the list of structural problems; empty means the module is valid.
/// Checks performed:
///  * every block ends with exactly one terminator, none mid-block;
///  * branch targets are valid block indices;
///  * operand registers are defined somewhere in the function and result
///    registers are defined exactly once (SSA discipline);
///  * operand arg/global/function indices are in range;
///  * binary-op operand types match the instruction type;
///  * region markers reference declared regions, and enters/exits nest
///    properly per function (statically balanced on every path is not
///    checked, only id validity);
///  * the entry function exists and takes no parameters.
[[nodiscard]] std::vector<std::string> verify(const Module& m);

/// Convenience: true if verify(m) is empty.
[[nodiscard]] bool is_valid(const Module& m);

}  // namespace ft::ir
