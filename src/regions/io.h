// Input/output/internal classification of code-region instances (§III-B).
//
// Given the record slice of one region instance and the event index of the
// *whole* trace:
//   * inputs    — locations read inside the region before any write inside
//                 it (their value flows in from outside; DDDG roots);
//   * outputs   — locations written inside whose final value is read after
//                 the region before being overwritten (DDDG leaves that are
//                 live-out);
//   * internals — every other location the region touches.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/column.h"
#include "trace/events.h"
#include "trace/segment.h"
#include "vm/observer.h"

namespace ft::regions {

struct IoValue {
  vm::Location loc = vm::kNoLoc;
  std::uint64_t bits = 0;   // inputs: value at first in-region read;
                            // outputs: last value written in-region
  ir::Type type = ir::Type::Void;
  std::uint64_t index = 0;  // dynamic index of that read/write
  std::uint8_t op_slot = 0;  // inputs: operand slot of the first read
};

struct RegionIo {
  std::vector<IoValue> inputs;
  std::vector<IoValue> outputs;
  std::vector<vm::Location> internals;

  [[nodiscard]] bool is_input(vm::Location l) const;
  [[nodiscard]] bool is_output(vm::Location l) const;
};

/// Classify the locations of one region instance. `slice` must be the
/// record span of the instance body (markers excluded is fine either way);
/// `whole_trace_events` must cover the full run so liveness after the
/// region is visible.
[[nodiscard]] RegionIo classify_io(
    std::span<const vm::DynInstr> slice,
    const trace::LocationEvents& whole_trace_events,
    const trace::RegionInstance& inst);

/// Columnar form: identical classification from a TraceView slice.
[[nodiscard]] RegionIo classify_io(
    trace::TraceView slice, const trace::LocationEvents& whole_trace_events,
    const trace::RegionInstance& inst);

/// Only the memory-resident inputs (registers filtered out) — these are the
/// candidate targets for region-entry input injection (§IV-C injects into
/// "input and internal locations").
[[nodiscard]] std::vector<IoValue> memory_inputs(const RegionIo& io);

}  // namespace ft::regions
