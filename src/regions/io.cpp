#include "regions/io.h"

#include <algorithm>
#include <unordered_set>

namespace ft::regions {

bool RegionIo::is_input(vm::Location l) const {
  return std::any_of(inputs.begin(), inputs.end(),
                     [l](const IoValue& v) { return v.loc == l; });
}

bool RegionIo::is_output(vm::Location l) const {
  return std::any_of(outputs.begin(), outputs.end(),
                     [l](const IoValue& v) { return v.loc == l; });
}

namespace {

/// Shared classification over any ordered record range.
template <typename Range>
RegionIo classify_io_range(const Range& slice,
                           const trace::LocationEvents& whole_trace_events,
                           const trace::RegionInstance& inst) {
  RegionIo io;
  std::unordered_set<vm::Location> written, read_first, seen;
  std::unordered_map<vm::Location, IoValue> last_write;

  for (const auto& r : slice) {
    // Reads before any in-region write are inputs.
    for (unsigned k = 0; k < r.nops; ++k) {
      const vm::Location loc = r.op_loc[k];
      if (loc == vm::kNoLoc) continue;
      seen.insert(loc);
      if (!written.count(loc) && read_first.insert(loc).second) {
        io.inputs.push_back(IoValue{loc, r.op_bits[k], r.op_type[k], r.index,
                                    static_cast<std::uint8_t>(k)});
      }
    }
    if (r.result_loc != vm::kNoLoc) {
      written.insert(r.result_loc);
      seen.insert(r.result_loc);
      ir::Type t = r.type;
      if (r.op == ir::Opcode::Store) t = r.op_type[0];
      last_write[r.result_loc] =
          IoValue{r.result_loc, r.result_bits, t, r.index, 0};
    }
  }

  // Outputs: written in-region, and the final in-region value is read after
  // the region exits before being overwritten.
  for (const auto& [loc, wv] : last_write) {
    const auto next_read =
        whole_trace_events.next_read_after(loc, wv.index);
    const auto next_write =
        whole_trace_events.next_write_after(loc, wv.index);
    const bool live_out = next_read != trace::LocationEvents::kNoIndex &&
                          next_read >= inst.exit_index &&
                          (next_write == trace::LocationEvents::kNoIndex ||
                           next_read < next_write);
    if (live_out) io.outputs.push_back(wv);
  }

  // Internals: touched but neither input nor output.
  for (const vm::Location loc : seen) {
    if (!io.is_input(loc) && !io.is_output(loc)) io.internals.push_back(loc);
  }

  // Deterministic ordering for reproducible reports.
  auto by_loc = [](const IoValue& a, const IoValue& b) { return a.loc < b.loc; };
  std::sort(io.inputs.begin(), io.inputs.end(), by_loc);
  std::sort(io.outputs.begin(), io.outputs.end(), by_loc);
  std::sort(io.internals.begin(), io.internals.end());
  return io;
}

}  // namespace

RegionIo classify_io(std::span<const vm::DynInstr> slice,
                     const trace::LocationEvents& whole_trace_events,
                     const trace::RegionInstance& inst) {
  return classify_io_range(slice, whole_trace_events, inst);
}

RegionIo classify_io(trace::TraceView slice,
                     const trace::LocationEvents& whole_trace_events,
                     const trace::RegionInstance& inst) {
  return classify_io_range(slice, whole_trace_events, inst);
}

std::vector<IoValue> memory_inputs(const RegionIo& io) {
  std::vector<IoValue> out;
  for (const auto& v : io.inputs) {
    if (vm::is_mem_loc(v.loc)) out.push_back(v);
  }
  return out;
}

}  // namespace ft::regions
