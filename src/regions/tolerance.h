// Region-level fault-tolerance classification (§III-D).
//
// Given a differential run and one region instance, decides between the
// paper's cases by comparing input/output values of the region's DDDG
// between the faulty and fault-free executions:
//   * Case 1 ("masked"): at least one corrupted input (or the fault fired
//     inside the region) but every output value is correct;
//   * Case 2 ("reduced"): inputs and outputs are corrupted, but the maximum
//     error magnitude (Eq. 2) shrank across the region;
//   * NotTolerant: corruption flows through undiminished (or grew);
//   * Divergent: control flow changed inside the region, so faulty and
//     fault-free streams cannot be matched record-by-record;
//   * NotAffected: no corrupted input and the fault did not fire inside —
//     propagation analysis can skip this region instance (§III-A rationale).
#pragma once

#include <cstdint>

#include "acl/diff.h"
#include "regions/io.h"
#include "trace/segment.h"

namespace ft::regions {

enum class ToleranceCase : std::uint8_t {
  NotAffected,
  Case1Masked,
  Case2Reduced,
  NotTolerant,
  Divergent,
};

[[nodiscard]] std::string_view tolerance_name(ToleranceCase c) noexcept;

struct ToleranceReport {
  ToleranceCase verdict = ToleranceCase::NotAffected;
  std::size_t corrupted_inputs = 0;
  std::size_t corrupted_outputs = 0;
  double max_input_error = 0.0;   // max error magnitude over inputs
  double max_output_error = 0.0;  // max error magnitude over outputs
  bool fault_inside = false;      // injection fired within the instance
};

/// Classify one region instance of a differential run. `io` must have been
/// classified over the same faulty trace; `fault_index` is the dynamic index
/// at which the injection fired (see fault::fired_index), or acl::kNoIndex.
[[nodiscard]] ToleranceReport classify_tolerance(
    const acl::DiffResult& diff, const trace::RegionInstance& inst,
    const RegionIo& io, std::uint64_t fault_index);

}  // namespace ft::regions
