#include "regions/tolerance.h"

#include <algorithm>

#include "acl/table.h"

namespace ft::regions {

std::string_view tolerance_name(ToleranceCase c) noexcept {
  switch (c) {
    case ToleranceCase::NotAffected: return "not-affected";
    case ToleranceCase::Case1Masked: return "case1-masked";
    case ToleranceCase::Case2Reduced: return "case2-reduced";
    case ToleranceCase::NotTolerant: return "not-tolerant";
    case ToleranceCase::Divergent: return "divergent";
  }
  return "?";
}

ToleranceReport classify_tolerance(const acl::DiffResult& diff,
                                   const trace::RegionInstance& inst,
                                   const RegionIo& io,
                                   std::uint64_t fault_index) {
  ToleranceReport rep;
  rep.fault_inside = fault_index != acl::kNoIndex &&
                     fault_index >= inst.enter_index &&
                     fault_index <= inst.exit_index;

  if (diff.diverged() && diff.divergence_index >= inst.enter_index &&
      diff.divergence_index <= inst.exit_index) {
    rep.verdict = ToleranceCase::Divergent;
    return rep;
  }

  const auto usable = diff.usable_records();
  auto record_ok = [&](std::uint64_t index) { return index < usable; };

  for (const auto& in : io.inputs) {
    if (!record_ok(in.index)) continue;
    const std::uint64_t clean = diff.clean_op_bits[in.index][in.op_slot];
    if (clean != in.bits) {
      rep.corrupted_inputs++;
      rep.max_input_error = std::max(
          rep.max_input_error, acl::error_magnitude(clean, in.bits, in.type));
    }
  }
  for (const auto& out : io.outputs) {
    if (!record_ok(out.index)) continue;
    if (diff.differs[out.index]) {
      rep.corrupted_outputs++;
      rep.max_output_error = std::max(
          rep.max_output_error,
          acl::error_magnitude(diff.clean_bits[out.index], out.bits,
                               out.type));
    }
  }

  const bool affected = rep.corrupted_inputs > 0 || rep.fault_inside;
  if (!affected && rep.corrupted_outputs == 0) {
    rep.verdict = ToleranceCase::NotAffected;
  } else if (rep.corrupted_outputs == 0) {
    rep.verdict = ToleranceCase::Case1Masked;
  } else if (rep.corrupted_inputs > 0 &&
             rep.max_output_error < rep.max_input_error) {
    rep.verdict = ToleranceCase::Case2Reduced;
  } else {
    rep.verdict = ToleranceCase::NotTolerant;
  }
  return rep;
}

}  // namespace ft::regions
