/// @file
/// On-disk format of the persistent artifact store (spec: docs/architecture.md).
///
/// Two file kinds share the conventions below:
///
///   * trace segment files (`traces/<key>.fttrace`) — a 64-byte header
///     followed by the ColumnTrace structure-of-arrays columns, written
///     verbatim so a loader can mmap the file and adopt the column arrays
///     zero-copy (trace::ColumnTrace::adopt);
///   * result blobs (`blobs/<key>.<kind>`) — a 40-byte header followed by a
///     little-endian field stream (store/serial.h) holding a serialized
///     golden run, site enumeration, or campaign outcome counts.
///
/// Shared rules:
///   * every file is little-endian and says so (`kEndianMark`, written
///     natively: a foreign-endian file fails the mark and is a miss);
///   * every header carries a magic, a version and an FNV-1a self-hash;
///     payloads carry their own content hash — any mismatch, short file or
///     unknown version is treated as a MISS, never an error and never data;
///   * versioning: bump the version when the layout changes in any way and
///     keep readers rejecting versions they do not know (old entries are
///     recomputed and republished — the store is a cache, not a database);
///   * writers commit atomically: write to `tmp/`, then rename(2) into
///     place, so a crashed or concurrent writer can leave only invisible
///     garbage in tmp/, never a torn visible entry.
#pragma once

#include <cstdint>

namespace ft::store {

/// "FTCTRC01" / "FTBLOB01" read as little-endian u64s.
inline constexpr std::uint64_t kTraceMagic = 0x3130435254435446ull;
inline constexpr std::uint64_t kBlobMagic = 0x3130424F4C425446ull;
inline constexpr std::uint32_t kTraceVersion = 1;
/// v2: campaign blobs grew the detected_recovered / detected_unrecoverable
/// outcome counts (hardening + checkpoint/rollback recovery). Old-version
/// blobs are a counted miss — never reinterpreted under the new layout.
inline constexpr std::uint32_t kBlobVersion = 2;
/// Byte-order mark: written as a native u32, so a big-endian writer
/// produces 0x04030201 on disk and the (little-endian) reader rejects it.
inline constexpr std::uint32_t kEndianMark = 0x01020304u;

/// Kinds of result blob (BlobHeader::kind).
enum class BlobKind : std::uint32_t {
  GoldenRun = 1,   // serialized vm::RunResult of the fault-free run
  Sites = 2,       // serialized fault::SiteEnumerationResult
  Campaign = 3,    // serialized fault::CampaignResult outcome counts
  Summary = 4,     // serialized compose::SectionSummary (per-section sites)
};

/// Header of a trace segment file. 64 bytes, no padding; `header_hash` is
/// FNV-1a over the 56 bytes preceding it.
struct TraceFileHeader {
  std::uint64_t magic = kTraceMagic;
  std::uint32_t version = kTraceVersion;
  std::uint32_t endian = kEndianMark;
  /// Content hash of (laid-out module, execution options) the trace was
  /// produced from; the loader refuses to adopt a trace for a different
  /// program (wrong pc space — would serve garbage).
  std::uint64_t program_hash = 0;
  std::uint64_t rows = 0;    // records
  std::uint64_t ops = 0;     // packed operand-bits pool entries
  std::uint64_t extras = 0;  // escape-list entries
  std::uint64_t file_bytes = 0;  // expected total size (truncation check)
  std::uint64_t header_hash = 0;
};
static_assert(sizeof(TraceFileHeader) == 64);

/// Header of a result blob. 40 bytes, no padding; `payload_hash` is FNV-1a
/// over the `payload_bytes` bytes that follow the header.
struct BlobHeader {
  std::uint64_t magic = kBlobMagic;
  std::uint32_t version = kBlobVersion;
  std::uint32_t kind = 0;  // BlobKind
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_hash = 0;
  std::uint32_t endian = kEndianMark;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(BlobHeader) == 40);

/// Byte offsets of the trace columns within a segment file. Column arrays
/// start 8-byte aligned (u64 columns must be naturally aligned in the map);
/// both writer and loader derive the layout from the same counts, so no
/// offsets are stored.
struct TraceLayout {
  std::uint64_t pc = 0;
  std::uint64_t activation = 0;
  std::uint64_t ops_offset = 0;
  std::uint64_t result_bits = 0;
  std::uint64_t op_bits = 0;
  std::uint64_t extras = 0;
  std::uint64_t file_bytes = 0;
};

[[nodiscard]] constexpr std::uint64_t align8(std::uint64_t v) noexcept {
  return (v + 7) & ~std::uint64_t{7};
}

[[nodiscard]] constexpr TraceLayout trace_layout(std::uint64_t rows,
                                                 std::uint64_t ops,
                                                 std::uint64_t extras) noexcept {
  TraceLayout l;
  l.pc = sizeof(TraceFileHeader);
  l.activation = align8(l.pc + 4 * rows);
  l.ops_offset = align8(l.activation + 4 * rows);
  l.result_bits = align8(l.ops_offset + 4 * rows);
  l.op_bits = l.result_bits + 8 * rows;
  l.extras = l.op_bits + 8 * ops;
  l.file_bytes = l.extras + 24 * extras;
  return l;
}

}  // namespace ft::store
