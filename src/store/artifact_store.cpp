#include "store/artifact_store.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "store/serial.h"
#include "store/trace_io.h"
#include "util/hash.h"

namespace ft::store {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

namespace {

void hash_operand(util::Hash64& h, const ir::Operand& o) {
  h.u32(static_cast<std::uint32_t>(o.kind));
  h.u32(static_cast<std::uint32_t>(o.type));
  h.u32(o.id);
  h.i64(o.imm_i);
  h.f64(o.imm_f);  // bit pattern, so -0.0 and NaN payloads are distinct
}

void hash_instruction(util::Hash64& h, const ir::Instruction& ins) {
  h.u32(static_cast<std::uint32_t>(ins.op));
  h.u32(static_cast<std::uint32_t>(ins.type));
  h.u32(static_cast<std::uint32_t>(ins.pred));
  h.u32(ins.result);
  h.i64(ins.aux);
  h.u64(ins.ops.size());
  for (const auto& o : ins.ops) hash_operand(h, o);
}

}  // namespace

std::uint64_t hash_module(const ir::Module& m) {
  // Semantic content only: two modules hashing equal execute identically.
  // Names and source lines are presentation metadata and excluded; global
  // addresses and the memory geometry are included because execution (and
  // input-site addresses) depend on the layout.
  util::Hash64 h("ft.module.v1");
  h.u64(m.num_functions());
  h.u32(m.entry());
  for (std::uint32_t f = 0; f < m.num_functions(); ++f) {
    const auto& fn = m.function(f);
    h.u32(static_cast<std::uint32_t>(fn.ret));
    h.u64(fn.params.size());
    for (const auto& p : fn.params) h.u32(static_cast<std::uint32_t>(p.type));
    h.u32(fn.num_regs);
    h.u64(fn.blocks.size());
    for (const auto& b : fn.blocks) {
      h.u64(b.instrs.size());
      for (const auto& ins : b.instrs) hash_instruction(h, ins);
    }
  }
  h.u64(m.num_globals());
  for (std::uint32_t g = 0; g < m.num_globals(); ++g) {
    const auto& gl = m.global(g);
    h.u32(static_cast<std::uint32_t>(gl.elem));
    h.u64(gl.count);
    h.u64(gl.addr);
    h.u64(gl.init_bits.size());
    for (const auto bits : gl.init_bits) h.u64(bits);
  }
  h.u64(m.num_regions());
  h.u64(m.stack_base());
  h.u64(m.memory_size());
  return h.digest();
}

std::uint64_t hash_section(const ir::Module& m,
                           std::span<const InstrCoord> body) {
  // Per-instruction content hashing mirrors hash_module exactly;
  // module-level geometry (globals, regions, memory layout) is deliberately
  // absent — the summary key carries it through the boundary entry-state
  // hash, which covers the full memory image.
  util::Hash64 h("ft.section.v1");
  h.u64(body.size());
  for (const auto& c : body) {
    h.u32(c.func).u32(c.block).u32(c.instr);
    hash_instruction(h, m.function(c.func).blocks[c.block].instrs[c.instr]);
  }
  return h.digest();
}

std::uint64_t hash_options(const vm::VmOptions& base) {
  util::Hash64 h("ft.options.v1");
  h.u64(base.max_instructions);
  h.f64(base.rand_seed);
  h.u32(base.max_call_depth);
  return h.digest();
}

std::uint64_t golden_key(std::uint64_t module_hash, std::uint64_t options_hash) {
  util::Hash64 h("ft.key.golden.v1");
  h.u64(module_hash);
  h.u64(options_hash);
  return h.digest();
}

std::uint64_t trace_key(std::uint64_t module_hash, std::uint64_t options_hash) {
  util::Hash64 h("ft.key.trace.v1");
  h.u64(module_hash);
  h.u64(options_hash);
  return h.digest();
}

std::uint64_t sites_key(std::uint64_t module_hash, std::uint64_t options_hash,
                        std::uint32_t region_id, std::uint32_t instance) {
  util::Hash64 h("ft.key.sites.v1");
  h.u64(module_hash);
  h.u64(options_hash);
  h.u32(region_id);
  h.u32(instance);
  return h.digest();
}

std::uint64_t campaign_key(std::uint64_t module_hash,
                           std::uint64_t options_hash, std::uint32_t region_id,
                           std::uint32_t instance, fault::TargetClass target,
                           const fault::CampaignConfig& cfg) {
  util::Hash64 h("ft.key.campaign.v2");
  h.u64(module_hash);
  h.u64(options_hash);
  h.u32(region_id);
  h.u32(instance);
  h.u32(static_cast<std::uint32_t>(target));
  h.u64(cfg.trials);
  h.f64(cfg.confidence);
  h.f64(cfg.margin);
  h.u64(cfg.seed);
  h.f64(cfg.budget_factor);
  // RecoveryPolicy is semantic, not scheduling: it changes the outcome
  // taxonomy a campaign produces, so it keys the cache entry (ForkPolicy,
  // by contrast, stays excluded — forking never changes counts).
  h.u32(cfg.recovery.enabled ? 1 : 0);
  h.u64(cfg.recovery.checkpoint_interval);
  return h.digest();
}

std::uint64_t summary_key(std::uint64_t section_hash, std::uint64_t entry_hash,
                          std::uint64_t begin, std::uint64_t end,
                          std::uint64_t plans_hash, std::uint64_t options_hash,
                          const fault::CampaignConfig& cfg) {
  util::Hash64 h("ft.key.summary.v1");
  h.u64(section_hash);
  h.u64(entry_hash);
  h.u64(begin);
  h.u64(end);
  h.u64(plans_hash);
  h.u64(options_hash);
  // Same semantic campaign fields as campaign_key: they determine the plan
  // population and the outcome taxonomy the summaries feed.
  h.u64(cfg.trials);
  h.f64(cfg.confidence);
  h.f64(cfg.margin);
  h.u64(cfg.seed);
  h.f64(cfg.budget_factor);
  h.u32(cfg.recovery.enabled ? 1 : 0);
  h.u64(cfg.recovery.checkpoint_interval);
  return h.digest();
}

// ---------------------------------------------------------------------------
// Result blob payloads (explicit little-endian fields; see store/serial.h)
// ---------------------------------------------------------------------------

namespace {

std::string encode_golden(const vm::RunResult& r) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(r.trap));
  w.u64(r.instructions);
  w.boolean(r.fault_fired);
  w.u64(r.outputs.size());
  for (const auto& o : r.outputs) {
    w.u64(o.bits);
    w.u32(static_cast<std::uint32_t>(o.type));
  }
  return w.bytes();
}

std::optional<vm::RunResult> decode_golden(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  vm::RunResult out;
  out.trap = static_cast<vm::TrapKind>(r.u32());
  out.instructions = r.u64();
  out.fault_fired = r.boolean();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > payload.size()) return std::nullopt;  // bogus count
  out.outputs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    vm::OutputValue v;
    v.bits = r.u64();
    v.type = static_cast<ir::Type>(r.u32());
    out.outputs.push_back(v);
  }
  if (!r.done()) return std::nullopt;
  return out;
}

std::string encode_sites(const fault::SiteEnumerationResult& s) {
  ByteWriter w;
  w.u32(s.sites.region_id);
  w.u32(s.sites.instance);
  w.u64(s.sites.internal.size());
  for (const auto& site : s.sites.internal) {
    w.u64(site.dyn_index);
    w.u32(site.width_bits);
  }
  w.u64(s.sites.input.size());
  for (const auto& site : s.sites.input) {
    w.u64(site.address);
    w.u32(site.width_bytes);
  }
  w.u64(s.fault_free_instructions);
  w.u64(s.region_entry_index);
  w.boolean(s.region_found);
  return w.bytes();
}

std::optional<fault::SiteEnumerationResult> decode_sites(
    const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  fault::SiteEnumerationResult out;
  out.sites.region_id = r.u32();
  out.sites.instance = r.u32();
  const std::uint64_t ni = r.u64();
  if (!r.ok() || ni > payload.size()) return std::nullopt;
  out.sites.internal.reserve(ni);
  for (std::uint64_t i = 0; i < ni; ++i) {
    fault::InternalSite s;
    s.dyn_index = r.u64();
    s.width_bits = r.u32();
    out.sites.internal.push_back(s);
  }
  const std::uint64_t nn = r.u64();
  if (!r.ok() || nn > payload.size()) return std::nullopt;
  out.sites.input.reserve(nn);
  for (std::uint64_t i = 0; i < nn; ++i) {
    fault::InputSite s;
    s.address = r.u64();
    s.width_bytes = r.u32();
    out.sites.input.push_back(s);
  }
  out.fault_free_instructions = r.u64();
  out.region_entry_index = r.u64();
  out.region_found = r.boolean();
  if (!r.done()) return std::nullopt;
  return out;
}

std::string encode_campaign(const fault::CampaignResult& c) {
  ByteWriter w;
  w.u64(c.trials);
  w.u64(c.success);
  w.u64(c.failed);
  w.u64(c.crashed);
  w.u64(c.detected_recovered);
  w.u64(c.detected_unrecoverable);
  w.u64(c.population_bits);
  w.u64(c.instructions_retired);
  w.u64(c.snapshots_taken);
  w.u64(c.prefix_instructions_saved);
  w.u64(c.convergence_instructions_saved);
  w.u64(c.early_exits);
  w.u64(c.resume_depth);
  return w.bytes();
}

std::optional<fault::CampaignResult> decode_campaign(
    const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  fault::CampaignResult out;
  out.trials = r.u64();
  out.success = r.u64();
  out.failed = r.u64();
  out.crashed = r.u64();
  out.detected_recovered = r.u64();
  out.detected_unrecoverable = r.u64();
  out.population_bits = r.u64();
  out.instructions_retired = r.u64();
  out.snapshots_taken = r.u64();
  out.prefix_instructions_saved = r.u64();
  out.convergence_instructions_saved = r.u64();
  out.early_exits = r.u64();
  out.resume_depth = r.u64();
  if (!r.done()) return std::nullopt;
  return out;
}

std::string hex16(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

const char* kind_ext(BlobKind kind) {
  switch (kind) {
    case BlobKind::GoldenRun: return "golden";
    case BlobKind::Sites: return "sites";
    case BlobKind::Campaign: return "campaign";
    case BlobKind::Summary: return "summary";
  }
  return "blob";
}

bool write_file(const std::string& path, const void* data, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool wrote = n == 0 || std::fwrite(data, 1, n, f) == n;
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && closed)) {
    std::remove(path.c_str());
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

ArtifactStore::ArtifactStore(std::string dir) : root_(std::move(dir)) {
  // One error_code per call: reusing a single ec across the three creates
  // let a traces/ or blobs/ failure be cleared by a succeeding tmp/ call,
  // and the store then failed much later with a confusing write error.
  for (const char* sub : {"traces", "blobs", "tmp"}) {
    std::error_code ec;
    const fs::path p = fs::path(root_) / sub;
    fs::create_directories(p, ec);
    if (ec) {
      throw std::runtime_error("ArtifactStore: cannot create " + p.string() +
                               ": " + ec.message());
    }
  }
  sweep_stale_tmp();
}

std::size_t ArtifactStore::sweep_stale_tmp() {
  // tmp/ names are "<pid>.<seq>" (tmp_path below). A crashed process never
  // renames its scratch into place, so its files stay forever; anything
  // from a pid that provably no longer exists (kill(pid, 0) == ESRCH) is
  // garbage. Our own files, live pids, unprobeable pids (EPERM) and
  // foreign names are all left alone.
  std::size_t swept = 0;
  const pid_t self = ::getpid();
  std::error_code ec;
  fs::directory_iterator it(fs::path(root_) / "tmp", ec);
  for (const fs::directory_iterator end; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const auto dot = name.find('.');
    if (dot == std::string::npos || dot == 0) continue;
    pid_t pid = 0;
    const auto [ptr, perr] =
        std::from_chars(name.data(), name.data() + dot, pid);
    if (perr != std::errc{} || ptr != name.data() + dot || pid <= 0) continue;
    if (pid == self) continue;
    if (::kill(pid, 0) == 0 || errno != ESRCH) continue;
    std::error_code rec;
    if (fs::remove(it->path(), rec) && !rec) ++swept;
  }
  tmp_swept_.fetch_add(swept, std::memory_order_relaxed);
  return swept;
}

std::string ArtifactStore::trace_path(std::uint64_t key) const {
  return root_ + "/traces/" + hex16(key) + ".fttrace";
}

std::string ArtifactStore::blob_path(std::uint64_t key, BlobKind kind) const {
  return root_ + "/blobs/" + hex16(key) + "." + kind_ext(kind);
}

std::string ArtifactStore::tmp_path() {
  const auto n = seq_.fetch_add(1, std::memory_order_relaxed);
  return root_ + "/tmp/" + std::to_string(::getpid()) + "." +
         std::to_string(n);
}

std::shared_ptr<const trace::ColumnTrace> ArtifactStore::load_trace(
    std::uint64_t key, std::shared_ptr<const vm::DecodedProgram> program,
    std::uint64_t program_hash) {
  const std::string path = trace_path(key);
  auto loaded = load_trace_file(path, std::move(program), program_hash);
  if (!loaded.trace) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    if (fs::exists(path, ec)) corrupt_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(loaded.mapped_bytes, std::memory_order_relaxed);
  return std::move(loaded.trace);
}

bool ArtifactStore::publish_trace(std::uint64_t key,
                                  const trace::ColumnTrace& t,
                                  std::uint64_t program_hash) {
  const std::string tmp = tmp_path();
  if (!save_trace_file(tmp, t, program_hash)) return false;
  const std::string final_path = trace_path(key);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  const auto cols = t.raw();
  bytes_written_.fetch_add(
      trace_layout(cols.rows, cols.ops, cols.num_extras).file_bytes,
      std::memory_order_relaxed);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ArtifactStore::publish_blob(std::uint64_t key, BlobKind kind,
                                 const std::string& payload) {
  BlobHeader h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.payload_bytes = payload.size();
  h.payload_hash = util::hash_bytes(payload.data(), payload.size());

  std::string bytes(reinterpret_cast<const char*>(&h), sizeof(h));
  bytes += payload;
  const std::string tmp = tmp_path();
  if (!write_file(tmp, bytes.data(), bytes.size())) return false;
  const std::string final_path = blob_path(key, kind);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<std::string> ArtifactStore::load_blob(std::uint64_t key,
                                                    BlobKind kind) {
  const std::string path = blob_path(key, kind);
  const auto miss = [&](bool found) -> std::optional<std::string> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (found) corrupt_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return miss(false);
  std::string bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);

  if (bytes.size() < sizeof(BlobHeader)) return miss(true);
  BlobHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (h.magic != kBlobMagic || h.endian != kEndianMark ||
      h.version != kBlobVersion || h.kind != static_cast<std::uint32_t>(kind)) {
    return miss(true);
  }
  if (bytes.size() - sizeof(BlobHeader) != h.payload_bytes) return miss(true);
  std::string payload = bytes.substr(sizeof(BlobHeader));
  if (util::hash_bytes(payload.data(), payload.size()) != h.payload_hash) {
    return miss(true);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return payload;
}

std::optional<vm::RunResult> ArtifactStore::load_golden(std::uint64_t key) {
  auto payload = load_blob(key, BlobKind::GoldenRun);
  if (!payload) return std::nullopt;
  auto decoded = decode_golden(*payload);
  if (!decoded) corrupt_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

bool ArtifactStore::publish_golden(std::uint64_t key, const vm::RunResult& run) {
  return publish_blob(key, BlobKind::GoldenRun, encode_golden(run));
}

std::optional<fault::SiteEnumerationResult> ArtifactStore::load_sites(
    std::uint64_t key) {
  auto payload = load_blob(key, BlobKind::Sites);
  if (!payload) return std::nullopt;
  auto decoded = decode_sites(*payload);
  if (!decoded) corrupt_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

bool ArtifactStore::publish_sites(std::uint64_t key,
                                  const fault::SiteEnumerationResult& s) {
  return publish_blob(key, BlobKind::Sites, encode_sites(s));
}

std::optional<fault::CampaignResult> ArtifactStore::load_campaign(
    std::uint64_t key) {
  auto payload = load_blob(key, BlobKind::Campaign);
  if (!payload) return std::nullopt;
  auto decoded = decode_campaign(*payload);
  if (!decoded) corrupt_.fetch_add(1, std::memory_order_relaxed);
  return decoded;
}

bool ArtifactStore::publish_campaign(std::uint64_t key,
                                     const fault::CampaignResult& r) {
  return publish_blob(key, BlobKind::Campaign, encode_campaign(r));
}

std::optional<std::string> ArtifactStore::load_summary(std::uint64_t key) {
  // The payload is compose::encode_summary's byte string; validation beyond
  // the blob framing (magic/version/hash) is the caller's decode_summary —
  // a payload it rejects is treated as a miss there, same contract.
  return load_blob(key, BlobKind::Summary);
}

bool ArtifactStore::publish_summary(std::uint64_t key,
                                    const std::string& payload) {
  return publish_blob(key, BlobKind::Summary, payload);
}

ArtifactStore::Counters ArtifactStore::counters() const noexcept {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.corrupt = corrupt_.load(std::memory_order_relaxed);
  c.publishes = publishes_.load(std::memory_order_relaxed);
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  c.stale_tmp_swept = tmp_swept_.load(std::memory_order_relaxed);
  return c;
}

ArtifactStore::DiskStats ArtifactStore::disk_stats() const {
  DiskStats stats;
  std::error_code ec;
  for (const char* sub : {"traces", "blobs"}) {
    fs::directory_iterator it(fs::path(root_) / sub, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      std::error_code fec;
      if (!entry.is_regular_file(fec)) continue;
      const auto sz = entry.file_size(fec);
      if (fec) continue;
      ++stats.entries;
      stats.bytes += sz;
    }
  }
  return stats;
}

}  // namespace ft::store
