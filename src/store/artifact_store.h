/// @file
/// Content-addressed persistent artifact store.
///
/// Everything the analysis pipeline produces that is fully determined by
/// (program, config, seed) — golden runs, golden columnar traces, site
/// enumerations, campaign outcome counts — is addressable by a stable
/// 64-bit content hash of those inputs (util/hash.h; key derivations
/// below). ArtifactStore is the durable cache behind those keys: a
/// directory of write-once files, looked up before computing and published
/// after, so a second process (or a second run of the same request) serves
/// the artifact instead of re-deriving it. FastFlip's observation (see
/// PAPERS.md) is the motivation: content-addressed, composable injection
/// results turn re-analysis cost from O(whole program) into O(diff).
///
/// Layout under the store root:
///
///     traces/<key>.fttrace   mmap-able ColumnTrace segments (trace_io.h)
///     blobs/<key>.<kind>     golden / sites / campaign result blobs
///     tmp/                   uncommitted writer scratch (invisible)
///
/// Durability contract: writers serialize into tmp/ under a unique name
/// and rename(2) into place — atomic on POSIX — so concurrent publishers
/// of the same key race benignly (last rename wins, all contents
/// identical by construction) and a crashed writer leaves only tmp/
/// garbage. Readers validate magic, version, sizes and content hashes and
/// treat EVERY anomaly as a miss: the store can always be deleted, never
/// corrupts results, and never serves wrong data (tests/store_test.cpp
/// pins truncation, bad-magic and no-commit cases).
///
/// All operations are thread-safe; hit/miss/byte counters are atomic and
/// surface in core::AnalysisReport when a request runs against a store.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "fault/campaign.h"
#include "fault/sites.h"
#include "store/format.h"
#include "trace/column.h"
#include "vm/interp.h"

namespace ft::store {

// ---------------------------------------------------------------------------
// Key derivation. Stable across processes/platforms (util::Hash64); every
// key mixes a domain tag so the kinds can never alias each other.
// ---------------------------------------------------------------------------

/// Content hash of a laid-out module: every semantic field of every
/// function/block/instruction/operand, global layout (addresses, init
/// bits), regions, entry point and memory geometry. Two modules with equal
/// hashes execute identically, so artifacts keyed by it are shareable.
[[nodiscard]] std::uint64_t hash_module(const ir::Module& m);

/// Content hash of the execution inputs of a golden run (seed, budgets,
/// call-depth limit). Observer/fault/pool fields do not affect the golden
/// artifacts and are excluded.
[[nodiscard]] std::uint64_t hash_options(const vm::VmOptions& base);

/// One static instruction's coordinates inside a module — the unit
/// hash_section works over.
struct InstrCoord {
  std::uint32_t func = 0;
  std::uint32_t block = 0;
  std::uint32_t instr = 0;  // index within block
};

/// hash_module restricted to the static instructions a trace section
/// actually executes: each coordinate triple plus the full semantic
/// content of the instruction it names (same per-instruction hashing as
/// hash_module; module-level geometry is carried by the summary key's
/// entry-state hash instead, which covers the whole memory image). Editing
/// one instruction changes hash_section of exactly the sections that
/// execute it — the invalidation granularity of the compositional engine
/// (src/compose/). Instruction granularity matters: the mini-apps are one
/// big function, so any whole-function hash would invalidate every section
/// on any edit. `body` must be sorted unique valid coordinates.
[[nodiscard]] std::uint64_t hash_section(const ir::Module& m,
                                         std::span<const InstrCoord> body);

/// Sentinel region/instance for whole-program artifacts.
inline constexpr std::uint32_t kWholeProgram = ~std::uint32_t{0};

[[nodiscard]] std::uint64_t golden_key(std::uint64_t module_hash,
                                       std::uint64_t options_hash);
[[nodiscard]] std::uint64_t trace_key(std::uint64_t module_hash,
                                      std::uint64_t options_hash);
[[nodiscard]] std::uint64_t sites_key(std::uint64_t module_hash,
                                      std::uint64_t options_hash,
                                      std::uint32_t region_id,
                                      std::uint32_t instance);
/// Key of one campaign's outcome counts. Hashes exactly the inputs that
/// determine the counts: trial count, confidence/margin (they derive the
/// count when trials == 0), sampling seed and hang budget. Scheduling
/// concerns (pool, ForkPolicy) are excluded — they never change counts
/// (pinned by bench/campaign_fork_ab.cpp), so a result computed under any
/// scheduler serves them all. Its cost counters describe the producing run.
[[nodiscard]] std::uint64_t campaign_key(std::uint64_t module_hash,
                                         std::uint64_t options_hash,
                                         std::uint32_t region_id,
                                         std::uint32_t instance,
                                         fault::TargetClass target,
                                         const fault::CampaignConfig& cfg);

/// Key of one section's summary blob (compose::SectionSummary). Mixes the
/// section's IR hash (hash_section), its boundary entry-state hash (the
/// "boundary live-set": everything execution inside the section depends
/// on), the dynamic span, the site-population hash, the base-options hash
/// and the campaign's semantic config — the same fields campaign_key uses.
/// Two sections with identical bodies but different boundary states get
/// distinct keys (pinned by tests/store_test.cpp).
[[nodiscard]] std::uint64_t summary_key(std::uint64_t section_hash,
                                        std::uint64_t entry_hash,
                                        std::uint64_t begin, std::uint64_t end,
                                        std::uint64_t plans_hash,
                                        std::uint64_t options_hash,
                                        const fault::CampaignConfig& cfg);

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

class ArtifactStore {
 public:
  /// Open (creating if needed) a store rooted at `dir`. Throws
  /// std::runtime_error when any of the store subdirectories cannot be
  /// created (each create is checked individually). Opening also sweeps
  /// stale tmp/ scratch left by crashed processes: entries named
  /// `<pid>.<n>` whose pid no longer exists are removed (counted in
  /// Counters::stale_tmp_swept); live writers are never touched.
  explicit ArtifactStore(std::string dir);
  virtual ~ArtifactStore() = default;

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  // --- golden columnar traces (zero-copy mmap on hit) -----------------------
  /// nullptr on miss (absent, torn, corrupt, or wrong program). The
  /// returned trace aliases the mapping and stays valid for its lifetime.
  [[nodiscard]] virtual std::shared_ptr<const trace::ColumnTrace> load_trace(
      std::uint64_t key, std::shared_ptr<const vm::DecodedProgram> program,
      std::uint64_t program_hash);
  virtual bool publish_trace(std::uint64_t key, const trace::ColumnTrace& t,
                             std::uint64_t program_hash);

  // --- golden run results ---------------------------------------------------
  [[nodiscard]] virtual std::optional<vm::RunResult> load_golden(
      std::uint64_t key);
  virtual bool publish_golden(std::uint64_t key, const vm::RunResult& run);

  // --- site enumerations ----------------------------------------------------
  [[nodiscard]] virtual std::optional<fault::SiteEnumerationResult> load_sites(
      std::uint64_t key);
  virtual bool publish_sites(std::uint64_t key,
                             const fault::SiteEnumerationResult& s);

  // --- campaign outcome counts ----------------------------------------------
  [[nodiscard]] virtual std::optional<fault::CampaignResult> load_campaign(
      std::uint64_t key);
  virtual bool publish_campaign(std::uint64_t key,
                                const fault::CampaignResult& r);

  // --- section summaries (compose::SectionSummary payloads) -----------------
  /// The payload is the compose::encode_summary byte string; the store
  /// frames/validates it like every other blob but never interprets it, so
  /// store stays independent of compose types.
  [[nodiscard]] virtual std::optional<std::string> load_summary(
      std::uint64_t key);
  virtual bool publish_summary(std::uint64_t key, const std::string& payload);

  // --- counters / stats -----------------------------------------------------
  /// Monotonic per-store-object counters (not persisted). `corrupt` counts
  /// lookups that found a file but rejected it.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t publishes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    /// Orphaned tmp/ files from dead pids removed when this store opened.
    std::uint64_t stale_tmp_swept = 0;
  };
  [[nodiscard]] virtual Counters counters() const noexcept;

  /// Scan the store directory: committed entries and their total bytes
  /// (tmp/ scratch excluded). Used by the CI store-stats artifact.
  struct DiskStats {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] DiskStats disk_stats() const;

 private:
  [[nodiscard]] std::string trace_path(std::uint64_t key) const;
  [[nodiscard]] std::string blob_path(std::uint64_t key, BlobKind kind) const;
  [[nodiscard]] std::string tmp_path();
  /// Serialize-and-commit of one result blob (header + payload, tmp +
  /// rename). Returns false on I/O failure (the store stays consistent).
  bool publish_blob(std::uint64_t key, BlobKind kind,
                    const std::string& payload);
  /// Read + validate one result blob; nullopt on any anomaly (counted).
  [[nodiscard]] std::optional<std::string> load_blob(std::uint64_t key,
                                                     BlobKind kind);

  /// Remove tmp/ entries left by pids that no longer exist. Returns the
  /// number removed; never touches this process's files, unparseable
  /// names, or pids that are alive (or merely unprobeable).
  std::size_t sweep_stale_tmp();

  std::string root_;
  std::atomic<std::uint64_t> seq_{0};  // unique tmp names within the process
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> corrupt_{0};
  mutable std::atomic<std::uint64_t> publishes_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  mutable std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> tmp_swept_{0};
};

}  // namespace ft::store
