/// @file
/// On-disk ColumnTrace segments: write-once serialization + zero-copy
/// mmap loading.
///
/// A golden columnar trace is fully determined by (program, options), so it
/// is produced once and shared: save_trace_file() writes the trace's
/// structure-of-arrays columns verbatim behind a versioned header
/// (store/format.h), and load_trace_file() maps the file read-only and
/// adopts the column arrays in place (trace::ColumnTrace::adopt) — no
/// parse, no copy, no allocation proportional to the trace. Every reader of
/// the in-memory form (trace::TraceView, the columnar scans, site
/// enumeration, DDDGs, diffs) runs unchanged over the mapped segments,
/// which is what lets a campaign chunk in another process mmap the same
/// golden trace instead of re-tracing (docs/architecture.md, store layer).
///
/// Loading is defensive: bad magic/version/endianness, a short or oversized
/// file, a header or program-hash mismatch, and any internally inconsistent
/// column data (non-monotonic operand offsets, out-of-range pcs, unsorted
/// or invalid escape entries) reject the file with a diagnostic instead of
/// serving it. The artifact store treats every rejection as a cache miss.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/column.h"

namespace ft::store {

/// Serialize `t` to `path` (overwriting). `program_hash` names the
/// (module, options) content the trace was recorded from and is verified
/// on load. Returns false (with `error`) on I/O failure. The write is NOT
/// atomic — callers that publish into a shared store must write to a
/// temporary name and rename, as store::ArtifactStore does.
bool save_trace_file(const std::string& path, const trace::ColumnTrace& t,
                     std::uint64_t program_hash, std::string* error = nullptr);

/// A zero-copy loaded trace: `trace` aliases a shared holder that owns the
/// mapping, so the mapping lives exactly as long as the last reference to
/// the trace. `trace == nullptr` means the file was rejected (missing,
/// torn, corrupt, wrong program/version) and `error` says why.
struct LoadedTrace {
  std::shared_ptr<const trace::ColumnTrace> trace;
  std::size_t mapped_bytes = 0;
  std::string error;
};

/// Map `path` read-only and adopt its columns as a ColumnTrace over
/// `program`. `program_hash` must match the header's (pass the same value
/// given to save_trace_file); the integrity sweep then validates the
/// columns against the program before a single record is served.
[[nodiscard]] LoadedTrace load_trace_file(
    const std::string& path,
    std::shared_ptr<const vm::DecodedProgram> program,
    std::uint64_t program_hash);

}  // namespace ft::store
