/// @file
/// Little-endian field streams for the store's result blobs.
///
/// ByteWriter/ByteReader serialize the compact result artifacts (golden
/// runs, site enumerations, campaign counts) as explicit little-endian
/// fields — never raw struct bytes, so blob payloads are independent of
/// host padding and byte order, matching the stability contract of the
/// store keys (util/hash.h). The reader is bounds-checked: reading past
/// the payload flips a sticky failure bit instead of touching memory, and
/// the store treats a failed decode as a cache miss.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ft::store {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }

 private:
  void le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const void* data, std::size_t n)
      : p_(static_cast<const unsigned char*>(data)), end_(p_ + n) {}

  [[nodiscard]] std::uint8_t u8() {
    return static_cast<std::uint8_t>(le(1));
  }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  [[nodiscard]] std::uint64_t u64() { return le(8); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  /// True once all fields decoded in bounds and the payload was consumed
  /// exactly (a trailing-garbage or short payload is a corrupt entry).
  [[nodiscard]] bool done() const noexcept { return ok_ && p_ == end_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  std::uint64_t le(unsigned n) {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      p_ = end_;
      return 0;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) v |= std::uint64_t{p_[i]} << (8 * i);
    p_ += n;
    return v;
  }

  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

}  // namespace ft::store
