#include "store/trace_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstring>

#include "store/format.h"
#include "util/hash.h"
#include "vm/observer.h"

namespace ft::store {

namespace {

std::uint64_t header_self_hash(const TraceFileHeader& h) {
  // The header is padding-free by construction (static_assert'd), so its
  // leading bytes are deterministic on the (little-endian) platforms the
  // format targets; foreign endianness is rejected by the mark anyway.
  return util::hash_bytes(&h, offsetof(TraceFileHeader, header_hash));
}

bool set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

/// Owns one read-only mapping plus the ColumnTrace adopted over it.
struct MappedTraceHolder {
  void* base = nullptr;
  std::size_t len = 0;
  trace::ColumnTrace trace;

  ~MappedTraceHolder() {
    if (base) ::munmap(base, len);
  }
};

}  // namespace

bool save_trace_file(const std::string& path, const trace::ColumnTrace& t,
                     std::uint64_t program_hash, std::string* error) {
  const auto cols = t.raw();
  const auto layout = trace_layout(cols.rows, cols.ops, cols.num_extras);

  TraceFileHeader h;
  h.program_hash = program_hash;
  h.rows = cols.rows;
  h.ops = cols.ops;
  h.extras = cols.num_extras;
  h.file_bytes = layout.file_bytes;
  h.header_hash = header_self_hash(h);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return set_error(error, "open failed: " + path);
  bool ok = true;
  std::uint64_t written = 0;
  const auto put = [&](std::uint64_t at, const void* data, std::size_t n) {
    if (!ok || n == 0) return;
    // Zero-fill alignment gaps so file bytes are deterministic.
    static constexpr char kPad[8] = {};
    if (written < at) {
      ok = ok && std::fwrite(kPad, 1, at - written, f) == at - written;
      written = at;
    }
    ok = ok && std::fwrite(data, 1, n, f) == n;
    written += n;
  };
  put(0, &h, sizeof(h));
  put(layout.pc, cols.pc, 4 * cols.rows);
  put(layout.activation, cols.activation, 4 * cols.rows);
  put(layout.ops_offset, cols.ops_offset, 4 * cols.rows);
  put(layout.result_bits, cols.result_bits, 8 * cols.rows);
  put(layout.op_bits, cols.op_bits, 8 * cols.ops);
  put(layout.extras, cols.extras, 24 * cols.num_extras);
  ok = std::fclose(f) == 0 && ok && written == layout.file_bytes;
  if (!ok) {
    std::remove(path.c_str());
    return set_error(error, "short write: " + path);
  }
  return true;
}

LoadedTrace load_trace_file(const std::string& path,
                            std::shared_ptr<const vm::DecodedProgram> program,
                            std::uint64_t program_hash) {
  LoadedTrace out;
  const auto reject = [&](std::string why) {
    out.trace.reset();
    out.error = std::move(why);
    return out;
  };

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return reject("open failed: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return reject("stat failed: " + path);
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(TraceFileHeader)) {
    ::close(fd);
    return reject("truncated header: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return reject("mmap failed: " + path);

  auto holder = std::make_shared<MappedTraceHolder>();
  holder->base = base;
  holder->len = size;

  TraceFileHeader h;
  std::memcpy(&h, base, sizeof(h));
  if (h.magic != kTraceMagic) return reject("bad magic: " + path);
  if (h.endian != kEndianMark) return reject("foreign endianness: " + path);
  if (h.version != kTraceVersion) {
    return reject("unknown version " + std::to_string(h.version) + ": " + path);
  }
  if (h.header_hash != header_self_hash(h)) {
    return reject("header hash mismatch: " + path);
  }
  if (h.program_hash != program_hash) {
    return reject("program hash mismatch: " + path);
  }
  const auto layout = trace_layout(h.rows, h.ops, h.extras);
  if (h.file_bytes != layout.file_bytes || h.file_bytes != size) {
    return reject("size mismatch (truncated or torn): " + path);
  }

  const auto* bytes = static_cast<const unsigned char*>(base);
  trace::ColumnTrace::RawColumns cols;
  cols.pc = reinterpret_cast<const std::uint32_t*>(bytes + layout.pc);
  cols.activation =
      reinterpret_cast<const std::uint32_t*>(bytes + layout.activation);
  cols.ops_offset =
      reinterpret_cast<const std::uint32_t*>(bytes + layout.ops_offset);
  cols.result_bits =
      reinterpret_cast<const std::uint64_t*>(bytes + layout.result_bits);
  cols.op_bits = reinterpret_cast<const std::uint64_t*>(bytes + layout.op_bits);
  cols.extras = reinterpret_cast<const trace::ColumnTrace::Extra*>(
      bytes + layout.extras);
  cols.rows = h.rows;
  cols.ops = h.ops;
  cols.num_extras = h.extras;

  // Integrity sweep before a single record is served: a well-formed header
  // can still front internally inconsistent columns (bit rot, a foreign
  // file renamed into place). Everything a reader would index with is
  // range-checked once here, so readers stay check-free.
  const auto code_size = static_cast<std::uint64_t>(program->code_size());
  std::uint32_t prev_off = 0;
  for (std::uint64_t i = 0; i < cols.rows; ++i) {
    if (cols.pc[i] >= code_size) {
      return reject("pc out of range at row " + std::to_string(i));
    }
    if (cols.ops_offset[i] < prev_off || cols.ops_offset[i] > cols.ops) {
      return reject("operand offsets not monotonic at row " +
                    std::to_string(i));
    }
    prev_off = cols.ops_offset[i];
  }
  std::uint64_t prev_row = 0;
  for (std::uint64_t e = 0; e < cols.num_extras; ++e) {
    const auto& x = cols.extras[e];
    if (x.row >= cols.rows || x.row < prev_row) {
      return reject("escape list unsorted or out of range at entry " +
                    std::to_string(e));
    }
    if (x.slot >= vm::kMaxTracedOps &&
        x.slot != trace::ColumnTrace::kResultSlot &&
        x.slot != trace::ColumnTrace::kLoadValueSlot) {
      return reject("invalid escape slot at entry " + std::to_string(e));
    }
    prev_row = x.row;
  }

  holder->trace = trace::ColumnTrace::adopt(std::move(program), cols);
  out.trace = std::shared_ptr<const trace::ColumnTrace>(holder,
                                                        &holder->trace);
  out.mapped_bytes = size;
  out.error.clear();
  return out;
}

}  // namespace ft::store
