#include "fault/outcome.h"

#include <cmath>

namespace ft::fault {

Outcome classify_outcome(const vm::RunResult& faulty,
                         const std::vector<vm::OutputValue>& golden,
                         const Verifier& verify) {
  if (!faulty.completed()) {
    // A detector that fired without a recovery driver behind it is still a
    // detection, not a plain crash: the program stopped itself on purpose.
    return faulty.trap == vm::TrapKind::DetectedFault
               ? Outcome::DetectedUnrecoverable
               : Outcome::Crashed;
  }
  if (faulty.outputs == golden) return Outcome::VerificationSuccess;
  return verify(faulty.outputs, golden) ? Outcome::VerificationSuccess
                                        : Outcome::VerificationFailed;
}

Verifier tolerance_verifier(double rel_tol, double abs_tol) {
  return [rel_tol, abs_tol](const std::vector<vm::OutputValue>& got,
                            const std::vector<vm::OutputValue>& golden) {
    if (got.size() != golden.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].type != golden[i].type) return false;
      if (is_float(golden[i].type)) {
        const double g = golden[i].as_f64();
        const double v = got[i].as_f64();
        if (std::isnan(v) || std::isinf(v)) return false;
        const double err = std::fabs(v - g);
        if (err > abs_tol && err > rel_tol * std::fabs(g)) return false;
      } else if (got[i].bits != golden[i].bits) {
        return false;
      }
    }
    return true;
  };
}

}  // namespace ft::fault
