// Injection-site enumeration (§IV-C).
//
// "Given an input or output location for a code region instance, we
// calculate the number of fault injection sites by analyzing the dynamic
// LLVM instruction trace." — here: one fault-free traced run, segmented by
// region; internal sites are (dynamic instruction, bit) pairs over values
// committed inside the instance, input sites are (memory input word, bit)
// pairs flipped at region entry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/module.h"
#include "regions/io.h"
#include "trace/events.h"
#include "trace/segment.h"
#include "vm/fault_plan.h"
#include "vm/interp.h"

namespace ft::fault {

struct InternalSite {
  std::uint64_t dyn_index = 0;
  std::uint32_t width_bits = 64;
};

struct InputSite {
  std::uint64_t address = 0;
  std::uint32_t width_bytes = 8;
};

struct SitePopulation {
  std::uint32_t region_id = 0;
  std::uint32_t instance = 0;
  std::vector<InternalSite> internal;
  std::vector<InputSite> input;

  /// Total single-bit fault sites (instruction/word x bit).
  [[nodiscard]] std::uint64_t internal_bits() const;
  [[nodiscard]] std::uint64_t input_bits() const;
};

/// Which location class a campaign targets (Fig. 5/6 report both).
enum class TargetClass : std::uint8_t { Internal, Input };

struct SiteEnumerationResult {
  /// Sentinel for region_entry_index: no single region-entry retire point
  /// (whole-program enumerations, missing instances).
  static constexpr std::uint64_t kNoEntry = ~std::uint64_t{0};

  SitePopulation sites;
  std::uint64_t fault_free_instructions = 0;  // for hang budgets
  /// Dynamic index of the enumerated instance's RegionEnter record — the
  /// retire point where RegionInputMemoryBit plans fire. The snapshot-
  /// forked campaign scheduler uses it as the fork bound of input-class
  /// trials (any prefix up to this index is fault-free).
  std::uint64_t region_entry_index = kNoEntry;
  bool region_found = false;
};

/// Enumerate the sites of one region instance with one traced fault-free
/// run. `base` supplies seed/mpi; its observer/fault fields are ignored.
[[nodiscard]] SiteEnumerationResult enumerate_sites(const ir::Module& m,
                                                    std::uint32_t region_id,
                                                    std::uint32_t instance,
                                                    const vm::VmOptions& base);

/// Enumerate the sites of one region instance from golden artifacts that
/// were already collected (trace + its segmentation + its event index).
/// Produces bit-identical results to enumerate_sites without re-running the
/// program — the per-region fast path used by core::AnalysisSession when
/// many regions of one application are analyzed.
[[nodiscard]] SiteEnumerationResult enumerate_sites_from_trace(
    const trace::Trace& tr,
    std::span<const trace::RegionInstance> instances,
    const trace::LocationEvents& events, std::uint32_t region_id,
    std::uint32_t instance);

/// Columnar form: `tr` is the full-trace view of the golden ColumnTrace.
[[nodiscard]] SiteEnumerationResult enumerate_sites_from_trace(
    trace::TraceView tr, std::span<const trace::RegionInstance> instances,
    const trace::LocationEvents& events, std::uint32_t region_id,
    std::uint32_t instance);

/// Enumerate internal sites over the whole program (every committed value
/// of the full run) — the population for whole-application success rates
/// (Tables III and IV). Input sites are left empty.
[[nodiscard]] SiteEnumerationResult enumerate_whole_program_sites(
    const ir::Module& m, const vm::VmOptions& base);

/// Decoded-engine form of the whole-program enumeration: the traced run
/// executes the shared pre-decoded program (bit-identical record stream),
/// so sessions that already decoded the app pay no extra walk of the IR.
[[nodiscard]] SiteEnumerationResult enumerate_whole_program_sites(
    const vm::DecodedProgram& program, const vm::VmOptions& base);

/// Build the concrete fault plan for one sampled site.
[[nodiscard]] vm::FaultPlan plan_for_internal(const InternalSite& s,
                                              std::uint32_t bit);
[[nodiscard]] vm::FaultPlan plan_for_input(const SitePopulation& pop,
                                           const InputSite& s,
                                           std::uint32_t bit);

}  // namespace ft::fault
