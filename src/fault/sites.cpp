#include "fault/sites.h"

#include "trace/collector.h"
#include "trace/events.h"

namespace ft::fault {

std::uint64_t SitePopulation::internal_bits() const {
  std::uint64_t n = 0;
  for (const auto& s : internal) n += s.width_bits;
  return n;
}

std::uint64_t SitePopulation::input_bits() const {
  std::uint64_t n = 0;
  for (const auto& s : input) n += std::uint64_t{8} * s.width_bytes;
  return n;
}

namespace {

/// Shared enumeration over either trace substrate; `tr` must expose size()
/// and slice(begin, end) over the full golden trace.
template <typename Trace>
SiteEnumerationResult enumerate_from_trace_impl(
    const Trace& tr, std::span<const trace::RegionInstance> instances,
    const trace::LocationEvents& events, std::uint32_t region_id,
    std::uint32_t instance) {
  SiteEnumerationResult out;
  out.sites.region_id = region_id;
  out.sites.instance = instance;
  out.fault_free_instructions = tr.size();

  const auto inst = trace::find_instance(instances, region_id, instance);
  if (!inst || !inst->complete) return out;
  out.region_found = true;
  out.region_entry_index = inst->enter_index;

  // Internal sites: every value committed inside the instance body.
  const auto slice = tr.slice(inst->body_begin(), inst->body_end());
  for (const vm::DynInstr& r : slice) {
    if (r.result_loc == vm::kNoLoc) continue;
    const ir::Type t = r.op == ir::Opcode::Store ? r.op_type[0] : r.type;
    const auto width = bit_width(t);
    if (width == 0) continue;
    out.sites.internal.push_back(InternalSite{r.index, width});
  }

  // Input sites: memory-resident inputs of the instance, flipped at entry.
  const auto io = regions::classify_io(slice, events, *inst);
  for (const auto& in : regions::memory_inputs(io)) {
    const auto width = store_size(in.type);
    if (width == 0) continue;
    out.sites.input.push_back(InputSite{vm::loc_address(in.loc), width});
  }
  return out;
}

}  // namespace

SiteEnumerationResult enumerate_sites_from_trace(
    const trace::Trace& tr, std::span<const trace::RegionInstance> instances,
    const trace::LocationEvents& events, std::uint32_t region_id,
    std::uint32_t instance) {
  return enumerate_from_trace_impl(tr, instances, events, region_id,
                                   instance);
}

SiteEnumerationResult enumerate_sites_from_trace(
    trace::TraceView tr, std::span<const trace::RegionInstance> instances,
    const trace::LocationEvents& events, std::uint32_t region_id,
    std::uint32_t instance) {
  return enumerate_from_trace_impl(tr, instances, events, region_id,
                                   instance);
}

SiteEnumerationResult enumerate_sites(const ir::Module& m,
                                      std::uint32_t region_id,
                                      std::uint32_t instance,
                                      const vm::VmOptions& base) {
  trace::TraceCollector collector;
  vm::VmOptions opts = base;
  opts.observer = &collector;
  opts.fault = vm::FaultPlan::none();
  const auto run = vm::Vm::run(m, opts);
  if (!run.completed()) {
    SiteEnumerationResult out;
    out.sites.region_id = region_id;
    out.sites.instance = instance;
    out.fault_free_instructions = run.instructions;
    return out;
  }

  const auto& tr = collector.trace();
  const auto instances = trace::segment_regions(tr.span());
  const auto events = trace::LocationEvents::build(tr.span());
  auto out = enumerate_sites_from_trace(tr, instances, events, region_id,
                                        instance);
  out.fault_free_instructions = run.instructions;
  return out;
}

namespace {

// A lightweight observer suffices: only (index, width) pairs are needed,
// so the full trace is never materialized.
class SiteObserver final : public vm::ExecObserver {
 public:
  explicit SiteObserver(std::vector<InternalSite>& out) : out_(out) {}
  void on_instruction(const vm::DynInstr& d) override {
    if (d.result_loc == vm::kNoLoc) return;
    const ir::Type t = d.op == ir::Opcode::Store ? d.op_type[0] : d.type;
    const auto width = bit_width(t);
    if (width != 0) out_.push_back(InternalSite{d.index, width});
  }

 private:
  std::vector<InternalSite>& out_;
};

template <typename Executable>
SiteEnumerationResult whole_program_sites_impl(const Executable& exe,
                                               const vm::VmOptions& base) {
  SiteEnumerationResult out;
  SiteObserver obs(out.sites.internal);
  vm::VmOptions opts = base;
  opts.observer = &obs;
  opts.fault = vm::FaultPlan::none();
  const auto run = vm::Vm::run(exe, opts);
  out.fault_free_instructions = run.instructions;
  out.region_found = run.completed();
  if (!run.completed()) out.sites.internal.clear();
  return out;
}

}  // namespace

SiteEnumerationResult enumerate_whole_program_sites(const ir::Module& m,
                                                    const vm::VmOptions& base) {
  return whole_program_sites_impl(m, base);
}

SiteEnumerationResult enumerate_whole_program_sites(
    const vm::DecodedProgram& program, const vm::VmOptions& base) {
  return whole_program_sites_impl(program, base);
}

vm::FaultPlan plan_for_internal(const InternalSite& s, std::uint32_t bit) {
  return vm::FaultPlan::result_bit(s.dyn_index, bit % s.width_bits);
}

vm::FaultPlan plan_for_input(const SitePopulation& pop, const InputSite& s,
                             std::uint32_t bit) {
  return vm::FaultPlan::region_input_bit(pop.region_id, pop.instance,
                                         s.address, s.width_bytes,
                                         bit % (s.width_bytes * 8));
}

}  // namespace ft::fault
