// Fault-manifestation classification (§II-A1): Verification Success,
// Verification Failed, Crashed (crashes and hangs).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "vm/interp.h"

namespace ft::fault {

enum class Outcome : std::uint8_t {
  VerificationSuccess,
  VerificationFailed,
  Crashed,
  /// A hardening detector (ir::Opcode::CheckTrap) fired and the rollback
  /// re-execution completed with output that passes verification. By
  /// construction the recovered output is the fault-free one — the fault
  /// is transient and the re-execution runs clean from the checkpoint.
  DetectedRecovered,
  /// A detector fired but recovery was unavailable or the re-execution
  /// itself failed (trapped again, hung, or produced bad output).
  DetectedUnrecoverable,
};

[[nodiscard]] constexpr std::string_view outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::VerificationSuccess: return "verification-success";
    case Outcome::VerificationFailed: return "verification-failed";
    case Outcome::Crashed: return "crashed";
    case Outcome::DetectedRecovered: return "detected-recovered";
    case Outcome::DetectedUnrecoverable: return "detected-unrecoverable";
  }
  return "?";
}

/// Application verification phase: does the (possibly faulty) output pass
/// given the fault-free golden output? Bitwise-equal outputs always pass.
using Verifier = std::function<bool(const std::vector<vm::OutputValue>& got,
                                    const std::vector<vm::OutputValue>& golden)>;

/// Classify one faulty run against the golden output.
[[nodiscard]] Outcome classify_outcome(const vm::RunResult& faulty,
                                       const std::vector<vm::OutputValue>& golden,
                                       const Verifier& verify);

/// Standard verifier: element count must match and every floating output
/// must be within `rel_tol` relative error (or `abs_tol` near zero);
/// integer outputs must match exactly.
[[nodiscard]] Verifier tolerance_verifier(double rel_tol, double abs_tol = 1e-12);

}  // namespace ft::fault
