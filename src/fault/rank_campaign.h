/// @file
/// Cross-rank fault-injection campaigns.
///
/// The paper's experiments run on MPI applications (§IV-A) but inject into
/// one process at a time; Wu et al. show serial and parallel resilience
/// differ materially. This engine asks the multi-rank question directly:
/// enumerate fault sites over EVERY rank of one deterministic multi-rank
/// execution (RankSite = {rank, dyn_index, bit}), inject into one rank per
/// trial while all ranks run (one mpi::World per trial, worlds chunked
/// across pool workers), and classify each trial with a cross-rank outcome
/// taxonomy derived from per-rank golden diffs:
///
///   masked-locally          the error never left the injected rank: its
///                           outbound communication (and every peer) is
///                           bit-identical to golden and all ranks verify.
///   absorbed-by-collective  the injected rank pushed corrupted values into
///                           the communication layer (diverged sends or
///                           reduction contributions), but no peer's state
///                           diverged and verification passes everywhere —
///                           the collective (min/max selection, rounding,
///                           downstream masking) swallowed it.
///   propagated-to-k-ranks   k >= 1 peer ranks were contaminated (their
///                           outputs or outbound values diverge bitwise from
///                           golden) yet every rank still verifies — the
///                           cross-rank analog of natural resilience.
///   corrupted-output        no rank trapped, but some rank's verification
///                           fails against its golden outputs.
///   trap-any-rank           any rank trapped, hung, sent to a corrupted
///                           rank index, or was released by the world's
///                           deterministic deadlock abort.
///
/// Determinism: golden artifacts come from one traced multi-rank run on the
/// columnar substrate (per-rank ColumnTrace sinks + communication logs);
/// plans are drawn up-front from one seeded generator; each trial is an
/// independent world. Outcome counts are therefore independent of pool size
/// and of the ForkPolicy (pinned by tests/mpi_test.cpp and
/// tests/rank_campaign_test.cpp).
///
/// Snapshot forking is deliberately rank-local: a trial may fork the
/// INJECTED rank from a waypoint snapshot of its fault-free prefix, but
/// only where that is legal without replaying communication — at or before
/// the rank's first blocking communication op (a communication-free prefix
/// is independent of every peer, so a solo-executed snapshot of it is
/// bit-identical to the in-world prefix). All other ranks always run from
/// scratch. Counts are pinned identical with forking on and off.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/campaign.h"
#include "mpi/world.h"
#include "trace/column.h"

namespace ft::fault {

/// One rank-aware internal fault site: a (rank, dynamic instruction, bit)
/// triple over the values that rank's execution commits.
struct RankSite {
  std::int64_t rank = 0;
  std::uint64_t dyn_index = 0;
  std::uint32_t width_bits = 64;
};

/// Golden artifacts of one nranks-rank execution: the site population plus
/// everything trial classification diffs against (per-rank outputs and
/// communication logs) and the rank-local fork limits. Optionally keeps the
/// per-rank columnar traces (record-and-replay, site provenance).
struct RankEnumeration {
  static constexpr std::uint64_t kNoComm = ~std::uint64_t{0};

  std::int64_t nranks = 1;
  std::vector<RankSite> sites;
  /// Per rank: retired instructions of the golden run (hang budgets).
  std::vector<std::uint64_t> fault_free_instructions;
  /// Per rank: golden outputs (bitwise propagation diffs + verification).
  std::vector<std::vector<vm::OutputValue>> golden_outputs;
  /// Per rank: golden communication log (outbound divergence detection and
  /// solo record-and-replay).
  std::vector<mpi::CommLog> golden_comm;
  /// Per rank: dynamic index of the first blocking communication op
  /// (kNoComm when the rank never communicates). The rank-local fork limit.
  std::vector<std::uint64_t> first_comm_index;
  /// Per rank: the golden columnar trace (empty unless keep_traces).
  std::vector<std::shared_ptr<const trace::ColumnTrace>> golden_traces;

  [[nodiscard]] std::uint64_t population_bits() const;
};

/// Enumerate the internal site population of every rank with ONE traced
/// fault-free nranks-rank run (per-rank direct-emit ColumnTrace sinks,
/// recording endpoints). Throws if any golden rank traps. `keep_traces`
/// retains the per-rank ColumnTraces in the result; the compact artifacts
/// (sites, outputs, logs, fork limits) are always kept.
[[nodiscard]] RankEnumeration enumerate_rank_sites(
    const std::shared_ptr<const vm::DecodedProgram>& program,
    std::int64_t nranks, const vm::VmOptions& base, bool keep_traces = true);

/// Cross-rank outcome taxonomy (header comment above for the definitions).
enum class RankOutcome : std::uint8_t {
  MaskedLocally,
  AbsorbedByCollective,
  PropagatedToRanks,
  CorruptedOutput,
  TrapAnyRank,
};

[[nodiscard]] constexpr std::string_view rank_outcome_name(
    RankOutcome o) noexcept {
  switch (o) {
    case RankOutcome::MaskedLocally: return "masked-locally";
    case RankOutcome::AbsorbedByCollective: return "absorbed-by-collective";
    case RankOutcome::PropagatedToRanks: return "propagated-to-k-ranks";
    case RankOutcome::CorruptedOutput: return "corrupted-output";
    case RankOutcome::TrapAnyRank: return "trap-any-rank";
  }
  return "?";
}

struct RankCampaignConfig {
  /// World size of the campaign (golden run, site population and every
  /// trial). The request-schema knob core::AnalysisRequest::rank_campaign
  /// forwards.
  std::int64_t nranks = 4;
  /// Number of injection trials; 0 derives it from the site population via
  /// fault_injection_sample_size(confidence, margin).
  std::size_t trials = 0;
  double confidence = 0.95;
  double margin = 0.03;
  std::uint64_t seed = 0xF11Dull;
  /// Per-rank hang budget factor over that rank's golden retired count.
  double budget_factor = 8.0;
  util::Executor* pool = nullptr;  // nullptr = util::default_executor()
  /// Rank-local snapshot forking of the injected rank (never changes
  /// counts; see the header comment).
  ForkPolicy fork{};
};

/// One trial's classification.
struct RankTrialResult {
  RankOutcome outcome = RankOutcome::MaskedLocally;
  /// Peer ranks whose state diverged bitwise from golden (outputs or
  /// outbound communication). Meaningful for every non-trap outcome.
  std::uint32_t contaminated_ranks = 0;
};

/// The deterministic prelude of one cross-rank campaign: plans sampled
/// up-front (weighted by site width across ALL ranks), per-rank budgets and
/// golden reference data. Trials are independent — any order, any pool.
struct PreparedRankCampaign {
  std::int64_t nranks = 1;
  std::vector<std::int64_t> plan_rank;   // injected rank, parallel to plans
  std::vector<vm::FaultPlan> plans;
  /// Rank-local fork bound per plan: min(dyn_index, injected rank's first
  /// blocking comm op). 0 = from scratch.
  std::vector<std::uint64_t> fork_bounds;
  vm::VmOptions run_opts;
  std::vector<std::uint64_t> rank_budget;  // per-rank max_instructions
  std::uint64_t population_bits = 0;
  ForkPolicy fork{};
  // Golden reference (copied from the enumeration; compact).
  std::vector<std::vector<vm::OutputValue>> golden_outputs;
  std::vector<mpi::CommLog> golden_comm;
};

[[nodiscard]] PreparedRankCampaign prepare_rank_campaign(
    const RankEnumeration& enumeration, const vm::VmOptions& base,
    const RankCampaignConfig& config);

/// Rank-local waypoint snapshots: for each rank, snapshots of its
/// communication-free golden prefix (executed SOLO with a FixedEndpoint —
/// bit-identical to the in-world prefix by construction), placed at the
/// distinct fork bounds of that rank's trials, thinned by the policy's gap
/// and capped by max_snapshots across all ranks.
struct RankSnapshots {
  struct Waypoint {
    std::uint64_t index = 0;
    vm::Vm::Snapshot state;
  };
  std::vector<std::vector<Waypoint>> per_rank;  // ascending by index
  std::uint64_t snapshots_taken = 0;

  [[nodiscard]] bool empty() const noexcept { return snapshots_taken == 0; }
};

[[nodiscard]] RankSnapshots prepare_rank_snapshots(
    const vm::DecodedProgram& program, const PreparedRankCampaign& prepared);

/// Execute one trial (one fresh world) and classify it. `instructions`
/// (optional) receives the instructions retired across all ranks;
/// `prefix_saved` the golden-prefix instructions the injected rank did not
/// re-execute.
[[nodiscard]] RankTrialResult run_rank_trial(
    const vm::DecodedProgram& program, const PreparedRankCampaign& prepared,
    const RankSnapshots& snapshots, std::size_t plan_index,
    const Verifier& verify, std::uint64_t* instructions = nullptr,
    std::uint64_t* prefix_saved = nullptr);

struct RankCampaignResult {
  std::int64_t nranks = 1;
  std::size_t trials = 0;

  // --- the cross-rank taxonomy ----------------------------------------------
  std::size_t masked_locally = 0;
  std::size_t absorbed_by_collective = 0;
  std::size_t propagated = 0;
  std::size_t corrupted_output = 0;
  std::size_t trapped = 0;
  /// propagation_depth[k] = non-trapped trials that contaminated exactly k
  /// peer ranks (size nranks; k = 0 covers masked/absorbed and clean-peer
  /// corrupted-output trials).
  std::vector<std::size_t> propagation_depth;

  // --- per-injected-rank success rates (the per-rank SR figure) -------------
  std::vector<std::size_t> rank_trials;
  std::vector<std::size_t> rank_success;

  std::uint64_t population_bits = 0;
  std::uint64_t instructions_retired = 0;
  std::uint64_t prefix_instructions_saved = 0;
  std::uint64_t snapshots_taken = 0;

  /// Verification-success trials (Eq. 1 numerator): everything that is not
  /// a trap and not a corrupted output.
  [[nodiscard]] std::size_t success() const noexcept {
    return masked_locally + absorbed_by_collective + propagated;
  }
  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(success()) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double rank_success_rate(std::int64_t r) const noexcept {
    const auto i = static_cast<std::size_t>(r);
    return rank_trials[i] == 0 ? 0.0
                               : static_cast<double>(rank_success[i]) /
                                     static_cast<double>(rank_trials[i]);
  }
  /// Mean contaminated-peer count over non-trapped trials.
  [[nodiscard]] double mean_propagation_depth() const noexcept;
};

/// Thread-safe accumulator of the cross-rank taxonomy. The ONE place the
/// per-trial bookkeeping (outcome buckets, depth histogram, per-injected-
/// rank rollups, instruction counters) lives: run_rank_campaign and
/// core::run_analysis's batched executor both fold trials through it, so
/// their results cannot drift. Non-movable (atomics) — construct in place.
class RankCampaignAccumulator {
 public:
  explicit RankCampaignAccumulator(std::size_t nranks)
      : depth_(nranks), rank_trials_(nranks), rank_success_(nranks) {}

  /// Fold one classified trial (thread-safe, order-independent).
  void add(const RankTrialResult& trial, std::size_t injected_rank,
           std::uint64_t instructions, std::uint64_t prefix_saved) {
    rank_trials_[injected_rank].fetch_add(1);
    instructions_.fetch_add(instructions);
    prefix_saved_.fetch_add(prefix_saved);
    switch (trial.outcome) {
      case RankOutcome::MaskedLocally: masked_.fetch_add(1); break;
      case RankOutcome::AbsorbedByCollective: absorbed_.fetch_add(1); break;
      case RankOutcome::PropagatedToRanks: propagated_.fetch_add(1); break;
      case RankOutcome::CorruptedOutput: corrupted_.fetch_add(1); break;
      case RankOutcome::TrapAnyRank: trapped_.fetch_add(1); break;
    }
    if (trial.outcome != RankOutcome::TrapAnyRank) {
      depth_[trial.contaminated_ranks].fetch_add(1);
    }
    if (trial.outcome != RankOutcome::TrapAnyRank &&
        trial.outcome != RankOutcome::CorruptedOutput) {
      rank_success_[injected_rank].fetch_add(1);
    }
  }

  [[nodiscard]] RankCampaignResult result(
      const PreparedRankCampaign& prepared,
      std::uint64_t snapshots_taken) const;

 private:
  std::atomic<std::size_t> masked_{0}, absorbed_{0}, propagated_{0},
      corrupted_{0}, trapped_{0};
  std::vector<std::atomic<std::size_t>> depth_, rank_trials_, rank_success_;
  std::atomic<std::uint64_t> instructions_{0}, prefix_saved_{0};
};

/// Chunk size for scheduling rank trials on a pool: trials are whole
/// multi-rank executions, so chunks stay small to keep queues balanced.
[[nodiscard]] inline std::size_t rank_campaign_chunk(
    std::size_t trials, std::size_t workers) noexcept {
  return std::clamp<std::size_t>(trials / (workers * 4), 1, 8);
}

/// Execute every trial of one prepared cross-rank campaign on `pool` (one
/// blocking parallel_for; each task runs whole worlds) and aggregate the
/// taxonomy. Counts are independent of pool size, chunking, and ForkPolicy.
[[nodiscard]] RankCampaignResult run_rank_campaign(
    const vm::DecodedProgram& program, const PreparedRankCampaign& prepared,
    const Verifier& verify, util::Executor& pool);

/// One-shot convenience: enumerate (traces dropped), prepare, run.
[[nodiscard]] RankCampaignResult run_rank_campaign(
    const std::shared_ptr<const vm::DecodedProgram>& program,
    const vm::VmOptions& base, const Verifier& verify,
    const RankCampaignConfig& config);

}  // namespace ft::fault
