// Internal helpers shared by the single-process (campaign.cpp) and
// cross-rank (rank_campaign.cpp) campaign engines: width-weighted site
// selection and the snapshot byte-budget cap. Not part of the public
// surface.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ft::fault::detail {

/// Pick the site containing global bit offset `u` (sites weighted by
/// width). Returns the site and the bit offset within it.
template <typename Site, typename WidthFn>
std::pair<const Site*, std::uint32_t> pick_weighted(
    const std::vector<Site>& sites, std::uint64_t u, const WidthFn& width_of) {
  for (const auto& s : sites) {
    const std::uint64_t w = width_of(s);
    if (u < w) return {&s, static_cast<std::uint32_t>(u)};
    u -= w;
  }
  return {nullptr, 0};
}

/// Lower a snapshot-count cap to a byte budget: a snapshot is dominated by
/// its copy of program memory (`memory_size`), plus a small overhead for
/// frames/slots. `max_bytes == 0` leaves the cap alone.
inline std::size_t cap_snapshots_to_bytes(std::size_t max_snapshots,
                                          std::size_t max_bytes,
                                          std::size_t memory_size) {
  if (max_bytes == 0) return max_snapshots;
  const std::size_t snapshot_bytes = memory_size + std::size_t{4096};
  return std::min(max_snapshots,
                  std::max<std::size_t>(1, max_bytes / snapshot_bytes));
}

}  // namespace ft::fault::detail
