// Statistical fault-injection campaigns (§IV-C).
//
// A campaign samples single-bit fault sites uniformly from a site
// population (sites are (value, bit) pairs, so wider values weigh more),
// runs one VM per injection — in parallel, each run independent — and
// aggregates the success rate (Eq. 1). Trial counts default to Leveugle et
// al.'s formula at the requested confidence/margin; the plan list is drawn
// up-front from one seeded generator, so results are independent of thread
// scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/outcome.h"
#include "fault/sites.h"
#include "util/thread_pool.h"

namespace ft::fault {

struct CampaignConfig {
  /// Number of injection trials; 0 derives it from the site population via
  /// fault_injection_sample_size(confidence, margin).
  std::size_t trials = 0;
  double confidence = 0.95;
  double margin = 0.03;
  std::uint64_t seed = 0xF11Dull;
  /// Hang budget: faulty runs may retire at most this multiple of the
  /// fault-free instruction count before classifying as Crashed(hang).
  double budget_factor = 8.0;
  util::ThreadPool* pool = nullptr;  // nullptr = util::global_pool()
};

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t success = 0;
  std::size_t failed = 0;
  std::size_t crashed = 0;
  std::uint64_t population_bits = 0;  // sampled site population size
  /// Dynamic instructions retired across all trials (filled by
  /// run_prepared_campaign; the engine-throughput figure of merit).
  std::uint64_t instructions_retired = 0;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(success) /
                             static_cast<double>(trials);
  }
};

/// A campaign broken into its deterministic prelude: the up-front sampled
/// fault plans and the per-trial VM options (observer cleared, hang budget
/// applied). Trials are then independent — run them with run_trial() in any
/// order, on any pool, and the aggregated counts are schedule-invariant.
/// This is the unit the batched executor (core::run_analysis) concatenates
/// across regions and applications into one shared work queue.
struct PreparedCampaign {
  std::vector<vm::FaultPlan> plans;
  vm::VmOptions run_opts;
  std::uint64_t population_bits = 0;
};

/// Sample the plans and fix the per-trial options for one campaign.
/// `config.trials == 0` derives the Leveugle sample size from the site
/// population as run_campaign does.
[[nodiscard]] PreparedCampaign prepare_campaign(
    const SiteEnumerationResult& sites, TargetClass target,
    const vm::VmOptions& base, const CampaignConfig& config);

/// Execute one prepared trial on the decoded engine and classify its
/// outcome. The program is decoded ONCE per application (by the caller —
/// core::AnalysisSession caches it) and shared immutably by every trial on
/// every pool worker; nothing is decoded or heap-allocated per frame in the
/// steady state. `instructions` (optional) receives the trial's retired
/// instruction count.
[[nodiscard]] Outcome run_trial(const vm::DecodedProgram& program,
                                const PreparedCampaign& prepared,
                                const vm::FaultPlan& plan,
                                const std::vector<vm::OutputValue>& golden,
                                const Verifier& verify,
                                std::uint64_t* instructions = nullptr);

/// Legacy-engine trial (tree-walking interpreter). Kept as the A/B baseline
/// the engine benchmarks compare against (bench/vm_engine_ab.cpp).
[[nodiscard]] Outcome run_trial(const ir::Module& m,
                                const PreparedCampaign& prepared,
                                const vm::FaultPlan& plan,
                                const std::vector<vm::OutputValue>& golden,
                                const Verifier& verify,
                                std::uint64_t* instructions = nullptr);

/// Execute every trial of one prepared campaign on `pool` (one blocking
/// parallel_for) and aggregate the counts. Decoded-engine form.
[[nodiscard]] CampaignResult run_prepared_campaign(
    const vm::DecodedProgram& program, const PreparedCampaign& prepared,
    const std::vector<vm::OutputValue>& golden, const Verifier& verify,
    util::ThreadPool& pool);

/// Legacy-engine form (A/B baseline).
[[nodiscard]] CampaignResult run_prepared_campaign(
    const ir::Module& m, const PreparedCampaign& prepared,
    const std::vector<vm::OutputValue>& golden, const Verifier& verify,
    util::ThreadPool& pool);

/// Run a campaign against one region instance's site population.
/// `golden` is the fault-free output (from a completed run with the same
/// `base` options); `verify` is the application's verification phase.
/// Equivalent to prepare_campaign + run_trial over every plan on one
/// parallel_for, on the legacy engine (one-shot convenience; decode-once
/// callers should prepare_campaign + run_prepared_campaign instead).
[[nodiscard]] CampaignResult run_campaign(
    const ir::Module& m, const SiteEnumerationResult& sites,
    TargetClass target, const std::vector<vm::OutputValue>& golden,
    const Verifier& verify, const vm::VmOptions& base,
    const CampaignConfig& config);

/// Draw the fault plans a campaign would execute (exposed for tests and for
/// analyses that re-run selected injections with tracing).
[[nodiscard]] std::vector<vm::FaultPlan> sample_plans(
    const SiteEnumerationResult& sites, TargetClass target,
    std::size_t trials, std::uint64_t seed);

}  // namespace ft::fault
