/// @file
/// Statistical fault-injection campaigns (§IV-C).
///
/// A campaign samples single-bit fault sites uniformly from a site
/// population (sites are (value, bit) pairs, so wider values weigh more),
/// runs one VM per injection — in parallel, each run independent — and
/// aggregates the success rate (Eq. 1). Trial counts default to Leveugle et
/// al.'s formula at the requested confidence/margin; the plan list is drawn
/// up-front from one seeded generator, so results are independent of thread
/// scheduling.
///
/// Trial execution is snapshot-forked by default (docs/campaign-lifecycle.md):
/// every trial of a campaign shares the same fault-free prefix up to its
/// injection point, so the scheduler executes the golden prefix ONCE,
/// snapshots it at waypoints (vm::Vm::Snapshot), and forks each trial from
/// the nearest waypoint at or before its fork bound instead of replaying the
/// prefix from instruction zero. A forked trial may also finish early: once
/// its full machine state re-converges with a later golden waypoint (and the
/// fault has fired), the remainder provably replays the golden run, so the
/// outcome is VerificationSuccess without executing the tail. Outcome counts
/// are bit-identical to from-scratch execution by construction — pinned by
/// tests/snapshot_test.cpp and gated at campaign scale by
/// bench/campaign_fork_ab.cpp via scripts/bench_smoke.sh.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/outcome.h"
#include "fault/sites.h"
#include "util/thread_pool.h"

namespace ft::fault {

/// Prefix-reuse policy of the snapshot-forked trial scheduler.
struct ForkPolicy {
  /// Fork trials from golden-prefix snapshots (the default). Disable for a
  /// from-scratch A/B reference — outcome counts never change, only cost.
  bool enabled = true;
  /// Upper bound on waypoint snapshots per campaign (each waypoint
  /// deep-copies the machine state).
  std::size_t max_snapshots = 128;
  /// Memory budget for one campaign's waypoints; lowers the effective
  /// snapshot cap for applications with large memory images. 0 = only
  /// max_snapshots bounds.
  std::size_t max_snapshot_bytes = std::size_t{96} << 20;
  /// Minimum retired-instruction gap between consecutive waypoints. The
  /// effective gap is max(min_gap, fault_free_instructions/max_snapshots).
  std::uint64_t min_gap = 2048;
  /// Probe later waypoints for state re-convergence and classify the trial
  /// early when the machine state equals the golden state bit for bit.
  bool probe_convergence = true;
  /// Failed-probe budget per trial. Probes back off geometrically from the
  /// fork point (next waypoint, then 2, 4, ... waypoints further), so the
  /// budget spreads across time scales; once it is spent the trial has
  /// almost certainly diverged for good (a live corrupted value keeps
  /// every later probe failing too) and runs out without further compares.
  std::size_t max_probes = 6;
};

/// Checkpoint/rollback recovery policy for programs carrying hardening
/// detectors (src/harden/). When a trial traps with
/// vm::TrapKind::DetectedFault the driver rolls the machine back to the
/// last clean checkpoint and re-executes with the (transient) fault
/// disarmed. The checkpoint model is a fixed cadence over retired
/// instructions: recovery succeeds iff no checkpoint falls between the
/// fault's landing point and the detection — a checkpoint taken in between
/// captured the corrupted state, and re-executing from it would
/// deterministically re-fire the detector (DetectedUnrecoverable).
///
/// Both fields are SEMANTIC campaign inputs (they change outcome counts)
/// and therefore hash into the store's campaign key, unlike the pure
/// scheduling knobs in ForkPolicy. Outcomes stay independent of pool size,
/// execution mode and fork on/off: the landing and detection indices are
/// properties of the deterministic execution, not of the scheduler.
struct RecoveryPolicy {
  /// Roll back + re-execute on DetectedFault. Programs without detectors
  /// never take this path, so the default costs nothing.
  bool enabled = true;
  /// Modeled checkpoint cadence in retired instructions. Smaller intervals
  /// model an aggressive checkpointer (more corrupted-checkpoint captures
  /// for long-latency detectors); larger ones approximate
  /// checkpoint-at-region-boundaries.
  std::uint64_t checkpoint_interval = 4096;
};

struct CampaignConfig {
  /// Number of injection trials; 0 derives it from the site population via
  /// fault_injection_sample_size(confidence, margin).
  std::size_t trials = 0;
  double confidence = 0.95;
  double margin = 0.03;
  std::uint64_t seed = 0xF11Dull;
  /// Hang budget: faulty runs may retire at most this multiple of the
  /// fault-free instruction count before classifying as Crashed(hang).
  double budget_factor = 8.0;
  util::Executor* pool = nullptr;  // nullptr = util::default_executor()
  /// Snapshot-forked trial execution (copied into the prepared campaign).
  ForkPolicy fork{};
  /// Checkpoint/rollback recovery (copied into the prepared campaign).
  RecoveryPolicy recovery{};
};

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t success = 0;
  std::size_t failed = 0;
  std::size_t crashed = 0;
  /// Trials whose hardening detector fired and whose rollback re-execution
  /// finished with verified output (bit-identical to golden by
  /// construction — the re-execution replays the fault-free run).
  std::size_t detected_recovered = 0;
  /// Trials whose detector fired but could not be recovered (corrupted
  /// checkpoint, recovery disabled, or a failed re-execution).
  std::size_t detected_unrecoverable = 0;
  std::uint64_t population_bits = 0;  // sampled site population size
  /// Dynamic instructions retired across all trials (filled by
  /// run_prepared_campaign; the engine-throughput figure of merit). Under
  /// snapshot-forking this counts only instructions actually executed —
  /// skipped prefixes and early-exited tails are in the counters below.
  std::uint64_t instructions_retired = 0;

  // --- prefix-reuse accounting (zero when the from-scratch path ran) --------
  /// Waypoint snapshots the scheduler took along the golden prefix.
  std::uint64_t snapshots_taken = 0;
  /// Golden-prefix instructions trials did NOT re-execute (sum of fork
  /// indices across trials).
  std::uint64_t prefix_instructions_saved = 0;
  /// Instructions classified away by early state-convergence exits (the
  /// from-scratch trial would have executed them to reach the same
  /// verdict).
  std::uint64_t convergence_instructions_saved = 0;
  /// Trials classified at a convergence probe instead of running out.
  std::uint64_t early_exits = 0;
  /// Deepest golden-prefix point the scheduler resumed to (the golden
  /// instructions it executed once, serially, to place the snapshots).
  std::uint64_t resume_depth = 0;

  [[nodiscard]] double success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(success) /
                             static_cast<double>(trials);
  }
  /// Verified-output share once recovery is in play: plain verification
  /// successes plus detected-and-recovered trials (which finish
  /// bit-identical to golden). The resilience figure hardened variants are
  /// compared on.
  [[nodiscard]] double effective_success_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(success + detected_recovered) /
                             static_cast<double>(trials);
  }
  /// Share of trials a hardening detector caught (either class). Zero for
  /// programs without detectors.
  [[nodiscard]] double detection_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(detected_recovered +
                                             detected_unrecoverable) /
                             static_cast<double>(trials);
  }
};

/// A campaign broken into its deterministic prelude: the up-front sampled
/// fault plans and the per-trial VM options (observer cleared, hang budget
/// applied). Trials are then independent — run them with run_trial() in any
/// order, on any pool, and the aggregated counts are schedule-invariant.
/// This is the unit the batched executor (core::run_analysis) concatenates
/// across regions and applications into one shared work queue.
struct PreparedCampaign {
  std::vector<vm::FaultPlan> plans;
  vm::VmOptions run_opts;
  std::uint64_t population_bits = 0;
  /// Per-plan fork bound (parallel to `plans`): the largest retired count a
  /// trial may be forked at so its execution from there is bit-identical to
  /// running from scratch. ResultBit plans fork at their dynamic index (the
  /// flip fires on the very next retired instruction); RegionInputMemoryBit
  /// plans fork at the target instance's RegionEnter index. Empty when the
  /// enumeration carried no fork information — trials then run from scratch.
  std::vector<std::uint64_t> fork_bounds;
  /// Retired count of the fault-free run (waypoint spacing + early-exit
  /// accounting).
  std::uint64_t fault_free_instructions = 0;
  /// Prefix-reuse policy, copied from CampaignConfig::fork.
  ForkPolicy fork{};
  /// Rollback recovery policy, copied from CampaignConfig::recovery.
  RecoveryPolicy recovery{};
};

/// Waypoint snapshots along ONE golden execution of a prepared campaign,
/// plus the per-plan assignment of each trial to its fork waypoint. Built
/// once per campaign by prepare_snapshots (a single serial pass over the
/// golden prefix up to the deepest fork bound) and then shared read-only by
/// every trial on every pool worker.
struct CampaignSnapshots {
  struct Waypoint {
    std::uint64_t index = 0;  // retired count the snapshot was taken at
    vm::Vm::Snapshot state;
  };
  std::vector<Waypoint> waypoints;  // strictly increasing by index
  /// Per plan: 1 + the waypoint the trial forks from, or 0 for from-scratch
  /// (no waypoint at or before the plan's fork bound).
  std::vector<std::uint32_t> fork_waypoint;
  /// Deepest golden point reached while placing waypoints.
  std::uint64_t resume_depth = 0;

  [[nodiscard]] bool empty() const noexcept { return waypoints.empty(); }
};

/// Execute the golden prefix once and snapshot it at the campaign's
/// waypoints (chosen from the sorted fork bounds, spaced by the policy's
/// effective gap, capped at max_snapshots). Returns an empty plan (all
/// trials from scratch) when forking is disabled or no bounds are known.
[[nodiscard]] CampaignSnapshots prepare_snapshots(
    const vm::DecodedProgram& program, const PreparedCampaign& prepared);

/// Per-trial prefix-reuse accounting filled by run_forked_trial.
struct TrialAccounting {
  std::uint64_t instructions = 0;       // actually executed by this trial
  std::uint64_t prefix_saved = 0;       // golden prefix skipped via the fork
  std::uint64_t convergence_saved = 0;  // tail skipped via early exit
  bool early_exit = false;
};

/// Per-worker forked-trial executor. Each run() forks the trial machine at
/// EXACTLY its plan's fork bound — a golden-cursor Vm crawls the fault-free
/// prefix monotonically (resuming from where the previous trial left it,
/// never from zero; chunk starts seed it from the nearest waypoint
/// snapshot), and the trial machine becomes a copy of the cursor through a
/// dirty-page union sync (vm::Vm::fork_from) instead of a full memory-image
/// copy. The trial then runs with its plan armed, probing later waypoints
/// for state re-convergence: a converged trial is classified
/// VerificationSuccess without executing its tail — sound because
/// full-state equality with the golden machine implies the remainder
/// replays the golden run. Outcomes are bit-identical to run_trial on the
/// same plan.
///
/// Run trials in fork_schedule() order (ascending fork bound) to keep the
/// cursor monotonic; an out-of-order bound re-seeds the cursor from a
/// waypoint, which only costs time, never correctness. Keep one runner per
/// worker (it is not thread-safe); the referenced campaign, snapshots,
/// golden outputs and verifier must outlive it.
class TrialRunner {
 public:
  TrialRunner(const vm::DecodedProgram& program,
              const PreparedCampaign& prepared,
              const CampaignSnapshots& snapshots,
              const std::vector<vm::OutputValue>& golden,
              const Verifier& verify)
      : program_(&program),
        prepared_(&prepared),
        snapshots_(&snapshots),
        golden_(&golden),
        verify_(&verify) {}

  [[nodiscard]] Outcome run(std::size_t plan_index,
                            TrialAccounting* accounting = nullptr);

 private:
  /// Place the cursor at retired count `bound` on the fault-free prefix.
  /// Returns false when the golden run cannot reach `bound` still Running
  /// (stale bounds) — the caller then forks from scratch.
  bool seek_cursor(std::uint64_t bound);

  /// Checkpoint/rollback tail after a DetectedFault trap: decide
  /// recoverability against the modeled checkpoint cadence, then roll the
  /// trial machine back (Vm::rollback onto the deepest waypoint at or
  /// before the fault landing; fresh scratch run when forking is off) and
  /// re-execute clean. Returns DetectedRecovered iff the re-execution
  /// verifies against golden.
  Outcome recover(std::size_t plan_index, std::uint64_t landing,
                  std::uint64_t detect, TrialAccounting* accounting);

  const vm::DecodedProgram* program_;
  const PreparedCampaign* prepared_;
  const CampaignSnapshots* snapshots_;
  const std::vector<vm::OutputValue>* golden_;
  const Verifier* verify_;
  std::optional<vm::Vm> cursor_;  // golden prefix cursor (never faulted)
  std::optional<vm::Vm> vm_;      // reused trial machine
  bool synced_ = false;  // trial machine has fork_from'd this cursor before
};

/// Plan execution order that maximizes TrialRunner reuse: trial indices
/// sorted by fork bound (stable), so a worker's golden cursor only ever
/// moves forward and consecutive trials sync through small dirty-page
/// unions. Identity order when the campaign carries no fork bounds.
/// Outcome counts never depend on the order.
[[nodiscard]] std::vector<std::uint32_t> fork_schedule(
    const PreparedCampaign& prepared);

/// One-shot convenience over TrialRunner (no Vm reuse across calls).
[[nodiscard]] Outcome run_forked_trial(
    const vm::DecodedProgram& program, const PreparedCampaign& prepared,
    const CampaignSnapshots& snapshots, std::size_t plan_index,
    const std::vector<vm::OutputValue>& golden, const Verifier& verify,
    TrialAccounting* accounting = nullptr);

/// Sample the plans and fix the per-trial options for one campaign.
/// `config.trials == 0` derives the Leveugle sample size from the site
/// population as run_campaign does.
[[nodiscard]] PreparedCampaign prepare_campaign(
    const SiteEnumerationResult& sites, TargetClass target,
    const vm::VmOptions& base, const CampaignConfig& config);

/// Execute one prepared trial on the decoded engine and classify its
/// outcome. The program is decoded ONCE per application (by the caller —
/// core::AnalysisSession caches it) and shared immutably by every trial on
/// every pool worker; nothing is decoded or heap-allocated per frame in the
/// steady state. `instructions` (optional) receives the trial's retired
/// instruction count.
[[nodiscard]] Outcome run_trial(const vm::DecodedProgram& program,
                                const PreparedCampaign& prepared,
                                const vm::FaultPlan& plan,
                                const std::vector<vm::OutputValue>& golden,
                                const Verifier& verify,
                                std::uint64_t* instructions = nullptr);

/// Legacy-engine trial (tree-walking interpreter). Kept as the A/B baseline
/// the engine benchmarks compare against (bench/vm_engine_ab.cpp).
[[nodiscard]] Outcome run_trial(const ir::Module& m,
                                const PreparedCampaign& prepared,
                                const vm::FaultPlan& plan,
                                const std::vector<vm::OutputValue>& golden,
                                const Verifier& verify,
                                std::uint64_t* instructions = nullptr);

/// Execute every trial of one prepared campaign on `pool` (one blocking
/// parallel_for) and aggregate the counts. Decoded-engine form; runs the
/// snapshot-forked scheduler when the prepared campaign's ForkPolicy is
/// enabled and fork bounds are known (prepare_snapshots + run_forked_trial),
/// the from-scratch trial loop otherwise. Outcome counts are identical
/// either way; only cost and the prefix-reuse counters differ.
[[nodiscard]] CampaignResult run_prepared_campaign(
    const vm::DecodedProgram& program, const PreparedCampaign& prepared,
    const std::vector<vm::OutputValue>& golden, const Verifier& verify,
    util::Executor& pool);

/// Legacy-engine form (A/B baseline).
[[nodiscard]] CampaignResult run_prepared_campaign(
    const ir::Module& m, const PreparedCampaign& prepared,
    const std::vector<vm::OutputValue>& golden, const Verifier& verify,
    util::Executor& pool);

/// Modeled checkpoint/rollback verdict for a detector trap. The recovery
/// runtime checkpoints every RecoveryPolicy::checkpoint_interval retired
/// instructions; a rollback succeeds iff the last checkpoint at or before
/// the detection index was taken while the state was still clean (at or
/// before the fault landing). A later checkpoint captured corrupted state,
/// and restoring it deterministically re-fires the same detector, so those
/// trials classify DetectedUnrecoverable without re-running. Both indices
/// are properties of the deterministic execution — never of scheduling —
/// which keeps outcome counts identical across pool sizes, fork on/off,
/// and (src/compose/) composed vs exhaustive execution.
[[nodiscard]] bool rollback_reaches_clean_state(const RecoveryPolicy& recovery,
                                                std::uint64_t landing,
                                                std::uint64_t detect);

/// Run a campaign against one region instance's site population.
/// `golden` is the fault-free output (from a completed run with the same
/// `base` options); `verify` is the application's verification phase.
/// Equivalent to prepare_campaign + run_trial over every plan on one
/// parallel_for, on the legacy engine (one-shot convenience; decode-once
/// callers should prepare_campaign + run_prepared_campaign instead).
[[nodiscard]] CampaignResult run_campaign(
    const ir::Module& m, const SiteEnumerationResult& sites,
    TargetClass target, const std::vector<vm::OutputValue>& golden,
    const Verifier& verify, const vm::VmOptions& base,
    const CampaignConfig& config);

/// Draw the fault plans a campaign would execute (exposed for tests and for
/// analyses that re-run selected injections with tracing).
[[nodiscard]] std::vector<vm::FaultPlan> sample_plans(
    const SiteEnumerationResult& sites, TargetClass target,
    std::size_t trials, std::uint64_t seed);

}  // namespace ft::fault
