#include "fault/campaign.h"

#include <atomic>
#include <type_traits>

#include "util/rng.h"
#include "util/stats.h"

namespace ft::fault {

namespace {

/// Pick the site containing global bit offset `u` (sites weighted by width).
template <typename Site, typename WidthFn>
std::pair<const Site*, std::uint32_t> pick_weighted(
    const std::vector<Site>& sites, std::uint64_t u, const WidthFn& width_of) {
  for (const auto& s : sites) {
    const std::uint64_t w = width_of(s);
    if (u < w) return {&s, static_cast<std::uint32_t>(u)};
    u -= w;
  }
  return {nullptr, 0};
}

}  // namespace

std::vector<vm::FaultPlan> sample_plans(const SiteEnumerationResult& sites,
                                        TargetClass target,
                                        std::size_t trials,
                                        std::uint64_t seed) {
  std::vector<vm::FaultPlan> plans;
  plans.reserve(trials);
  util::Rng rng(seed);
  const auto& pop = sites.sites;

  if (target == TargetClass::Internal) {
    const std::uint64_t total = pop.internal_bits();
    if (total == 0) return plans;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto [site, bit] = pick_weighted(
          pop.internal, rng.below(total),
          [](const InternalSite& s) { return std::uint64_t{s.width_bits}; });
      if (site) plans.push_back(plan_for_internal(*site, bit));
    }
  } else {
    const std::uint64_t total = pop.input_bits();
    if (total == 0) return plans;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto [site, bit] = pick_weighted(
          pop.input, rng.below(total), [](const InputSite& s) {
            return std::uint64_t{8} * s.width_bytes;
          });
      if (site) plans.push_back(plan_for_input(pop, *site, bit));
    }
  }
  return plans;
}

PreparedCampaign prepare_campaign(const SiteEnumerationResult& sites,
                                  TargetClass target,
                                  const vm::VmOptions& base,
                                  const CampaignConfig& config) {
  PreparedCampaign out;
  const auto& pop = sites.sites;
  out.population_bits =
      target == TargetClass::Internal ? pop.internal_bits() : pop.input_bits();
  if (out.population_bits == 0) return out;

  std::size_t trials = config.trials;
  if (trials == 0) {
    trials = util::fault_injection_sample_size(
        out.population_bits, config.confidence, config.margin);
  }
  out.plans = sample_plans(sites, target, trials, config.seed);

  out.run_opts = base;
  out.run_opts.observer = nullptr;
  out.run_opts.max_instructions = static_cast<std::uint64_t>(
      config.budget_factor *
      static_cast<double>(sites.fault_free_instructions));
  if (out.run_opts.max_instructions < 1024) out.run_opts.max_instructions = 1024;
  return out;
}

namespace {

/// Shared trial/campaign bodies, parameterized over the executable form
/// (vm::DecodedProgram for the decoded engine, ir::Module for the legacy
/// baseline) — the two overload sets below instantiate them.
template <typename Executable>
Outcome run_trial_impl(const Executable& exe, const PreparedCampaign& prepared,
                       const vm::FaultPlan& plan,
                       const std::vector<vm::OutputValue>& golden,
                       const Verifier& verify, std::uint64_t* instructions) {
  vm::VmOptions opts = prepared.run_opts;
  opts.fault = plan;
  if constexpr (std::is_same_v<Executable, ir::Module>) {
    opts.program = nullptr;  // the module overloads are the legacy baseline
  }
  auto run = vm::Vm::run(exe, opts);
  if (instructions) *instructions = run.instructions;
  return classify_outcome(run, golden, verify);
}

template <typename Executable>
CampaignResult run_prepared_impl(const Executable& exe,
                                 const PreparedCampaign& prepared,
                                 const std::vector<vm::OutputValue>& golden,
                                 const Verifier& verify,
                                 util::ThreadPool& pool) {
  CampaignResult out;
  out.population_bits = prepared.population_bits;
  out.trials = prepared.plans.size();
  if (prepared.plans.empty()) return out;

  std::atomic<std::size_t> success{0}, failed{0}, crashed{0};
  std::atomic<std::uint64_t> instructions{0};
  pool.parallel_for(prepared.plans.size(), [&](std::size_t i) {
    std::uint64_t n = 0;
    switch (run_trial_impl(exe, prepared, prepared.plans[i], golden, verify,
                           &n)) {
      case Outcome::VerificationSuccess: success.fetch_add(1); break;
      case Outcome::VerificationFailed: failed.fetch_add(1); break;
      case Outcome::Crashed: crashed.fetch_add(1); break;
    }
    instructions.fetch_add(n);
  });

  out.success = success.load();
  out.failed = failed.load();
  out.crashed = crashed.load();
  out.instructions_retired = instructions.load();
  return out;
}

}  // namespace

Outcome run_trial(const vm::DecodedProgram& program,
                  const PreparedCampaign& prepared, const vm::FaultPlan& plan,
                  const std::vector<vm::OutputValue>& golden,
                  const Verifier& verify, std::uint64_t* instructions) {
  return run_trial_impl(program, prepared, plan, golden, verify, instructions);
}

Outcome run_trial(const ir::Module& m, const PreparedCampaign& prepared,
                  const vm::FaultPlan& plan,
                  const std::vector<vm::OutputValue>& golden,
                  const Verifier& verify, std::uint64_t* instructions) {
  return run_trial_impl(m, prepared, plan, golden, verify, instructions);
}

CampaignResult run_prepared_campaign(const vm::DecodedProgram& program,
                                     const PreparedCampaign& prepared,
                                     const std::vector<vm::OutputValue>& golden,
                                     const Verifier& verify,
                                     util::ThreadPool& pool) {
  return run_prepared_impl(program, prepared, golden, verify, pool);
}

CampaignResult run_prepared_campaign(const ir::Module& m,
                                     const PreparedCampaign& prepared,
                                     const std::vector<vm::OutputValue>& golden,
                                     const Verifier& verify,
                                     util::ThreadPool& pool) {
  return run_prepared_impl(m, prepared, golden, verify, pool);
}

CampaignResult run_campaign(const ir::Module& m,
                            const SiteEnumerationResult& sites,
                            TargetClass target,
                            const std::vector<vm::OutputValue>& golden,
                            const Verifier& verify, const vm::VmOptions& base,
                            const CampaignConfig& config) {
  auto* pool = config.pool ? config.pool : &util::global_pool();
  return run_prepared_campaign(m, prepare_campaign(sites, target, base, config),
                               golden, verify, *pool);
}

}  // namespace ft::fault
