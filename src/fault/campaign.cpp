#include "fault/campaign.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <type_traits>

#include "fault/sampling.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ft::fault {

using detail::pick_weighted;

std::vector<vm::FaultPlan> sample_plans(const SiteEnumerationResult& sites,
                                        TargetClass target,
                                        std::size_t trials,
                                        std::uint64_t seed) {
  std::vector<vm::FaultPlan> plans;
  plans.reserve(trials);
  util::Rng rng(seed);
  const auto& pop = sites.sites;

  if (target == TargetClass::Internal) {
    const std::uint64_t total = pop.internal_bits();
    if (total == 0) return plans;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto [site, bit] = pick_weighted(
          pop.internal, rng.below(total),
          [](const InternalSite& s) { return std::uint64_t{s.width_bits}; });
      if (site) plans.push_back(plan_for_internal(*site, bit));
    }
  } else {
    const std::uint64_t total = pop.input_bits();
    if (total == 0) return plans;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto [site, bit] = pick_weighted(
          pop.input, rng.below(total), [](const InputSite& s) {
            return std::uint64_t{8} * s.width_bytes;
          });
      if (site) plans.push_back(plan_for_input(pop, *site, bit));
    }
  }
  return plans;
}

PreparedCampaign prepare_campaign(const SiteEnumerationResult& sites,
                                  TargetClass target,
                                  const vm::VmOptions& base,
                                  const CampaignConfig& config) {
  PreparedCampaign out;
  const auto& pop = sites.sites;
  out.population_bits =
      target == TargetClass::Internal ? pop.internal_bits() : pop.input_bits();
  if (out.population_bits == 0) return out;

  std::size_t trials = config.trials;
  if (trials == 0) {
    trials = util::fault_injection_sample_size(
        out.population_bits, config.confidence, config.margin);
  }
  out.plans = sample_plans(sites, target, trials, config.seed);

  out.run_opts = base;
  out.run_opts.observer = nullptr;
  out.run_opts.column_sink = nullptr;
  out.run_opts.max_instructions = static_cast<std::uint64_t>(
      config.budget_factor *
      static_cast<double>(sites.fault_free_instructions));
  if (out.run_opts.max_instructions < 1024) out.run_opts.max_instructions = 1024;

  // Fork bounds: the deepest fault-free prefix each trial can be forked at.
  out.fault_free_instructions = sites.fault_free_instructions;
  out.fork = config.fork;
  out.recovery = config.recovery;
  out.fork_bounds.reserve(out.plans.size());
  for (const auto& plan : out.plans) {
    std::uint64_t bound = 0;
    if (plan.kind == vm::FaultPlan::Kind::ResultBit) {
      bound = plan.dyn_index;
    } else if (plan.kind == vm::FaultPlan::Kind::RegionInputMemoryBit &&
               sites.region_entry_index != SiteEnumerationResult::kNoEntry) {
      bound = sites.region_entry_index;
    }
    out.fork_bounds.push_back(bound);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot-forked trial execution (prefix reuse).
// ---------------------------------------------------------------------------

CampaignSnapshots prepare_snapshots(const vm::DecodedProgram& program,
                                    const PreparedCampaign& prepared) {
  CampaignSnapshots out;
  if (!prepared.fork.enabled ||
      prepared.fork_bounds.size() != prepared.plans.size() ||
      prepared.plans.empty() || prepared.fork.max_snapshots == 0) {
    return out;
  }

  // Candidate waypoints are the distinct fork bounds; thin them to the
  // policy's effective gap so snapshot count (and memory) stays bounded
  // while every trial still finds a waypoint close below its bound. The
  // byte budget lowers the cap for large memory images — a snapshot is
  // dominated by its copy of program memory.
  std::size_t max_snapshots = detail::cap_snapshots_to_bytes(
      prepared.fork.max_snapshots, prepared.fork.max_snapshot_bytes,
      program.module().memory_size());
  // Waypoints seed golden cursors at chunk starts and anchor convergence
  // probes; the exact forking itself rides the cursor, so a modest number
  // scaled to the trial count is enough — each extra snapshot is a full
  // state copy up front.
  max_snapshots = std::min(
      max_snapshots, std::max<std::size_t>(8, prepared.plans.size() / 8));
  std::vector<std::uint64_t> bounds = prepared.fork_bounds;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const std::uint64_t gap = std::max<std::uint64_t>(
      prepared.fork.min_gap,
      prepared.fault_free_instructions /
          static_cast<std::uint64_t>(max_snapshots));
  std::vector<std::uint64_t> indices;
  std::uint64_t last = 0;
  for (const auto b : bounds) {
    if (b < gap || b - last < gap) continue;
    if (indices.size() >= max_snapshots) break;
    indices.push_back(b);
    last = b;
  }

  // One serial golden pass places every snapshot: resume from the previous
  // waypoint, never from zero. The plan list was drawn against the golden
  // trace, so the machine must still be running at every waypoint; bail on
  // stale bounds rather than snapshotting a finished machine.
  vm::VmOptions opts = prepared.run_opts;
  opts.fault = vm::FaultPlan::none();
  vm::Vm golden(program, opts);
  out.waypoints.reserve(indices.size());
  for (const auto index : indices) {
    golden.run_until(index);
    if (golden.status() != vm::Vm::Status::Running ||
        golden.instructions_retired() != index) {
      break;
    }
    auto& w = out.waypoints.emplace_back();
    w.index = index;
    golden.save(w.state);
    out.resume_depth = index;
  }

  // Assign each trial the deepest waypoint at or before its fork bound.
  out.fork_waypoint.assign(prepared.plans.size(), 0);
  if (!out.waypoints.empty()) {
    std::vector<std::uint64_t> taken;
    taken.reserve(out.waypoints.size());
    for (const auto& w : out.waypoints) taken.push_back(w.index);
    for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
      const auto it = std::upper_bound(taken.begin(), taken.end(),
                                       prepared.fork_bounds[i]);
      out.fork_waypoint[i] =
          static_cast<std::uint32_t>(it - taken.begin());  // 0 = scratch
    }
  }
  return out;
}

bool rollback_reaches_clean_state(const RecoveryPolicy& recovery,
                                  std::uint64_t landing,
                                  std::uint64_t detect) {
  const std::uint64_t interval =
      std::max<std::uint64_t>(recovery.checkpoint_interval, 1);
  return detect / interval * interval <= landing;
}

namespace {

/// Fault landing index when no fork-bound table applies: a result-bit flip
/// lands when its dynamic instruction retires; everything else is pinned
/// to the start of the run (conservative — the checkpoint there is clean).
std::uint64_t plan_landing_index(const vm::FaultPlan& plan) {
  return plan.kind == vm::FaultPlan::Kind::ResultBit ? plan.dyn_index : 0;
}

}  // namespace

bool TrialRunner::seek_cursor(std::uint64_t bound) {
  // Re-seed from the deepest waypoint at or before `bound` when the cursor
  // is absent or already past it (out-of-schedule bound).
  if (!cursor_ || cursor_->instructions_retired() > bound) {
    std::size_t w = 0;  // 1 + waypoint index to seed from
    for (std::size_t i = 0; i < snapshots_->waypoints.size(); ++i) {
      if (snapshots_->waypoints[i].index > bound) break;
      w = i + 1;
    }
    vm::VmOptions opts = prepared_->run_opts;
    opts.fault = vm::FaultPlan::none();
    opts.track_writes = true;
    if (cursor_) {
      if (w != 0) {
        cursor_->restore(snapshots_->waypoints[w - 1].state);
      } else {
        cursor_.emplace(*program_, opts);
      }
    } else if (w != 0) {
      cursor_.emplace(*program_, snapshots_->waypoints[w - 1].state, opts);
    } else {
      cursor_.emplace(*program_, opts);
    }
    synced_ = false;  // the trial machine no longer shares cursor history
  }
  if (cursor_->instructions_retired() < bound) {
    cursor_->run_until(bound);
  }
  return cursor_->status() == vm::Vm::Status::Running &&
         cursor_->instructions_retired() == bound;
}

Outcome TrialRunner::run(std::size_t plan_index, TrialAccounting* accounting) {
  const vm::FaultPlan& plan = prepared_->plans[plan_index];
  const std::uint64_t bound =
      prepared_->fork_bounds.size() == prepared_->plans.size()
          ? prepared_->fork_bounds[plan_index]
          : 0;

  std::uint64_t fork_index = 0;
  if (prepared_->fork.enabled && seek_cursor(bound)) {
    // Exact fork: the trial machine becomes a copy of the cursor at the
    // plan's own bound — no prefix is ever re-executed by the trial.
    if (!vm_) {
      vm::VmOptions opts = prepared_->run_opts;
      opts.fault = plan;
      opts.track_writes = true;
      vm_.emplace(*program_, opts);
      synced_ = false;
    }
    vm_->fork_from(*cursor_, /*full=*/!synced_);
    synced_ = true;
    vm_->set_fault(plan);
    fork_index = bound;
  } else {
    // Fallback (forking disabled or stale bounds): run from scratch.
    vm::VmOptions opts = prepared_->run_opts;
    opts.fault = plan;
    opts.track_writes = true;
    vm_.emplace(*program_, opts);
    synced_ = false;
  }
  vm::Vm& vm = *vm_;
  if (accounting) {
    *accounting = TrialAccounting{};
    accounting->prefix_saved = fork_index;
  }

  // Convergence probes: pause at later waypoints and compare machine state
  // against the golden snapshot. Equality (with the fault already fired)
  // proves the remainder replays the golden run — classify Success without
  // executing the tail. The fault_fired() guard keeps armed-but-unfired
  // plans (input faults whose region entry lies past the probe) from
  // exiting before their flip ever lands. Probes back off geometrically:
  // most flips either die within a few waypoints (the first probes catch
  // them) or live in state that only a later phase overwrites, so the
  // budgeted probes spread across scales instead of burning out right
  // after the injection.
  if (prepared_->fork.probe_convergence) {
    std::size_t failed_probes = 0;
    std::size_t stride = 1;
    // First waypoint past the fork bound (fork_waypoint counts those at or
    // before it).
    std::size_t p = snapshots_->fork_waypoint.empty()
                        ? 0
                        : snapshots_->fork_waypoint[plan_index];
    while (p < snapshots_->waypoints.size() &&
           failed_probes < prepared_->fork.max_probes) {
      const auto& probe = snapshots_->waypoints[p];
      vm.run_until(probe.index);
      if (vm.status() != vm::Vm::Status::Running) break;
      if (!vm.fault_fired()) {
        // Pre-flip probe: the state trivially equals golden; move on
        // without spending compare cost or probe budget.
        p += 1;
        continue;
      }
      if (vm.state_equals(probe.state)) {
        if (accounting) {
          accounting->instructions = vm.instructions_retired() - fork_index;
          accounting->convergence_saved =
              prepared_->fault_free_instructions - vm.instructions_retired();
          accounting->early_exit = true;
        }
        return Outcome::VerificationSuccess;
      }
      failed_probes++;
      p += stride;
      stride *= 2;
    }
  }

  if (vm.status() == vm::Vm::Status::Running) {
    vm.run_until(~std::uint64_t{0});  // to completion, under the hang budget
  }
  const auto run = vm.take_result();
  if (accounting) accounting->instructions = run.instructions - fork_index;
  if (run.trap == vm::TrapKind::DetectedFault && prepared_->recovery.enabled) {
    return recover(plan_index, bound, run.instructions, accounting);
  }
  return classify_outcome(run, *golden_, *verify_);
}

Outcome TrialRunner::recover(std::size_t plan_index, std::uint64_t landing,
                             std::uint64_t detect,
                             TrialAccounting* accounting) {
  if (!rollback_reaches_clean_state(prepared_->recovery, landing, detect)) {
    return Outcome::DetectedUnrecoverable;
  }
  // Roll back to the deepest golden waypoint at or before the fault landing
  // and re-execute with the plan disarmed. The tail from a clean state is
  // the golden run itself, so a successful recovery finishes bit-identical
  // to golden — but we measure that rather than assume it: the rerun is
  // classified like any other trial.
  vm::RunResult rerun;
  const std::size_t w = snapshots_->fork_waypoint.empty()
                            ? 0
                            : snapshots_->fork_waypoint[plan_index];
  if (vm_ && w != 0) {
    const auto& waypoint = snapshots_->waypoints[w - 1];
    vm_->rollback(waypoint.state);
    synced_ = false;  // rollback rebuilt memory; cursor history is gone
    vm_->run_until(~std::uint64_t{0});
    rerun = vm_->take_result();
    if (accounting) {
      accounting->instructions += rerun.instructions - waypoint.index;
    }
  } else {
    vm::VmOptions opts = prepared_->run_opts;
    opts.fault = vm::FaultPlan::none();
    rerun = vm::Vm::run(*program_, opts);
    if (accounting) accounting->instructions += rerun.instructions;
  }
  return classify_outcome(rerun, *golden_, *verify_) ==
                 Outcome::VerificationSuccess
             ? Outcome::DetectedRecovered
             : Outcome::DetectedUnrecoverable;
}

std::vector<std::uint32_t> fork_schedule(const PreparedCampaign& prepared) {
  if (prepared.fork_bounds.size() != prepared.plans.size()) return {};
  std::vector<std::uint32_t> order(prepared.fork_bounds.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return prepared.fork_bounds[a] <
                            prepared.fork_bounds[b];
                   });
  return order;
}

Outcome run_forked_trial(const vm::DecodedProgram& program,
                         const PreparedCampaign& prepared,
                         const CampaignSnapshots& snapshots,
                         std::size_t plan_index,
                         const std::vector<vm::OutputValue>& golden,
                         const Verifier& verify, TrialAccounting* accounting) {
  TrialRunner runner(program, prepared, snapshots, golden, verify);
  return runner.run(plan_index, accounting);
}

namespace {

/// Shared trial/campaign bodies, parameterized over the executable form
/// (vm::DecodedProgram for the decoded engine, ir::Module for the legacy
/// baseline) — the two overload sets below instantiate them.
template <typename Executable>
Outcome run_trial_impl(const Executable& exe, const PreparedCampaign& prepared,
                       const vm::FaultPlan& plan, std::uint64_t landing,
                       const std::vector<vm::OutputValue>& golden,
                       const Verifier& verify, std::uint64_t* instructions) {
  vm::VmOptions opts = prepared.run_opts;
  opts.fault = plan;
  if constexpr (std::is_same_v<Executable, ir::Module>) {
    opts.program = nullptr;  // the module overloads are the legacy baseline
    opts.jit = nullptr;      // ... which never executes native code
  }
  auto run = vm::Vm::run(exe, opts);
  if (instructions) *instructions = run.instructions;
  if (run.trap == vm::TrapKind::DetectedFault && prepared.recovery.enabled) {
    // Scratch-path recovery: same modeled-checkpoint verdict as the forked
    // runner, but the clean re-execution starts from zero (no snapshots
    // here). Outcomes match the forked path exactly — only cost differs.
    if (!rollback_reaches_clean_state(prepared.recovery, landing,
                                      run.instructions)) {
      return Outcome::DetectedUnrecoverable;
    }
    opts.fault = vm::FaultPlan::none();
    auto rerun = vm::Vm::run(exe, opts);
    if (instructions) *instructions += rerun.instructions;
    return classify_outcome(rerun, golden, verify) ==
                   Outcome::VerificationSuccess
               ? Outcome::DetectedRecovered
               : Outcome::DetectedUnrecoverable;
  }
  return classify_outcome(run, golden, verify);
}

template <typename Executable>
CampaignResult run_prepared_impl(const Executable& exe,
                                 const PreparedCampaign& prepared,
                                 const std::vector<vm::OutputValue>& golden,
                                 const Verifier& verify,
                                 util::Executor& pool) {
  CampaignResult out;
  out.population_bits = prepared.population_bits;
  out.trials = prepared.plans.size();
  if (prepared.plans.empty()) return out;

  const bool bounds =
      prepared.fork_bounds.size() == prepared.plans.size();
  std::atomic<std::size_t> success{0}, failed{0}, crashed{0};
  std::atomic<std::size_t> recovered{0}, unrecoverable{0};
  std::atomic<std::uint64_t> instructions{0};
  pool.parallel_for(prepared.plans.size(), [&](std::size_t i) {
    std::uint64_t n = 0;
    const std::uint64_t landing = bounds
                                      ? prepared.fork_bounds[i]
                                      : plan_landing_index(prepared.plans[i]);
    switch (run_trial_impl(exe, prepared, prepared.plans[i], landing, golden,
                           verify, &n)) {
      case Outcome::VerificationSuccess: success.fetch_add(1); break;
      case Outcome::VerificationFailed: failed.fetch_add(1); break;
      case Outcome::Crashed: crashed.fetch_add(1); break;
      case Outcome::DetectedRecovered: recovered.fetch_add(1); break;
      case Outcome::DetectedUnrecoverable: unrecoverable.fetch_add(1); break;
    }
    instructions.fetch_add(n);
  });

  out.success = success.load();
  out.failed = failed.load();
  out.crashed = crashed.load();
  out.detected_recovered = recovered.load();
  out.detected_unrecoverable = unrecoverable.load();
  out.instructions_retired = instructions.load();
  return out;
}

/// The snapshot-forked campaign body: one serial golden pass places the
/// waypoints, then every trial forks from its waypoint on the pool. Outcome
/// counts are bit-identical to run_prepared_impl on the same campaign.
CampaignResult run_prepared_forked(const vm::DecodedProgram& program,
                                   const PreparedCampaign& prepared,
                                   const std::vector<vm::OutputValue>& golden,
                                   const Verifier& verify,
                                   util::Executor& pool) {
  CampaignResult out;
  out.population_bits = prepared.population_bits;
  out.trials = prepared.plans.size();
  if (prepared.plans.empty()) return out;

  const auto snapshots = prepare_snapshots(program, prepared);
  out.snapshots_taken = snapshots.waypoints.size();
  out.resume_depth = snapshots.resume_depth;
  const auto order = fork_schedule(prepared);

  std::atomic<std::size_t> success{0}, failed{0}, crashed{0}, early{0};
  std::atomic<std::size_t> recovered{0}, unrecoverable{0};
  std::atomic<std::uint64_t> instructions{0}, prefix_saved{0}, conv_saved{0};
  // Chunked dispatch in fork_schedule order: each task owns one TrialRunner,
  // so consecutive trials on a worker reuse one machine and mostly fork from
  // the same waypoint (incremental restore). Counts accumulate atomically —
  // results are independent of chunking and order.
  const std::size_t n = prepared.plans.size();
  const std::size_t chunk = std::clamp<std::size_t>(n / (pool.size() * 8), 1, 32);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  pool.parallel_for(n_chunks, [&](std::size_t c) {
    TrialRunner runner(program, prepared, snapshots, golden, verify);
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    for (std::size_t pos = begin; pos < end; ++pos) {
      const std::size_t i = order.empty() ? pos : order[pos];
      TrialAccounting acct;
      switch (runner.run(i, &acct)) {
        case Outcome::VerificationSuccess: success.fetch_add(1); break;
        case Outcome::VerificationFailed: failed.fetch_add(1); break;
        case Outcome::Crashed: crashed.fetch_add(1); break;
        case Outcome::DetectedRecovered: recovered.fetch_add(1); break;
        case Outcome::DetectedUnrecoverable: unrecoverable.fetch_add(1); break;
      }
      instructions.fetch_add(acct.instructions);
      prefix_saved.fetch_add(acct.prefix_saved);
      conv_saved.fetch_add(acct.convergence_saved);
      if (acct.early_exit) early.fetch_add(1);
    }
  });

  out.success = success.load();
  out.failed = failed.load();
  out.crashed = crashed.load();
  out.detected_recovered = recovered.load();
  out.detected_unrecoverable = unrecoverable.load();
  out.instructions_retired = instructions.load();
  out.prefix_instructions_saved = prefix_saved.load();
  out.convergence_instructions_saved = conv_saved.load();
  out.early_exits = early.load();
  return out;
}

}  // namespace

Outcome run_trial(const vm::DecodedProgram& program,
                  const PreparedCampaign& prepared, const vm::FaultPlan& plan,
                  const std::vector<vm::OutputValue>& golden,
                  const Verifier& verify, std::uint64_t* instructions) {
  return run_trial_impl(program, prepared, plan, plan_landing_index(plan),
                        golden, verify, instructions);
}

Outcome run_trial(const ir::Module& m, const PreparedCampaign& prepared,
                  const vm::FaultPlan& plan,
                  const std::vector<vm::OutputValue>& golden,
                  const Verifier& verify, std::uint64_t* instructions) {
  return run_trial_impl(m, prepared, plan, plan_landing_index(plan), golden,
                        verify, instructions);
}

CampaignResult run_prepared_campaign(const vm::DecodedProgram& program,
                                     const PreparedCampaign& prepared,
                                     const std::vector<vm::OutputValue>& golden,
                                     const Verifier& verify,
                                     util::Executor& pool) {
  if (prepared.fork.enabled &&
      prepared.fork_bounds.size() == prepared.plans.size()) {
    return run_prepared_forked(program, prepared, golden, verify, pool);
  }
  return run_prepared_impl(program, prepared, golden, verify, pool);
}

CampaignResult run_prepared_campaign(const ir::Module& m,
                                     const PreparedCampaign& prepared,
                                     const std::vector<vm::OutputValue>& golden,
                                     const Verifier& verify,
                                     util::Executor& pool) {
  return run_prepared_impl(m, prepared, golden, verify, pool);
}

CampaignResult run_campaign(const ir::Module& m,
                            const SiteEnumerationResult& sites,
                            TargetClass target,
                            const std::vector<vm::OutputValue>& golden,
                            const Verifier& verify, const vm::VmOptions& base,
                            const CampaignConfig& config) {
  auto* pool = config.pool ? config.pool : &util::default_executor();
  return run_prepared_campaign(m, prepare_campaign(sites, target, base, config),
                               golden, verify, *pool);
}

}  // namespace ft::fault
