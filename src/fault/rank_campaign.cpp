#include "fault/rank_campaign.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "fault/sampling.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ft::fault {

namespace {

/// Blocking MiniMPI ops: the rank-local fork limit. MpiRank/MpiSize are
/// pure local queries and do not bound the communication-free prefix.
constexpr bool is_blocking_comm(ir::Opcode op) noexcept {
  return op == ir::Opcode::MpiSend || op == ir::Opcode::MpiRecv ||
         op == ir::Opcode::MpiAllreduce || op == ir::Opcode::MpiBarrier;
}

}  // namespace

std::uint64_t RankEnumeration::population_bits() const {
  std::uint64_t n = 0;
  for (const auto& s : sites) n += s.width_bits;
  return n;
}

RankEnumeration enumerate_rank_sites(
    const std::shared_ptr<const vm::DecodedProgram>& program,
    std::int64_t nranks, const vm::VmOptions& base, bool keep_traces) {
  const auto n = static_cast<std::size_t>(nranks);

  // One traced golden pass: per-rank direct-emit columnar sinks plus
  // recording endpoints, all collected concurrently without cross-rank
  // synchronization (the paper's parallel-tracer shape).
  std::vector<trace::ColumnTrace> sinks;
  sinks.reserve(n);
  for (std::size_t r = 0; r < n; ++r) sinks.emplace_back(program);

  mpi::RankRunOptions opts;
  opts.base = base;
  opts.base.fault = vm::FaultPlan::none();
  opts.record_comm = true;
  for (auto& s : sinks) opts.sinks.push_back(&s);
  auto report = mpi::run_ranks(*program, nranks, opts);

  RankEnumeration out;
  out.nranks = nranks;
  out.fault_free_instructions.resize(n);
  out.golden_outputs.resize(n);
  out.first_comm_index.assign(n, RankEnumeration::kNoComm);
  out.golden_comm = std::move(report.comm);

  for (std::size_t r = 0; r < n; ++r) {
    if (report.ranks[r].trap != vm::TrapKind::None || report.aborted[r]) {
      throw std::runtime_error(
          "enumerate_rank_sites: fault-free rank " + std::to_string(r) +
          " did not complete (trap " +
          std::string(vm::trap_name(report.ranks[r].trap)) + ")");
    }
    out.fault_free_instructions[r] = report.ranks[r].instructions;
    out.golden_outputs[r] = std::move(report.ranks[r].outputs);

    const trace::ColumnTrace& tr = sinks[r];
    for (std::size_t row = 0; row < tr.size(); ++row) {
      if (is_blocking_comm(tr.opcode_at(row))) {
        out.first_comm_index[r] = row;
        break;
      }
    }
    for (const vm::DynInstr& rec : tr.view()) {
      if (rec.result_loc == vm::kNoLoc) continue;
      const ir::Type t =
          rec.op == ir::Opcode::Store ? rec.op_type[0] : rec.type;
      const auto width = bit_width(t);
      if (width == 0) continue;
      out.sites.push_back(
          RankSite{static_cast<std::int64_t>(r), rec.index, width});
    }
  }

  if (keep_traces) {
    out.golden_traces.reserve(n);
    for (auto& s : sinks) {
      out.golden_traces.push_back(
          std::make_shared<const trace::ColumnTrace>(std::move(s)));
    }
  }
  return out;
}

PreparedRankCampaign prepare_rank_campaign(const RankEnumeration& enumeration,
                                           const vm::VmOptions& base,
                                           const RankCampaignConfig& config) {
  PreparedRankCampaign out;
  out.nranks = enumeration.nranks;
  out.population_bits = enumeration.population_bits();
  out.fork = config.fork;
  out.golden_outputs = enumeration.golden_outputs;
  out.golden_comm = enumeration.golden_comm;

  out.run_opts = base;
  out.run_opts.observer = nullptr;
  out.run_opts.column_sink = nullptr;
  out.run_opts.fault = vm::FaultPlan::none();

  const auto n = static_cast<std::size_t>(enumeration.nranks);
  out.rank_budget.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto budget = static_cast<std::uint64_t>(
        config.budget_factor *
        static_cast<double>(enumeration.fault_free_instructions[r]));
    out.rank_budget[r] = std::max<std::uint64_t>(budget, 1024);
  }

  if (out.population_bits == 0) return out;
  std::size_t trials = config.trials;
  if (trials == 0) {
    trials = util::fault_injection_sample_size(
        out.population_bits, config.confidence, config.margin);
  }

  // Width-weighted sampling over the all-ranks site population, from one
  // seeded generator — the plan list is fixed before any trial runs.
  util::Rng rng(config.seed);
  out.plans.reserve(trials);
  out.plan_rank.reserve(trials);
  out.fork_bounds.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto [site, bit] = detail::pick_weighted(
        enumeration.sites, rng.below(out.population_bits),
        [](const RankSite& s) { return std::uint64_t{s.width_bits}; });
    if (!site) continue;
    out.plans.push_back(vm::FaultPlan::result_bit(site->dyn_index, bit));
    out.plan_rank.push_back(site->rank);
    // Rank-local legality: fork at or before the flip's own index AND
    // before the rank's first blocking communication op.
    const auto first_comm =
        enumeration.first_comm_index[static_cast<std::size_t>(site->rank)];
    out.fork_bounds.push_back(std::min(site->dyn_index, first_comm));
  }
  return out;
}

RankSnapshots prepare_rank_snapshots(const vm::DecodedProgram& program,
                                     const PreparedRankCampaign& prepared) {
  RankSnapshots out;
  out.per_rank.resize(static_cast<std::size_t>(prepared.nranks));
  if (!prepared.fork.enabled || prepared.fork.max_snapshots == 0 ||
      prepared.plans.empty()) {
    return out;
  }

  // Waypoint budget: split max_snapshots (lowered by the byte budget, as in
  // prepare_snapshots — a snapshot is dominated by the memory image) evenly
  // across ranks.
  const std::size_t max_total = detail::cap_snapshots_to_bytes(
      prepared.fork.max_snapshots, prepared.fork.max_snapshot_bytes,
      program.module().memory_size());
  const std::size_t quota = std::max<std::size_t>(
      1, max_total / static_cast<std::size_t>(prepared.nranks));

  for (std::int64_t rank = 0; rank < prepared.nranks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    std::vector<std::uint64_t> bounds;
    for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
      if (prepared.plan_rank[i] == rank && prepared.fork_bounds[i] > 0) {
        bounds.push_back(prepared.fork_bounds[i]);
      }
    }
    if (bounds.empty()) continue;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    const std::uint64_t gap = std::max<std::uint64_t>(
        prepared.fork.min_gap,
        bounds.back() / static_cast<std::uint64_t>(quota));
    std::vector<std::uint64_t> indices;
    std::uint64_t last = 0;
    for (const auto b : bounds) {
      if (b < gap || b - last < gap) continue;
      if (indices.size() >= quota) break;
      indices.push_back(b);
      last = b;
    }
    if (indices.empty()) continue;

    // The communication-free prefix is peer-independent: execute it solo
    // (rank/size served by a FixedEndpoint, which throws if the prefix
    // were ever to communicate) and snapshot at each waypoint.
    mpi::FixedEndpoint fixed(rank, prepared.nranks);
    vm::VmOptions opts = prepared.run_opts;
    opts.mpi = &fixed;
    opts.max_instructions = prepared.rank_budget[r];
    vm::Vm vm(program, opts);
    for (const auto index : indices) {
      vm.run_until(index);
      if (vm.status() != vm::Vm::Status::Running ||
          vm.instructions_retired() != index) {
        break;
      }
      auto& w = out.per_rank[r].emplace_back();
      w.index = index;
      vm.save(w.state);
      out.snapshots_taken++;
    }
  }
  return out;
}

namespace {

RankTrialResult classify_rank_trial(const mpi::RankRunReport& report,
                                    const PreparedRankCampaign& prepared,
                                    std::int64_t injected,
                                    const Verifier& verify) {
  if (report.any_abnormal()) {
    return RankTrialResult{RankOutcome::TrapAnyRank, 0};
  }

  const auto n = static_cast<std::size_t>(prepared.nranks);
  std::uint32_t contaminated = 0;
  bool all_verify = true;
  for (std::size_t r = 0; r < n; ++r) {
    if (!verify(report.ranks[r].outputs, prepared.golden_outputs[r])) {
      all_verify = false;
    }
    if (static_cast<std::int64_t>(r) == injected) continue;
    // A peer is contaminated when its own produced state diverged bitwise:
    // final outputs, or anything it pushed back into the world.
    const bool diverged =
        report.ranks[r].outputs != prepared.golden_outputs[r] ||
        !report.comm[r].outbound_equals(prepared.golden_comm[r]);
    if (diverged) contaminated++;
  }

  if (!all_verify) {
    return RankTrialResult{RankOutcome::CorruptedOutput, contaminated};
  }
  if (contaminated > 0) {
    return RankTrialResult{RankOutcome::PropagatedToRanks, contaminated};
  }
  const auto inj = static_cast<std::size_t>(injected);
  const bool escaped =
      !report.comm[inj].outbound_equals(prepared.golden_comm[inj]);
  return RankTrialResult{escaped ? RankOutcome::AbsorbedByCollective
                                 : RankOutcome::MaskedLocally,
                         0};
}

}  // namespace

RankTrialResult run_rank_trial(const vm::DecodedProgram& program,
                               const PreparedRankCampaign& prepared,
                               const RankSnapshots& snapshots,
                               std::size_t plan_index, const Verifier& verify,
                               std::uint64_t* instructions,
                               std::uint64_t* prefix_saved) {
  const std::int64_t injected = prepared.plan_rank[plan_index];
  const auto inj = static_cast<std::size_t>(injected);

  mpi::RankRunOptions opts;
  opts.base = prepared.run_opts;
  opts.fault_rank = injected;
  opts.fault = prepared.plans[plan_index];
  opts.record_comm = true;
  opts.max_instructions = prepared.rank_budget;

  // Rank-local fork: deepest waypoint at or before this plan's bound.
  std::uint64_t forked_at = 0;
  if (prepared.fork.enabled && !snapshots.empty()) {
    const std::uint64_t bound = prepared.fork_bounds[plan_index];
    for (const auto& w : snapshots.per_rank[inj]) {
      if (w.index > bound) break;
      opts.fault_snapshot = &w.state;
      forked_at = w.index;
    }
  }

  const auto report = mpi::run_ranks(program, prepared.nranks, opts);
  if (instructions) {
    std::uint64_t total = 0;
    for (const auto& r : report.ranks) total += r.instructions;
    // The forked rank's retired count includes the prefix it never
    // re-executed (snapshots preserve the absolute counter) — but only
    // when its machine actually produced a result; an exception exit
    // (BadRank, world abort) leaves that rank's count at zero, and
    // subtracting the full prefix would underflow.
    *instructions = total - std::min(forked_at, report.ranks[inj].instructions);
  }
  if (prefix_saved) *prefix_saved = forked_at;
  return classify_rank_trial(report, prepared, injected, verify);
}

double RankCampaignResult::mean_propagation_depth() const noexcept {
  std::size_t trials_counted = 0, sum = 0;
  for (std::size_t k = 0; k < propagation_depth.size(); ++k) {
    trials_counted += propagation_depth[k];
    sum += k * propagation_depth[k];
  }
  return trials_counted == 0 ? 0.0
                             : static_cast<double>(sum) /
                                   static_cast<double>(trials_counted);
}

RankCampaignResult RankCampaignAccumulator::result(
    const PreparedRankCampaign& prepared,
    std::uint64_t snapshots_taken) const {
  RankCampaignResult r;
  r.nranks = prepared.nranks;
  r.trials = prepared.plans.size();
  r.population_bits = prepared.population_bits;
  r.masked_locally = masked_.load();
  r.absorbed_by_collective = absorbed_.load();
  r.propagated = propagated_.load();
  r.corrupted_output = corrupted_.load();
  r.trapped = trapped_.load();
  r.instructions_retired = instructions_.load();
  r.prefix_instructions_saved = prefix_saved_.load();
  r.snapshots_taken = snapshots_taken;
  const auto n = static_cast<std::size_t>(prepared.nranks);
  r.propagation_depth.resize(n);
  r.rank_trials.resize(n);
  r.rank_success.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    r.propagation_depth[k] = depth_[k].load();
    r.rank_trials[k] = rank_trials_[k].load();
    r.rank_success[k] = rank_success_[k].load();
  }
  return r;
}

RankCampaignResult run_rank_campaign(const vm::DecodedProgram& program,
                                     const PreparedRankCampaign& prepared,
                                     const Verifier& verify,
                                     util::Executor& pool) {
  const auto n = static_cast<std::size_t>(prepared.nranks);
  RankCampaignAccumulator acc(n);
  if (prepared.plans.empty()) return acc.result(prepared, 0);

  const auto snapshots = prepare_rank_snapshots(program, prepared);

  // Chunked dispatch: each task runs whole worlds (nranks threads each), so
  // chunks stay small to keep the queue balanced. Counts accumulate
  // atomically — results are independent of chunking and order.
  const std::size_t total = prepared.plans.size();
  const std::size_t chunk = rank_campaign_chunk(total, pool.size());
  const std::size_t n_chunks = (total + chunk - 1) / chunk;
  pool.parallel_for(n_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(total, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      std::uint64_t instr = 0, prefix = 0;
      const auto trial = run_rank_trial(program, prepared, snapshots, i,
                                        verify, &instr, &prefix);
      acc.add(trial, static_cast<std::size_t>(prepared.plan_rank[i]), instr,
              prefix);
    }
  });
  return acc.result(prepared, snapshots.snapshots_taken);
}

RankCampaignResult run_rank_campaign(
    const std::shared_ptr<const vm::DecodedProgram>& program,
    const vm::VmOptions& base, const Verifier& verify,
    const RankCampaignConfig& config) {
  const auto enumeration = enumerate_rank_sites(program, config.nranks, base,
                                                /*keep_traces=*/false);
  const auto prepared = prepare_rank_campaign(enumeration, base, config);
  auto* pool = config.pool ? config.pool : &util::default_executor();
  return run_rank_campaign(*program, prepared, verify, *pool);
}

}  // namespace ft::fault
