// A small fixed-size thread pool used to parallelize fault-injection
// campaigns (each injection run is an independent VM execution) and the
// MiniMPI rank runtime. Follows CP.4 from the C++ Core Guidelines: callers
// think in tasks; threads are an implementation detail.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft::util {

class ThreadPool {
 public:
  /// Creates `n` worker threads. n == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Work is distributed in contiguous chunks for cache friendliness.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // --- scheduling telemetry ---------------------------------------------------
  // Monotonic counters since construction; the batching tests use them to
  // prove that a multi-region analysis dispatches as ONE work queue rather
  // than one parallel_for per region.
  /// Number of parallel_for invocations dispatched through this pool.
  [[nodiscard]] std::uint64_t parallel_for_calls() const noexcept {
    return parallel_for_calls_.load(std::memory_order_relaxed);
  }
  /// Number of tasks submitted to the queue (chunk drains + submit()s).
  [[nodiscard]] std::uint64_t tasks_submitted() const noexcept {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> tasks_submitted_{0};
};

/// Process-wide pool (lazily constructed); used by campaign runners unless
/// an explicit pool is supplied.
ThreadPool& global_pool();

}  // namespace ft::util
