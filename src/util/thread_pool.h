// Task execution for fault-injection campaigns (each injection run is an
// independent VM execution) and the MiniMPI rank runtime. Follows CP.4 from
// the C++ Core Guidelines: callers think in tasks; threads are an
// implementation detail.
//
// Two implementations share the `Executor` interface:
//  - `ThreadPool` (this header): the original single-queue pool, kept as the
//    A/B baseline and for callers that want strict FIFO task order.
//  - `Scheduler` (util/scheduler.h): the per-worker-deque work-stealing
//    scheduler that campaign runners default to via `default_executor()`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft::util {

/// Abstract task executor: a fixed set of worker threads that run submitted
/// tasks and cooperatively drain `parallel_for` index ranges. Campaign
/// runners hold `Executor*` so the single-queue pool and the work-stealing
/// scheduler are interchangeable behind one seam; outcome counts never
/// depend on which one runs the trials (plans are drawn up-front from the
/// config seed and aggregated commutatively).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of worker threads.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Enqueue a task; returns a future for its completion.
  virtual std::future<void> submit(std::function<void()> task) = 0;

  /// Run fn(i) for i in [0, count) across the workers and wait for all.
  /// All outstanding chunks are joined before the first exception thrown by
  /// `fn` propagates, so `fn` and any state it captures stay valid for the
  /// full lifetime of every chunk.
  virtual void parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn) = 0;

  // --- scheduling telemetry --------------------------------------------------
  // Monotonic counters since construction; the batching tests use them to
  // prove that a multi-region analysis dispatches as ONE work queue rather
  // than one parallel_for per region.
  /// Number of parallel_for invocations dispatched through this executor.
  [[nodiscard]] std::uint64_t parallel_for_calls() const noexcept {
    return parallel_for_calls_.load(std::memory_order_relaxed);
  }
  /// Number of tasks submitted to the queue (chunk drains + submit()s).
  [[nodiscard]] std::uint64_t tasks_submitted() const noexcept {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }
  /// Tasks taken from another worker's queue (always 0 for the single-queue
  /// pool, which has nothing to steal from).
  [[nodiscard]] virtual std::uint64_t steals() const noexcept { return 0; }
  /// High-water mark of any single queue's depth.
  [[nodiscard]] virtual std::uint64_t queue_depth_max() const noexcept {
    return 0;
  }

 protected:
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> tasks_submitted_{0};
};

/// The original single-queue pool: one mutex-guarded FIFO drained by all
/// workers. Retained as the scheduling A/B baseline (bench_smoke section 10)
/// and for tests that assert strict submission-order semantics.
class ThreadPool final : public Executor {
 public:
  /// Creates `n` worker threads. n == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept override {
    return workers_.size();
  }

  std::future<void> submit(std::function<void()> task) override;

  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) override;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide legacy pool (lazily constructed). Campaign runners no longer
/// default to it — see `default_executor()` — but the A/B benches and
/// FIFO-order tests still do.
ThreadPool& global_pool();

/// Process-wide default executor for campaign runners that are not handed an
/// explicit pool: the work-stealing `global_scheduler()` from
/// util/scheduler.h (defined there to keep this header scheduler-agnostic).
Executor& default_executor();

}  // namespace ft::util
