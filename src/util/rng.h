// Deterministic random number generation.
//
// Two generators are provided:
//  * Rng       — xoshiro256** for host-side sampling (fault-site selection,
//                campaign scheduling). Fast, splittable via jump-free
//                reseeding with splitmix64.
//  * Randlc    — the NAS Parallel Benchmarks 48-bit linear congruential
//                generator (x_{k+1} = a*x_k mod 2^46, result scaled to
//                (0,1)). The MiniIR `Rand` opcode uses this so our CG/IS/MG
//                workloads draw inputs from the same stream family as the
//                originals, and every VM run is reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace ft::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Derive an independent child generator (for per-task streams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// NAS `randlc` 48-bit LCG. Produces doubles in (0, 1).
class Randlc {
 public:
  /// NAS default multiplier 5^13 and seed 314159265.
  explicit Randlc(double seed = 314159265.0, double a = 1220703125.0) noexcept;

  /// Next pseudo-random double in (0, 1); advances the stream.
  double next() noexcept;

  /// Current state (the NAS `tran` variable).
  [[nodiscard]] double state() const noexcept { return x_; }

 private:
  double x_;
  // Precomputed halves of the multiplier, as in the NAS reference code.
  double a1_, a2_;
};

}  // namespace ft::util
