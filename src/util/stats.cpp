#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ft::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double z_for_confidence(double confidence) noexcept {
  if (confidence >= 0.989) return 2.5758;
  if (confidence >= 0.949) return 1.9600;
  if (confidence >= 0.899) return 1.6449;
  return 1.9600;  // default to 95%
}

std::uint64_t fault_injection_sample_size(std::uint64_t population,
                                          double confidence,
                                          double margin) noexcept {
  if (population == 0) return 0;
  const double N = static_cast<double>(population);
  const double z = z_for_confidence(confidence);
  const double p = 0.5;
  const double e = margin;
  const double n = N / (1.0 + e * e * (N - 1.0) / (z * z * p * (1.0 - p)));
  const auto rounded = static_cast<std::uint64_t>(std::ceil(n));
  return std::min<std::uint64_t>(std::max<std::uint64_t>(rounded, 1),
                                 population);
}

}  // namespace ft::util
