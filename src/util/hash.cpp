#include "util/hash.h"

#include <cstring>

namespace ft::util {

Hash64& Hash64::bytes(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kPrime;
  state_ = h;
  return *this;
}

Hash64& Hash64::f64(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

std::uint64_t hash_bytes(const void* data, std::size_t n) noexcept {
  return Hash64().bytes(data, n).digest();
}

}  // namespace ft::util
