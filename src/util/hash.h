/// @file
/// Stable 64-bit streaming content hash (FNV-1a) for persistent store keys.
///
/// Every key of the on-disk artifact store (src/store) is a content hash of
/// the inputs that fully determine the artifact — laid-out module bytes,
/// campaign/enumeration config, seed. Such keys must be *stable*: the same
/// inputs must produce the same 64-bit value across processes, builds and
/// platforms, forever — a key minted today addresses an artifact read years
/// later. That rules out std::hash (explicitly unspecified across
/// implementations and commonly randomized per-process) and any hash of raw
/// struct bytes (padding, field order and endianness vary).
///
/// Hash64 therefore hashes an explicit byte stream: multi-byte integers are
/// decomposed to bytes little-endian-first by hand, floats are hashed as
/// their IEEE-754 bit patterns, and strings are length-prefixed so that
/// ("ab","c") and ("a","bc") cannot collide by concatenation. The function
/// is 64-bit FNV-1a — not cryptographic, but well-distributed and trivially
/// re-implementable from the spec in docs/architecture.md if the store is
/// ever read by another tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ft::util {

/// Streaming FNV-1a (64-bit). Append inputs with the typed methods (each
/// returns *this for chaining) and read the digest at any point; appending
/// more input afterwards is allowed and continues the stream.
class Hash64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  constexpr Hash64() = default;
  /// Seed a derived stream (domain separation): equivalent to hashing the
  /// tag before any other input.
  constexpr explicit Hash64(std::string_view domain_tag) { str(domain_tag); }

  constexpr Hash64& byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }
  Hash64& bytes(const void* data, std::size_t n) noexcept;

  // Multi-byte integers are fed to the stream LSB first regardless of the
  // host's byte order — the "endianness pin" that keeps digests portable.
  constexpr Hash64& u16(std::uint16_t v) noexcept { return le(v, 2); }
  constexpr Hash64& u32(std::uint32_t v) noexcept { return le(v, 4); }
  constexpr Hash64& u64(std::uint64_t v) noexcept { return le(v, 8); }
  constexpr Hash64& i64(std::int64_t v) noexcept {
    return u64(static_cast<std::uint64_t>(v));
  }
  constexpr Hash64& boolean(bool v) noexcept {
    return byte(v ? std::uint8_t{1} : std::uint8_t{0});
  }
  /// IEEE-754 bit pattern (so -0.0 != 0.0 and every NaN payload is itself).
  Hash64& f64(double v) noexcept;
  /// Length-prefixed, so adjacent strings cannot collide by concatenation.
  constexpr Hash64& str(std::string_view s) noexcept {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return state_;
  }

 private:
  constexpr Hash64& le(std::uint64_t v, unsigned n) noexcept {
    for (unsigned i = 0; i < n; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot FNV-1a over a byte buffer (e.g. a serialized payload checksum).
[[nodiscard]] std::uint64_t hash_bytes(const void* data, std::size_t n) noexcept;

}  // namespace ft::util
