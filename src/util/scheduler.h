/// @file
/// Work-stealing task scheduler: one deque per worker, owner-LIFO push/pop
/// at the back, randomized FIFO stealing from the front, idle backoff on a
/// shared condition variable. Replaces the single-queue `ThreadPool` as the
/// default campaign executor (`util::default_executor()`).
///
/// Why it wins over the single queue (bench_smoke section 10): campaign
/// work is bursty and imbalanced — many microsecond scalar trials mixed
/// with multi-millisecond rank worlds and compose summaries. The single
/// FIFO makes every `parallel_for` convoy behind whatever long drains other
/// requests queued ahead of it; here each waiter *helps* (it executes
/// outstanding drain tasks itself instead of sleeping), idle workers steal
/// the oldest — coarsest — work from a random victim, and chunk claiming is
/// fine-grained, so the tail of an imbalanced mix shrinks to the single
/// slowest trial.
///
/// Determinism: the scheduler only changes WHERE a chunk runs, never what
/// it computes — campaign plans are drawn up-front from the config seed and
/// counts aggregate through commutative atomics, so reports are
/// bit-identical to the serial baseline for every worker count and steal
/// interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace ft::util {

/// Work-stealing executor. Thread-safe: tasks and parallel_for calls may be
/// issued concurrently from any number of external threads and from worker
/// threads themselves (nested `parallel_for` is deadlock-free because
/// waiters drain outstanding chunk tasks instead of blocking).
class Scheduler final : public Executor {
 public:
  /// Creates `n` worker threads. n == 0 means hardware_concurrency().
  explicit Scheduler(std::size_t n = 0);
  ~Scheduler() override;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t size() const noexcept override {
    return threads_.size();
  }

  /// Enqueue a task. A worker submitting pushes to its own deque (LIFO hot
  /// end); external threads round-robin across deques.
  std::future<void> submit(std::function<void()> task) override;

  /// Run fn(i) for i in [0, count) and wait for all. Chunk claiming is
  /// fine-grained (one atomic fetch_add per chunk, chunk size ~1 unless the
  /// range is huge), and the caller both drains chunks and steals other
  /// parallel_for drain tasks while waiting. All chunks are joined before
  /// the first exception propagates.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) override;

  /// Tasks executed by a thread other than the deque they were pushed to.
  [[nodiscard]] std::uint64_t steals() const noexcept override {
    return steals_.load(std::memory_order_relaxed);
  }
  /// High-water mark of any single worker deque's depth.
  [[nodiscard]] std::uint64_t queue_depth_max() const noexcept override {
    return depth_max_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    // parallel_for drain helpers terminate quickly and never block on other
    // tasks, so a waiting thread may safely run them inline. Plain submit()
    // tasks (e.g. whole CampaignService requests, which can themselves wait
    // on in-flight artifact keys) are only ever run by the worker main loop.
    bool helper = false;
  };
  struct alignas(64) Deque {
    std::mutex mu;
    std::deque<Task> q;
  };

  void push(Task t);
  bool take(Task& out, bool helpers_only);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  // guarded by idle_mu_
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> rr_{0};  // round-robin cursor for external pushes
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> depth_max_{0};
};

/// Process-wide work-stealing scheduler (lazily constructed); what
/// `util::default_executor()` returns.
Scheduler& global_scheduler();

}  // namespace ft::util
