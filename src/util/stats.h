// Basic descriptive statistics plus the statistical fault-injection
// machinery from Leveugle et al. (DATE'09), which the paper uses to size
// its campaigns (§IV-C: 95% confidence / 3% margin; §VII: 99% / 1%).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ft::util {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stdev(std::span<const double> xs) noexcept;

[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// z-score for a two-sided confidence level (supported: 0.90, 0.95, 0.99).
[[nodiscard]] double z_for_confidence(double confidence) noexcept;

/// Number of fault-injection trials for a population of `population` sites,
/// confidence level `confidence` (e.g. 0.95), margin of error `margin`
/// (e.g. 0.03), worst-case p = 0.5:
///
///   n = N / (1 + e^2 * (N - 1) / (z^2 * p * (1 - p)))
///
/// Matches Leveugle et al. Returns at least 1, never more than population.
[[nodiscard]] std::uint64_t fault_injection_sample_size(
    std::uint64_t population, double confidence, double margin) noexcept;

}  // namespace ft::util
