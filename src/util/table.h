// ASCII table rendering. Every bench binary regenerating one of the paper's
// tables/figures prints through this so output is uniform and greppable.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ft::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Format a double with `prec` significant decimal digits.
  static std::string num(double v, int prec = 3);
  /// Format as a percentage ("12.3%").
  static std::string pct(double fraction, int prec = 1);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ft::util
