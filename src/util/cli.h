// Minimal command-line flag parsing for the bench harness and examples.
// Supports `--key=value` and boolean `--flag`; everything else is
// positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ft::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Non-flag positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ft::util
