// Bit-level utilities shared by the fault injector, the ACL tracker and the
// trace encoders. All values travel through FlipTracker as raw 64-bit
// patterns; these helpers convert between typed values and patterns and
// perform single-bit perturbations (the paper's fault model, §II-A).
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace ft::util {

/// Reinterpret a double as its IEEE-754 bit pattern.
[[nodiscard]] constexpr std::uint64_t f64_to_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

/// Reinterpret a 64-bit pattern as a double.
[[nodiscard]] constexpr double bits_to_f64(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

/// Reinterpret a float as its IEEE-754 bit pattern (zero-extended to 64).
[[nodiscard]] constexpr std::uint64_t f32_to_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

/// Reinterpret the low 32 bits of a pattern as a float.
[[nodiscard]] constexpr float bits_to_f32(std::uint64_t b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b));
}

/// Flip bit `bit` (0 = LSB) of a 64-bit pattern.
[[nodiscard]] constexpr std::uint64_t flip_bit(std::uint64_t v,
                                               unsigned bit) noexcept {
  return v ^ (std::uint64_t{1} << (bit & 63u));
}

/// True if exactly one bit differs between the two patterns.
[[nodiscard]] constexpr bool differs_by_one_bit(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return std::popcount(a ^ b) == 1;
}

/// Keep only the low `width` bits (width in [1,64]).
[[nodiscard]] constexpr std::uint64_t truncate_to(std::uint64_t v,
                                                  unsigned width) noexcept {
  return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
}

/// Sign-extend the low `width` bits of `v` to a full int64.
[[nodiscard]] constexpr std::int64_t sign_extend(std::uint64_t v,
                                                 unsigned width) noexcept {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t low = truncate_to(v, width);
  return static_cast<std::int64_t>((low ^ m) - m);
}

}  // namespace ft::util
