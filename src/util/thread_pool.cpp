#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ft::util {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t nchunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  const std::size_t chunk = (count + nchunks - 1) / nchunks;

  // The drain itself never throws: a chunk exception is recorded once and
  // cancels further claims, so every submitted task runs to completion and
  // the locals above outlive all references to them. Unwinding out of here
  // while workers still hold `fn`/`next_chunk` was a use-after-scope.
  auto drain = [&]() noexcept {
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t c = next_chunk.fetch_add(1);
      const std::size_t begin = c * chunk;
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t t = 0; t + 1 < size(); ++t) {
    futures.push_back(submit(drain));
  }
  drain();  // the calling thread participates
  for (auto& f : futures) f.get();  // join ALL chunks before propagating
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ft::util
