#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ft::util {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t nchunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next_chunk{0};
  const std::size_t chunk = (count + nchunks - 1) / nchunks;

  auto drain = [&] {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1);
      const std::size_t begin = c * chunk;
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t t = 0; t + 1 < size(); ++t) {
    futures.push_back(submit(drain));
  }
  drain();  // the calling thread participates
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ft::util
