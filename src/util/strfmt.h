// String formatting helpers (libstdc++ 12 has no <format>):
//   * strfmt  — printf-style;
//   * format  — a tiny std::format-alike supporting "{}" placeholders
//               (format specs inside the braces are accepted and ignored;
//               doubles print as %g, which matches the "{:g}"/"{:.6g}" uses
//               in this codebase).
#pragma once

#include <array>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace ft::util {

namespace detail {
inline std::string display(const std::string& s) { return s; }
inline std::string display(std::string_view s) { return std::string(s); }
inline std::string display(const char* s) { return s; }
inline std::string display(char c) { return std::string(1, c); }
inline std::string display(double v) {
  char b[64];
  std::snprintf(b, sizeof b, "%g", v);
  return b;
}
inline std::string display(float v) { return display(static_cast<double>(v)); }
template <typename T>
  requires std::is_integral_v<T>
std::string display(T v) {
  return std::to_string(v);
}
}  // namespace detail

template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
  const std::array<std::string, sizeof...(Args)> vals = {
      detail::display(args)...};
  std::string out;
  out.reserve(fmt.size() + 16 * sizeof...(Args));
  std::size_t ai = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      const auto close = fmt.find('}', i);
      if (close == std::string_view::npos) break;
      if (ai < vals.size()) out += vals[ai++];
      i = close;
    } else if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out += '}';
      ++i;
    } else {
      out += c;
    }
  }
  return out;
}

[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace ft::util
