#include "util/scheduler.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace ft::util {

namespace {

// Worker identity: which scheduler this thread belongs to (if any) and its
// deque index. External threads never set it, so `t_sched == this` cleanly
// distinguishes owner-LIFO operations from external round-robin ones.
thread_local Scheduler* t_sched = nullptr;
thread_local std::size_t t_index = 0;

// Cheap per-thread xorshift for randomized victim selection. Steal order
// never affects results (chunks are self-contained and counts commutative),
// it only spreads contention.
std::size_t cheap_rand() {
  thread_local std::uint64_t state =
      0x9E3779B97F4A7C15ull ^
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return static_cast<std::size_t>(state);
}

}  // namespace

Scheduler::Scheduler(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void Scheduler::push(Task t) {
  const std::size_t n = deques_.size();
  const std::size_t at =
      (t_sched == this)
          ? t_index
          : rr_.fetch_add(1, std::memory_order_relaxed) % n;
  std::size_t depth = 0;
  {
    std::lock_guard lock(deques_[at]->mu);
    deques_[at]->q.push_back(std::move(t));
    depth = deques_[at]->q.size();
  }
  std::uint64_t prev = depth_max_.load(std::memory_order_relaxed);
  while (depth > prev && !depth_max_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Serialize with the idle predicate check so a worker between "saw
    // pending == 0" and "went to sleep" cannot miss this notify.
    std::lock_guard lock(idle_mu_);
  }
  idle_cv_.notify_one();
}

bool Scheduler::take(Task& out, bool helpers_only) {
  const std::size_t n = deques_.size();
  const bool owner = (t_sched == this);

  // Owner first: newest task at the back of our own deque (LIFO keeps the
  // working set hot and nested parallel_for chunks near their parent).
  if (owner) {
    Deque& d = *deques_[t_index];
    std::lock_guard lock(d.mu);
    if (!helpers_only) {
      if (!d.q.empty()) {
        out = std::move(d.q.back());
        d.q.pop_back();
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    } else {
      for (auto it = d.q.rbegin(); it != d.q.rend(); ++it) {
        if (it->helper) {
          out = std::move(*it);
          d.q.erase(std::next(it).base());
          pending_.fetch_sub(1, std::memory_order_acq_rel);
          return true;
        }
      }
    }
  }

  // Steal: oldest task (FIFO front — the coarsest outstanding work) from a
  // randomly chosen victim, scanning all deques once.
  const std::size_t start = cheap_rand() % n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (owner && v == t_index) continue;
    Deque& d = *deques_[v];
    std::lock_guard lock(d.mu);
    if (d.q.empty()) continue;
    if (!helpers_only) {
      out = std::move(d.q.front());
      d.q.pop_front();
    } else {
      auto it = d.q.begin();
      while (it != d.q.end() && !it->helper) ++it;
      if (it == d.q.end()) continue;
      out = std::move(*it);
      d.q.erase(it);
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Scheduler::worker_loop(std::size_t index) {
  t_sched = this;
  t_index = index;
  for (;;) {
    Task t;
    if (take(t, /*helpers_only=*/false)) {
      t.fn();
      continue;
    }
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

std::future<void> Scheduler::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto fut = packaged->get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  push(Task{[packaged] { (*packaged)(); }, /*helper=*/false});
  return fut;
}

void Scheduler::parallel_for(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t nworkers = size();
  if (count == 1 || nworkers <= 1) {
    // Serial fast path: no helpers, exceptions propagate directly with no
    // outstanding references to join.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared chunk-claim state, heap-owned by every helper closure: even if a
  // helper runs after this frame would have unwound, everything it touches
  // is alive — and the join below means the frame never unwinds early
  // anyway (the use-after-scope the legacy pool had).
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> outstanding{0};
    std::atomic<bool> cancelled{false};
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr first_error;

    void drain() noexcept {
      for (;;) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk, count);
        try {
          for (std::size_t i = begin; i < end; ++i) (*fn)(i);
        } catch (...) {
          std::lock_guard lock(mu);
          if (!first_error) first_error = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  auto st = std::make_shared<State>();
  st->count = count;
  // Fine-grained claiming: chunk 1 until the range is huge relative to the
  // worker count. One relaxed fetch_add per trial is noise next to a VM
  // execution, and the imbalance tail shrinks to a single slowest element.
  st->chunk = std::max<std::size_t>(1, count / (nworkers * 64));
  st->fn = &fn;

  const std::size_t nchunks = (count + st->chunk - 1) / st->chunk;
  const std::size_t nhelpers = std::min(nchunks - 1, nworkers);
  st->outstanding.store(nhelpers, std::memory_order_relaxed);
  tasks_submitted_.fetch_add(nhelpers, std::memory_order_relaxed);
  for (std::size_t h = 0; h < nhelpers; ++h) {
    push(Task{[st] {
                st->drain();
                if (st->outstanding.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                  std::lock_guard lock(st->mu);
                  st->cv.notify_all();
                }
              },
              /*helper=*/true});
  }

  st->drain();  // the calling thread participates

  // Help-first join: while our helpers are outstanding, run other queued
  // drain tasks (our own or other concurrent parallel_fors') instead of
  // blocking. This makes nested parallel_for deadlock-free — a waiter is
  // always also a worker — and removes the single-queue convoy where a
  // parallel_for could not finish until unrelated queued work drained.
  while (st->outstanding.load(std::memory_order_acquire) != 0) {
    Task t;
    if (take(t, /*helpers_only=*/true)) {
      t.fn();
      continue;
    }
    std::unique_lock lock(st->mu);
    st->cv.wait(lock, [&] {
      return st->outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  if (st->first_error) std::rethrow_exception(st->first_error);
}

Scheduler& global_scheduler() {
  static Scheduler sched;
  return sched;
}

Executor& default_executor() { return global_scheduler(); }

}  // namespace ft::util
