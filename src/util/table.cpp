#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace ft::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ft::util
