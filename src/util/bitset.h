// Word-addressable dynamic bitset.
//
// std::vector<bool> hides its words behind proxy references, which makes
// every append a read-modify-write through a byte-indexed proxy and keeps
// the optimizer from vectorizing scans. The differential engine appends one
// "does this record differ?" bit per retired instruction, so the container
// sits on the lockstep hot path; this bitset keeps the same 1-bit density
// with plain word stores.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ft::util {

class Bitset {
 public:
  void push_back(bool v) {
    const std::size_t word = size_ >> 6;
    if (word == words_.size()) words_.push_back(0);
    words_[word] |= std::uint64_t{v} << (size_ & 63);
    size_++;
  }

  [[nodiscard]] bool operator[](std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void reserve(std::size_t bits) { words_.reserve((bits + 63) / 64); }
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  bool operator==(const Bitset&) const = default;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace ft::util
