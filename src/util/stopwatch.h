// Wall-clock timing for the tracing-overhead experiment (Fig. 4) and the
// Use Case 1 runtime columns (Table III).
#pragma once

#include <chrono>

namespace ft::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ft::util
