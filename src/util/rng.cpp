#include "util/rng.h"

#include <cmath>

namespace ft::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Never allow the all-zero state; splitmix64 guarantees that for any seed.
  for (auto& s : s_) s = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's rejection-free-ish multiply-shift with rejection for exactness.
  for (;;) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::split() noexcept {
  std::uint64_t seed = (*this)();
  return Rng{splitmix64(seed)};
}

Randlc::Randlc(double seed, double a) noexcept : x_(seed) {
  // Split the multiplier a = a1 * 2^23 + a2, following the NAS reference.
  constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
  const double t1 = r23 * a;
  a1_ = static_cast<double>(static_cast<long long>(t1));
  a2_ = a - t23 * a1_;
}

double Randlc::next() noexcept {
  constexpr double r23 = 0x1.0p-23, t23 = 0x1.0p23;
  constexpr double r46 = 0x1.0p-46, t46 = 0x1.0p46;

  // Break x into two 23-bit halves and combine partial products mod 2^46.
  const double t1 = r23 * x_;
  const double x1 = static_cast<double>(static_cast<long long>(t1));
  const double x2 = x_ - t23 * x1;

  double t = a1_ * x2 + a2_ * x1;
  const double t2 = static_cast<double>(static_cast<long long>(r23 * t));
  const double z = t - t23 * t2;
  t = t23 * z + a2_ * x2;
  const double t3 = static_cast<double>(static_cast<long long>(r46 * t));
  x_ = t - t46 * t3;
  return r46 * x_;
}

}  // namespace ft::util
