#include "compose/compose.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "store/artifact_store.h"
#include "store/serial.h"
#include "util/hash.h"
#include "vm/decode.h"

namespace ft::compose {
namespace {

constexpr std::uint64_t kBlockMask = ~std::uint64_t{7};

[[nodiscard]] bool is_mpi(ir::Opcode op) noexcept {
  switch (op) {
    case ir::Opcode::MpiRank:
    case ir::Opcode::MpiSize:
    case ir::Opcode::MpiSend:
    case ir::Opcode::MpiRecv:
    case ir::Opcode::MpiAllreduce:
    case ir::Opcode::MpiBarrier:
      return true;
    default:
      return false;
  }
}

/// Stable content hash of one boundary machine state — the "boundary
/// live-set" component of a summary key. Everything execution depends on
/// is hashed field by field (never raw struct bytes), so the digest is
/// identical across processes and the key soundly invalidates when ANY
/// upstream edit perturbs the state that flows into the section.
[[nodiscard]] std::uint64_t hash_snapshot(const vm::Vm::Snapshot& s) {
  util::Hash64 h("ft.summary.entry.v1");
  h.u64(s.mem.size());
  h.bytes(s.mem.data(), s.mem.size());
  h.u64(s.frames.size());
  for (const auto& f : s.frames) {
    h.u32(f.func)
        .u64(f.activation)
        .u32(f.pc)
        .u32(f.reg_base)
        .u32(f.arg_base)
        .u32(f.arg_loc_base)
        .u32(f.nargs)
        .u64(f.saved_sp)
        .u32(f.ret_reg);
  }
  h.u64(s.slots.size());
  for (const auto v : s.slots) h.u64(v);
  h.u64(s.arg_locs.size());
  for (const auto l : s.arg_locs) h.u64(static_cast<std::uint64_t>(l));
  h.u64(s.outputs.size());
  for (const auto& o : s.outputs) {
    h.u64(o.bits).u32(static_cast<std::uint32_t>(o.type));
  }
  h.u64(s.region_counts.size());
  for (const auto c : s.region_counts) h.u32(c);
  h.u64(s.sp).u64(s.next_activation).u64(s.retired);
  h.f64(s.randlc.state());
  h.u32(static_cast<std::uint32_t>(s.trap));
  h.u32(static_cast<std::uint32_t>(s.status));
  return h.digest();
}

/// Hash of one section's assigned plan population (ascending plan order).
[[nodiscard]] std::uint64_t hash_plans(
    const std::vector<vm::FaultPlan>& plans,
    const std::vector<std::uint32_t>& indices) {
  util::Hash64 h("ft.summary.plans.v1");
  h.u64(indices.size());
  for (const auto i : indices) {
    const auto& p = plans[i];
    h.u32(static_cast<std::uint32_t>(p.kind))
        .u64(p.dyn_index)
        .u32(p.region_id)
        .u32(p.region_instance)
        .u64(p.address)
        .u32(p.width_bytes)
        .u32(p.bit);
  }
  return h.digest();
}

/// mem delta (sorted by address) intersects a sorted block set?
[[nodiscard]] bool intersects(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& mem,
    const std::vector<std::uint64_t>& blocks) {
  auto it = blocks.begin();
  for (const auto& [addr, bits] : mem) {
    (void)bits;
    it = std::lower_bound(it, blocks.end(), addr);
    if (it == blocks.end()) return false;
    if (*it == addr) return true;
  }
  return false;
}

/// Drop delta words the section fully overwrites.
void subtract_kills(std::vector<std::pair<std::uint64_t, std::uint64_t>>& mem,
                    const std::vector<std::uint64_t>& kills) {
  if (mem.empty() || kills.empty()) return;
  std::size_t w = 0;
  auto it = kills.begin();
  for (const auto& e : mem) {
    it = std::lower_bound(it, kills.end(), e.first);
    if (it == kills.end() || *it != e.first) mem[w++] = e;
  }
  mem.resize(w);
}

struct Tally {
  std::atomic<std::size_t> success{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> crashed{0};
  std::atomic<std::size_t> recovered{0};
  std::atomic<std::size_t> unrecoverable{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> early_exits{0};
  std::atomic<std::uint64_t> composed{0};
  std::atomic<std::uint64_t> avoided{0};

  void count(fault::Outcome o) {
    switch (o) {
      case fault::Outcome::VerificationSuccess: success++; break;
      case fault::Outcome::VerificationFailed: failed++; break;
      case fault::Outcome::Crashed: crashed++; break;
      case fault::Outcome::DetectedRecovered: recovered++; break;
      case fault::Outcome::DetectedUnrecoverable: unrecoverable++; break;
    }
  }
};

/// Execute one trial suffix from a boundary snapshot: either a Diverged
/// site (fault plan armed, forked at its own section entry) or a Delta
/// fallback (no plan; the delta is materialized into a patched snapshot).
/// Mirrors fault::TrialRunner::run tail semantics exactly — convergence
/// probes against later boundary snapshots, then run-out, then the
/// checkpoint/rollback recovery decision — so the outcome is bit-identical
/// to the exhaustive trial it replaces.
[[nodiscard]] fault::Outcome run_suffix(
    const vm::DecodedProgram& program, const fault::PreparedCampaign& prepared,
    const SectionPlan& plan, std::uint32_t start,
    const vm::FaultPlan* armed,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>* mem_patch,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>* out_patch,
    std::uint64_t landing, const std::vector<vm::OutputValue>& golden,
    const fault::Verifier& verify, Tally& tally) {
  vm::VmOptions topts = prepared.run_opts;
  topts.fault = armed ? *armed : vm::FaultPlan::none();

  std::optional<vm::Vm> vm;
  if (armed) {
    vm.emplace(program, plan.snapshots[start], topts);
  } else {
    // Materialize the delta into a copy of the boundary state. Sound
    // because every surviving delta word was neither read nor written
    // between its section and `start`, and outputs are append-only.
    vm::Vm::Snapshot patched = plan.snapshots[start];
    for (const auto& [addr, bits] : *mem_patch) {
      std::memcpy(patched.mem.data() + addr, &bits, sizeof(bits));
    }
    for (const auto& [idx, bits] : *out_patch) patched.outputs[idx].bits = bits;
    vm.emplace(program, patched, topts);
  }
  const std::uint64_t begin = plan.sections[start].begin;

  // Convergence probes at later boundaries (geometric backoff, same policy
  // as the forked scheduler). A patched machine carries no armed plan, so
  // state equality alone is conclusive; an armed plan must have fired first.
  if (prepared.fork.probe_convergence) {
    const std::size_t nsec = plan.sections.size();
    std::size_t failed = 0;
    std::size_t stride = 1;
    std::size_t p = start + 1;
    while (p < nsec && failed < prepared.fork.max_probes) {
      vm->run_until(plan.sections[p].begin);
      if (vm->status() != vm::Vm::Status::Running) break;
      if (armed && !vm->fault_fired()) {
        ++p;
        continue;
      }
      if (vm->state_equals(plan.snapshots[p])) {
        tally.instructions += vm->instructions_retired() - begin;
        tally.early_exits++;
        return fault::Outcome::VerificationSuccess;
      }
      ++failed;
      p += stride;
      stride *= 2;
    }
  }

  vm->run_until(~std::uint64_t{0});
  auto run = vm->take_result();
  tally.instructions += run.instructions - begin;
  if (run.trap == vm::TrapKind::DetectedFault && prepared.recovery.enabled) {
    // Same decision as TrialRunner::recover: recoverable iff no checkpoint
    // between the fault's landing and its detection captured corrupted
    // state. The rollback re-execution replays the fault-free run, which
    // verifies by construction.
    return fault::rollback_reaches_clean_state(prepared.recovery, landing,
                                               run.instructions)
               ? fault::Outcome::DetectedRecovered
               : fault::Outcome::DetectedUnrecoverable;
  }
  return fault::classify_outcome(run, golden, verify);
}

}  // namespace

std::string encode_summary(const SectionSummary& s) {
  store::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(s.sites.size()));
  for (const auto& site : s.sites) {
    w.u8(static_cast<std::uint8_t>(site.kind));
    w.u32(static_cast<std::uint32_t>(site.mem.size()));
    for (const auto& [addr, bits] : site.mem) {
      w.u64(addr);
      w.u64(bits);
    }
    w.u32(static_cast<std::uint32_t>(site.out.size()));
    for (const auto& [idx, bits] : site.out) {
      w.u32(idx);
      w.u64(bits);
    }
  }
  return w.bytes();
}

bool decode_summary(std::string_view payload, std::size_t expected_sites,
                    SectionSummary& out) {
  store::ByteReader r(payload.data(), payload.size());
  const std::uint32_t nsites = r.u32();
  if (!r.ok() || nsites != expected_sites) return false;
  out.sites.assign(nsites, SiteSummary{});
  for (auto& site : out.sites) {
    const std::uint8_t kind = r.u8();
    if (!r.ok() ||
        kind > static_cast<std::uint8_t>(SiteSummary::Kind::Converged)) {
      return false;
    }
    site.kind = static_cast<SiteSummary::Kind>(kind);
    const std::uint32_t nmem = r.u32();
    if (!r.ok() || nmem > payload.size()) return false;
    site.mem.resize(nmem);
    for (auto& [addr, bits] : site.mem) {
      addr = r.u64();
      bits = r.u64();
    }
    const std::uint32_t nout = r.u32();
    if (!r.ok() || nout > payload.size()) return false;
    site.out.resize(nout);
    for (auto& [idx, bits] : site.out) {
      idx = r.u32();
      bits = r.u64();
    }
  }
  return r.done();
}

SectionPlan plan_sections(const vm::DecodedProgram& program,
                          const trace::ColumnTrace& trace,
                          std::span<const trace::RegionInstance> instances,
                          const fault::PreparedCampaign& prepared,
                          std::size_t max_sections) {
  SectionPlan plan;
  const std::uint64_t total = prepared.fault_free_instructions;
  plan.total_instructions = total;
  if (total == 0 || prepared.plans.empty() ||
      prepared.fork_bounds.size() != prepared.plans.size() ||
      trace.size() != total) {
    return plan;
  }

  // Boundary snapshots deep-copy the memory image: honor the fork policy's
  // snapshot byte budget like prepare_snapshots does.
  std::size_t cap = std::max<std::size_t>(max_sections, 1);
  const std::uint64_t mem_size = program.module().memory_size();
  if (prepared.fork.max_snapshot_bytes > 0 && mem_size > 0) {
    cap = std::min<std::size_t>(
        cap, std::max<std::uint64_t>(
                 1, prepared.fork.max_snapshot_bytes / mem_size));
  }
  std::vector<std::uint64_t> begins =
      trace::section_boundaries(instances, total, cap - 1);
  begins.insert(begins.begin(), 0);

  // One serial golden pass places every boundary snapshot. A boundary the
  // golden run cannot pause at (stale instances) truncates the cut list —
  // the tail then becomes one long final section.
  vm::VmOptions gopts = prepared.run_opts;
  gopts.fault = vm::FaultPlan::none();
  vm::Vm g(program, gopts);
  for (std::size_t i = 0; i < begins.size(); ++i) {
    const std::uint64_t b = begins[i];
    if (b > 0) {
      g.run_until(b);
      if (g.status() != vm::Vm::Status::Running ||
          g.instructions_retired() != b) {
        begins.resize(i);
        break;
      }
    }
    plan.snapshots.emplace_back();
    g.save(plan.snapshots.back());
  }
  if (begins.empty()) {
    plan.snapshots.clear();
    return plan;
  }

  // Per-section golden-trace facts in one columnar pass: executed function
  // set, upward-exposed read blocks, fully-killed blocks, opacity.
  const auto cols = trace.raw();
  const auto* code = program.code();
  const std::size_t nfuncs = program.num_functions();
  plan.sections.resize(begins.size());
  std::vector<std::uint8_t> seen(nfuncs, 0);
  std::vector<std::uint8_t> seen_pc(program.code_size(), 0);
  vm::DynInstr rec;
  for (std::size_t s = 0; s < begins.size(); ++s) {
    SectionInfo& sec = plan.sections[s];
    sec.begin = begins[s];
    sec.end = s + 1 < begins.size() ? begins[s + 1] : total;
    std::vector<std::uint64_t> killed;  // sorted insert-on-demand
    for (std::uint64_t row = sec.begin; row < sec.end; ++row) {
      const std::uint32_t pc = cols.pc[row];
      const auto& ins = code[pc];
      if (!seen_pc[pc]) {
        seen_pc[pc] = 1;
        sec.pcs.push_back(pc);
      }
      if (!seen[ins.func]) {
        seen[ins.func] = 1;
        sec.funcs.push_back(ins.func);
      }
      if (is_mpi(ins.op)) sec.opaque = true;
      if (ins.op != ir::Opcode::Load && ins.op != ir::Opcode::Store) continue;
      trace.materialize(row, rec);
      const std::uint64_t first = rec.mem_addr & kBlockMask;
      const std::uint64_t last =
          (rec.mem_addr + std::max<std::uint32_t>(rec.mem_size, 1) - 1) &
          kBlockMask;
      const bool full_store = rec.op == ir::Opcode::Store &&
                              (rec.mem_addr & 7) == 0 && rec.mem_size == 8;
      for (std::uint64_t b = first; b <= last; b += 8) {
        auto kit = std::lower_bound(killed.begin(), killed.end(), b);
        const bool is_killed = kit != killed.end() && *kit == b;
        if (full_store) {
          if (!is_killed) killed.insert(kit, b);
          sec.kills.push_back(b);
        } else if (!is_killed) {
          // Loads and partial stores both consume the block's prior
          // content for delta purposes (a partial store merges old bytes
          // with new).
          sec.reads.push_back(b);
        }
      }
    }
    for (const auto f : sec.funcs) seen[f] = 0;
    for (const auto pc : sec.pcs) seen_pc[pc] = 0;
    std::sort(sec.pcs.begin(), sec.pcs.end());
    std::sort(sec.funcs.begin(), sec.funcs.end());
    std::sort(sec.reads.begin(), sec.reads.end());
    sec.reads.erase(std::unique(sec.reads.begin(), sec.reads.end()),
                    sec.reads.end());
    std::sort(sec.kills.begin(), sec.kills.end());
    sec.kills.erase(std::unique(sec.kills.begin(), sec.kills.end()),
                    sec.kills.end());
  }

  // Assign every plan to the section containing its fork bound.
  plan.plan_section.resize(prepared.plans.size());
  plan.section_plans.resize(plan.sections.size());
  for (std::size_t i = 0; i < prepared.plans.size(); ++i) {
    const std::uint64_t bound = prepared.fork_bounds[i];
    auto it = std::upper_bound(begins.begin(), begins.end(), bound);
    const auto s = static_cast<std::uint32_t>(
        it == begins.begin() ? 0 : (it - begins.begin()) - 1);
    plan.plan_section[i] = s;
    plan.section_plans[s].push_back(static_cast<std::uint32_t>(i));
  }

  // Entry-snapshot hashes (the boundary live-set component of a summary
  // key) are a property of the golden decomposition, not of any one
  // campaign run: digest each image once at planning time, and only where
  // a key will need it — plan-bearing sections with a downstream boundary.
  for (std::size_t s = 0; s + 1 < plan.sections.size(); ++s) {
    if (!plan.section_plans[s].empty()) {
      plan.sections[s].entry_hash = hash_snapshot(plan.snapshots[s]);
    }
  }
  return plan;
}

ComposedResult run_composed_campaign(const vm::DecodedProgram& program,
                                     const fault::PreparedCampaign& prepared,
                                     const SectionPlan& plan,
                                     const std::vector<vm::OutputValue>& golden,
                                     const fault::Verifier& verify,
                                     util::Executor& pool,
                                     const ComposeOptions& opts) {
  ComposedResult r;
  r.sections_total = plan.sections.size();
  r.counts.trials = prepared.plans.size();
  r.counts.population_bits = prepared.population_bits;
  if (prepared.plans.empty()) return r;
  if (plan.empty() || plan.plan_section.size() != prepared.plans.size()) {
    // No usable section decomposition (stale trace or mismatched campaign):
    // degrade to the exhaustive engine, same counts by definition.
    r.counts = fault::run_prepared_campaign(program, prepared, golden, verify,
                                            pool);
    return r;
  }

  const std::size_t nsec = plan.sections.size();
  const auto& plans = prepared.plans;
  store::ArtifactStore* st = opts.store.get();

  // Reconvergence probing runs the summarizer up to max_probes sections
  // past the boundary, so a summary is a fact about its whole probe window
  // — the key hashes every section the probe could have executed. Each
  // section hashes its executed-instruction footprint (SectionInfo::pcs
  // resolved to static coordinates), so an edit invalidates exactly the
  // windows that execute the edited instruction.
  const std::size_t probe_window =
      prepared.fork.probe_convergence ? prepared.fork.max_probes : 0;
  std::vector<std::uint64_t> window_hash(nsec, 0);
  if (st) {
    const auto* code = program.code();
    std::vector<std::uint64_t> sec_hash(nsec);
    std::vector<store::InstrCoord> coords;
    for (std::size_t i = 0; i < nsec; ++i) {
      coords.clear();
      coords.reserve(plan.sections[i].pcs.size());
      for (const auto pc : plan.sections[i].pcs) {
        const auto& ins = code[pc];
        coords.push_back({ins.func, ins.block, ins.instr});
      }
      sec_hash[i] = store::hash_section(program.module(), coords);
    }
    for (std::size_t i = 0; i + 1 < nsec; ++i) {
      const std::size_t jmax = std::min(i + 1 + probe_window, nsec - 1);
      util::Hash64 h("ft.section.window.v1");
      h.u64(jmax - i);
      for (std::size_t t = i; t < jmax; ++t) h.u64(sec_hash[t]);
      window_hash[i] = h.digest();
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // --- phase 1: per-section summaries (store-served or measured) ------------
  std::vector<SectionSummary> summaries(nsec);
  std::vector<std::uint8_t> from_store(nsec, 0);
  std::vector<std::uint64_t> keys(nsec, 0);
  std::atomic<std::size_t> computed{0};
  std::atomic<std::size_t> hits{0};
  std::atomic<std::uint64_t> reexecuted{0};
  Tally tally;

  pool.parallel_for(nsec, [&](std::size_t i) {
    const auto& idxs = plan.section_plans[i];
    auto& sum = summaries[i];
    sum.sites.assign(idxs.size(), SiteSummary{});
    if (idxs.empty()) return;
    const SectionInfo& sec = plan.sections[i];
    if (i + 1 == nsec) {
      // The final section has no downstream boundary to summarize against:
      // its sites always resolve by execution (kind Diverged carries no
      // information, so nothing is published for it).
      reexecuted++;
      return;
    }
    if (st) {
      keys[i] = store::summary_key(
          window_hash[i], sec.entry_hash, sec.begin, sec.end,
          hash_plans(plans, idxs), opts.options_hash, opts.config);
      if (auto blob = st->load_summary(keys[i]);
          blob && decode_summary(*blob, idxs.size(), sum)) {
        from_store[i] = 1;
        hits++;
        return;
      }
    }
    const vm::Vm::Snapshot& exit_snap = plan.snapshots[i + 1];
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      SiteSummary& site = sum.sites[k];
      vm::VmOptions topts = prepared.run_opts;
      topts.fault = plans[idxs[k]];
      vm::Vm vm(program, plan.snapshots[i], topts);
      vm.run_until(sec.end);
      // A trap, an early finish or a still-pending flip can never be
      // expressed as a boundary fact: Diverged, no probing (the suffix
      // re-execution resolves it exactly).
      const bool at_boundary = vm.status() == vm::Vm::Status::Running &&
                               vm.instructions_retired() == sec.end &&
                               vm.fault_fired();
      bool probe = false;
      if (at_boundary && vm.control_equals(exit_snap)) {
        // Control-equal: only memory words and emitted outputs can differ.
        const auto& fo = vm.outputs();
        const auto& go = exit_snap.outputs;
        bool diverged = fo.size() != go.size();
        for (std::size_t j = 0; !diverged && j < fo.size(); ++j) {
          if (fo[j].type != go[j].type) {
            diverged = true;
          } else if (fo[j].bits != go[j].bits) {
            site.out.emplace_back(static_cast<std::uint32_t>(j), fo[j].bits);
          }
        }
        const auto fm = vm.memory();
        const auto& gm = exit_snap.mem;
        diverged = diverged || fm.size() != gm.size() || fm.size() % 8 != 0;
        constexpr std::size_t kChunk = 4096;
        for (std::size_t off = 0; !diverged && off < gm.size();
             off += kChunk) {
          const std::size_t len = std::min(kChunk, gm.size() - off);
          if (std::memcmp(fm.data() + off, gm.data() + off, len) == 0) {
            continue;
          }
          for (std::size_t w = off; w < off + len; w += 8) {
            std::uint64_t fb = 0;
            std::uint64_t gb = 0;
            std::memcpy(&fb, fm.data() + w, 8);
            std::memcpy(&gb, gm.data() + w, 8);
            if (fb == gb) continue;
            site.mem.emplace_back(w, fb);
            if (site.mem.size() > opts.max_delta_words) {
              diverged = true;
              break;
            }
          }
        }
        if (diverged) {
          site.mem.clear();
          site.out.clear();
          probe = true;  // oversized delta — reconvergence may still apply
        } else {
          site.kind = site.mem.empty() && site.out.empty()
                          ? SiteSummary::Kind::Masked
                          : SiteSummary::Kind::Delta;
        }
      } else if (at_boundary) {
        probe = true;
      }
      if (probe) {
        // Reconvergence probes at the following boundaries (bounded by the
        // probe window the key hashes): a bit-for-bit match means the
        // remainder replays the golden run.
        const std::size_t jmax = std::min(i + 1 + probe_window, nsec - 1);
        for (std::size_t j = i + 2; j <= jmax; ++j) {
          vm.run_until(plan.sections[j].begin);
          if (vm.status() != vm::Vm::Status::Running) break;
          if (vm.state_equals(plan.snapshots[j])) {
            site.kind = SiteSummary::Kind::Converged;
            break;
          }
        }
      }
      tally.instructions += vm.instructions_retired() - sec.begin;
    }
    computed++;
    reexecuted++;
    if (st && keys[i] != 0) st->publish_summary(keys[i], encode_summary(sum));
  });

  const auto t1 = std::chrono::steady_clock::now();

  // --- phase 2: close every trial symbolically or by suffix execution -------
  // Plan slot within its section's summary (sites follow section_plans
  // order, which is ascending plan order).
  std::vector<std::uint32_t> slot(plans.size(), 0);
  for (const auto& idxs : plan.section_plans) {
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      slot[idxs[k]] = static_cast<std::uint32_t>(k);
    }
  }

  pool.parallel_for(plans.size(), [&](std::size_t pi) {
    const std::uint32_t s = plan.plan_section[pi];
    const SiteSummary& site = summaries[s].sites[slot[pi]];
    const bool hit = from_store[s] != 0;
    const std::uint64_t landing = prepared.fork_bounds[pi];
    switch (site.kind) {
      case SiteSummary::Kind::Masked:
      case SiteSummary::Kind::Converged:
        // Bit-identical to golden at a boundary with the fault fired: the
        // remainder replays the golden run.
        tally.composed += nsec - s - 1;
        if (hit) tally.avoided++;
        tally.count(fault::Outcome::VerificationSuccess);
        return;
      case SiteSummary::Kind::Diverged:
        tally.count(run_suffix(program, prepared, plan, s, &plans[pi],
                               nullptr, nullptr, landing, golden, verify,
                               tally));
        return;
      case SiteSummary::Kind::Delta:
        break;
    }
    // Symbolic delta transport: walk downstream sections until the delta is
    // consumed (fallback), fully killed (golden replay), or survives to the
    // end (classify patched outputs).
    auto mem = site.mem;
    std::uint32_t t = s + 1;
    bool fell_back = false;
    for (; t < nsec; ++t) {
      const SectionInfo& sec = plan.sections[t];
      if (sec.opaque || intersects(mem, sec.reads)) {
        fell_back = true;
        break;
      }
      subtract_kills(mem, sec.kills);
      tally.composed++;
      if (mem.empty() && site.out.empty()) break;
    }
    if (fell_back) {
      tally.count(run_suffix(program, prepared, plan, t, nullptr, &mem,
                             &site.out, landing, golden, verify, tally));
      return;
    }
    if (mem.empty() && site.out.empty()) {
      // The delta was fully overwritten: the machine re-converged with the
      // golden run, so the remainder replays it.
      if (hit) tally.avoided++;
      tally.count(fault::Outcome::VerificationSuccess);
      return;
    }
    // The delta survives to program end untouched: the faulty run retires
    // the identical instruction stream and completes with golden outputs
    // patched at the recorded slots.
    vm::RunResult rr;
    rr.trap = vm::TrapKind::None;
    rr.instructions = plan.total_instructions;
    rr.fault_fired = true;
    rr.outputs = golden;
    bool in_range = true;
    for (const auto& [idx, bits] : site.out) {
      if (idx >= rr.outputs.size()) {
        in_range = false;
        break;
      }
      rr.outputs[idx].bits = bits;
    }
    if (!in_range) {
      // Defensive: a summary that indexes outside the golden outputs is
      // stale — resolve by execution instead of trusting it.
      tally.count(run_suffix(program, prepared, plan, s, &plans[pi], nullptr,
                             nullptr, landing, golden, verify, tally));
      return;
    }
    if (hit) tally.avoided++;
    tally.count(fault::classify_outcome(rr, golden, verify));
  });

  r.counts.success = tally.success.load();
  r.counts.failed = tally.failed.load();
  r.counts.crashed = tally.crashed.load();
  r.counts.detected_recovered = tally.recovered.load();
  r.counts.detected_unrecoverable = tally.unrecoverable.load();
  r.counts.instructions_retired = tally.instructions.load();
  r.counts.early_exits = tally.early_exits.load();
  r.counts.snapshots_taken = nsec;
  r.counts.resume_depth = plan.sections.back().begin;
  const auto t2 = std::chrono::steady_clock::now();
  r.summarize_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.close_seconds = std::chrono::duration<double>(t2 - t1).count();
  r.summaries_computed = computed.load();
  r.summary_store_hits = hits.load();
  r.sections_composed = tally.composed.load();
  r.sections_reexecuted = reexecuted.load();
  r.trials_avoided = tally.avoided.load();
  return r;
}

}  // namespace ft::compose
