/// @file
/// Compositional fault-injection campaigns (FastFlip, PAPERS.md).
///
/// A whole-program campaign answers "what does this bit flip do?" by
/// executing every trial to completion. Compositionally, the same question
/// decomposes along the golden trace: cut the trace into SECTIONS at region
/// boundaries, measure each injected site only to its section's exit (the
/// boundary out-state delta), and then PROPAGATE that delta through the
/// downstream sections symbolically — a section that neither reads nor is
/// control-perturbed by the delta transports it unchanged (minus the blocks
/// it fully overwrites), so the trial's outcome follows from the golden run
/// plus a handful of set operations, with zero further execution. Only
/// deltas a downstream section actually consumes fall back to forked
/// execution of the affected suffix.
///
/// Why this is sound (docs/campaign-lifecycle.md, "The compositional
/// path"): a site summary is only classed Delta when the faulty machine is
/// control-equal to the golden boundary snapshot (same frames, registers,
/// RNG, region counts — everything except memory words and emitted
/// outputs). From a control-equal state, downstream golden execution reads
/// only non-delta locations iff the delta is disjoint from the section's
/// upward-exposed read set, in which case it retires the identical
/// instruction stream and writes identical values — the delta survives
/// verbatim minus fully-overwritten blocks, by induction over sections.
/// Anything else (trap, early exit, control divergence, oversized delta)
/// is classed Diverged and re-executed exactly like an exhaustive trial,
/// so composed outcome counts are bit-identical to
/// fault::run_prepared_campaign by construction — pinned per app by
/// tests/compose_test.cpp and per fuzz seed by tests/engine_fuzz_test.cpp.
///
/// Summaries are content-addressed in store::ArtifactStore (one blob per
/// section, store/format.h BlobKind::Summary) keyed by the IR hash of the
/// section's probe WINDOW (store::hash_section over the static
/// instructions each windowed section executes — summarization may run
/// reconvergence probes up to ForkPolicy::max_probes sections forward, so
/// the key covers every instruction the summarizer's golden path could
/// have executed), its entry-state hash, its plan population and the
/// campaign's semantic config. The footprint is per-INSTRUCTION, not
/// per-function — the mini-apps are one big function, so a function-level
/// hash would invalidate everything on any edit. Editing an instruction
/// therefore invalidates only the sections whose window executes it —
/// every section safely upstream still hits (its entry snapshot and
/// windowed code are untouched), which is what turns "re-survey after a
/// one-function edit" from O(whole program) into O(diff). The proof
/// counters in ComposedResult make the claim observable;
/// bench/compose_ab.cpp gates it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/campaign.h"
#include "fault/outcome.h"
#include "trace/column.h"
#include "trace/segment.h"
#include "util/thread_pool.h"
#include "vm/interp.h"

namespace ft::store {
class ArtifactStore;
}  // namespace ft::store

namespace ft::compose {

/// Golden-trace facts of one section: the dynamic-instruction span, the
/// functions it executes, and its 8-byte-block memory footprint. Blocks are
/// 8-aligned byte addresses (addr & ~7). `reads` is the upward-exposed read
/// set — blocks a load or partial store touches before the section fully
/// overwrites them (a partial store merges old bytes with new, so it
/// consumes the old content for delta purposes). `kills` is the blocks the
/// section fully overwrites with one aligned 8-byte store.
struct SectionInfo {
  std::uint64_t begin = 0;  // first dynamic instruction of the section
  std::uint64_t end = 0;    // one past the last
  std::vector<std::uint32_t> funcs;   // sorted unique executed function ids
  /// Sorted unique static pcs the golden run executes inside the section —
  /// the code footprint the summary key hashes (store::hash_section). Edits
  /// to instructions outside every windowed footprint leave keys intact.
  std::vector<std::uint32_t> pcs;
  std::vector<std::uint64_t> reads;   // sorted unique upward-exposed blocks
  std::vector<std::uint64_t> kills;   // sorted unique fully-written blocks
  /// Sections executing MiniMPI ops never transport a delta symbolically
  /// (communication makes the footprint non-local).
  bool opaque = false;
  /// Content hash of the section's entry snapshot (the boundary live-set
  /// component of its summary key), digested once at planning time for
  /// plan-bearing sections with a downstream boundary; 0 otherwise. Any
  /// upstream edit that perturbs the state flowing into the section
  /// changes this hash and soundly invalidates the key.
  std::uint64_t entry_hash = 0;
};

/// One section's per-site boundary summaries, parallel to the section's
/// assigned plan list. This is the unit the artifact store caches
/// (store::summary_key): it records boundary FACTS only — never a final
/// outcome — so a cached summary stays valid no matter how the program
/// downstream of its section is edited.
struct SiteSummary {
  enum class Kind : std::uint8_t {
    /// Machine state bit-identical to golden at section exit (fault fired):
    /// the remainder replays the golden run — VerificationSuccess with no
    /// further work.
    Masked = 0,
    /// Control-equal at section exit; only `mem` words and `out` output
    /// slots differ. Eligible for symbolic propagation.
    Delta = 1,
    /// Trapped, exited early, fault still pending at the section exit, or
    /// delta over the word cap — and reconvergence probing failed: the
    /// site is re-executed like an exhaustive trial (forked at its
    /// section entry).
    Diverged = 2,
    /// Control-diverged at the section exit but the machine re-equaled the
    /// golden state bit for bit (state_equals) at a later boundary inside
    /// the probe window (ForkPolicy::max_probes sections forward) — the
    /// same reconvergence that gives the forked scheduler its early exits.
    /// The remainder replays the golden run: VerificationSuccess with no
    /// further work. Because the summarization executed code PAST the
    /// section, the summary key hashes every section in the probe window
    /// (not just this one), so an edit anywhere the probe could have run
    /// invalidates the entry.
    Converged = 3,
  };
  Kind kind = Kind::Diverged;
  /// Differing 8-byte words at section exit: (8-aligned address, faulty
  /// bits). Absolute faulty values, so a fallback at any later boundary
  /// patches them verbatim (blocks that survive the walk were neither read
  /// nor written in between).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mem;
  /// Differing emitted outputs at section exit: (output index, faulty
  /// bits). Outputs are append-only and never read back, so these always
  /// propagate symbolically.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
};

struct SectionSummary {
  std::vector<SiteSummary> sites;  // parallel to the section's plan indices
};

/// The section decomposition of one prepared campaign: spans + golden
/// boundary snapshots (one serial golden pass) + per-plan section
/// assignment. Built once by plan_sections and shared read-only by every
/// worker of run_composed_campaign.
struct SectionPlan {
  std::vector<SectionInfo> sections;
  /// Golden machine state at sections[i].begin (snapshots.size() ==
  /// sections.size()); snapshots[0] is the pristine pre-run machine.
  std::vector<vm::Vm::Snapshot> snapshots;
  /// Per plan (parallel to PreparedCampaign::plans): the section whose span
  /// contains the plan's fork bound.
  std::vector<std::uint32_t> plan_section;
  /// Plan indices grouped by section, ascending within each group — the
  /// order SectionSummary::sites follows.
  std::vector<std::vector<std::uint32_t>> section_plans;
  std::uint64_t total_instructions = 0;  // golden retired count

  [[nodiscard]] bool empty() const noexcept { return sections.empty(); }
};

/// Cut the golden trace into sections at region-instance boundaries
/// (trace::section_boundaries), execute the golden prefix once to snapshot
/// every boundary, and scan each section's rows for its function set,
/// read/kill block sets and opacity. `max_sections` bounds the snapshot
/// count; the prepared campaign's ForkPolicy::max_snapshot_bytes budget
/// lowers it further for large memory images.
[[nodiscard]] SectionPlan plan_sections(
    const vm::DecodedProgram& program, const trace::ColumnTrace& trace,
    std::span<const trace::RegionInstance> instances,
    const fault::PreparedCampaign& prepared, std::size_t max_sections = 32);

/// Store/keying context of a composed run. All fields optional: a null
/// store runs fully cold (summaries computed, nothing cached).
struct ComposeOptions {
  std::shared_ptr<store::ArtifactStore> store;
  /// Base-options hash (store::options_hash) mixed into every summary key.
  std::uint64_t options_hash = 0;
  /// Semantic campaign inputs mixed into every summary key (trials /
  /// confidence / margin / seed / budget / recovery — the same fields
  /// store::campaign_key hashes).
  fault::CampaignConfig config{};
  /// Sites whose boundary delta exceeds this many differing 8-byte words
  /// are classed Diverged instead of Delta.
  std::size_t max_delta_words = 4096;
};

/// Outcome counts plus the proof counters that make the compositional
/// claim observable (surfaced through core::AnalysisReport).
struct ComposedResult {
  fault::CampaignResult counts;
  std::size_t sections_total = 0;
  /// Sections whose summaries were computed by execution this run.
  std::size_t summaries_computed = 0;
  /// Sections whose summaries were served from the artifact store.
  std::size_t summary_store_hits = 0;
  /// Site x section symbolic propagation steps (delta transported through
  /// a downstream section with zero execution).
  std::uint64_t sections_composed = 0;
  /// Sections whose site population was re-summarized by execution this
  /// run (store misses, plus the final section — it has no downstream
  /// boundary and always executes). After a one-function edit against a
  /// warm store this stays < sections_total — the incremental claim
  /// ISSUE 9 gates.
  std::uint64_t sections_reexecuted = 0;
  /// Trials classified with ZERO trial execution: summary served from the
  /// store and outcome fully symbolic. A warm re-run reports most trials
  /// here; a cold run reports 0.
  std::uint64_t trials_avoided = 0;
  /// Wall-clock cost of the two phases (seconds) — pure cost counters,
  /// never semantic. `summarize_seconds` covers summary acquisition (store
  /// loads plus per-site boundary measurement): this is the phase a warm
  /// store collapses, and what bench/compose_ab.cpp's ≥5x incremental gate
  /// measures. `close_seconds` covers trial closure (symbolic transport
  /// plus the suffix re-executions an edit makes unavoidable — a trial
  /// whose suffix runs through edited code must re-execute for the counts
  /// to stay exact).
  double summarize_seconds = 0;
  double close_seconds = 0;
};

/// Execute one prepared campaign compositionally: per section, load or
/// compute its site summaries (parallel across sections); per site, close
/// the outcome symbolically or by forked suffix execution (parallel across
/// plans). Outcome counts are bit-identical to
/// fault::run_prepared_campaign(program, prepared, ...) by construction and
/// independent of pool size. `golden` / `verify` are the same fault-free
/// outputs and verifier an exhaustive campaign uses.
[[nodiscard]] ComposedResult run_composed_campaign(
    const vm::DecodedProgram& program, const fault::PreparedCampaign& prepared,
    const SectionPlan& plan, const std::vector<vm::OutputValue>& golden,
    const fault::Verifier& verify, util::Executor& pool,
    const ComposeOptions& opts = {});

/// Serialize / parse one section's summaries (the BlobKind::Summary payload;
/// format in docs/architecture.md). decode_summary returns false on any
/// truncation, trailing bytes or site-count mismatch — the store treats
/// that as a miss, never an error.
[[nodiscard]] std::string encode_summary(const SectionSummary& s);
[[nodiscard]] bool decode_summary(std::string_view payload,
                                  std::size_t expected_sites,
                                  SectionSummary& out);

}  // namespace ft::compose
