// MiniMPI: a rank-parallel message-passing runtime.
//
// Stands in for the MPI substrate of the paper's experiments (§IV-A): each
// rank is a VM running on its own thread with a private trace sink, so
// "parallel tracing is a per-process task [and] no synchronization is
// required" holds here exactly as it does for the paper's per-process trace
// files. Collectives reduce in rank order, keeping every run deterministic
// (this subsumes the record-and-replay the paper needs for nondeterministic
// MPI apps, §V-B).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "vm/mpi_endpoint.h"

namespace ft::mpi {

class World;

/// Per-rank endpoint handed to a Vm through VmOptions::mpi.
class RankEndpoint final : public vm::MpiEndpoint {
 public:
  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override;

  void send(std::int64_t dest_rank, double value) override;
  [[nodiscard]] double recv(std::int64_t src_rank) override;
  [[nodiscard]] double allreduce(double value, ir::ReduceOp op) override;
  void barrier() override;

 private:
  friend class World;
  RankEndpoint(World* world, std::int64_t rank) : world_(world), rank_(rank) {}
  World* world_;
  std::int64_t rank_;
};

/// A fixed-size communicator. Construct with the rank count, then launch():
/// the callable runs once per rank, concurrently, with that rank's endpoint.
class World {
 public:
  explicit World(std::int64_t nranks);

  [[nodiscard]] std::int64_t size() const noexcept { return nranks_; }

  /// Run `body(rank, endpoint)` on `nranks` threads; returns when all ranks
  /// finish. Exceptions from a rank propagate to the caller (first one wins).
  void launch(const std::function<void(std::int64_t, vm::MpiEndpoint&)>& body);

 private:
  friend class RankEndpoint;

  void p2p_send(std::int64_t src, std::int64_t dest, double value);
  double p2p_recv(std::int64_t dest, std::int64_t src);
  double collective_allreduce(std::int64_t rank, double value,
                              ir::ReduceOp op);
  void collective_barrier();

  struct Channel {
    std::deque<double> queue;
  };

  std::int64_t nranks_;
  std::vector<std::unique_ptr<RankEndpoint>> endpoints_;

  std::mutex p2p_mutex_;
  std::condition_variable p2p_cv_;
  // channels_[dest * nranks + src]
  std::vector<Channel> channels_;

  std::mutex coll_mutex_;
  std::condition_variable coll_cv_;
  std::vector<double> coll_values_;
  std::int64_t coll_arrived_ = 0;
  std::int64_t coll_left_ = 0;
  std::uint64_t coll_generation_ = 0;
  double coll_result_ = 0.0;
};

}  // namespace ft::mpi
