/// @file
/// MiniMPI: a rank-parallel message-passing runtime.
///
/// Stands in for the MPI substrate of the paper's experiments (§IV-A): each
/// rank is a VM running on its own thread with a private trace sink, so
/// "parallel tracing is a per-process task [and] no synchronization is
/// required" holds here exactly as it does for the paper's per-process trace
/// files. Collectives reduce in rank order, keeping every run deterministic
/// (this subsumes the record-and-replay the paper needs for nondeterministic
/// MPI apps, §V-B) — and the record-and-replay claim is literal: a
/// RecordingEndpoint captures every value a rank exchanged (CommLog), and a
/// ReplayEndpoint re-executes that rank SOLO, bit-identically, from the log
/// (pinned by tests/mpi_test.cpp).
///
/// Fault-injection support: a faulty rank can misbehave in ways a clean
/// world never does — send to a corrupted rank index (BadRank), trap before
/// a collective its peers are waiting on, or change its communication
/// pattern so the world can no longer make progress. The World detects the
/// latter deterministically (all still-running ranks blocked => nobody can
/// ever unblock them) and aborts: every blocked communication call throws
/// WorldAborted, releasing the fault-free peers. run_ranks() packages one
/// rank-deterministic trial (one world, one Vm per rank, at most one rank
/// faulted, optional per-rank ColumnTrace sinks and rank-local snapshot
/// forking) on top of these primitives; the cross-rank campaign engine
/// (src/fault/rank_campaign.h) builds on it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "vm/interp.h"
#include "vm/mpi_endpoint.h"

namespace ft::trace {
class ColumnTrace;
}  // namespace ft::trace

namespace ft::mpi {

class World;

/// Thrown out of a blocked send/recv/collective when the world aborts —
/// either explicitly (World::abort()) or because every still-running rank
/// was blocked with nobody left to wake it (deterministic deadlock, e.g. a
/// faulted rank trapped before a collective its peers already joined).
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("mpi: world aborted") {}
};

/// Thrown by p2p calls naming a rank outside [0, size) — the destination
/// index of a faulty rank can be any corrupted integer.
class BadRank : public std::runtime_error {
 public:
  explicit BadRank(std::int64_t rank)
      : std::runtime_error("mpi: bad rank " + std::to_string(rank)) {}
};

/// Thrown by ReplayEndpoint when the replayed execution issues a
/// communication op that does not match the recorded log.
class ReplayMismatch : public std::runtime_error {
 public:
  ReplayMismatch() : std::runtime_error("mpi: replay diverged from log") {}
};

/// Everything one rank exchanged with its world, in program order. The
/// outbound projection (ops issued + values produced) is what the
/// cross-rank campaign compares against golden to decide whether an error
/// ever left a rank; the inbound results are what ReplayEndpoint serves to
/// re-execute the rank solo.
struct CommLog {
  enum class Op : std::uint8_t { Send, Recv, Allreduce, Barrier };

  struct Event {
    Op op = Op::Barrier;
    std::int64_t peer = -1;  // dest (Send) / src (Recv); -1 for collectives
    ir::ReduceOp reduce = ir::ReduceOp::Sum;  // Allreduce only
    double value = 0.0;   // payload sent / reduction contribution
    double result = 0.0;  // value received / reduction result

    bool operator==(const Event&) const = default;
  };

  std::vector<Event> events;

  bool operator==(const CommLog&) const = default;

  /// True when this log's *outbound* projection equals `golden`'s: same op
  /// sequence (kinds, peers, reduce ops) and bit-identical produced values
  /// (Send payloads, Allreduce contributions). Inbound results are ignored
  /// — they are caused by peers, not by this rank.
  [[nodiscard]] bool outbound_equals(const CommLog& golden) const;
};

/// Per-rank endpoint handed to a Vm through VmOptions::mpi.
class RankEndpoint final : public vm::MpiEndpoint {
 public:
  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override;

  void send(std::int64_t dest_rank, double value) override;
  [[nodiscard]] double recv(std::int64_t src_rank) override;
  [[nodiscard]] double allreduce(double value, ir::ReduceOp op) override;
  void barrier() override;

 private:
  friend class World;
  RankEndpoint(World* world, std::int64_t rank) : world_(world), rank_(rank) {}
  World* world_;
  std::int64_t rank_;
};

/// Decorator endpoint that appends every communication op to a CommLog.
class RecordingEndpoint final : public vm::MpiEndpoint {
 public:
  RecordingEndpoint(vm::MpiEndpoint* inner, CommLog* log)
      : inner_(inner), log_(log) {}

  [[nodiscard]] std::int64_t rank() const override { return inner_->rank(); }
  [[nodiscard]] std::int64_t size() const override { return inner_->size(); }

  void send(std::int64_t dest_rank, double value) override;
  [[nodiscard]] double recv(std::int64_t src_rank) override;
  [[nodiscard]] double allreduce(double value, ir::ReduceOp op) override;
  void barrier() override;

 private:
  vm::MpiEndpoint* inner_;
  CommLog* log_;
};

/// Serves a recorded CommLog back to a solo re-execution of one rank: recv
/// and allreduce return the recorded results, send/barrier are consumed and
/// checked. With a deterministic VM this replays the rank bit-identically
/// without the rest of the world (the paper's record-and-replay, §V-B).
/// Throws ReplayMismatch when the execution's op sequence diverges from the
/// log.
class ReplayEndpoint final : public vm::MpiEndpoint {
 public:
  ReplayEndpoint(std::int64_t rank, std::int64_t size, const CommLog& log)
      : rank_(rank), size_(size), log_(&log) {}

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return size_; }

  void send(std::int64_t dest_rank, double value) override;
  [[nodiscard]] double recv(std::int64_t src_rank) override;
  [[nodiscard]] double allreduce(double value, ir::ReduceOp op) override;
  void barrier() override;

  /// True when every recorded event has been consumed.
  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == log_->events.size();
  }

 private:
  const CommLog::Event& next(CommLog::Op op);

  std::int64_t rank_;
  std::int64_t size_;
  const CommLog* log_;
  std::size_t cursor_ = 0;
};

/// Rank/size-only endpoint for executing a rank's *communication-free*
/// prefix outside its world (the rank-local snapshot prep of the cross-rank
/// campaign scheduler). Any blocking op throws — a prefix that communicates
/// is not legal to execute solo.
class FixedEndpoint final : public vm::MpiEndpoint {
 public:
  FixedEndpoint(std::int64_t rank, std::int64_t size)
      : rank_(rank), size_(size) {}

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return size_; }

  void send(std::int64_t, double) override { comm(); }
  [[nodiscard]] double recv(std::int64_t) override { comm(); return 0.0; }
  [[nodiscard]] double allreduce(double, ir::ReduceOp) override {
    comm();
    return 0.0;
  }
  void barrier() override { comm(); }

 private:
  [[noreturn]] static void comm() {
    throw std::logic_error(
        "mpi: FixedEndpoint reached a communication op (prefix not "
        "communication-free)");
  }
  std::int64_t rank_;
  std::int64_t size_;
};

/// A fixed-size communicator. Construct with the rank count, then launch():
/// the callable runs once per rank, concurrently, with that rank's endpoint.
///
/// Liveness: all blocking waits are deadlock-checked. When every rank still
/// inside launch() is blocked (p2p receive with no pending message, or a
/// collective some rank will never join), no thread can ever make progress —
/// the world aborts and every blocked call throws WorldAborted. Because
/// message delivery and collective pairing are deterministic, whether a
/// given program deadlocks (and which ranks complete first) is a property
/// of the programs, not of thread scheduling.
class World {
 public:
  explicit World(std::int64_t nranks);

  [[nodiscard]] std::int64_t size() const noexcept { return nranks_; }

  /// Run `body(rank, endpoint)` on `nranks` threads; returns when all ranks
  /// finish. Exceptions from a rank propagate to the caller (first one
  /// wins); ranks blocked on a thrown-out-of rank are released through the
  /// deadlock abort and see WorldAborted.
  void launch(const std::function<void(std::int64_t, vm::MpiEndpoint&)>& body);

  /// Release every blocked rank (their blocked calls throw WorldAborted)
  /// and fail any later communication op. Sticky for the world's lifetime.
  void abort() noexcept;
  [[nodiscard]] bool aborted() const;

 private:
  friend class RankEndpoint;

  void p2p_send(std::int64_t src, std::int64_t dest, double value);
  double p2p_recv(std::int64_t dest, std::int64_t src);
  double collective_allreduce(std::int64_t rank, double value,
                              ir::ReduceOp op);

  /// What a rank is blocked on — a *description* of its wait predicate, so
  /// the deadlock detector can re-evaluate every rank's predicate against
  /// current world state instead of trusting a stale "blocked" counter (a
  /// rank whose condition just became true but has not been scheduled yet
  /// must not look deadlocked).
  struct Wait {
    enum class Kind : std::uint8_t { None, P2p, Drain, Generation };
    Kind kind = Kind::None;
    std::size_t channel = 0;        // P2p: channel with an empty queue
    std::uint64_t generation = 0;   // Generation: the one being waited out
  };

  [[nodiscard]] bool wait_satisfied(const Wait& w) const;
  /// Block rank `rank` until `w`'s predicate holds; registers the wait for
  /// the deadlock detector and throws WorldAborted on abort. Must be
  /// called with `lock` held on mutex_.
  void wait_rank(std::unique_lock<std::mutex>& lock, std::int64_t rank,
                 const Wait& w);
  /// Abort if every rank still inside the launch body sits in a registered
  /// wait whose predicate is unsatisfied — then no thread can ever make
  /// progress (sends never block). Called whenever a rank blocks or leaves.
  void check_deadlock_locked();
  void abort_locked() noexcept;
  void rank_done(std::int64_t rank);

  struct Channel {
    std::deque<double> queue;
  };

  std::int64_t nranks_;
  std::vector<std::unique_ptr<RankEndpoint>> endpoints_;

  // One mutex guards channels, collective state and liveness accounting;
  // rank counts are single digits, so contention is not a concern and the
  // single lock keeps the deadlock detector trivially race-free (the TSan
  // CI job keeps it that way).
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // channels_[dest * nranks + src]
  std::vector<Channel> channels_;

  std::vector<double> coll_values_;
  std::int64_t coll_arrived_ = 0;
  std::int64_t coll_left_ = 0;
  std::uint64_t coll_generation_ = 0;
  double coll_result_ = 0.0;

  std::int64_t active_ = 0;        // ranks still inside the launch body
  std::vector<Wait> waits_;        // per-rank registered wait
  std::vector<std::uint8_t> in_body_;  // per-rank: inside the launch body
  bool aborted_ = false;
};

// ---------------------------------------------------------------------------
// Rank-deterministic trial execution (one world, one Vm per rank).
// ---------------------------------------------------------------------------

/// Options for one multi-rank execution of a decoded program.
struct RankRunOptions {
  /// Per-rank VM base; `mpi`, `observer`, `column_sink` and `fault` are
  /// overridden per rank.
  vm::VmOptions base{};
  /// Rank whose VM runs with `fault` armed (-1 = fault-free golden run).
  std::int64_t fault_rank = -1;
  vm::FaultPlan fault{};
  /// Per-rank direct-emit trace sinks (empty, or one per rank; nullptr
  /// entries leave that rank untraced).
  std::vector<trace::ColumnTrace*> sinks;
  /// Record every rank's communication into RankRunReport::comm.
  bool record_comm = true;
  /// Rank-local snapshot fork: construct the faulted rank's machine from
  /// this snapshot instead of from scratch. Only legal when the snapshot
  /// covers a communication-free fault-free prefix of that rank (see
  /// fault::prepare_rank_snapshots) — execution is then bit-identical to a
  /// from-scratch run by construction.
  const vm::Vm::Snapshot* fault_snapshot = nullptr;
  /// Per-rank hang budgets (empty = base.max_instructions for every rank).
  std::vector<std::uint64_t> max_instructions;
};

/// Per-rank results of one multi-rank execution.
struct RankRunReport {
  std::vector<vm::RunResult> ranks;
  std::vector<CommLog> comm;          // filled when record_comm
  std::vector<std::uint8_t> aborted;  // 1 = released by the world abort

  /// True when any rank trapped, hung, or was released by an abort — the
  /// trial-level "Crashed" condition of the cross-rank taxonomy.
  [[nodiscard]] bool any_abnormal() const noexcept {
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      if (ranks[r].trap != vm::TrapKind::None || aborted[r]) return true;
    }
    return false;
  }
};

/// Execute `program` once on a fresh `nranks`-rank world, one VM per rank
/// on its own thread, with at most one rank faulted. Deterministic: same
/// program + same options => bit-identical per-rank results, traces and
/// communication logs, independent of thread scheduling (collectives reduce
/// in rank order; p2p channels are FIFO; deadlocks abort deterministically).
[[nodiscard]] RankRunReport run_ranks(const vm::DecodedProgram& program,
                                      std::int64_t nranks,
                                      const RankRunOptions& opts);

}  // namespace ft::mpi
