#include "mpi/world.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <exception>
#include <thread>

#include "trace/column.h"

namespace ft::mpi {

// ---------------------------------------------------------------------------
// CommLog
// ---------------------------------------------------------------------------

bool CommLog::outbound_equals(const CommLog& golden) const {
  if (events.size() != golden.events.size()) return false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& a = events[i];
    const Event& b = golden.events[i];
    if (a.op != b.op || a.peer != b.peer || a.reduce != b.reduce) return false;
    if (a.op == Op::Send || a.op == Op::Allreduce) {
      // Bitwise: tolerance is a verification concept, not a propagation one.
      if (std::bit_cast<std::uint64_t>(a.value) !=
          std::bit_cast<std::uint64_t>(b.value)) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

std::int64_t RankEndpoint::size() const { return world_->size(); }

void RankEndpoint::send(std::int64_t dest_rank, double value) {
  world_->p2p_send(rank_, dest_rank, value);
}

double RankEndpoint::recv(std::int64_t src_rank) {
  return world_->p2p_recv(rank_, src_rank);
}

double RankEndpoint::allreduce(double value, ir::ReduceOp op) {
  return world_->collective_allreduce(rank_, value, op);
}

void RankEndpoint::barrier() {
  (void)world_->collective_allreduce(rank_, 0.0, ir::ReduceOp::Sum);
}

void RecordingEndpoint::send(std::int64_t dest_rank, double value) {
  inner_->send(dest_rank, value);
  log_->events.push_back(
      CommLog::Event{CommLog::Op::Send, dest_rank, ir::ReduceOp::Sum, value,
                     0.0});
}

double RecordingEndpoint::recv(std::int64_t src_rank) {
  const double r = inner_->recv(src_rank);
  log_->events.push_back(
      CommLog::Event{CommLog::Op::Recv, src_rank, ir::ReduceOp::Sum, 0.0, r});
  return r;
}

double RecordingEndpoint::allreduce(double value, ir::ReduceOp op) {
  const double r = inner_->allreduce(value, op);
  log_->events.push_back(
      CommLog::Event{CommLog::Op::Allreduce, -1, op, value, r});
  return r;
}

void RecordingEndpoint::barrier() {
  inner_->barrier();
  log_->events.push_back(
      CommLog::Event{CommLog::Op::Barrier, -1, ir::ReduceOp::Sum, 0.0, 0.0});
}

const CommLog::Event& ReplayEndpoint::next(CommLog::Op op) {
  if (cursor_ >= log_->events.size()) throw ReplayMismatch();
  const CommLog::Event& e = log_->events[cursor_++];
  if (e.op != op) throw ReplayMismatch();
  return e;
}

void ReplayEndpoint::send(std::int64_t dest_rank, double) {
  const auto& e = next(CommLog::Op::Send);
  if (e.peer != dest_rank) throw ReplayMismatch();
}

double ReplayEndpoint::recv(std::int64_t src_rank) {
  const auto& e = next(CommLog::Op::Recv);
  if (e.peer != src_rank) throw ReplayMismatch();
  return e.result;
}

double ReplayEndpoint::allreduce(double, ir::ReduceOp op) {
  const auto& e = next(CommLog::Op::Allreduce);
  if (e.reduce != op) throw ReplayMismatch();
  return e.result;
}

void ReplayEndpoint::barrier() { (void)next(CommLog::Op::Barrier); }

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(std::int64_t nranks) : nranks_(nranks) {
  assert(nranks >= 1);
  channels_.resize(static_cast<std::size_t>(nranks * nranks));
  coll_values_.resize(static_cast<std::size_t>(nranks));
  waits_.resize(static_cast<std::size_t>(nranks));
  in_body_.assign(static_cast<std::size_t>(nranks), 0);
  for (std::int64_t r = 0; r < nranks; ++r) {
    endpoints_.emplace_back(new RankEndpoint(this, r));
  }
}

void World::abort() noexcept {
  std::lock_guard lock(mutex_);
  abort_locked();
}

bool World::aborted() const {
  std::lock_guard lock(mutex_);
  return aborted_;
}

void World::abort_locked() noexcept {
  aborted_ = true;
  cv_.notify_all();
}

bool World::wait_satisfied(const Wait& w) const {
  switch (w.kind) {
    case Wait::Kind::None: return true;
    case Wait::Kind::P2p: return !channels_[w.channel].queue.empty();
    case Wait::Kind::Drain: return coll_left_ == 0;
    case Wait::Kind::Generation: return coll_generation_ != w.generation;
  }
  return true;
}

void World::check_deadlock_locked() {
  if (aborted_ || active_ == 0) return;
  // Progress is possible iff some rank inside the launch body is either
  // running (no registered wait) or waiting on an already-satisfied
  // predicate (it just has not been scheduled yet). If neither exists, no
  // thread can ever change world state again — sends never block, so only
  // the waiters below could act, and none of them can wake.
  std::int64_t stuck = 0;
  for (std::int64_t r = 0; r < nranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (!in_body_[i]) continue;
    if (waits_[i].kind != Wait::Kind::None && !wait_satisfied(waits_[i])) {
      stuck++;
    }
  }
  if (stuck == active_) abort_locked();
}

void World::wait_rank(std::unique_lock<std::mutex>& lock, std::int64_t rank,
                      const Wait& w) {
  if (aborted_) throw WorldAborted();
  if (wait_satisfied(w)) return;
  const auto i = static_cast<std::size_t>(rank);
  waits_[i] = w;
  check_deadlock_locked();
  cv_.wait(lock, [&] { return aborted_ || wait_satisfied(w); });
  waits_[i].kind = Wait::Kind::None;
  if (aborted_) throw WorldAborted();
}

void World::rank_done(std::int64_t rank) {
  std::lock_guard lock(mutex_);
  in_body_[static_cast<std::size_t>(rank)] = 0;
  --active_;
  // This rank will never send or join a collective again: if everyone left
  // is in an unsatisfied wait, they are stuck for good.
  check_deadlock_locked();
}

void World::launch(
    const std::function<void(std::int64_t, vm::MpiEndpoint&)>& body) {
  {
    std::lock_guard lock(mutex_);
    active_ = nranks_;
    for (std::int64_t r = 0; r < nranks_; ++r) {
      waits_[static_cast<std::size_t>(r)].kind = Wait::Kind::None;
      in_body_[static_cast<std::size_t>(r)] = 1;
    }
  }
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex err_mutex;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (std::int64_t r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r, *endpoints_[static_cast<std::size_t>(r)]);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      rank_done(r);
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::p2p_send(std::int64_t src, std::int64_t dest, double value) {
  if (dest < 0 || dest >= nranks_) throw BadRank(dest);
  std::lock_guard lock(mutex_);
  if (aborted_) throw WorldAborted();
  channels_[static_cast<std::size_t>(dest * nranks_ + src)].queue.push_back(
      value);
  cv_.notify_all();
}

double World::p2p_recv(std::int64_t dest, std::int64_t src) {
  if (src < 0 || src >= nranks_) throw BadRank(src);
  std::unique_lock lock(mutex_);
  const auto channel = static_cast<std::size_t>(dest * nranks_ + src);
  wait_rank(lock, dest, Wait{Wait::Kind::P2p, channel, 0});
  auto& ch = channels_[channel];
  const double v = ch.queue.front();
  ch.queue.pop_front();
  return v;
}

double World::collective_allreduce(std::int64_t rank, double value,
                                   ir::ReduceOp op) {
  std::unique_lock lock(mutex_);
  // Wait for the previous collective to fully drain before joining a new one.
  wait_rank(lock, rank, Wait{Wait::Kind::Drain, 0, 0});
  const std::uint64_t my_generation = coll_generation_;
  if (rank >= 0 && rank < nranks_) {
    coll_values_[static_cast<std::size_t>(rank)] = value;
  }
  coll_arrived_++;
  if (coll_arrived_ == nranks_) {
    // Last arriver reduces in rank order for determinism.
    double acc = coll_values_[0];
    for (std::int64_t r = 1; r < nranks_; ++r) {
      const double v = coll_values_[static_cast<std::size_t>(r)];
      switch (op) {
        case ir::ReduceOp::Sum: acc += v; break;
        case ir::ReduceOp::Min: acc = std::min(acc, v); break;
        case ir::ReduceOp::Max: acc = std::max(acc, v); break;
      }
    }
    coll_result_ = acc;
    coll_arrived_ = 0;
    coll_left_ = nranks_;
    coll_generation_++;
    cv_.notify_all();
  } else {
    wait_rank(lock, rank, Wait{Wait::Kind::Generation, 0, my_generation});
  }
  const double result = coll_result_;
  coll_left_--;
  if (coll_left_ == 0) cv_.notify_all();
  return result;
}

// ---------------------------------------------------------------------------
// run_ranks
// ---------------------------------------------------------------------------

RankRunReport run_ranks(const vm::DecodedProgram& program, std::int64_t nranks,
                        const RankRunOptions& opts) {
  assert(opts.sinks.empty() ||
         opts.sinks.size() == static_cast<std::size_t>(nranks));
  assert(opts.max_instructions.empty() ||
         opts.max_instructions.size() == static_cast<std::size_t>(nranks));

  RankRunReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));
  report.aborted.assign(static_cast<std::size_t>(nranks), 0);
  if (opts.record_comm) report.comm.resize(static_cast<std::size_t>(nranks));

  World world(nranks);
  world.launch([&](std::int64_t rank, vm::MpiEndpoint& ep) {
    const auto r = static_cast<std::size_t>(rank);
    RecordingEndpoint recording(&ep, opts.record_comm ? &report.comm[r]
                                                      : nullptr);
    vm::VmOptions vo = opts.base;
    vo.mpi = opts.record_comm ? static_cast<vm::MpiEndpoint*>(&recording)
                              : &ep;
    vo.observer = nullptr;
    vo.column_sink = opts.sinks.empty() ? nullptr : opts.sinks[r];
    vo.fault = rank == opts.fault_rank ? opts.fault : vm::FaultPlan::none();
    if (!opts.max_instructions.empty()) {
      vo.max_instructions = opts.max_instructions[r];
    }
    try {
      if (rank == opts.fault_rank && opts.fault_snapshot) {
        // Rank-local fork: resume the faulted rank from its
        // communication-free golden prefix instead of re-executing it.
        vm::Vm vm(program, *opts.fault_snapshot, vo);
        report.ranks[r] = vm.run();
      } else {
        report.ranks[r] = vm::Vm::run(program, vo);
      }
    } catch (const WorldAborted&) {
      // Released mid-communication by a peer's trap/deadlock: this rank has
      // no meaningful result. The abnormal peer is what classifies the
      // trial.
      report.aborted[r] = 1;
    } catch (const BadRank&) {
      // A corrupted rank index reached a p2p op: the closest machine analog
      // is an out-of-bounds access.
      report.ranks[r].trap = vm::TrapKind::OutOfBounds;
    }
  });
  return report;
}

}  // namespace ft::mpi
