#include "mpi/world.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <thread>

namespace ft::mpi {

std::int64_t RankEndpoint::size() const { return world_->size(); }

void RankEndpoint::send(std::int64_t dest_rank, double value) {
  world_->p2p_send(rank_, dest_rank, value);
}

double RankEndpoint::recv(std::int64_t src_rank) {
  return world_->p2p_recv(rank_, src_rank);
}

double RankEndpoint::allreduce(double value, ir::ReduceOp op) {
  return world_->collective_allreduce(rank_, value, op);
}

void RankEndpoint::barrier() {
  world_->collective_allreduce(0 /*unused*/, 0.0, ir::ReduceOp::Sum);
}

World::World(std::int64_t nranks) : nranks_(nranks) {
  assert(nranks >= 1);
  channels_.resize(static_cast<std::size_t>(nranks * nranks));
  coll_values_.resize(static_cast<std::size_t>(nranks));
  for (std::int64_t r = 0; r < nranks; ++r) {
    endpoints_.emplace_back(new RankEndpoint(this, r));
  }
}

void World::launch(
    const std::function<void(std::int64_t, vm::MpiEndpoint&)>& body) {
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex err_mutex;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (std::int64_t r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r, *endpoints_[static_cast<std::size_t>(r)]);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::p2p_send(std::int64_t src, std::int64_t dest, double value) {
  assert(dest >= 0 && dest < nranks_);
  {
    std::lock_guard lock(p2p_mutex_);
    channels_[static_cast<std::size_t>(dest * nranks_ + src)].queue.push_back(
        value);
  }
  p2p_cv_.notify_all();
}

double World::p2p_recv(std::int64_t dest, std::int64_t src) {
  assert(src >= 0 && src < nranks_);
  std::unique_lock lock(p2p_mutex_);
  auto& ch = channels_[static_cast<std::size_t>(dest * nranks_ + src)];
  p2p_cv_.wait(lock, [&] { return !ch.queue.empty(); });
  const double v = ch.queue.front();
  ch.queue.pop_front();
  return v;
}

double World::collective_allreduce(std::int64_t rank, double value,
                                   ir::ReduceOp op) {
  std::unique_lock lock(coll_mutex_);
  // Wait for the previous collective to fully drain before joining a new one.
  coll_cv_.wait(lock, [&] { return coll_left_ == 0; });
  const std::uint64_t my_generation = coll_generation_;
  if (rank >= 0 && rank < nranks_) {
    coll_values_[static_cast<std::size_t>(rank)] = value;
  }
  coll_arrived_++;
  if (coll_arrived_ == nranks_) {
    // Last arriver reduces in rank order for determinism.
    double acc = coll_values_[0];
    for (std::int64_t r = 1; r < nranks_; ++r) {
      const double v = coll_values_[static_cast<std::size_t>(r)];
      switch (op) {
        case ir::ReduceOp::Sum: acc += v; break;
        case ir::ReduceOp::Min: acc = std::min(acc, v); break;
        case ir::ReduceOp::Max: acc = std::max(acc, v); break;
      }
    }
    coll_result_ = acc;
    coll_arrived_ = 0;
    coll_left_ = nranks_;
    coll_generation_++;
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock, [&] { return coll_generation_ != my_generation; });
  }
  const double result = coll_result_;
  coll_left_--;
  if (coll_left_ == 0) coll_cv_.notify_all();
  return result;
}

void World::collective_barrier() { collective_allreduce(0, 0.0, ir::ReduceOp::Sum); }

}  // namespace ft::mpi
