#include "hl/builder.h"

#include <cassert>

#include "util/bits.h"

namespace ft::hl {

using ir::CmpPred;
using ir::Opcode;
using ir::Operand;
using ir::Type;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Value Value::make_imm_i(FunctionBuilder* fb, std::int64_t v, Type t) {
  Value x;
  x.fb_ = fb;
  x.kind_ = Kind::ImmI;
  x.imm_i_ = v;
  x.type_ = t;
  return x;
}

Value Value::make_imm_f(FunctionBuilder* fb, double v, Type t) {
  Value x;
  x.fb_ = fb;
  x.kind_ = Kind::ImmF;
  x.imm_f_ = v;
  x.type_ = t;
  return x;
}

Value Value::make_arg(FunctionBuilder* fb, std::uint32_t index, Type t) {
  Value x;
  x.fb_ = fb;
  x.kind_ = Kind::Arg;
  x.reg_ = index;
  x.type_ = t;
  return x;
}

Value Value::operator+(const Value& rhs) const {
  return fb_->binary(Opcode::Add, Opcode::FAdd, *this, rhs);
}
Value Value::operator-(const Value& rhs) const {
  return fb_->binary(Opcode::Sub, Opcode::FSub, *this, rhs);
}
Value Value::operator*(const Value& rhs) const {
  return fb_->binary(Opcode::Mul, Opcode::FMul, *this, rhs);
}
Value Value::operator/(const Value& rhs) const {
  return fb_->binary(Opcode::SDiv, Opcode::FDiv, *this, rhs);
}
Value Value::operator%(const Value& rhs) const {
  assert(is_int(type_));
  return fb_->binary(Opcode::SRem, Opcode::SRem, *this, rhs);
}
Value Value::operator&(const Value& rhs) const {
  return fb_->binary(Opcode::And, Opcode::And, *this, rhs);
}
Value Value::operator|(const Value& rhs) const {
  return fb_->binary(Opcode::Or, Opcode::Or, *this, rhs);
}
Value Value::operator^(const Value& rhs) const {
  return fb_->binary(Opcode::Xor, Opcode::Xor, *this, rhs);
}
Value Value::operator<<(const Value& rhs) const {
  return fb_->binary(Opcode::Shl, Opcode::Shl, *this, rhs);
}
Value Value::operator>>(const Value& rhs) const {
  return fb_->binary(Opcode::AShr, Opcode::AShr, *this, rhs);
}

Value Value::eq(const Value& rhs) const { return fb_->cmp(CmpPred::Eq, *this, rhs); }
Value Value::ne(const Value& rhs) const { return fb_->cmp(CmpPred::Ne, *this, rhs); }
Value Value::lt(const Value& rhs) const { return fb_->cmp(CmpPred::Lt, *this, rhs); }
Value Value::le(const Value& rhs) const { return fb_->cmp(CmpPred::Le, *this, rhs); }
Value Value::gt(const Value& rhs) const { return fb_->cmp(CmpPred::Gt, *this, rhs); }
Value Value::ge(const Value& rhs) const { return fb_->cmp(CmpPred::Ge, *this, rhs); }

// ---------------------------------------------------------------------------
// Var
// ---------------------------------------------------------------------------

Value Var::get() const {
  return fb_->emit_result(Opcode::Load, type_,
                          {Operand::reg(ptr_reg_, Type::Ptr)});
}

void Var::set(const Value& v) const {
  assert(v.type() == type_);
  fb_->emit_void(Opcode::Store,
                 {fb_->as_operand(v), Operand::reg(ptr_reg_, Type::Ptr)});
}

void Var::set_i(std::int64_t v) const {
  assert(is_int(type_));
  fb_->emit_void(Opcode::Store, {Operand::imm(v, type_),
                                 Operand::reg(ptr_reg_, Type::Ptr)});
}

void Var::set_f(double v) const {
  assert(is_float(type_));
  fb_->emit_void(Opcode::Store, {Operand::fimm(v, type_),
                                 Operand::reg(ptr_reg_, Type::Ptr)});
}

Value Var::addr() const { return Value(fb_, ptr_reg_, Type::Ptr); }

// ---------------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string name, std::string file)
    : mod_(std::move(name)), file_(std::move(file)) {}

namespace {
GlobalArray add_global(ir::Module& m, const std::string& name, Type t,
                       std::uint64_t count, std::vector<std::uint64_t> init) {
  ir::Global g;
  g.name = name;
  g.elem = t;
  g.count = count;
  g.init_bits = std::move(init);
  return GlobalArray{m.add_global(std::move(g)), t};
}
}  // namespace

GlobalArray ProgramBuilder::global_f64(const std::string& name,
                                       std::uint64_t count) {
  return add_global(mod_, name, Type::F64, count, {});
}
GlobalArray ProgramBuilder::global_f32(const std::string& name,
                                       std::uint64_t count) {
  return add_global(mod_, name, Type::F32, count, {});
}
GlobalArray ProgramBuilder::global_i64(const std::string& name,
                                       std::uint64_t count) {
  return add_global(mod_, name, Type::I64, count, {});
}
GlobalArray ProgramBuilder::global_i32(const std::string& name,
                                       std::uint64_t count) {
  return add_global(mod_, name, Type::I32, count, {});
}

GlobalArray ProgramBuilder::global_init_f64(const std::string& name,
                                            const std::vector<double>& values) {
  std::vector<std::uint64_t> bits;
  bits.reserve(values.size());
  for (const double v : values) bits.push_back(util::f64_to_bits(v));
  return add_global(mod_, name, Type::F64, values.size(), std::move(bits));
}

GlobalArray ProgramBuilder::global_init_i64(
    const std::string& name, const std::vector<std::int64_t>& values) {
  std::vector<std::uint64_t> bits;
  bits.reserve(values.size());
  for (const auto v : values) bits.push_back(static_cast<std::uint64_t>(v));
  return add_global(mod_, name, Type::I64, values.size(), std::move(bits));
}

std::uint32_t ProgramBuilder::declare_region(const std::string& name,
                                             std::uint32_t line_begin,
                                             std::uint32_t line_end) {
  ir::RegionInfo r;
  r.name = name;
  r.file = file_;
  r.line_begin = line_begin;
  r.line_end = line_end;
  return mod_.add_region(std::move(r));
}

std::uint32_t ProgramBuilder::declare_function(const std::string& name,
                                               Type ret,
                                               std::vector<ir::Param> params) {
  ir::Function f;
  f.name = name;
  f.ret = ret;
  f.params = std::move(params);
  const auto id = mod_.add_function(std::move(f));
  defined_.push_back(false);
  if (name == "main") mod_.set_entry(id);
  return id;
}

FunctionBuilder ProgramBuilder::define(std::uint32_t function_id) {
  assert(function_id < mod_.num_functions());
  assert(!defined_[function_id] && "function already defined");
  defined_[function_id] = true;
  return FunctionBuilder(this, function_id);
}

void ProgramBuilder::set_entry(std::uint32_t function_id) {
  mod_.set_entry(function_id);
}

ir::Module ProgramBuilder::finish() {
  for (std::size_t i = 0; i < defined_.size(); ++i) {
    assert(defined_[i] && "declared function was never defined");
    (void)i;
  }
  mod_.layout();
  return std::move(mod_);
}

// ---------------------------------------------------------------------------
// FunctionBuilder
// ---------------------------------------------------------------------------

FunctionBuilder::FunctionBuilder(ProgramBuilder* pb, std::uint32_t fid)
    : pb_(pb), fid_(fid) {
  const auto& sig = pb_->mod_.function(fid);
  fn_.name = sig.name;
  fn_.ret = sig.ret;
  fn_.params = sig.params;
  fn_.blocks.push_back(ir::BasicBlock{"entry", {}});
}

FunctionBuilder::FunctionBuilder(FunctionBuilder&& other) noexcept
    : pb_(other.pb_),
      fid_(other.fid_),
      fn_(std::move(other.fn_)),
      cur_block_(other.cur_block_),
      cur_line_(other.cur_line_),
      finished_(other.finished_) {
  other.finished_ = true;  // disarm the moved-from destructor
}

FunctionBuilder::~FunctionBuilder() {
  if (!finished_) finish();
}

void FunctionBuilder::finish() {
  assert(!finished_);
  assert(!fn_.blocks[cur_block_].instrs.empty() &&
         is_terminator(fn_.blocks[cur_block_].instrs.back().op) &&
         "current block must be terminated (call ret())");
  finished_ = true;
  pb_->mod_.function(fid_) = std::move(fn_);
}

std::uint32_t FunctionBuilder::new_block(const std::string& name) {
  fn_.blocks.push_back(ir::BasicBlock{name, {}});
  return static_cast<std::uint32_t>(fn_.blocks.size() - 1);
}

void FunctionBuilder::set_block(std::uint32_t b) { cur_block_ = b; }

ir::Instruction& FunctionBuilder::append(ir::Instruction ins) {
  ins.line = cur_line_;
  auto& instrs = fn_.blocks[cur_block_].instrs;
  instrs.push_back(std::move(ins));
  return instrs.back();
}

Value FunctionBuilder::emit_result(Opcode op, Type t,
                                   std::vector<Operand> ops, std::int64_t aux,
                                   CmpPred pred) {
  ir::Instruction ins;
  ins.op = op;
  ins.type = t;
  ins.pred = pred;
  ins.aux = aux;
  ins.ops = std::move(ops);
  ins.result = fn_.fresh_reg();
  append(std::move(ins));
  return Value(this, fn_.num_regs - 1, t);
}

void FunctionBuilder::emit_void(Opcode op, std::vector<Operand> ops,
                                std::int64_t aux) {
  ir::Instruction ins;
  ins.op = op;
  ins.aux = aux;
  ins.ops = std::move(ops);
  append(std::move(ins));
}

Operand FunctionBuilder::as_operand(const Value& v) const {
  switch (v.kind_) {
    case Value::Kind::Reg:
      return Operand::reg(v.reg_, v.type_);
    case Value::Kind::ImmI:
      return Operand::imm(v.imm_i_, v.type_);
    case Value::Kind::ImmF:
      return Operand::fimm(v.imm_f_, v.type_);
    case Value::Kind::Arg:
      return Operand::arg(v.reg_, v.type_);
    case Value::Kind::None:
      break;
  }
  assert(false && "invalid value");
  return Operand{};
}

Value FunctionBuilder::binary(Opcode int_op, Opcode float_op, const Value& a,
                              const Value& b) {
  assert(a.type() == b.type() && "binary op type mismatch");
  const Opcode op = is_float(a.type()) ? float_op : int_op;
  return emit_result(op, a.type(), {as_operand(a), as_operand(b)});
}

Value FunctionBuilder::cmp(CmpPred pred, const Value& a, const Value& b) {
  assert(a.type() == b.type() && "cmp type mismatch");
  const Opcode op = is_float(a.type()) ? Opcode::FCmp : Opcode::ICmp;
  return emit_result(op, Type::I1, {as_operand(a), as_operand(b)}, 0, pred);
}

// --- constants --------------------------------------------------------------

Value FunctionBuilder::c_i64(std::int64_t v) {
  return Value::make_imm_i(this, v, Type::I64);
}
Value FunctionBuilder::c_i32(std::int32_t v) {
  return Value::make_imm_i(this, v, Type::I32);
}
Value FunctionBuilder::c_f64(double v) {
  return Value::make_imm_f(this, v, Type::F64);
}
Value FunctionBuilder::c_f32(float v) {
  return Value::make_imm_f(this, v, Type::F32);
}
Value FunctionBuilder::c_bool(bool v) {
  return Value::make_imm_i(this, v ? 1 : 0, Type::I1);
}

// --- scalars / arrays ---------------------------------------------------------

namespace {
std::int64_t alloc_bytes(Type t, std::uint64_t count) {
  return static_cast<std::int64_t>(store_size(t) * count);
}
}  // namespace

Var FunctionBuilder::var_i64(const std::string& name, std::int64_t init) {
  auto ptr = emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::I64, 1));
  (void)name;
  Var v(this, ptr.reg_, Type::I64);
  v.set(init);
  return v;
}

Var FunctionBuilder::var_f64(const std::string& name, double init) {
  auto ptr = emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::F64, 1));
  (void)name;
  Var v(this, ptr.reg_, Type::F64);
  v.set(init);
  return v;
}

Var FunctionBuilder::var_i32(const std::string& name, std::int32_t init) {
  auto ptr = emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::I32, 1));
  (void)name;
  Var v(this, ptr.reg_, Type::I32);
  v.set(static_cast<std::int64_t>(init));
  return v;
}

Var FunctionBuilder::var_f32(const std::string& name, float init) {
  auto ptr = emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::F32, 1));
  (void)name;
  Var v(this, ptr.reg_, Type::F32);
  v.set(static_cast<double>(init));
  return v;
}

LocalArray FunctionBuilder::local_f64(const std::string& name,
                                      std::uint64_t count) {
  (void)name;
  auto ptr =
      emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::F64, count));
  return LocalArray(ptr.reg_, Type::F64);
}

LocalArray FunctionBuilder::local_i64(const std::string& name,
                                      std::uint64_t count) {
  (void)name;
  auto ptr =
      emit_result(Opcode::Alloca, Type::Ptr, {}, alloc_bytes(Type::I64, count));
  return LocalArray(ptr.reg_, Type::I64);
}

Value FunctionBuilder::ld(GlobalArray a, const Value& index) {
  const Type t = a.elem;
  auto ptr = emit_result(Opcode::Gep, Type::Ptr,
                         {Operand::global(a.index), as_operand(index)},
                         store_size(t));
  return emit_result(Opcode::Load, t, {as_operand(ptr)});
}

Value FunctionBuilder::ld(GlobalArray a, std::int64_t index) {
  return ld(a, c_i64(index));
}

void FunctionBuilder::st(GlobalArray a, const Value& index, const Value& v) {
  assert(v.type() == a.elem && "store element type mismatch");
  auto ptr = emit_result(Opcode::Gep, Type::Ptr,
                         {Operand::global(a.index), as_operand(index)},
                         store_size(a.elem));
  emit_void(Opcode::Store, {as_operand(v), as_operand(ptr)});
}

void FunctionBuilder::st(GlobalArray a, std::int64_t index, const Value& v) {
  st(a, c_i64(index), v);
}

Value FunctionBuilder::ld(const LocalArray& a, const Value& index) {
  auto ptr = emit_result(Opcode::Gep, Type::Ptr,
                         {Operand::reg(a.ptr_reg_, Type::Ptr), as_operand(index)},
                         store_size(a.elem_));
  return emit_result(Opcode::Load, a.elem_, {as_operand(ptr)});
}

Value FunctionBuilder::ld(const LocalArray& a, std::int64_t index) {
  return ld(a, c_i64(index));
}

void FunctionBuilder::st(const LocalArray& a, const Value& index,
                         const Value& v) {
  assert(v.type() == a.elem_ && "store element type mismatch");
  auto ptr = emit_result(Opcode::Gep, Type::Ptr,
                         {Operand::reg(a.ptr_reg_, Type::Ptr), as_operand(index)},
                         store_size(a.elem_));
  emit_void(Opcode::Store, {as_operand(v), as_operand(ptr)});
}

void FunctionBuilder::st(const LocalArray& a, std::int64_t index,
                         const Value& v) {
  st(a, c_i64(index), v);
}

Value FunctionBuilder::addr_of(GlobalArray a) {
  return emit_result(Opcode::Gep, Type::Ptr,
                     {Operand::global(a.index), Operand::imm(0, Type::I64)},
                     store_size(a.elem));
}

Value FunctionBuilder::addr_of(const LocalArray& a) {
  return Value(this, a.ptr_reg_, Type::Ptr);
}

Value FunctionBuilder::gep(const Value& base, const Value& index,
                           std::int64_t stride) {
  return emit_result(Opcode::Gep, Type::Ptr,
                     {as_operand(base), as_operand(index)}, stride);
}

Value FunctionBuilder::ld_raw(const Value& ptr, Type t) {
  return emit_result(Opcode::Load, t, {as_operand(ptr)});
}

void FunctionBuilder::st_raw(const Value& ptr, const Value& v) {
  emit_void(Opcode::Store, {as_operand(v), as_operand(ptr)});
}

// --- arithmetic helpers -------------------------------------------------------

Value FunctionBuilder::neg(const Value& v) {
  if (is_float(v.type())) {
    return emit_result(Opcode::FNeg, v.type(), {as_operand(v)});
  }
  return Value::make_imm_i(this, 0, v.type()) - v;
}

Value FunctionBuilder::fsqrt(const Value& v) {
  return emit_result(Opcode::FSqrt, v.type(), {as_operand(v)});
}
Value FunctionBuilder::fabs_(const Value& v) {
  return emit_result(Opcode::FAbs, v.type(), {as_operand(v)});
}
Value FunctionBuilder::ffloor(const Value& v) {
  return emit_result(Opcode::FFloor, v.type(), {as_operand(v)});
}

Value FunctionBuilder::lshr(const Value& v, const Value& amount) {
  return emit_result(Opcode::LShr, v.type(),
                     {as_operand(v), as_operand(amount)});
}
Value FunctionBuilder::lshr(const Value& v, std::int64_t amount) {
  return lshr(v, Value::make_imm_i(this, amount, v.type()));
}

Value FunctionBuilder::select(const Value& cond, const Value& a,
                              const Value& b) {
  assert(cond.type() == Type::I1);
  assert(a.type() == b.type());
  return emit_result(Opcode::Select, a.type(),
                     {as_operand(cond), as_operand(a), as_operand(b)});
}

Value FunctionBuilder::min_(const Value& a, const Value& b) {
  return select(a.lt(b), a, b);
}
Value FunctionBuilder::max_(const Value& a, const Value& b) {
  return select(a.gt(b), a, b);
}

// --- casts --------------------------------------------------------------------

Value FunctionBuilder::trunc_to_i32(const Value& v) {
  return emit_result(Opcode::Trunc, Type::I32, {as_operand(v)});
}
Value FunctionBuilder::sext_to_i64(const Value& v) {
  return emit_result(Opcode::SExt, Type::I64, {as_operand(v)});
}
Value FunctionBuilder::zext_to_i64(const Value& v) {
  return emit_result(Opcode::ZExt, Type::I64, {as_operand(v)});
}
Value FunctionBuilder::fptrunc_to_f32(const Value& v) {
  return emit_result(Opcode::FPTrunc, Type::F32, {as_operand(v)});
}
Value FunctionBuilder::fpext_to_f64(const Value& v) {
  return emit_result(Opcode::FPExt, Type::F64, {as_operand(v)});
}
Value FunctionBuilder::fptosi(const Value& v, Type to) {
  return emit_result(Opcode::FPToSI, to, {as_operand(v)});
}
Value FunctionBuilder::sitofp(const Value& v, Type to) {
  return emit_result(Opcode::SIToFP, to, {as_operand(v)});
}

// --- control flow ----------------------------------------------------------------

void FunctionBuilder::for_(const std::string& name, const Value& lo,
                           const Value& hi, const IndexBodyFn& body) {
  Var i = var_i64(name);
  i.set(lo);
  const auto header = new_block(name + ".header");
  const auto body_b = new_block(name + ".body");
  const auto exit_b = new_block(name + ".exit");

  emit_void(Opcode::Br, {Operand::block(header)});
  set_block(header);
  Value iv = i.get();
  Value cond = iv.lt(hi);
  emit_void(Opcode::CondBr,
            {as_operand(cond), Operand::block(body_b), Operand::block(exit_b)});
  set_block(body_b);
  body(iv);
  i.set(i.get() + 1);
  emit_void(Opcode::Br, {Operand::block(header)});
  set_block(exit_b);
}

void FunctionBuilder::for_(const std::string& name, std::int64_t lo,
                           std::int64_t hi, const IndexBodyFn& body) {
  for_(name, c_i64(lo), c_i64(hi), body);
}

void FunctionBuilder::for_(const std::string& name, std::int64_t lo,
                           const Value& hi, const IndexBodyFn& body) {
  for_(name, c_i64(lo), hi, body);
}

void FunctionBuilder::while_(const CondFn& cond, const BodyFn& body) {
  const auto header = new_block("while.header");
  const auto body_b = new_block("while.body");
  const auto exit_b = new_block("while.exit");

  emit_void(Opcode::Br, {Operand::block(header)});
  set_block(header);
  Value c = cond();
  emit_void(Opcode::CondBr,
            {as_operand(c), Operand::block(body_b), Operand::block(exit_b)});
  set_block(body_b);
  body();
  emit_void(Opcode::Br, {Operand::block(header)});
  set_block(exit_b);
}

void FunctionBuilder::if_(const Value& cond, const BodyFn& then_body) {
  const auto then_b = new_block("if.then");
  const auto join_b = new_block("if.join");
  emit_void(Opcode::CondBr,
            {as_operand(cond), Operand::block(then_b), Operand::block(join_b)});
  set_block(then_b);
  then_body();
  emit_void(Opcode::Br, {Operand::block(join_b)});
  set_block(join_b);
}

void FunctionBuilder::if_else(const Value& cond, const BodyFn& then_body,
                              const BodyFn& else_body) {
  const auto then_b = new_block("if.then");
  const auto else_b = new_block("if.else");
  const auto join_b = new_block("if.join");
  emit_void(Opcode::CondBr,
            {as_operand(cond), Operand::block(then_b), Operand::block(else_b)});
  set_block(then_b);
  then_body();
  emit_void(Opcode::Br, {Operand::block(join_b)});
  set_block(else_b);
  else_body();
  emit_void(Opcode::Br, {Operand::block(join_b)});
  set_block(join_b);
}

void FunctionBuilder::unless(const Value& cond, const BodyFn& body) {
  if_else(cond, [] {}, body);
}

void FunctionBuilder::region(std::uint32_t region_id, const BodyFn& body) {
  emit_void(Opcode::RegionEnter, {}, region_id);
  body();
  emit_void(Opcode::RegionExit, {}, region_id);
}

Value FunctionBuilder::call(std::uint32_t function_id,
                            const std::vector<Value>& args) {
  const auto& callee = pb_->mod_.function(function_id);
  assert(callee.params.size() == args.size() && "call arity mismatch");
  std::vector<Operand> ops;
  ops.reserve(args.size());
  for (const auto& a : args) ops.push_back(as_operand(a));
  if (callee.ret == Type::Void) {
    // Calls always define a register slot for uniform handling; a void call
    // defines an I64 zero the program never reads.
    return emit_result(Opcode::Call, Type::I64, std::move(ops), function_id);
  }
  return emit_result(Opcode::Call, callee.ret, std::move(ops), function_id);
}

Value FunctionBuilder::arg(std::uint32_t index) {
  assert(index < fn_.params.size());
  return Value::make_arg(this, index, fn_.params[index].type);
}

void FunctionBuilder::ret() { emit_void(Opcode::Ret, {}); }

void FunctionBuilder::ret(const Value& v) {
  emit_void(Opcode::Ret, {as_operand(v)});
}

// --- intrinsics --------------------------------------------------------------------

Value FunctionBuilder::rand_() {
  return emit_result(Opcode::Rand, Type::F64, {});
}

void FunctionBuilder::emit(const Value& v) {
  emit_void(Opcode::Emit, {as_operand(v)});
}

void FunctionBuilder::emit_trunc(const Value& v, std::int64_t digits) {
  emit_void(Opcode::EmitTrunc, {as_operand(v)}, digits);
}

Value FunctionBuilder::mpi_rank() {
  return emit_result(Opcode::MpiRank, Type::I64, {});
}
Value FunctionBuilder::mpi_size() {
  return emit_result(Opcode::MpiSize, Type::I64, {});
}
void FunctionBuilder::mpi_send(const Value& dest_rank, const Value& v) {
  emit_void(Opcode::MpiSend, {as_operand(dest_rank), as_operand(v)});
}
Value FunctionBuilder::mpi_recv(const Value& src_rank) {
  return emit_result(Opcode::MpiRecv, Type::F64, {as_operand(src_rank)});
}
Value FunctionBuilder::mpi_allreduce(const Value& v, ir::ReduceOp op) {
  return emit_result(Opcode::MpiAllreduce, Type::F64, {as_operand(v)},
                     static_cast<std::int64_t>(op));
}
void FunctionBuilder::mpi_barrier() { emit_void(Opcode::MpiBarrier, {}); }

FunctionBuilder& FunctionBuilder::at(std::uint32_t line) {
  cur_line_ = line;
  return *this;
}

}  // namespace ft::hl
