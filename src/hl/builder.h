// High-level structured builder for MiniIR.
//
// Workloads (src/apps/) are written against this layer and read like the C
// they transcribe: scalar variables, global arrays, for/while/if control
// flow, and code-region markers. Under the hood every construct lowers to
// `-O0`-style MiniIR (locals in memory, fresh virtual register per
// instruction), which is the form the paper's tracer sees.
//
//   hl::ProgramBuilder pb("cg");
//   auto v  = pb.global_f64("v", n);
//   auto f  = pb.define(pb.declare_function("main"));
//   f.region(r_id, [&] {
//     f.for_("i", 0, n, [&](hl::Value i) {
//       f.st(v, i, f.ld(v, i) + 1.0);
//     });
//   });
//   f.ret();
//   ir::Module m = pb.finish();
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "ir/module.h"

namespace ft::hl {

class FunctionBuilder;

/// Handle to an SSA register inside a function under construction.
/// Arithmetic operators emit instructions into the owning builder, choosing
/// the integer or floating opcode from the operand type.
class Value {
 public:
  Value() = default;

  [[nodiscard]] ir::Type type() const noexcept { return type_; }
  [[nodiscard]] bool valid() const noexcept { return fb_ != nullptr; }

  Value operator+(const Value& rhs) const;
  Value operator-(const Value& rhs) const;
  Value operator*(const Value& rhs) const;
  Value operator/(const Value& rhs) const;
  Value operator%(const Value& rhs) const;
  Value operator&(const Value& rhs) const;
  Value operator|(const Value& rhs) const;
  Value operator^(const Value& rhs) const;
  Value operator<<(const Value& rhs) const;
  Value operator>>(const Value& rhs) const;  // arithmetic shift right

  // Scalar-literal forms: the immediate adopts this value's type (an
  // integer literal against a float value becomes a float immediate).
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value operator+(T v) const { return *this + lit(v); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value operator-(T v) const { return *this - lit(v); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value operator*(T v) const { return *this * lit(v); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value operator/(T v) const { return *this / lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator%(T v) const { return *this % lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator<<(T v) const { return *this << lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator>>(T v) const { return *this >> lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator&(T v) const { return *this & lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator|(T v) const { return *this | lit(v); }
  template <typename T>
    requires std::is_integral_v<T>
  Value operator^(T v) const { return *this ^ lit(v); }

  // Comparisons produce I1 values.
  Value eq(const Value& rhs) const;
  Value ne(const Value& rhs) const;
  Value lt(const Value& rhs) const;
  Value le(const Value& rhs) const;
  Value gt(const Value& rhs) const;
  Value ge(const Value& rhs) const;
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value eq(T v) const { return eq(lit(v)); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value ne(T v) const { return ne(lit(v)); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value lt(T v) const { return lt(lit(v)); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value le(T v) const { return le(lit(v)); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value gt(T v) const { return gt(lit(v)); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  Value ge(T v) const { return ge(lit(v)); }

 private:
  friend class FunctionBuilder;
  friend class Var;
  enum class Kind : std::uint8_t { None, Reg, ImmI, ImmF, Arg };

  Value(FunctionBuilder* fb, std::uint32_t reg, ir::Type t)
      : fb_(fb), kind_(Kind::Reg), reg_(reg), type_(t) {}

  static Value make_imm_i(FunctionBuilder* fb, std::int64_t v, ir::Type t);
  static Value make_imm_f(FunctionBuilder* fb, double v, ir::Type t);
  static Value make_arg(FunctionBuilder* fb, std::uint32_t index, ir::Type t);

  /// Literal of this value's type (float literal for float values, integer
  /// literal for integer values).
  template <typename T>
  Value lit(T v) const {
    if (is_float(type_)) {
      return make_imm_f(fb_, static_cast<double>(v), type_);
    }
    return make_imm_i(fb_, static_cast<std::int64_t>(v), type_);
  }

  FunctionBuilder* fb_ = nullptr;
  Kind kind_ = Kind::None;
  std::uint32_t reg_ = ir::kNoReg;
  std::int64_t imm_i_ = 0;
  double imm_f_ = 0.0;
  ir::Type type_ = ir::Type::Void;
};

/// A named memory-backed scalar local (an Alloca slot).
class Var {
 public:
  Var() = default;
  [[nodiscard]] Value get() const;
  void set(const Value& v) const;
  /// Scalar literal assignment; the literal adopts the variable's type.
  template <typename T>
    requires std::is_arithmetic_v<T>
  void set(T v) const {
    if (is_float(type_)) {
      set_f(static_cast<double>(v));
    } else {
      set_i(static_cast<std::int64_t>(v));
    }
  }
  /// Address of the slot, as a Ptr value (for aliasing experiments).
  [[nodiscard]] Value addr() const;
  [[nodiscard]] ir::Type type() const noexcept { return type_; }

 private:
  friend class FunctionBuilder;
  Var(FunctionBuilder* fb, std::uint32_t ptr_reg, ir::Type t)
      : fb_(fb), ptr_reg_(ptr_reg), type_(t) {}
  void set_i(std::int64_t v) const;
  void set_f(double v) const;
  FunctionBuilder* fb_ = nullptr;
  std::uint32_t ptr_reg_ = ir::kNoReg;
  ir::Type type_ = ir::Type::Void;
};

/// Handle to a module global array.
struct GlobalArray {
  std::uint32_t index = 0;
  ir::Type elem = ir::Type::F64;
};

/// Handle to a function-local (stack) array.
class LocalArray {
 public:
  LocalArray() = default;
  [[nodiscard]] ir::Type elem() const noexcept { return elem_; }

 private:
  friend class FunctionBuilder;
  LocalArray(std::uint32_t ptr_reg, ir::Type t) : ptr_reg_(ptr_reg), elem_(t) {}
  std::uint32_t ptr_reg_ = ir::kNoReg;
  ir::Type elem_ = ir::Type::F64;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name, std::string file = "");

  // Globals (zero-initialized unless init provided).
  GlobalArray global_f64(const std::string& name, std::uint64_t count);
  GlobalArray global_f32(const std::string& name, std::uint64_t count);
  GlobalArray global_i64(const std::string& name, std::uint64_t count);
  GlobalArray global_i32(const std::string& name, std::uint64_t count);
  GlobalArray global_init_f64(const std::string& name,
                              const std::vector<double>& values);
  GlobalArray global_init_i64(const std::string& name,
                              const std::vector<std::int64_t>& values);

  /// Declare a code region (name + source range, used by Table I).
  std::uint32_t declare_region(const std::string& name,
                               std::uint32_t line_begin = 0,
                               std::uint32_t line_end = 0);

  /// Declare a function signature; body is defined later via define().
  std::uint32_t declare_function(const std::string& name,
                                 ir::Type ret = ir::Type::Void,
                                 std::vector<ir::Param> params = {});

  /// Open a builder for the given declared function. Only one function may
  /// be under construction at a time.
  FunctionBuilder define(std::uint32_t function_id);

  /// Entry point defaults to a function named "main" if present.
  void set_entry(std::uint32_t function_id);

  /// Lay out memory and return the finished module. Aborts (assert) if a
  /// function was declared but never defined.
  ir::Module finish();

  [[nodiscard]] ir::Module& module() noexcept { return mod_; }
  [[nodiscard]] const std::string& file() const noexcept { return file_; }

 private:
  friend class FunctionBuilder;
  ir::Module mod_;
  std::string file_;
  std::vector<bool> defined_;
};

class FunctionBuilder {
 public:
  using BodyFn = std::function<void()>;
  using IndexBodyFn = std::function<void(Value)>;
  using CondFn = std::function<Value()>;

  // --- constants -----------------------------------------------------------
  Value c_i64(std::int64_t v);
  Value c_i32(std::int32_t v);
  Value c_f64(double v);
  Value c_f32(float v);
  Value c_bool(bool v);

  // --- scalars and arrays --------------------------------------------------
  Var var_i64(const std::string& name, std::int64_t init = 0);
  Var var_f64(const std::string& name, double init = 0.0);
  Var var_i32(const std::string& name, std::int32_t init = 0);
  Var var_f32(const std::string& name, float init = 0.0f);
  LocalArray local_f64(const std::string& name, std::uint64_t count);
  LocalArray local_i64(const std::string& name, std::uint64_t count);

  /// Element load / store with an index value or immediate. Scalar-literal
  /// stores adopt the array's element type.
  Value ld(GlobalArray a, const Value& index);
  Value ld(GlobalArray a, std::int64_t index);
  void st(GlobalArray a, const Value& index, const Value& v);
  void st(GlobalArray a, std::int64_t index, const Value& v);
  template <typename T>
    requires std::is_arithmetic_v<T>
  void st(GlobalArray a, const Value& index, T v) {
    st(a, index, typed_literal(a.elem, v));
  }
  template <typename T>
    requires std::is_arithmetic_v<T>
  void st(GlobalArray a, std::int64_t index, T v) {
    st(a, c_i64(index), typed_literal(a.elem, v));
  }
  Value ld(const LocalArray& a, const Value& index);
  Value ld(const LocalArray& a, std::int64_t index);
  void st(const LocalArray& a, const Value& index, const Value& v);
  void st(const LocalArray& a, std::int64_t index, const Value& v);
  template <typename T>
    requires std::is_arithmetic_v<T>
  void st(const LocalArray& a, const Value& index, T v) {
    st(a, index, typed_literal(a.elem(), v));
  }
  template <typename T>
    requires std::is_arithmetic_v<T>
  void st(const LocalArray& a, std::int64_t index, T v) {
    st(a, c_i64(index), typed_literal(a.elem(), v));
  }

  /// Scalar literal of the given IR type.
  template <typename T>
    requires std::is_arithmetic_v<T>
  [[nodiscard]] Value typed_literal(ir::Type t, T v) {
    if (is_float(t)) {
      return Value::make_imm_f(this, static_cast<double>(v), t);
    }
    return Value::make_imm_i(this, static_cast<std::int64_t>(v), t);
  }

  /// Base address of an array (Ptr value).
  Value addr_of(GlobalArray a);
  Value addr_of(const LocalArray& a);
  /// Raw pointer arithmetic: base + index * stride_bytes.
  Value gep(const Value& base, const Value& index, std::int64_t stride);
  Value ld_raw(const Value& ptr, ir::Type t);
  void st_raw(const Value& ptr, const Value& v);

  // --- arithmetic helpers not covered by Value operators --------------------
  Value neg(const Value& v);
  Value fsqrt(const Value& v);
  Value fabs_(const Value& v);
  Value ffloor(const Value& v);
  Value lshr(const Value& v, const Value& amount);
  Value lshr(const Value& v, std::int64_t amount);
  Value select(const Value& cond, const Value& a, const Value& b);
  Value min_(const Value& a, const Value& b);
  Value max_(const Value& a, const Value& b);

  // --- casts ---------------------------------------------------------------
  Value trunc_to_i32(const Value& v);
  Value sext_to_i64(const Value& v);
  Value zext_to_i64(const Value& v);
  Value fptrunc_to_f32(const Value& v);
  Value fpext_to_f64(const Value& v);
  Value fptosi(const Value& v, ir::Type to = ir::Type::I64);
  Value sitofp(const Value& v, ir::Type to = ir::Type::F64);

  // --- control flow ---------------------------------------------------------
  /// for (i = lo; i < hi; ++i) body(i)
  void for_(const std::string& name, const Value& lo, const Value& hi,
            const IndexBodyFn& body);
  void for_(const std::string& name, std::int64_t lo, std::int64_t hi,
            const IndexBodyFn& body);
  void for_(const std::string& name, std::int64_t lo, const Value& hi,
            const IndexBodyFn& body);
  void while_(const CondFn& cond, const BodyFn& body);
  void if_(const Value& cond, const BodyFn& then_body);
  void if_else(const Value& cond, const BodyFn& then_body,
               const BodyFn& else_body);
  /// `continue`-like guard: executes body only when cond is false.
  void unless(const Value& cond, const BodyFn& body);

  /// Enter region `region_id`, run body, exit region.
  void region(std::uint32_t region_id, const BodyFn& body);

  Value call(std::uint32_t function_id, const std::vector<Value>& args = {});
  Value arg(std::uint32_t index);
  void ret();
  void ret(const Value& v);

  // --- intrinsics ------------------------------------------------------------
  Value rand_();                      // randlc double in (0,1)
  void emit(const Value& v);          // program output
  void emit_trunc(const Value& v, std::int64_t digits);  // "%.*e"-style
  Value mpi_rank();
  Value mpi_size();
  void mpi_send(const Value& dest_rank, const Value& v);
  Value mpi_recv(const Value& src_rank);
  Value mpi_allreduce(const Value& v, ir::ReduceOp op);
  void mpi_barrier();

  /// Record the builder source line for subsequently emitted instructions.
  FunctionBuilder& at(std::uint32_t line);

  /// Finish the function body: moves it into the module. Called by the
  /// destructor if not called explicitly; requires a terminator in the
  /// current block (call ret() first).
  void finish();

  ~FunctionBuilder();
  FunctionBuilder(FunctionBuilder&&) noexcept;
  FunctionBuilder(const FunctionBuilder&) = delete;
  FunctionBuilder& operator=(const FunctionBuilder&) = delete;
  FunctionBuilder& operator=(FunctionBuilder&&) = delete;

 private:
  friend class ProgramBuilder;
  friend class Value;
  friend class Var;

  FunctionBuilder(ProgramBuilder* pb, std::uint32_t fid);

  std::uint32_t new_block(const std::string& name);
  void set_block(std::uint32_t b);
  ir::Instruction& append(ir::Instruction ins);
  Value emit_result(ir::Opcode op, ir::Type t, std::vector<ir::Operand> ops,
                    std::int64_t aux = 0, ir::CmpPred pred = ir::CmpPred::None);
  void emit_void(ir::Opcode op, std::vector<ir::Operand> ops,
                 std::int64_t aux = 0);
  Value binary(ir::Opcode int_op, ir::Opcode float_op, const Value& a,
               const Value& b);
  Value cmp(ir::CmpPred pred, const Value& a, const Value& b);
  ir::Operand as_operand(const Value& v) const;

  ProgramBuilder* pb_ = nullptr;
  std::uint32_t fid_ = 0;
  ir::Function fn_;
  std::uint32_t cur_block_ = 0;
  std::uint32_t cur_line_ = 0;
  bool finished_ = false;
};

}  // namespace ft::hl
