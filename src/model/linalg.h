// Minimal dense linear algebra for the resilience-prediction model
// (Use Case 2): row-major matrices, products, and an SPD Cholesky solver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ft::model {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> mul(std::span<const double> v) const;

  Matrix& operator+=(const Matrix& rhs);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky. Throws
/// std::runtime_error if A is not (numerically) positive definite.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& a,
                                                 std::span<const double> b);

}  // namespace ft::model
