// Bayesian multivariate linear regression (§VII-B, Eq. 3).
//
// The paper predicts an application's success rate from its six pattern
// rates: P = Σ βi·xi + ε. With a zero-mean Gaussian prior on β (precision
// λ) and Gaussian noise, the posterior mean is the ridge solution
// (XᵀX + λI)⁻¹ Xᵀy — computed here with a Cholesky solve. Also provides
// the paper's validation tooling: R² ("96.4%"), standardized regression
// coefficients (the feature analysis), and leave-one-out prediction (the
// second experiment: train on nine benchmarks, predict the tenth).
#pragma once

#include <span>
#include <vector>

#include "model/linalg.h"

namespace ft::model {

struct RegressionOptions {
  double prior_precision = 1e-4;  // λ; small => near-OLS posterior mean
  bool fit_intercept = true;      // the ε term of Eq. 3
};

class BayesianLinearRegression {
 public:
  /// Fit on design matrix X (rows = observations) and targets y.
  void fit(const Matrix& x, std::span<const double> y,
           const RegressionOptions& opts = {});

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict_all(const Matrix& x) const;

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return beta_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

  /// Coefficient of determination on (x, y).
  [[nodiscard]] double r_squared(const Matrix& x,
                                 std::span<const double> y) const;

  /// Standardized regression coefficients β̂i = βi · sd(xi) / sd(y)
  /// (Bring 1994), the paper's measure of pattern importance.
  [[nodiscard]] std::vector<double> standardized_coefficients(
      const Matrix& x, std::span<const double> y) const;

 private:
  std::vector<double> beta_;
  double intercept_ = 0.0;
};

struct LooResult {
  std::vector<double> predicted;   // one per observation (clamped to [0,1])
  std::vector<double> error_rate;  // |pred - y| / y, the paper's metric
  double mean_error_rate = 0.0;
};

/// Leave-one-out validation: for each row, fit on the others and predict it.
[[nodiscard]] LooResult leave_one_out(const Matrix& x,
                                      std::span<const double> y,
                                      const RegressionOptions& opts = {});

}  // namespace ft::model
