#include "model/regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace ft::model {

namespace {

/// X with a leading all-ones column when fitting an intercept.
Matrix design(const Matrix& x, bool intercept) {
  if (!intercept) return x;
  Matrix d(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    d.at(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) d.at(r, c + 1) = x.at(r, c);
  }
  return d;
}

}  // namespace

void BayesianLinearRegression::fit(const Matrix& x, std::span<const double> y,
                                   const RegressionOptions& opts) {
  assert(x.rows() == y.size());
  const Matrix d = design(x, opts.fit_intercept);
  const Matrix dt = d.transpose();
  Matrix gram = dt * d;
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    gram.at(i, i) += opts.prior_precision;
  }
  std::vector<double> rhs(d.cols(), 0.0);
  for (std::size_t r = 0; r < d.rows(); ++r) {
    for (std::size_t c = 0; c < d.cols(); ++c) rhs[c] += d.at(r, c) * y[r];
  }
  auto w = cholesky_solve(gram, rhs);
  if (opts.fit_intercept) {
    intercept_ = w[0];
    beta_.assign(w.begin() + 1, w.end());
  } else {
    intercept_ = 0.0;
    beta_ = std::move(w);
  }
}

double BayesianLinearRegression::predict(
    std::span<const double> features) const {
  assert(features.size() == beta_.size());
  double s = intercept_;
  for (std::size_t i = 0; i < beta_.size(); ++i) s += beta_[i] * features[i];
  return s;
}

std::vector<double> BayesianLinearRegression::predict_all(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

double BayesianLinearRegression::r_squared(const Matrix& x,
                                           std::span<const double> y) const {
  const auto pred = predict_all(x);
  const double mean_y = util::mean(y);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - pred[i]) * (y[i] - pred[i]);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

std::vector<double> BayesianLinearRegression::standardized_coefficients(
    const Matrix& x, std::span<const double> y) const {
  const double sd_y = util::stdev(y);
  std::vector<double> out(beta_.size(), 0.0);
  if (sd_y == 0.0) return out;
  std::vector<double> col(x.rows());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    for (std::size_t r = 0; r < x.rows(); ++r) col[r] = x.at(r, c);
    out[c] = beta_[c] * util::stdev(col) / sd_y;
  }
  return out;
}

LooResult leave_one_out(const Matrix& x, std::span<const double> y,
                        const RegressionOptions& opts) {
  LooResult out;
  const std::size_t n = x.rows();
  out.predicted.resize(n);
  out.error_rate.resize(n);

  for (std::size_t hold = 0; hold < n; ++hold) {
    Matrix xt(n - 1, x.cols());
    std::vector<double> yt;
    yt.reserve(n - 1);
    std::size_t rr = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == hold) continue;
      for (std::size_t c = 0; c < x.cols(); ++c) xt.at(rr, c) = x.at(r, c);
      yt.push_back(y[r]);
      rr++;
    }
    BayesianLinearRegression reg;
    reg.fit(xt, yt, opts);
    const double raw = reg.predict(x.row(hold));
    const double pred = std::clamp(raw, 0.0, 1.0);
    out.predicted[hold] = pred;
    out.error_rate[hold] =
        y[hold] == 0.0 ? std::fabs(pred) : std::fabs(pred - y[hold]) / y[hold];
  }
  double s = 0.0;
  for (const double e : out.error_rate) s += e;
  out.mean_error_rate = s / static_cast<double>(n);
  return out;
}

}  // namespace ft::model
