#include "model/linalg.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ft::model {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::mul(std::span<const double> v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += at(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n && b.size() == n);

  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          throw std::runtime_error("cholesky_solve: matrix not SPD");
        }
        l.at(i, i) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l.at(k, ii) * x[k];
    x[ii] = s / l.at(ii, ii);
  }
  return x;
}

}  // namespace ft::model
