// IS — integer bucket sort, after NAS IS.
//
// Regions mirror Table I:
//   is_a  key generation (create_seq: randlc-driven keys)
//   is_b  bucket counting via the shift of Fig. 11:
//         bucket_size[key_array[i] >> shift]++
//   is_c  ranking: bucket pointers (prefix sums), scatter into key_buff,
//         full counting-sort ranks and the partial verification of five
//         test keys.
//
// Low bits of a key do not affect its bucket, so faults there are masked by
// the shift (Pattern 4), exactly the behaviour the paper reports for is_b.
#include <vector>

#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kNumKeys = 512;
constexpr std::int64_t kMaxKey = 512;           // 2^9
constexpr std::int64_t kNumBuckets = 16;        // 2^4
constexpr std::int64_t kShift = 5;              // log2(MaxKey/Buckets)
constexpr std::int64_t kNiter = 4;              // ranking iterations
constexpr std::int64_t kNumTestKeys = 5;

AppSpec build_is_impl(double ref) {
  hl::ProgramBuilder pb("is", __FILE__);

  auto g_keys = pb.global_i32("key_array", kNumKeys);  // NAS INT_TYPE is 32-bit
  auto g_bucket_size = pb.global_i64("bucket_size", kNumBuckets);
  auto g_bucket_ptrs = pb.global_i64("bucket_ptrs", kNumBuckets);
  auto g_key_buff = pb.global_i32("key_buff", kNumKeys);
  auto g_count = pb.global_i64("key_count", kMaxKey);
  auto g_rank_sum = pb.global_i64("rank_sum", 1);
  const std::vector<std::int64_t> test_index = {7, 91, 203, 377, 489};
  auto g_test_idx = pb.global_init_i64("test_index", test_index);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_is_a = pb.declare_region("is_a", __LINE__, __LINE__);
  const auto r_is_b = pb.declare_region("is_b", __LINE__, __LINE__);
  const auto r_is_c = pb.declare_region("is_c", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  // is_a: create_seq — keys from the randlc stream.
  f.region(r_is_a, [&] {
    f.for_("i", 0, kNumKeys, [&](hl::Value i) {
      auto k = f.fptosi(f.rand_() * static_cast<double>(kMaxKey),
                        ir::Type::I32);
      f.st(g_keys, i, k);
    });
  });

  f.for_("iter", 0, kNiter, [&](hl::Value iter) {
    f.region(r_main, [&] {
      // NAS IS perturbs one key per iteration before re-ranking.
      f.st(g_keys, iter, f.trunc_to_i32(iter * 7 % kMaxKey));

      f.region(r_is_b, [&] {  // Fig. 11: bucket counting by shift
        f.for_("z", 0, kNumBuckets, [&](hl::Value z) {
          f.st(g_bucket_size, z, 0);
        });
        f.for_("i", 0, kNumKeys, [&](hl::Value i) {
          auto b = f.ld(g_keys, i) >> kShift;
          f.st(g_bucket_size, b, f.ld(g_bucket_size, b) + 1);
        });
      });

      f.region(r_is_c, [&] {  // ranking
        // Bucket pointers: exclusive prefix sum.
        auto acc = f.var_i64("acc", 0);
        f.for_("b", 0, kNumBuckets, [&](hl::Value b) {
          f.st(g_bucket_ptrs, b, acc.get());
          acc.set(acc.get() + f.ld(g_bucket_size, b));
        });
        // Scatter keys into their buckets.
        f.for_("i", 0, kNumKeys, [&](hl::Value i) {
          auto k = f.ld(g_keys, i);
          auto b = k >> kShift;
          auto p = f.ld(g_bucket_ptrs, b);
          f.st(g_key_buff, p, k);
          f.st(g_bucket_ptrs, b, p + 1);
        });
        // Counting-sort ranks over the full key range.
        f.for_("z", 0, kMaxKey, [&](hl::Value z) { f.st(g_count, z, 0); });
        f.for_("i", 0, kNumKeys, [&](hl::Value i) {
          auto k = f.sext_to_i64(f.ld(g_keys, i));
          f.st(g_count, k, f.ld(g_count, k) + 1);
        });
        auto racc = f.var_i64("racc", 0);
        f.for_("z", 0, kMaxKey, [&](hl::Value z) {
          auto c = f.ld(g_count, z);
          f.st(g_count, z, racc.get());
          racc.set(racc.get() + c);
        });
        // Partial verification: accumulate the ranks of the test keys.
        auto rs = f.var_i64("rs", 0);
        f.for_("t", 0, kNumTestKeys, [&](hl::Value t) {
          auto k = f.sext_to_i64(f.ld(g_keys, f.ld(g_test_idx, t)));
          rs.set(rs.get() + f.ld(g_count, k));
        });
        f.st(g_rank_sum, 0, rs.get());
      });
    });
  });

  // Full verification: key_buff must be bucket-ordered (adjacent elements
  // from non-decreasing buckets) and the test-key rank sum must match.
  auto sorted = f.var_i64("sorted", 1);
  f.for_("i", 1, kNumKeys, [&](hl::Value i) {
    auto prev = f.ld(g_key_buff, i - 1) >> kShift;
    auto cur = f.ld(g_key_buff, i) >> kShift;
    f.if_(prev.gt(cur), [&] { sorted.set(0); });
  });
  auto rank_sum = f.ld(g_rank_sum, 0);
  auto rank_ok = f.select(
      f.fabs_(f.sitofp(rank_sum) - f.c_f64(ref)).lt(0.5), f.c_i64(1),
      f.c_i64(0));
  auto pass = sorted.get() * rank_ok;
  f.emit(pass);
  f.emit(rank_sum);
  f.emit(f.sitofp(rank_sum));  // bake reference
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "is";
  spec.analysis_regions = {{r_is_a, "is_a", 0, 0},
                           {r_is_b, "is_b", 0, 0},
                           {r_is_c, "is_c", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-9;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_is() {
  return bake([](double ref) { return build_is_impl(ref); });
}

}  // namespace ft::apps
