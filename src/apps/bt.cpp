// BT — line-implicit tridiagonal solves (Thomas algorithm) along both grid
// directions, after NAS BT's block-tridiagonal ADI structure (scalar blocks
// at this scale). Division-heavy forward elimination plus back substitution.
#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kN = 12;  // grid points per dimension
constexpr std::int64_t kNiter = 4;

AppSpec build_bt_impl(double ref) {
  hl::ProgramBuilder pb("bt", __FILE__);

  auto g_u = pb.global_f64("u", kN * kN);
  auto g_rhs = pb.global_f64("rhs", kN * kN);
  auto g_cp = pb.global_f64("cp", kN);  // Thomas c' coefficients
  auto g_dp = pb.global_f64("dp", kN);  // Thomas d' values

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_rhs = pb.declare_region("bt_rhs", __LINE__, __LINE__);
  const auto r_xsolve = pb.declare_region("bt_xsolve", __LINE__, __LINE__);
  const auto r_ysolve = pb.declare_region("bt_ysolve", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto idx = [&](hl::Value i, hl::Value j) { return i * kN + j; };

  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    f.st(g_u, i, f.rand_());
  });

  // Solve (2.5, -1, -1)-tridiagonal systems along one line, Thomas style.
  // line(i, t) returns the flattened index of the t-th point of line i.
  auto line_solve = [&](const std::function<hl::Value(hl::Value, hl::Value)>& at) {
    f.for_("i", 0, kN, [&](hl::Value i) {
      // Forward elimination.
      auto b0 = f.c_f64(2.5);
      f.st(g_cp, 0, f.c_f64(-1.0) / b0);
      f.st(g_dp, 0, f.ld(g_rhs, at(i, f.c_i64(0))) / b0);
      f.for_("t", 1, kN, [&](hl::Value t) {
        auto m = f.c_f64(2.5) + f.ld(g_cp, t - 1);
        f.st(g_cp, t, f.c_f64(-1.0) / m);
        f.st(g_dp, t,
             (f.ld(g_rhs, at(i, t)) + f.ld(g_dp, t - 1)) / m);
      });
      // Back substitution.
      f.st(g_u, at(i, f.c_i64(kN - 1)), f.ld(g_dp, kN - 1));
      f.for_("rt", 1, kN, [&](hl::Value rt) {
        auto t = f.c_i64(kN - 1) - rt;
        f.st(g_u, at(i, t),
             f.ld(g_dp, t) - f.ld(g_cp, t) * f.ld(g_u, at(i, t + 1)));
      });
    });
  };

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_rhs, [&] {  // rhs = u + 0.1 * laplacian-ish coupling
        f.for_("i", 1, kN - 1, [&](hl::Value i) {
          f.for_("j", 1, kN - 1, [&](hl::Value j) {
            auto nb = f.ld(g_u, idx(i - 1, j)) + f.ld(g_u, idx(i + 1, j)) +
                      f.ld(g_u, idx(i, j - 1)) + f.ld(g_u, idx(i, j + 1));
            f.st(g_rhs, idx(i, j), f.ld(g_u, idx(i, j)) + nb * 0.1);
          });
        });
      });
      f.region(r_xsolve, [&] {
        line_solve([&](hl::Value i, hl::Value t) { return idx(i, t); });
      });
      f.region(r_ysolve, [&] {
        line_solve([&](hl::Value i, hl::Value t) { return idx(t, i); });
      });
    });
  });

  auto chk = f.var_f64("chk", 0.0);
  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    chk.set(chk.get() + f.ld(g_u, i));
  });
  auto c = chk.get();
  auto pass = f.select(f.fabs_(c - f.c_f64(ref))
                           .le(f.fabs_(f.c_f64(ref)) * 1e-6 + 1e-10),
                       f.c_i64(1), f.c_i64(0));
  f.emit(pass);
  f.emit(c);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "bt";
  spec.analysis_regions = {{r_rhs, "bt_rhs", 0, 0},
                           {r_xsolve, "bt_xsolve", 0, 0},
                           {r_ysolve, "bt_ysolve", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-6;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_bt() {
  return bake([](double ref) { return build_bt_impl(ref); });
}

}  // namespace ft::apps
