// FT — 1D complex FFT with spectral evolution, after NAS FT: forward FFT,
// per-iteration phase evolution in frequency space, inverse FFT, checksum.
// The bit-reversal permutation is shift-driven and the floating checksum
// tolerates low-order mantissa noise — the truncation-friendly profile that
// gives FT its high success rate in Table IV.
#include <cmath>
#include <numbers>
#include <vector>

#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kNfft = 64;
constexpr std::int64_t kLogN = 6;
constexpr std::int64_t kNiter = 4;

AppSpec build_ft_impl(double ref) {
  hl::ProgramBuilder pb("ft", __FILE__);

  // Host-precomputed twiddle factors (NAS FT also precomputes its roots
  // of unity) and evolution phases.
  std::vector<double> wre(kNfft / 2), wim(kNfft / 2);
  for (std::int64_t k = 0; k < kNfft / 2; ++k) {
    const double ang = -2.0 * std::numbers::pi * k / kNfft;
    wre[k] = std::cos(ang);
    wim[k] = std::sin(ang);
  }
  std::vector<double> ere(kNfft), eim(kNfft);
  for (std::int64_t k = 0; k < kNfft; ++k) {
    const double ang = 2.0 * std::numbers::pi * k * 0.01;
    ere[k] = std::cos(ang);
    eim[k] = std::sin(ang);
  }

  auto g_re = pb.global_f64("re", kNfft);
  auto g_im = pb.global_f64("im", kNfft);
  auto g_tre = pb.global_f64("tre", kNfft);  // permutation scratch
  auto g_tim = pb.global_f64("tim", kNfft);
  auto g_wre = pb.global_init_f64("wre", wre);
  auto g_wim = pb.global_init_f64("wim", wim);
  auto g_ere = pb.global_init_f64("ere", ere);
  auto g_eim = pb.global_init_f64("eim", eim);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_rev = pb.declare_region("ft_bitrev", __LINE__, __LINE__);
  const auto r_bfly = pb.declare_region("ft_butterfly", __LINE__, __LINE__);
  const auto r_evolve = pb.declare_region("ft_evolve", __LINE__, __LINE__);

  const auto f_fft = pb.declare_function("fft_pass");
  const auto f_main = pb.declare_function("main");

  // One full in-place FFT over re/im (sign handled by conjugation outside).
  {
    auto f = pb.define(f_fft);
    f.at(__LINE__);
    f.region(r_rev, [&] {  // bit-reversal permutation (shift-driven)
      f.for_("i", 0, kNfft, [&](hl::Value i) {
        auto rev = f.var_i64("rev", 0);
        auto x = f.var_i64("x", 0);
        x.set(i);
        f.for_("b", 0, kLogN, [&](hl::Value) {
          rev.set((rev.get() << 1) | (x.get() & f.c_i64(1)));
          x.set(f.lshr(x.get(), 1));
        });
        f.st(g_tre, rev.get(), f.ld(g_re, i));
        f.st(g_tim, rev.get(), f.ld(g_im, i));
      });
      f.for_("i", 0, kNfft, [&](hl::Value i) {
        f.st(g_re, i, f.ld(g_tre, i));
        f.st(g_im, i, f.ld(g_tim, i));
      });
    });
    f.region(r_bfly, [&] {  // Cooley-Tukey stages
      auto len = f.var_i64("len", 2);
      f.for_("stage", 0, kLogN, [&](hl::Value) {
        auto half = len.get() / 2;
        auto stride = f.c_i64(kNfft) / len.get();
        f.for_("base", 0, f.c_i64(kNfft) / len.get(), [&](hl::Value blk) {
          auto start = blk * len.get();
          f.for_("k", 0, half, [&](hl::Value k) {
            auto tw = k * stride;
            auto wr = f.ld(g_wre, tw);
            auto wi = f.ld(g_wim, tw);
            auto a = start + k;
            auto b = a + half;
            auto xr = f.ld(g_re, b) * wr - f.ld(g_im, b) * wi;
            auto xi = f.ld(g_re, b) * wi + f.ld(g_im, b) * wr;
            auto ur = f.ld(g_re, a);
            auto ui = f.ld(g_im, a);
            f.st(g_re, a, ur + xr);
            f.st(g_im, a, ui + xi);
            f.st(g_re, b, ur - xr);
            f.st(g_im, b, ui - xi);
          });
        });
        len.set(len.get() * 2);
      });
    });
    f.ret();
  }

  {
    auto f = pb.define(f_main);
    f.at(__LINE__);
    f.for_("i", 0, kNfft, [&](hl::Value i) {
      f.st(g_re, i, f.rand_() - 0.5);
      f.st(g_im, i, f.rand_() - 0.5);
    });
    f.call(f_fft);  // forward transform once
    f.for_("it", 0, kNiter, [&](hl::Value) {
      f.region(r_main, [&] {
        f.region(r_evolve, [&] {  // frequency-space phase evolution
          f.for_("k", 0, kNfft, [&](hl::Value k) {
            auto er = f.ld(g_ere, k);
            auto ei = f.ld(g_eim, k);
            auto rr = f.ld(g_re, k);
            auto ii = f.ld(g_im, k);
            f.st(g_re, k, rr * er - ii * ei);
            f.st(g_im, k, rr * ei + ii * er);
          });
        });
        // Inverse FFT via conjugation, checksum in space domain, then
        // return to frequency space for the next evolution.
        f.for_("k", 0, kNfft, [&](hl::Value k) {
          f.st(g_im, k, f.neg(f.ld(g_im, k)));
        });
        f.call(f_fft);
        auto inv = f.c_f64(1.0 / static_cast<double>(kNfft));
        f.for_("k", 0, kNfft, [&](hl::Value k) {
          f.st(g_re, k, f.ld(g_re, k) * inv);
          f.st(g_im, k, f.neg(f.ld(g_im, k) * inv));
        });
        f.call(f_fft);  // back to frequency space
      });
    });

    // Checksum over a strided subset (NAS FT style).
    auto csum_r = f.var_f64("csum_r", 0.0);
    auto csum_i = f.var_f64("csum_i", 0.0);
    f.for_("j", 0, 16, [&](hl::Value j) {
      auto k = j * 5 % kNfft;
      csum_r.set(csum_r.get() + f.ld(g_re, k));
      csum_i.set(csum_i.get() + f.ld(g_im, k));
    });
    auto cr = csum_r.get();
    auto pass = f.select(f.fabs_(cr - f.c_f64(ref))
                             .le(f.fabs_(f.c_f64(ref)) * 1e-4 + 1e-8),
                         f.c_i64(1), f.c_i64(0));
    f.emit(pass);
    f.emit(csum_i.get());
    f.emit(cr);
    f.ret();
  }

  AppSpec spec;
  spec.name = "ft";
  spec.analysis_regions = {{r_rev, "ft_bitrev", 0, 0},
                           {r_bfly, "ft_butterfly", 0, 0},
                           {r_evolve, "ft_evolve", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-4;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_ft() {
  return bake([](double ref) { return build_ft_impl(ref); });
}

}  // namespace ft::apps
