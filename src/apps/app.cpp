#include "apps/app.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ft::apps {

fault::Verifier standard_verifier(double rel_tol) {
  const auto tol = fault::tolerance_verifier(rel_tol);
  return [tol](const std::vector<vm::OutputValue>& got,
               const std::vector<vm::OutputValue>& golden) {
    if (got.empty() || golden.empty()) return false;
    // The program's own verification phase must agree...
    if (got[0].type != ir::Type::I64 || got[0].bits != 1) return false;
    // ...and the payload must match the golden run within tolerance.
    return tol(got, golden);
  };
}

AppSpec bake(const std::function<AppSpec(double)>& build) {
  AppSpec draft = build(std::nan(""));
  const auto run = vm::Vm::run(draft.module, draft.base);
  if (!run.completed() || run.outputs.empty()) {
    throw std::runtime_error("apps::bake: draft run of '" + draft.name +
                             "' failed (trap " +
                             std::string(vm::trap_name(run.trap)) + ")");
  }
  const double ref = run.outputs.back().as_f64();
  AppSpec baked = build(ref);
  return baked;
}

const std::vector<std::string>& all_app_names() {
  static const std::vector<std::string> names = {
      "CG", "MG", "LU", "BT", "IS", "DC", "SP", "FT", "KMEANS", "LULESH"};
  return names;
}

AppSpec build_app(const std::string& name) {
  if (name == "CG") return build_cg();
  if (name == "MG") return build_mg();
  if (name == "IS") return build_is();
  if (name == "KMEANS") return build_kmeans();
  if (name == "LULESH") return build_lulesh();
  if (name == "LU") return build_lu();
  if (name == "BT") return build_bt();
  if (name == "SP") return build_sp();
  if (name == "DC") return build_dc();
  if (name == "FT") return build_ft();
  if (name == "CG-RANKED") return build_cg_ranked();
  if (name == "MG-RANKED") return build_mg_ranked();
  if (name == "LULESH-RANKED") return build_lulesh_ranked();
  throw std::runtime_error("unknown app: " + name);
}

}  // namespace ft::apps
