// KMEANS — k-means clustering, after Rodinia KMEANS.
//
// Regions mirror Table I:
//   k_a  feature initialization (the data set; input faults here are the
//        paper's crash-prone case)
//   k_b  centroid initialization from the first k points
//   k_c  assignment: euclid_dist_2 + the min-distance conditional of
//        Fig. 10 — the conditional masks faults in `feature` as long as the
//        winning cluster is unchanged (Pattern 3)
//   k_d  centroid update, then the temporary accumulators are cleared
//        (the free()-like operation the paper credits for k_d's resilience)
#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kNPoints = 128;
constexpr std::int64_t kNFeatures = 4;
constexpr std::int64_t kNClusters = 4;
constexpr std::int64_t kNiter = 1;  // one main iteration, as in Fig. 6

AppSpec build_kmeans_impl(double ref) {
  hl::ProgramBuilder pb("kmeans", __FILE__);

  auto g_feature = pb.global_f64("feature", kNPoints * kNFeatures);
  auto g_clusters = pb.global_f64("clusters", kNClusters * kNFeatures);
  auto g_member = pb.global_i64("membership", kNPoints);
  auto g_sum = pb.global_f64("new_centers", kNClusters * kNFeatures);
  auto g_cnt = pb.global_i64("new_counts", kNClusters);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_k_a = pb.declare_region("k_a", __LINE__, __LINE__);
  const auto r_k_b = pb.declare_region("k_b", __LINE__, __LINE__);
  const auto r_k_c = pb.declare_region("k_c", __LINE__, __LINE__);
  const auto r_k_d = pb.declare_region("k_d", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  f.region(r_k_a, [&] {  // read/generate the data set
    f.for_("i", 0, kNPoints * kNFeatures, [&](hl::Value i) {
      f.st(g_feature, i, f.rand_() * 10.0);
    });
  });

  f.region(r_k_b, [&] {  // first k points seed the centroids
    f.for_("c", 0, kNClusters, [&](hl::Value c) {
      f.for_("j", 0, kNFeatures, [&](hl::Value j) {
        f.st(g_clusters, c * kNFeatures + j,
             f.ld(g_feature, c * kNFeatures + j));
      });
    });
  });

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_k_c, [&] {  // assignment (Fig. 10)
        f.for_("z", 0, kNClusters * kNFeatures,
               [&](hl::Value z) { f.st(g_sum, z, 0.0); });
        f.for_("z", 0, kNClusters, [&](hl::Value z) { f.st(g_cnt, z, 0); });
        f.for_("i", 0, kNPoints, [&](hl::Value i) {
          auto min_dist = f.var_f64("min_dist", 1e30);
          auto index = f.var_i64("index", 0);
          f.for_("c", 0, kNClusters, [&](hl::Value c) {
            // dist = euclid_dist_2(pt, pts[c], nfeatures)
            auto dist = f.var_f64("dist", 0.0);
            f.for_("j", 0, kNFeatures, [&](hl::Value j) {
              auto d = f.ld(g_feature, i * kNFeatures + j) -
                       f.ld(g_clusters, c * kNFeatures + j);
              dist.set(dist.get() + d * d);
            });
            // if (dist < min_dist) { min_dist = dist; index = c; }
            f.if_(dist.get().lt(min_dist.get()), [&] {
              min_dist.set(dist.get());
              index.set(c);
            });
          });
          f.st(g_member, i, index.get());
          f.st(g_cnt, index.get(), f.ld(g_cnt, index.get()) + 1);
          f.for_("j", 0, kNFeatures, [&](hl::Value j) {
            auto s = index.get() * kNFeatures + j;
            f.st(g_sum, s, f.ld(g_sum, s) + f.ld(g_feature, i * kNFeatures + j));
          });
        });
      });

      f.region(r_k_d, [&] {  // centroid update + temporary teardown
        f.for_("c", 0, kNClusters, [&](hl::Value c) {
          auto n = f.ld(g_cnt, c);
          f.if_(n.gt(0), [&] {
            f.for_("j", 0, kNFeatures, [&](hl::Value j) {
              f.st(g_clusters, c * kNFeatures + j,
                   f.ld(g_sum, c * kNFeatures + j) / f.sitofp(n));
            });
          });
        });
        // The Rodinia code frees its temporaries here; clearing them plays
        // the same role — corrupted accumulator cells die.
        f.for_("z", 0, kNClusters * kNFeatures,
               [&](hl::Value z) { f.st(g_sum, z, 0.0); });
        f.for_("z", 0, kNClusters, [&](hl::Value z) { f.st(g_cnt, z, 0); });
      });
    });
  });

  // Verification: within-cluster sum of squares against the baked golden.
  auto wcss = f.var_f64("wcss", 0.0);
  f.for_("i", 0, kNPoints, [&](hl::Value i) {
    auto c = f.ld(g_member, i);
    f.for_("j", 0, kNFeatures, [&](hl::Value j) {
      auto d = f.ld(g_feature, i * kNFeatures + j) -
               f.ld(g_clusters, c * kNFeatures + j);
      wcss.set(wcss.get() + d * d);
    });
  });
  auto w = wcss.get();
  auto pass = f.select(w.le(f.c_f64(ref) * 1.05 + 1e-12), f.c_i64(1),
                       f.c_i64(0));
  f.emit(pass);
  f.emit(w);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "kmeans";
  spec.analysis_regions = {{r_k_a, "k_a", 0, 0},
                           {r_k_b, "k_b", 0, 0},
                           {r_k_c, "k_c", 0, 0},
                           {r_k_d, "k_d", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 0.05;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_kmeans() {
  return bake([](double ref) { return build_kmeans_impl(ref); });
}

}  // namespace ft::apps
