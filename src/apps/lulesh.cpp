// LULESH proxy — the hourglass-force kernel and nodal update of LULESH's
// LagrangeNodal phase, on a 2x2x2 element / 3x3x3 node mesh.
//
// The single analysis region l_a covers the per-element hourglass force
// computation transcribed from the paper's Fig. 8:
//     hxx[i]  = sum_n hourgam[n][i] * xd[node(n)]        (4-wide gather)
//     hgfz[n] = coeff * sum_i hourgam[n][i] * hxx[i]     (8-wide scatter)
// hourgam[][] and hxx[] are temporaries that die after the element — the
// Dead Corrupted Locations shape of Fig. 7 — and the force scatter walks
// the nodelist indirection, whose corruption is the paper's explanation for
// LULESH's crash-heavy, low-success-rate profile. Final energies print in
// truncated "%12.6e" form (Pattern 5).
#include <vector>

#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kElems = 8;    // 2x2x2 elements
constexpr std::int64_t kNodes = 27;   // 3x3x3 nodes
constexpr std::int64_t kNiter = 10;   // time steps
constexpr double kDt = 0.01;
constexpr double kCoeff = -0.2;

std::vector<std::int64_t> make_nodelist() {
  std::vector<std::int64_t> nl(kElems * 8);
  std::int64_t e = 0;
  auto node = [](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (i * 3 + j) * 3 + k;
  };
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      for (std::int64_t k = 0; k < 2; ++k) {
        std::int64_t* c = &nl[e * 8];
        c[0] = node(i, j, k);
        c[1] = node(i, j, k + 1);
        c[2] = node(i, j + 1, k);
        c[3] = node(i, j + 1, k + 1);
        c[4] = node(i + 1, j, k);
        c[5] = node(i + 1, j, k + 1);
        c[6] = node(i + 1, j + 1, k);
        c[7] = node(i + 1, j + 1, k + 1);
        e++;
      }
    }
  }
  return nl;
}

AppSpec build_lulesh_impl(double ref) {
  hl::ProgramBuilder pb("lulesh", __FILE__);

  auto g_nodelist = pb.global_init_i64("nodelist", make_nodelist());
  auto g_xd = pb.global_f64("xd", kNodes);   // nodal velocities
  auto g_fz = pb.global_f64("fz", kNodes);   // nodal forces
  auto g_z = pb.global_f64("z", kNodes);     // nodal positions
  // Hourglass shape vectors (the +-1 tensor basis used by LULESH).
  std::vector<double> gamma(8 * 4);
  const double gm[4][8] = {{1, 1, -1, -1, -1, -1, 1, 1},
                           {1, -1, -1, 1, -1, 1, 1, -1},
                           {1, -1, 1, -1, 1, -1, 1, -1},
                           {-1, 1, -1, 1, 1, -1, 1, -1}};
  for (std::int64_t n = 0; n < 8; ++n) {
    for (std::int64_t i = 0; i < 4; ++i) gamma[n * 4 + i] = gm[i][n];
  }
  auto g_gamma = pb.global_init_f64("gamma", gamma);
  auto g_hourgam = pb.global_f64("hourgam", 8 * 4);  // per-element temp
  auto g_hxx = pb.global_f64("hxx", 4);              // per-element temp

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_l_a = pb.declare_region("l_a", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  // Initial velocities: a radial kick from the randlc stream.
  f.for_("n", 0, kNodes, [&](hl::Value n) {
    f.st(g_xd, n, f.rand_() * 0.1 + 0.01);
    f.st(g_z, n, f.sitofp(n) * 0.05);
  });

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_l_a, [&] {  // LagrangeNodal-like: hourglass forces
        f.for_("n", 0, kNodes, [&](hl::Value n) { f.st(g_fz, n, 0.0); });
        f.for_("e", 0, kElems, [&](hl::Value e) {
          // hourgam: element-local modulation of the gamma basis.
          f.for_("n", 0, 8, [&](hl::Value n) {
            auto nd = f.ld(g_nodelist, e * 8 + n);
            f.for_("i", 0, 4, [&](hl::Value i) {
              f.st(g_hourgam, n * 4 + i,
                   f.ld(g_gamma, n * 4 + i) +
                       f.ld(g_z, nd) * 0.01);
            });
          });
          // Fig. 8, first loop: hxx[i] = sum_n hourgam[n][i] * xd[node n].
          f.for_("i", 0, 4, [&](hl::Value i) {
            auto acc = f.var_f64("acc", 0.0);
            f.for_("n", 0, 8, [&](hl::Value n) {
              auto nd = f.ld(g_nodelist, e * 8 + n);
              acc.set(acc.get() +
                      f.ld(g_hourgam, n * 4 + i) * f.ld(g_xd, nd));
            });
            f.st(g_hxx, i, acc.get());
          });
          // Fig. 8, second loop: hgfz[n] scattered through the nodelist.
          f.for_("n", 0, 8, [&](hl::Value n) {
            auto hg = (f.ld(g_hourgam, n * 4 + 0) * f.ld(g_hxx, 0) +
                       f.ld(g_hourgam, n * 4 + 1) * f.ld(g_hxx, 1) +
                       f.ld(g_hourgam, n * 4 + 2) * f.ld(g_hxx, 2) +
                       f.ld(g_hourgam, n * 4 + 3) * f.ld(g_hxx, 3)) *
                      kCoeff;
            auto nd = f.ld(g_nodelist, e * 8 + n);
            f.st(g_fz, nd, f.ld(g_fz, nd) + hg);
          });
        });
        // Nodal integration.
        f.for_("n", 0, kNodes, [&](hl::Value n) {
          auto vel = f.ld(g_xd, n) + f.ld(g_fz, n) * kDt;
          f.st(g_xd, n, vel);
          f.st(g_z, n, f.ld(g_z, n) + vel * kDt);
        });
      });
    });
  });

  // Verification: kinetic-energy analog, reported in truncated form
  // ("%12.6e", Pattern 5) and compared against the baked golden value.
  auto energy = f.var_f64("energy", 0.0);
  f.for_("n", 0, kNodes, [&](hl::Value n) {
    auto v = f.ld(g_xd, n);
    energy.set(energy.get() + v * v);
  });
  auto en = energy.get();
  auto errv = f.fabs_(en - f.c_f64(ref));
  auto pass = f.select(errv.le(f.fabs_(f.c_f64(ref)) * 1e-4 + 1e-12),
                       f.c_i64(1), f.c_i64(0));
  f.emit(pass);
  f.emit_trunc(en, 6);
  f.emit(en);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "lulesh";
  spec.analysis_regions = {{r_l_a, "l_a", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-4;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

// --- rank-decomposed LULESH (lulesh-ranked) ----------------------------------
//
// Element decomposition for the cross-rank campaigns: each rank owns a
// contiguous element range [elo, ehi) from mpi_rank()/mpi_size() (runtime,
// so a single-rank run owns all elements — the bake() reference). Hourglass
// forces are computed per owned element into a rank-local partial force
// array; the nodal force assembly is an MPI_Allreduce per node (boundary
// nodes genuinely receive contributions from elements on different ranks —
// the real LULESH force-exchange shape at this scale), after which the
// nodal integration is replicated on identical data. The reported energy is
// reduced with Max, which makes the collective itself a resilience
// mechanism: a downward-perturbed rank contribution is absorbed outright.
AppSpec build_lulesh_ranked_impl(double ref) {
  hl::ProgramBuilder pb("lulesh-ranked", __FILE__);

  auto g_nodelist = pb.global_init_i64("nodelist", make_nodelist());
  auto g_xd = pb.global_f64("xd", kNodes);
  auto g_fz = pb.global_f64("fz", kNodes);
  auto g_z = pb.global_f64("z", kNodes);
  std::vector<double> gamma(8 * 4);
  const double gm[4][8] = {{1, 1, -1, -1, -1, -1, 1, 1},
                           {1, -1, -1, 1, -1, 1, 1, -1},
                           {1, -1, 1, -1, 1, -1, 1, -1},
                           {-1, 1, -1, 1, 1, -1, 1, -1}};
  for (std::int64_t n = 0; n < 8; ++n) {
    for (std::int64_t i = 0; i < 4; ++i) gamma[n * 4 + i] = gm[i][n];
  }
  auto g_gamma = pb.global_init_f64("gamma", gamma);
  auto g_hourgam = pb.global_f64("hourgam", 8 * 4);
  auto g_hxx = pb.global_f64("hxx", 4);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_l_a = pb.declare_region("l_a", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto rank = f.mpi_rank();
  auto size = f.mpi_size();
  auto elo = rank * kElems / size;
  auto ehi = (rank + 1) * kElems / size;

  // Identical randlc stream on every rank: replicated initial state.
  f.for_("n", 0, kNodes, [&](hl::Value n) {
    f.st(g_xd, n, f.rand_() * 0.1 + 0.01);
    f.st(g_z, n, f.sitofp(n) * 0.05);
  });

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_l_a, [&] {
        f.for_("n", 0, kNodes, [&](hl::Value n) { f.st(g_fz, n, 0.0); });
        f.for_("e", elo, ehi, [&](hl::Value e) {  // owned elements only
          f.for_("n", 0, 8, [&](hl::Value n) {
            auto nd = f.ld(g_nodelist, e * 8 + n);
            f.for_("i", 0, 4, [&](hl::Value i) {
              f.st(g_hourgam, n * 4 + i,
                   f.ld(g_gamma, n * 4 + i) + f.ld(g_z, nd) * 0.01);
            });
          });
          f.for_("i", 0, 4, [&](hl::Value i) {
            auto acc = f.var_f64("acc", 0.0);
            f.for_("n", 0, 8, [&](hl::Value n) {
              auto nd = f.ld(g_nodelist, e * 8 + n);
              acc.set(acc.get() +
                      f.ld(g_hourgam, n * 4 + i) * f.ld(g_xd, nd));
            });
            f.st(g_hxx, i, acc.get());
          });
          f.for_("n", 0, 8, [&](hl::Value n) {
            auto hg = (f.ld(g_hourgam, n * 4 + 0) * f.ld(g_hxx, 0) +
                       f.ld(g_hourgam, n * 4 + 1) * f.ld(g_hxx, 1) +
                       f.ld(g_hourgam, n * 4 + 2) * f.ld(g_hxx, 2) +
                       f.ld(g_hourgam, n * 4 + 3) * f.ld(g_hxx, 3)) *
                      kCoeff;
            auto nd = f.ld(g_nodelist, e * 8 + n);
            f.st(g_fz, nd, f.ld(g_fz, nd) + hg);
          });
        });
        // Nodal force assembly: one reduction per node sums the per-rank
        // partial scatters (boundary nodes couple the subdomains).
        f.for_("n", 0, kNodes, [&](hl::Value n) {
          f.st(g_fz, n, f.mpi_allreduce(f.ld(g_fz, n), ir::ReduceOp::Sum));
        });
        // Nodal integration: replicated on identical assembled forces.
        f.for_("n", 0, kNodes, [&](hl::Value n) {
          auto vel = f.ld(g_xd, n) + f.ld(g_fz, n) * kDt;
          f.st(g_xd, n, vel);
          f.st(g_z, n, f.ld(g_z, n) + vel * kDt);
        });
      });
    });
  });

  auto energy = f.var_f64("energy", 0.0);
  f.for_("n", 0, kNodes, [&](hl::Value n) {
    auto v = f.ld(g_xd, n);
    energy.set(energy.get() + v * v);
  });
  auto en = f.mpi_allreduce(energy.get(), ir::ReduceOp::Max);
  auto errv = f.fabs_(en - f.c_f64(ref));
  auto pass = f.select(errv.le(f.fabs_(f.c_f64(ref)) * 1e-4 + 1e-12),
                       f.c_i64(1), f.c_i64(0));
  f.emit(pass);
  f.emit_trunc(en, 6);
  f.emit(en);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "lulesh-ranked";
  spec.analysis_regions = {{r_l_a, "l_a", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-4;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_lulesh() {
  return bake([](double ref) { return build_lulesh_impl(ref); });
}

AppSpec build_lulesh_ranked() {
  return bake([](double ref) { return build_lulesh_ranked_impl(ref); });
}

}  // namespace ft::apps
