// MG — a two-level V-cycle multigrid smoother on a 3D grid, after NAS MG.
//
// The analysis regions mirror Table I:
//   mg_a  resid: r = v - A u (7-point stencil)
//   mg_b  rprj3: restriction of r to the coarse grid
//   mg_c  coarse psinv + interp (prolongation of the coarse correction)
//   mg_d  fine-grid psinv — a line-for-line transcription of the paper's
//         Fig. 9: u[i3][i2][i1] += c[0]*r[...] + c[1]*(...+r1[i1]) +
//         c[2]*(r2[i1]+r1[i1-1]+r1[i1+1]), with the temporary rows r1/r2
//         recomputed per (i3,i2) pair (Dead Corrupted Location fodder).
//
// The smoother contracts, so an injected error in u shrinks every time the
// V-cycle re-runs — the Repeated Additions dynamics of Table II.
#include <vector>

#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kN = 8;              // fine grid points per dimension
constexpr std::int64_t kM = 4;              // coarse grid points per dimension
constexpr std::int64_t kN3 = kN * kN * kN;  // 512
constexpr std::int64_t kM3 = kM * kM * kM;  // 64
constexpr std::int64_t kNiter = 4;
constexpr double kC0 = 1.0 / 6.0;   // psinv center weight
constexpr double kC1 = 1.0 / 24.0;  // face-neighbor weight
constexpr double kC2 = 1.0 / 48.0;  // edge-neighbor weight

AppSpec build_mg_impl(double ref) {
  hl::ProgramBuilder pb("mg", __FILE__);

  // Source term: a handful of +1/-1 point charges (NAS MG style).
  std::vector<double> v_init(kN3, 0.0);
  auto at = [](std::int64_t i3, std::int64_t i2, std::int64_t i1) {
    return (i3 * kN + i2) * kN + i1;
  };
  v_init[at(2, 2, 2)] = 1.0;
  v_init[at(5, 5, 5)] = -1.0;
  v_init[at(2, 5, 3)] = 1.0;
  v_init[at(5, 2, 6)] = -1.0;

  auto g_v = pb.global_init_f64("v", v_init);
  auto g_u = pb.global_f64("u", kN3);
  auto g_r = pb.global_f64("r", kN3);
  auto g_u2 = pb.global_f64("u2", kM3);
  auto g_r2 = pb.global_f64("r2", kM3);
  auto g_r1row = pb.global_f64("r1row", kN);   // Fig. 9's r1[] temp row
  auto g_r2row = pb.global_f64("r2row", kN);   // Fig. 9's r2[] temp row

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_mg_a = pb.declare_region("mg_a", __LINE__, __LINE__);
  const auto r_mg_b = pb.declare_region("mg_b", __LINE__, __LINE__);
  const auto r_mg_c = pb.declare_region("mg_c", __LINE__, __LINE__);
  const auto r_mg_d = pb.declare_region("mg_d", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto fine_idx = [&](hl::Value i3, hl::Value i2, hl::Value i1) {
    return (i3 * kN + i2) * kN + i1;
  };
  auto coarse_idx = [&](hl::Value i3, hl::Value i2, hl::Value i1) {
    return (i3 * kM + i2) * kM + i1;
  };

  // r = v - A u over the fine interior; A = 7-point (6u - sum(neighbors)).
  auto resid = [&] {
    f.for_("i3", 1, kN - 1, [&](hl::Value i3) {
      f.for_("i2", 1, kN - 1, [&](hl::Value i2) {
        f.for_("i1", 1, kN - 1, [&](hl::Value i1) {
          auto c = f.ld(g_u, fine_idx(i3, i2, i1));
          auto nb = f.ld(g_u, fine_idx(i3, i2, i1 - 1)) +
                    f.ld(g_u, fine_idx(i3, i2, i1 + 1)) +
                    f.ld(g_u, fine_idx(i3, i2 - 1, i1)) +
                    f.ld(g_u, fine_idx(i3, i2 + 1, i1)) +
                    f.ld(g_u, fine_idx(i3 - 1, i2, i1)) +
                    f.ld(g_u, fine_idx(i3 + 1, i2, i1));
          auto au = c * 6.0 - nb;
          f.st(g_r, fine_idx(i3, i2, i1), f.ld(g_v, fine_idx(i3, i2, i1)) - au);
        });
      });
    });
  };

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_mg_a, [&] { resid(); });

      f.region(r_mg_b, [&] {  // rprj3: r2 = restrict(r), 8-child average
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto i3 = j3 * 2, i2 = j2 * 2, i1 = j1 * 2;
              auto s = f.ld(g_r, fine_idx(i3, i2, i1)) +
                       f.ld(g_r, fine_idx(i3, i2, i1 + 1)) +
                       f.ld(g_r, fine_idx(i3, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3, i2 + 1, i1 + 1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2, i1 + 1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 + 1, i1 + 1));
              f.st(g_r2, coarse_idx(j3, j2, j1), s * 0.125);
            });
          });
        });
      });

      f.region(r_mg_c, [&] {  // coarse psinv + interp back onto the fine grid
        f.for_("z", 0, kM3, [&](hl::Value z) { f.st(g_u2, z, 0.0); });
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto rc = f.ld(g_r2, coarse_idx(j3, j2, j1));
              f.st(g_u2, coarse_idx(j3, j2, j1),
                   f.ld(g_u2, coarse_idx(j3, j2, j1)) + rc * (4.0 * kC0));
            });
          });
        });
        // interp: each coarse correction feeds its 8 fine children.
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto c = f.ld(g_u2, coarse_idx(j3, j2, j1));
              auto i3 = j3 * 2, i2 = j2 * 2, i1 = j1 * 2;
              for (std::int64_t d3 = 0; d3 < 2; ++d3) {
                for (std::int64_t d2 = 0; d2 < 2; ++d2) {
                  for (std::int64_t d1 = 0; d1 < 2; ++d1) {
                    auto idx = fine_idx(i3 + d3, i2 + d2, i1 + d1);
                    f.st(g_u, idx, f.ld(g_u, idx) + c);
                  }
                }
              }
            });
          });
        });
      });

      f.region(r_mg_d, [&] {  // fine psinv: the paper's Fig. 9
        resid();               // refresh r after the coarse correction
        f.for_("i3", 1, kN - 1, [&](hl::Value i3) {
          f.for_("i2", 1, kN - 1, [&](hl::Value i2) {
            f.for_("i1", 0, kN, [&](hl::Value i1) {
              f.st(g_r1row, i1,
                   f.ld(g_r, fine_idx(i3, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3 - 1, i2, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2, i1)));
              f.st(g_r2row, i1,
                   f.ld(g_r, fine_idx(i3 - 1, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3 - 1, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 + 1, i1)));
            });
            f.for_("i1", 1, kN - 1, [&](hl::Value i1) {
              auto idx = fine_idx(i3, i2, i1);
              f.st(g_u, idx,
                   f.ld(g_u, idx) + f.ld(g_r, idx) * kC0 +
                       (f.ld(g_r, fine_idx(i3, i2, i1 - 1)) +
                        f.ld(g_r, fine_idx(i3, i2, i1 + 1)) +
                        f.ld(g_r1row, i1)) *
                           kC1 +
                       (f.ld(g_r2row, i1) + f.ld(g_r1row, i1 - 1) +
                        f.ld(g_r1row, i1 + 1)) *
                           kC2);
            });
          });
        });
      });
    });
  });

  // Verification: final residual norm against the baked golden norm.
  resid();
  auto sum = f.var_f64("sum", 0.0);
  f.for_("j", 0, kN3, [&](hl::Value j) {
    auto rj = f.ld(g_r, j);
    sum.set(sum.get() + rj * rj);
  });
  auto rnorm = f.fsqrt(sum.get());
  // Global norm via MiniMPI (identity in single-rank worlds).
  auto global = f.mpi_allreduce(rnorm, ir::ReduceOp::Sum) /
                f.sitofp(f.mpi_size());
  auto pass = f.select(global.le(f.c_f64(ref) * 1.25 + 1e-12), f.c_i64(1),
                       f.c_i64(0));
  f.emit(pass);
  f.emit(global);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "mg";
  spec.analysis_regions = {{r_mg_a, "mg_a", 0, 0},
                           {r_mg_b, "mg_b", 0, 0},
                           {r_mg_c, "mg_c", 0, 0},
                           {r_mg_d, "mg_d", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 0.25;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

// --- rank-decomposed MG (mg-ranked) ------------------------------------------
//
// Slab decomposition for the cross-rank campaigns: each rank owns a
// contiguous range of interior fine-grid planes i3 in [lo3, hi3), computed
// from mpi_rank()/mpi_size() at runtime (a single-rank run owns everything,
// which is what bake() measures). The stencils read one plane of halo on
// each side, exchanged over the p2p channels (sends first, then receives —
// channels are unbounded, so the symmetric pattern cannot deadlock); the
// restriction (mg_b) reduces per-coarse-cell partial sums with
// MPI_Allreduce; the coarse-grid solve (mg_c's psinv on the 4^3 grid) is
// replicated — every rank holds the identical allreduced coarse residual —
// while its interpolation back onto the fine grid touches owned planes
// only. The final residual norm is a partial sum over owned planes,
// allreduced.
AppSpec build_mg_ranked_impl(double ref) {
  hl::ProgramBuilder pb("mg-ranked", __FILE__);

  std::vector<double> v_init(kN3, 0.0);
  auto at = [](std::int64_t i3, std::int64_t i2, std::int64_t i1) {
    return (i3 * kN + i2) * kN + i1;
  };
  v_init[at(2, 2, 2)] = 1.0;
  v_init[at(5, 5, 5)] = -1.0;
  v_init[at(2, 5, 3)] = 1.0;
  v_init[at(5, 2, 6)] = -1.0;

  auto g_v = pb.global_init_f64("v", v_init);
  auto g_u = pb.global_f64("u", kN3);
  auto g_r = pb.global_f64("r", kN3);
  auto g_u2 = pb.global_f64("u2", kM3);
  auto g_r2 = pb.global_f64("r2", kM3);
  auto g_r1row = pb.global_f64("r1row", kN);
  auto g_r2row = pb.global_f64("r2row", kN);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_mg_a = pb.declare_region("mg_a", __LINE__, __LINE__);
  const auto r_mg_b = pb.declare_region("mg_b", __LINE__, __LINE__);
  const auto r_mg_c = pb.declare_region("mg_c", __LINE__, __LINE__);
  const auto r_mg_d = pb.declare_region("mg_d", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto rank = f.mpi_rank();
  auto size = f.mpi_size();
  // Owned interior planes [lo3, hi3) partition [1, kN-1).
  auto lo3 = rank * (kN - 2) / size + 1;
  auto hi3 = (rank + 1) * (kN - 2) / size + 1;

  auto fine_idx = [&](hl::Value i3, hl::Value i2, hl::Value i1) {
    return (i3 * kN + i2) * kN + i1;
  };
  auto coarse_idx = [&](hl::Value j3, hl::Value j2, hl::Value j1) {
    return (j3 * kM + j2) * kM + j1;
  };

  /// Refresh this rank's halo planes of `vec`: boundary owned planes go to
  /// the neighbors, their boundary planes come back.
  auto halo = [&](hl::GlobalArray vec) {
    auto send_plane = [&](hl::Value dest, hl::Value i3) {
      f.for_("i2", 0, kN, [&](hl::Value i2) {
        f.for_("i1", 0, kN, [&](hl::Value i1) {
          f.mpi_send(dest, f.ld(vec, fine_idx(i3, i2, i1)));
        });
      });
    };
    auto recv_plane = [&](hl::Value src, hl::Value i3) {
      f.for_("i2", 0, kN, [&](hl::Value i2) {
        f.for_("i1", 0, kN, [&](hl::Value i1) {
          f.st(vec, fine_idx(i3, i2, i1), f.mpi_recv(src));
        });
      });
    };
    f.if_(rank.gt(0), [&] { send_plane(rank - 1, lo3); });
    f.if_(rank.lt(size - 1), [&] { send_plane(rank + 1, hi3 - 1); });
    f.if_(rank.gt(0), [&] { recv_plane(rank - 1, lo3 - 1); });
    f.if_(rank.lt(size - 1), [&] { recv_plane(rank + 1, hi3); });
  };

  // r = v - A u over the owned planes (halo of u must be fresh).
  auto resid = [&] {
    f.for_("i3", lo3, hi3, [&](hl::Value i3) {
      f.for_("i2", 1, kN - 1, [&](hl::Value i2) {
        f.for_("i1", 1, kN - 1, [&](hl::Value i1) {
          auto c = f.ld(g_u, fine_idx(i3, i2, i1));
          auto nb = f.ld(g_u, fine_idx(i3, i2, i1 - 1)) +
                    f.ld(g_u, fine_idx(i3, i2, i1 + 1)) +
                    f.ld(g_u, fine_idx(i3, i2 - 1, i1)) +
                    f.ld(g_u, fine_idx(i3, i2 + 1, i1)) +
                    f.ld(g_u, fine_idx(i3 - 1, i2, i1)) +
                    f.ld(g_u, fine_idx(i3 + 1, i2, i1));
          auto au = c * 6.0 - nb;
          f.st(g_r, fine_idx(i3, i2, i1), f.ld(g_v, fine_idx(i3, i2, i1)) - au);
        });
      });
    });
  };

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      halo(g_u);
      f.region(r_mg_a, [&] { resid(); });

      f.region(r_mg_b, [&] {  // rprj3: per-cell partial sums, allreduced
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto part = f.var_f64("part", 0.0);
              auto i2 = j2 * 2, i1 = j1 * 2;
              for (std::int64_t d3 = 0; d3 < 2; ++d3) {
                auto i3 = j3 * 2 + d3;
                f.if_(i3.ge(lo3) & i3.lt(hi3), [&] {
                  part.set(part.get() + f.ld(g_r, fine_idx(i3, i2, i1)) +
                           f.ld(g_r, fine_idx(i3, i2, i1 + 1)) +
                           f.ld(g_r, fine_idx(i3, i2 + 1, i1)) +
                           f.ld(g_r, fine_idx(i3, i2 + 1, i1 + 1)));
                });
              }
              auto s = f.mpi_allreduce(part.get(), ir::ReduceOp::Sum);
              f.st(g_r2, coarse_idx(j3, j2, j1), s * 0.125);
            });
          });
        });
      });

      f.region(r_mg_c, [&] {  // coarse psinv (replicated) + owned interp
        f.for_("z", 0, kM3, [&](hl::Value z) { f.st(g_u2, z, 0.0); });
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto rc = f.ld(g_r2, coarse_idx(j3, j2, j1));
              f.st(g_u2, coarse_idx(j3, j2, j1),
                   f.ld(g_u2, coarse_idx(j3, j2, j1)) + rc * (4.0 * kC0));
            });
          });
        });
        f.for_("j3", 1, kM - 1, [&](hl::Value j3) {
          f.for_("j2", 1, kM - 1, [&](hl::Value j2) {
            f.for_("j1", 1, kM - 1, [&](hl::Value j1) {
              auto c = f.ld(g_u2, coarse_idx(j3, j2, j1));
              for (std::int64_t d3 = 0; d3 < 2; ++d3) {
                auto i3 = j3 * 2 + d3;
                f.if_(i3.ge(lo3) & i3.lt(hi3), [&] {
                  for (std::int64_t d2 = 0; d2 < 2; ++d2) {
                    for (std::int64_t d1 = 0; d1 < 2; ++d1) {
                      auto idx = fine_idx(i3, j2 * 2 + d2, j1 * 2 + d1);
                      f.st(g_u, idx, f.ld(g_u, idx) + c);
                    }
                  }
                });
              }
            });
          });
        });
      });

      halo(g_u);              // mg_c updated owned planes of u
      f.region(r_mg_d, [&] {  // fine psinv over owned planes (Fig. 9)
        resid();
        halo(g_r);  // the row temporaries read r from neighbor planes
        f.for_("i3", lo3, hi3, [&](hl::Value i3) {
          f.for_("i2", 1, kN - 1, [&](hl::Value i2) {
            f.for_("i1", 0, kN, [&](hl::Value i1) {
              f.st(g_r1row, i1,
                   f.ld(g_r, fine_idx(i3, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3 - 1, i2, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2, i1)));
              f.st(g_r2row, i1,
                   f.ld(g_r, fine_idx(i3 - 1, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3 - 1, i2 + 1, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 - 1, i1)) +
                       f.ld(g_r, fine_idx(i3 + 1, i2 + 1, i1)));
            });
            f.for_("i1", 1, kN - 1, [&](hl::Value i1) {
              auto idx = fine_idx(i3, i2, i1);
              f.st(g_u, idx,
                   f.ld(g_u, idx) + f.ld(g_r, idx) * kC0 +
                       (f.ld(g_r, fine_idx(i3, i2, i1 - 1)) +
                        f.ld(g_r, fine_idx(i3, i2, i1 + 1)) +
                        f.ld(g_r1row, i1)) *
                           kC1 +
                       (f.ld(g_r2row, i1) + f.ld(g_r1row, i1 - 1) +
                        f.ld(g_r1row, i1 + 1)) *
                           kC2);
            });
          });
        });
      });
    });
  });

  // Verification: partial residual norm over owned planes, allreduced — the
  // result is identical on every rank.
  halo(g_u);
  resid();
  auto sum = f.var_f64("sum", 0.0);
  f.for_("i3", lo3, hi3, [&](hl::Value i3) {
    f.for_("i2", 0, kN, [&](hl::Value i2) {
      f.for_("i1", 0, kN, [&](hl::Value i1) {
        auto rj = f.ld(g_r, fine_idx(i3, i2, i1));
        sum.set(sum.get() + rj * rj);
      });
    });
  });
  auto rnorm = f.fsqrt(f.mpi_allreduce(sum.get(), ir::ReduceOp::Sum));
  auto pass = f.select(rnorm.le(f.c_f64(ref) * 1.25 + 1e-12), f.c_i64(1),
                       f.c_i64(0));
  f.emit(pass);
  f.emit(rnorm);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "mg-ranked";
  spec.analysis_regions = {{r_mg_a, "mg_a", 0, 0},
                           {r_mg_b, "mg_b", 0, 0},
                           {r_mg_c, "mg_c", 0, 0},
                           {r_mg_d, "mg_d", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 0.25;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_mg() {
  return bake([](double ref) { return build_mg_impl(ref); });
}

AppSpec build_mg_ranked() {
  return bake([](double ref) { return build_mg_ranked_impl(ref); });
}

}  // namespace ft::apps
