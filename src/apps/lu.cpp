// LU — SSOR sweeps on a 2D 5-point system, after NAS LU's lower/upper
// triangular relaxation structure: a forward (blts-like) sweep, a backward
// (buts-like) sweep, and a residual update per main iteration.
#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kN = 14;  // grid points per dimension
constexpr std::int64_t kNiter = 4;
constexpr double kOmega = 1.2;  // SSOR relaxation factor

AppSpec build_lu_impl(double ref) {
  hl::ProgramBuilder pb("lu", __FILE__);

  auto g_u = pb.global_f64("u", kN * kN);
  auto g_b = pb.global_f64("rhs", kN * kN);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_lower = pb.declare_region("lu_lower", __LINE__, __LINE__);
  const auto r_upper = pb.declare_region("lu_upper", __LINE__, __LINE__);
  const auto r_resid = pb.declare_region("lu_resid", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto idx = [&](hl::Value i, hl::Value j) { return i * kN + j; };

  // RHS from the randlc stream; u starts at zero.
  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    f.st(g_b, i, f.rand_() - 0.5);
  });

  auto relax = [&](hl::Value i, hl::Value j) {
    auto nb = f.ld(g_u, idx(i - 1, j)) + f.ld(g_u, idx(i + 1, j)) +
              f.ld(g_u, idx(i, j - 1)) + f.ld(g_u, idx(i, j + 1));
    auto gs = (f.ld(g_b, idx(i, j)) + nb) / 4.0;
    auto old = f.ld(g_u, idx(i, j));
    f.st(g_u, idx(i, j), old + (gs - old) * kOmega);
  };

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_lower, [&] {  // forward sweep (lower triangular order)
        f.for_("i", 1, kN - 1, [&](hl::Value i) {
          f.for_("j", 1, kN - 1, [&](hl::Value j) { relax(i, j); });
        });
      });
      f.region(r_upper, [&] {  // backward sweep (upper triangular order)
        f.for_("ri", 1, kN - 1, [&](hl::Value ri) {
          auto i = f.c_i64(kN - 1) - ri;
          f.for_("rj", 1, kN - 1, [&](hl::Value rj) {
            auto j = f.c_i64(kN - 1) - rj;
            relax(i, j);
          });
        });
      });
      f.region(r_resid, [&] {  // residual norm of the 5-point system
        auto sum = f.var_f64("sum", 0.0);
        f.for_("i", 1, kN - 1, [&](hl::Value i) {
          f.for_("j", 1, kN - 1, [&](hl::Value j) {
            auto au = f.ld(g_u, idx(i, j)) * 4.0 -
                      (f.ld(g_u, idx(i - 1, j)) + f.ld(g_u, idx(i + 1, j)) +
                       f.ld(g_u, idx(i, j - 1)) + f.ld(g_u, idx(i, j + 1)));
            auto rr = f.ld(g_b, idx(i, j)) - au;
            sum.set(sum.get() + rr * rr);
          });
        });
        sum.set(f.fsqrt(sum.get()));
      });
    });
  });

  // Verification: solution checksum against the baked reference.
  auto chk = f.var_f64("chk", 0.0);
  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    chk.set(chk.get() + f.ld(g_u, i));
  });
  auto c = chk.get();
  auto pass = f.select(f.fabs_(c - f.c_f64(ref))
                           .le(f.fabs_(f.c_f64(ref)) * 1e-6 + 1e-10),
                       f.c_i64(1), f.c_i64(0));
  f.emit(pass);
  f.emit(c);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "lu";
  spec.analysis_regions = {{r_lower, "lu_lower", 0, 0},
                           {r_upper, "lu_upper", 0, 0},
                           {r_resid, "lu_resid", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-6;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_lu() {
  return bake([](double ref) { return build_lu_impl(ref); });
}

}  // namespace ft::apps
