// Workload framework.
//
// Every benchmark from the paper's evaluation (§V-A: NAS CG/MG/IS/LU/BT/
// SP/DC/FT, Rodinia KMEANS, LULESH) is re-implemented as a MiniIR program
// behind this common interface. Scales are reduced so that thousand-run
// fault campaigns finish on a laptop-class container, but each program
// preserves the loop/region structure, operator mix and verification phase
// of the original — several regions are direct transcriptions of the
// paper's own code excerpts (Figs. 8-13).
//
// Output protocol (per program):
//   outputs[0]  = i64 verification flag computed by the program's own
//                 verification phase (1 = pass) — this is where the paper
//                 finds Conditional Statement patterns in MG/CG;
//   outputs[1..n-2] = payload values checked by the host-side Verifier;
//   outputs[n-1] = f64 reference scalar, used to bake golden constants.
//
// Golden baking: NAS benchmarks verify against hardcoded reference values.
// We reproduce that with a two-phase build — build with a NaN placeholder,
// run fault-free, then rebuild with the measured reference baked into the
// program's verification phase (bake()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/outcome.h"
#include "ir/module.h"
#include "vm/interp.h"

namespace ft::apps {

struct RegionDesc {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t line_begin = 0;
  std::uint32_t line_end = 0;
};

struct AppSpec {
  std::string name;
  ir::Module module{"?"};
  /// The paper-style analysis regions (cg_a..cg_e, mg_a..mg_d, ...).
  std::vector<RegionDesc> analysis_regions;
  /// Region wrapping one main-loop iteration (for the Fig. 6 experiment).
  std::uint32_t main_region = ~std::uint32_t{0};
  int main_iters = 0;
  double verify_rel_tol = 1e-6;
  fault::Verifier verifier;
  vm::VmOptions base;

  [[nodiscard]] const RegionDesc* find_region(std::string_view rname) const {
    for (const auto& r : analysis_regions) {
      if (r.name == rname) return &r;
    }
    return nullptr;
  }
};

/// Standard verifier for the output protocol above.
[[nodiscard]] fault::Verifier standard_verifier(double rel_tol);

/// Two-phase golden baking: `build(ref)` must produce the app; it is called
/// once with quiet-NaN, run fault-free, and called again with the measured
/// reference scalar (the last output). Aborts if the draft run fails.
[[nodiscard]] AppSpec bake(const std::function<AppSpec(double)>& build);

// --- the ten workloads + hardened CG variants (Use Case 1) -----------------
[[nodiscard]] AppSpec build_cg();
[[nodiscard]] AppSpec build_mg();
[[nodiscard]] AppSpec build_is();
[[nodiscard]] AppSpec build_kmeans();
[[nodiscard]] AppSpec build_lulesh();
[[nodiscard]] AppSpec build_lu();
[[nodiscard]] AppSpec build_bt();
[[nodiscard]] AppSpec build_sp();
[[nodiscard]] AppSpec build_dc();
[[nodiscard]] AppSpec build_ft();

// --- rank-decomposed variants (cross-rank campaigns) -------------------------
// The decomposition is read from mpi_rank()/mpi_size() at runtime: one
// module serves any world size, and a single-rank (null-endpoint) run
// degenerates to the full serial problem — which is exactly the serial
// baseline the serial-vs-parallel resilience comparison (Wu et al.) needs.
// Registry names: "CG-RANKED", "MG-RANKED", "LULESH-RANKED".
[[nodiscard]] AppSpec build_cg_ranked();      // row blocks + allreduced dots
[[nodiscard]] AppSpec build_mg_ranked();      // plane slabs + halo exchange
[[nodiscard]] AppSpec build_lulesh_ranked();  // element blocks + force assembly

/// Use Case 1 (§VII-A): CG with resilience patterns applied.
struct CgHardening {
  bool dcl_overwrite = false;  // Fig. 12: temp arrays in sprnvc + copy-back
  bool truncation = false;     // Fig. 13: 32-bit window in the p·q loop
};
[[nodiscard]] AppSpec build_cg_hardened(const CgHardening& h);

/// Registry over all ten paper benchmarks, in Table IV order.
[[nodiscard]] const std::vector<std::string>& all_app_names();
[[nodiscard]] AppSpec build_app(const std::string& name);

}  // namespace ft::apps
