// CG — conjugate gradient with a random sparse SPD matrix, after NAS CG.
//
// Structure follows the original: makea() builds the matrix using repeated
// sprnvc() calls over the global work arrays v[]/iv[] (the exact shape of
// the paper's Fig. 12), then the main loop calls conj_grad() whose
// first-level inner loops are the analysis regions cg_a..cg_e of Table I:
//   cg_a  initialization loop (z=0, r=p=x)
//   cg_b  rho = r.r reduction
//   cg_c  the cgit solver loop (dominant: matvec + axpys + dots)
//   cg_d  r = A z + ||x-r|| residual
//   cg_e  zeta update and x normalization
// Verification compares zeta against a baked reference, like NAS's
// hardcoded verification constants (conditional-statement pattern).
//
// Use Case 1 (§VII-A) variants are built from the same source with the
// paper's two hardenings applied:
//   * DCL+overwrite (Fig. 12): sprnvc works on stack temporaries v_tmp/
//     iv_tmp and copies back, so corruption in the globals is overwritten
//     and corruption in the temporaries dies with the frame;
//   * truncation (Fig. 13): a window of the p.q dot product runs through
//     32-bit integer truncation.
#include <cassert>
#include <cmath>
#include <set>
#include <vector>

#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kNa = 48;        // matrix order
constexpr std::int64_t kNonzer = 3;     // sprnvc values per row
constexpr std::int64_t kNn1 = 64;       // icnvrt power of two >= kNa
constexpr std::int64_t kNiter = 4;      // main-loop iterations
constexpr std::int64_t kCgitmax = 8;    // inner CG iterations
constexpr double kShift = 12.0;         // zeta shift
constexpr double kDiag = 4.0;           // diagonal (strict dominance)
// Fig. 13 truncation window. The paper truncates ~10 of ~75k dot-product
// elements (0.013%); at our 48-element scale a similarly tiny share is two
// elements — a wide window would add far more fault-vulnerable integer
// sites than the original ever did.
constexpr std::int64_t kTruncLo = 22;
constexpr std::int64_t kTruncHi = 23;

/// Host-side sparsity pattern: symmetric CSR over a chain plus a few
/// long-range couplings (built once; the *values* are generated in-program
/// by makea/sprnvc, as in NAS).
struct CgPattern {
  std::vector<std::int64_t> rowstr, colidx;   // CSR structure
  std::vector<std::int64_t> diag_pos;         // slot of (i,i) in a[]
  std::vector<std::int64_t> edge_start;       // per-row upper-tri edge range
  std::vector<std::int64_t> slot_a, slot_b;   // the two slots of each edge
};

CgPattern make_pattern() {
  std::vector<std::set<std::int64_t>> cols(kNa);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  auto add_edge = [&](std::int64_t i, std::int64_t j) {
    if (i == j || i < 0 || j < 0 || i >= kNa || j >= kNa) return;
    if (i > j) std::swap(i, j);
    if (cols[i].count(j)) return;
    cols[i].insert(j);
    cols[j].insert(i);
    edges.emplace_back(i, j);
  };
  for (std::int64_t i = 0; i + 1 < kNa; ++i) add_edge(i, i + 1);
  for (std::int64_t i = 0; i < kNa; ++i) add_edge(i, (i * 17 + 5) % kNa);
  for (std::int64_t i = 0; i < kNa; ++i) cols[i].insert(i);

  CgPattern p;
  p.rowstr.resize(kNa + 1, 0);
  p.diag_pos.resize(kNa, 0);
  for (std::int64_t i = 0; i < kNa; ++i) {
    p.rowstr[i + 1] = p.rowstr[i] + static_cast<std::int64_t>(cols[i].size());
  }
  p.colidx.resize(p.rowstr[kNa], 0);
  std::vector<std::int64_t> cursor(p.rowstr.begin(), p.rowstr.end() - 1);
  // Slot of column j in row i (columns are sorted within a row).
  auto slot_of = [&](std::int64_t i, std::int64_t j) {
    std::int64_t s = p.rowstr[i];
    for (const auto c : cols[i]) {
      if (c == j) return s;
      s++;
    }
    assert(false);
    return std::int64_t{0};
  };
  for (std::int64_t i = 0; i < kNa; ++i) {
    std::int64_t s = p.rowstr[i];
    for (const auto c : cols[i]) p.colidx[s++] = c;
    p.diag_pos[i] = slot_of(i, i);
  }

  // Upper-triangular edges grouped by owner row.
  std::sort(edges.begin(), edges.end());
  p.edge_start.resize(kNa + 1, 0);
  for (const auto& [i, j] : edges) p.edge_start[i + 1]++;
  for (std::int64_t i = 0; i < kNa; ++i) p.edge_start[i + 1] += p.edge_start[i];
  for (const auto& [i, j] : edges) {
    p.slot_a.push_back(slot_of(i, j));
    p.slot_b.push_back(slot_of(j, i));
  }
  return p;
}

AppSpec build_cg_impl(double ref, const CgHardening& hard) {
  const CgPattern pat = make_pattern();
  const auto nnz = static_cast<std::int64_t>(pat.colidx.size());
  const auto nedges = static_cast<std::int64_t>(pat.slot_a.size());

  hl::ProgramBuilder pb(hard.dcl_overwrite || hard.truncation ? "cg-hardened"
                                                              : "cg",
                        __FILE__);

  // Matrix + CSR structure.
  auto g_a = pb.global_f64("a", nnz);
  auto g_colidx = pb.global_init_i64("colidx", pat.colidx);
  auto g_rowstr = pb.global_init_i64("rowstr", pat.rowstr);
  auto g_diag = pb.global_init_i64("diag_pos", pat.diag_pos);
  auto g_estart = pb.global_init_i64("edge_start", pat.edge_start);
  auto g_slota = pb.global_init_i64("edge_slot_a", pat.slot_a);
  auto g_slotb = pb.global_init_i64("edge_slot_b", pat.slot_b);
  // sprnvc work arrays: global, exactly as in the original (Fig. 12a).
  auto g_v = pb.global_f64("v", kNonzer + 1);
  auto g_iv = pb.global_i64("iv", kNonzer + 1);
  // CG vectors.
  auto g_x = pb.global_init_f64("x", std::vector<double>(kNa, 1.0));
  auto g_z = pb.global_f64("z", kNa);
  auto g_p = pb.global_f64("p", kNa);
  auto g_q = pb.global_f64("q", kNa);
  auto g_r = pb.global_f64("r", kNa);
  // Scalar cells shared between functions.
  auto g_zeta = pb.global_f64("zeta", 1);
  auto g_rnorm = pb.global_f64("rnorm", 1);

  // Regions (line numbers point into this builder file, like Table I's
  // "Line No." column points into the benchmark source).
  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_cg_a = pb.declare_region("cg_a", __LINE__, __LINE__);
  const auto r_cg_b = pb.declare_region("cg_b", __LINE__, __LINE__);
  const auto r_cg_c = pb.declare_region("cg_c", __LINE__, __LINE__);
  const auto r_cg_d = pb.declare_region("cg_d", __LINE__, __LINE__);
  const auto r_cg_e = pb.declare_region("cg_e", __LINE__, __LINE__);
  const auto r_makea = pb.declare_region("cg_makea", __LINE__, __LINE__);

  const auto f_sprnvc = pb.declare_function("sprnvc");
  const auto f_makea = pb.declare_function("makea");
  const auto f_conj_grad = pb.declare_function("conj_grad");
  const auto f_main = pb.declare_function("main");

  // --- sprnvc: Fig. 12 (a) original / (b) hardened --------------------------
  {
    auto f = pb.define(f_sprnvc);
    f.at(__LINE__);
    hl::LocalArray v_tmp, iv_tmp;
    if (hard.dcl_overwrite) {
      // Hardened: stack temporaries + init copy (Fig. 12b).
      v_tmp = f.local_f64("v_tmp", kNonzer + 1);
      iv_tmp = f.local_i64("iv_tmp", kNonzer + 1);
      f.for_("init", 0, kNonzer + 1, [&](hl::Value i) {
        f.st(v_tmp, i, f.ld(g_v, i));
        f.st(iv_tmp, i, f.ld(g_iv, i));
      });
    }
    auto nzv = f.var_i64("nzv", 0);
    f.while_([&] { return nzv.get().lt(kNonzer); },
             [&] {
               auto vecelt = f.rand_();
               auto vecloc = f.rand_();
               // icnvrt(vecloc, nn1) + 1
               auto i = f.fptosi(vecloc * static_cast<double>(kNn1)) + 1;
               f.if_(i.le(kNa), [&] {
                 auto was_gen = f.var_i64("was_gen", 0);
                 f.for_("ii", 0, nzv.get(), [&](hl::Value ii) {
                   auto stored = hard.dcl_overwrite ? f.ld(iv_tmp, ii)
                                                    : f.ld(g_iv, ii);
                   f.if_(stored.eq(i), [&] { was_gen.set(1); });
                 });
                 f.if_(was_gen.get().eq(0), [&] {
                   if (hard.dcl_overwrite) {
                     f.st(v_tmp, nzv.get(), vecelt);
                     f.st(iv_tmp, nzv.get(), i);
                   } else {
                     f.st(g_v, nzv.get(), vecelt);
                     f.st(g_iv, nzv.get(), i);
                   }
                   nzv.set(nzv.get() + 1);
                 });
               });
             });
    if (hard.dcl_overwrite) {
      // Copy back (Fig. 12b): overwrites any corruption in the globals and
      // lets corruption in the temporaries die with the frame.
      f.for_("back", 0, kNonzer + 1, [&](hl::Value i) {
        f.st(g_v, i, f.ld(v_tmp, i));
        f.st(g_iv, i, f.ld(iv_tmp, i));
      });
    }
    f.ret();
  }

  // --- makea: fill matrix values through sprnvc ------------------------------
  {
    auto f = pb.define(f_makea);
    f.at(__LINE__);
    f.region(r_makea, [&] {
    f.for_("row", 0, kNa, [&](hl::Value row) {
      f.call(f_sprnvc);
      auto es = f.ld(g_estart, row);
      auto ee = f.ld(g_estart, row + 1);
      f.for_("k", es, ee, [&](hl::Value k) {
        auto ordinal = (k - es) % kNonzer;
        auto vv = f.ld(g_v, ordinal);
        auto val = vv * -0.1 - 0.2;
        f.st(g_a, f.ld(g_slota, k), val);
        f.st(g_a, f.ld(g_slotb, k), val);
      });
      f.st(g_a, f.ld(g_diag, row), f.c_f64(kDiag));
    });
    });
    f.ret();
  }
  (void)nedges;

  // --- conj_grad --------------------------------------------------------------
  {
    auto f = pb.define(f_conj_grad);
    f.at(__LINE__);
    auto rho = f.var_f64("rho", 0.0);
    auto d = f.var_f64("d", 0.0);

    f.region(r_cg_a, [&] {  // q = z = 0, r = p = x
      f.for_("j", 0, kNa, [&](hl::Value j) {
        auto xj = f.ld(g_x, j);
        f.st(g_q, j, 0.0);
        f.st(g_z, j, 0.0);
        f.st(g_r, j, xj);
        f.st(g_p, j, xj);
      });
    });

    f.region(r_cg_b, [&] {  // rho = r.r
      rho.set(0.0);
      f.for_("j", 0, kNa, [&](hl::Value j) {
        auto rj = f.ld(g_r, j);
        rho.set(rho.get() + rj * rj);
      });
    });

    f.region(r_cg_c, [&] {  // the cgit loop
      f.for_("cgit", 0, kCgitmax, [&](hl::Value) {
        // q = A p
        f.for_("j", 0, kNa, [&](hl::Value j) {
          auto sum = f.var_f64("sum", 0.0);
          f.for_("k", f.ld(g_rowstr, j), f.ld(g_rowstr, j + 1),
                 [&](hl::Value k) {
                   auto col = f.ld(g_colidx, k);
                   sum.set(sum.get() + f.ld(g_a, k) * f.ld(g_p, col));
                 });
          f.st(g_q, j, sum.get());
        });
        // d = p.q — with the Fig. 13 truncation window when hardened.
        d.set(0.0);
        f.for_("j", 0, kNa, [&](hl::Value j) {
          if (hard.truncation) {
            auto in_window = j.ge(kTruncLo) & j.le(kTruncHi);
            f.if_else(
                in_window,
                [&] {
                  // Fig. 13: replace the 64-bit float multiply with a 32-bit
                  // integer multiply. Our vectors are O(0.1) (the paper's CG
                  // window covers ~0.01% of a much longer loop), so a plain
                  // (int)p[j] would zero whole terms; Q10 fixed point keeps
                  // the magnitude while still discarding mantissa bits.
                  auto tmp = f.trunc_to_i32(f.fptosi(f.ld(g_p, j) * 1024.0));
                  auto tmp1 = f.trunc_to_i32(f.fptosi(f.ld(g_q, j) * 1024.0));
                  auto prod = f.sitofp(f.sext_to_i64(tmp * tmp1)) /
                              (1024.0 * 1024.0);
                  d.set(d.get() + prod);
                },
                [&] { d.set(d.get() + f.ld(g_p, j) * f.ld(g_q, j)); });
          } else {
            d.set(d.get() + f.ld(g_p, j) * f.ld(g_q, j));
          }
        });
        auto alpha = rho.get() / d.get();
        // z += alpha p ; r -= alpha q
        f.for_("j", 0, kNa, [&](hl::Value j) {
          f.st(g_z, j, f.ld(g_z, j) + alpha * f.ld(g_p, j));
          f.st(g_r, j, f.ld(g_r, j) - alpha * f.ld(g_q, j));
        });
        auto rho0 = rho.get();
        rho.set(0.0);
        f.for_("j", 0, kNa, [&](hl::Value j) {
          auto rj = f.ld(g_r, j);
          rho.set(rho.get() + rj * rj);
        });
        auto beta = rho.get() / rho0;
        f.for_("j", 0, kNa, [&](hl::Value j) {
          f.st(g_p, j, f.ld(g_r, j) + beta * f.ld(g_p, j));
        });
      });
    });

    f.region(r_cg_d, [&] {  // r = A z ; sum = ||x - r||^2
      auto sum = f.var_f64("sum", 0.0);
      f.for_("j", 0, kNa, [&](hl::Value j) {
        auto rowsum = f.var_f64("rowsum", 0.0);
        f.for_("k", f.ld(g_rowstr, j), f.ld(g_rowstr, j + 1),
               [&](hl::Value k) {
                 auto col = f.ld(g_colidx, k);
                 rowsum.set(rowsum.get() + f.ld(g_a, k) * f.ld(g_z, col));
               });
        f.st(g_r, j, rowsum.get());
        auto dxr = f.ld(g_x, j) - rowsum.get();
        sum.set(sum.get() + dxr * dxr);
      });
      f.st(g_rnorm, 0, f.fsqrt(sum.get()));
    });

    f.region(r_cg_e, [&] {  // zeta and x normalization
      auto xz = f.var_f64("xz", 0.0);
      auto znorm2 = f.var_f64("znorm2", 0.0);
      f.for_("j", 0, kNa, [&](hl::Value j) {
        auto zj = f.ld(g_z, j);
        xz.set(xz.get() + f.ld(g_x, j) * zj);
        znorm2.set(znorm2.get() + zj * zj);
      });
      // zeta = SHIFT + 1 / (x.z), as in NAS CG.
      f.st(g_zeta, 0, f.c_f64(kShift) + f.c_f64(1.0) / xz.get());
      auto inv_norm = f.c_f64(1.0) / f.fsqrt(znorm2.get());
      f.for_("j", 0, kNa, [&](hl::Value j) {
        f.st(g_x, j, f.ld(g_z, j) * inv_norm);
      });
    });
    f.ret();
  }

  // --- main --------------------------------------------------------------------
  {
    auto f = pb.define(f_main);
    f.at(__LINE__);
    f.call(f_makea);
    f.for_("it", 0, kNiter, [&](hl::Value) {
      f.region(r_main, [&] { f.call(f_conj_grad); });
    });
    // Verification phase: |zeta - REF| <= eps, NAS-style baked constant.
    auto zeta = f.ld(g_zeta, 0);
    auto err = f.fabs_(zeta - f.c_f64(ref));
    auto pass = f.select(err.le(1e-8), f.c_i64(1), f.c_i64(0));
    f.emit(pass);
    f.emit(zeta);  // payload & bake reference (last output)
    f.ret();
  }

  AppSpec spec;
  spec.name = pb.module().name();
  spec.analysis_regions = {
      {r_cg_a, "cg_a", 0, 0}, {r_cg_b, "cg_b", 0, 0}, {r_cg_c, "cg_c", 0, 0},
      {r_cg_d, "cg_d", 0, 0}, {r_cg_e, "cg_e", 0, 0},
      {r_makea, "cg_makea", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-6;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  // Fill declared region line ranges from the module (declared above).
  auto& mod = pb.module();
  for (auto& r : spec.analysis_regions) {
    r.line_begin = mod.region(r.id).line_begin;
    r.line_end = mod.region(r.id).line_end;
  }
  spec.module = pb.finish();
  return spec;
}

// --- rank-decomposed CG (cg-ranked) ------------------------------------------
//
// The multi-rank variant used by the cross-rank campaigns
// (fault/rank_campaign.h): the decomposition is read from mpi_rank()/
// mpi_size() at RUNTIME, so one module serves any world size — and a
// single-rank (null-endpoint) run degenerates to the full serial problem,
// which is what bake() measures the reference against. Rows are block-
// partitioned per rank; makea stays replicated (every rank builds the full
// matrix from the shared randlc stream, as NAS ranks build their local
// blocks); dot products reduce partial sums with MPI_Allreduce inside the
// regions exactly where NAS CG places them; and updated p/z blocks are
// broadcast block-by-block over the p2p channels before each use of the
// full vector (the matvec and the final r = A z).
AppSpec build_cg_ranked_impl(double ref) {
  const CgPattern pat = make_pattern();
  const auto nnz = static_cast<std::int64_t>(pat.colidx.size());

  hl::ProgramBuilder pb("cg-ranked", __FILE__);

  auto g_a = pb.global_f64("a", nnz);
  auto g_colidx = pb.global_init_i64("colidx", pat.colidx);
  auto g_rowstr = pb.global_init_i64("rowstr", pat.rowstr);
  auto g_diag = pb.global_init_i64("diag_pos", pat.diag_pos);
  auto g_estart = pb.global_init_i64("edge_start", pat.edge_start);
  auto g_slota = pb.global_init_i64("edge_slot_a", pat.slot_a);
  auto g_slotb = pb.global_init_i64("edge_slot_b", pat.slot_b);
  auto g_v = pb.global_f64("v", kNonzer + 1);
  auto g_iv = pb.global_i64("iv", kNonzer + 1);
  auto g_x = pb.global_init_f64("x", std::vector<double>(kNa, 1.0));
  auto g_z = pb.global_f64("z", kNa);
  auto g_p = pb.global_f64("p", kNa);
  auto g_q = pb.global_f64("q", kNa);
  auto g_r = pb.global_f64("r", kNa);
  auto g_zeta = pb.global_f64("zeta", 1);
  auto g_rnorm = pb.global_f64("rnorm", 1);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_cg_a = pb.declare_region("cg_a", __LINE__, __LINE__);
  const auto r_cg_b = pb.declare_region("cg_b", __LINE__, __LINE__);
  const auto r_cg_c = pb.declare_region("cg_c", __LINE__, __LINE__);
  const auto r_cg_d = pb.declare_region("cg_d", __LINE__, __LINE__);
  const auto r_cg_e = pb.declare_region("cg_e", __LINE__, __LINE__);
  const auto r_makea = pb.declare_region("cg_makea", __LINE__, __LINE__);

  const auto f_sprnvc = pb.declare_function("sprnvc");
  const auto f_makea = pb.declare_function("makea");
  const auto f_conj_grad = pb.declare_function("conj_grad");
  const auto f_main = pb.declare_function("main");

  // sprnvc/makea: identical to the serial build (replicated work).
  {
    auto f = pb.define(f_sprnvc);
    f.at(__LINE__);
    auto nzv = f.var_i64("nzv", 0);
    f.while_([&] { return nzv.get().lt(kNonzer); },
             [&] {
               auto vecelt = f.rand_();
               auto vecloc = f.rand_();
               auto i = f.fptosi(vecloc * static_cast<double>(kNn1)) + 1;
               f.if_(i.le(kNa), [&] {
                 auto was_gen = f.var_i64("was_gen", 0);
                 f.for_("ii", 0, nzv.get(), [&](hl::Value ii) {
                   f.if_(f.ld(g_iv, ii).eq(i), [&] { was_gen.set(1); });
                 });
                 f.if_(was_gen.get().eq(0), [&] {
                   f.st(g_v, nzv.get(), vecelt);
                   f.st(g_iv, nzv.get(), i);
                   nzv.set(nzv.get() + 1);
                 });
               });
             });
    f.ret();
  }
  {
    auto f = pb.define(f_makea);
    f.at(__LINE__);
    f.region(r_makea, [&] {
      f.for_("row", 0, kNa, [&](hl::Value row) {
        f.call(f_sprnvc);
        auto es = f.ld(g_estart, row);
        auto ee = f.ld(g_estart, row + 1);
        f.for_("k", es, ee, [&](hl::Value k) {
          auto ordinal = (k - es) % kNonzer;
          auto vv = f.ld(g_v, ordinal);
          auto val = vv * -0.1 - 0.2;
          f.st(g_a, f.ld(g_slota, k), val);
          f.st(g_a, f.ld(g_slotb, k), val);
        });
        f.st(g_a, f.ld(g_diag, row), f.c_f64(kDiag));
      });
    });
    f.ret();
  }

  // --- conj_grad, row-block decomposed ---------------------------------------
  {
    auto f = pb.define(f_conj_grad);
    f.at(__LINE__);
    auto rank = f.mpi_rank();
    auto size = f.mpi_size();
    auto lo = rank * kNa / size;
    auto hi = (rank + 1) * kNa / size;
    auto rho = f.var_f64("rho", 0.0);
    auto d = f.var_f64("d", 0.0);

    // Block broadcast: every rank sends its owned block of `vec` to every
    // peer (FIFO channels keep element order), so all ranks hold the full
    // vector afterwards. At size 1 this emits no messages at all.
    auto exchange = [&](hl::GlobalArray vec) {
      f.for_("src", 0, size, [&](hl::Value src) {
        auto slo = src * kNa / size;
        auto shi = (src + 1) * kNa / size;
        f.if_else(
            rank.eq(src),
            [&] {
              f.for_("j", slo, shi, [&](hl::Value j) {
                auto vj = f.ld(vec, j);
                f.for_("dst", 0, size, [&](hl::Value dst) {
                  f.unless(dst.eq(src), [&] { f.mpi_send(dst, vj); });
                });
              });
            },
            [&] {
              f.for_("j", slo, shi,
                     [&](hl::Value j) { f.st(vec, j, f.mpi_recv(src)); });
            });
      });
    };

    f.region(r_cg_a, [&] {  // q = z = 0, r = p = x (owned rows)
      f.for_("j", lo, hi, [&](hl::Value j) {
        auto xj = f.ld(g_x, j);
        f.st(g_q, j, 0.0);
        f.st(g_z, j, 0.0);
        f.st(g_r, j, xj);
        f.st(g_p, j, xj);
      });
    });
    exchange(g_p);

    f.region(r_cg_b, [&] {  // rho = r.r: partial + allreduce
      rho.set(0.0);
      f.for_("j", lo, hi, [&](hl::Value j) {
        auto rj = f.ld(g_r, j);
        rho.set(rho.get() + rj * rj);
      });
      rho.set(f.mpi_allreduce(rho.get(), ir::ReduceOp::Sum));
    });

    f.region(r_cg_c, [&] {  // the cgit loop
      f.for_("cgit", 0, kCgitmax, [&](hl::Value) {
        // q = A p over owned rows (p is full after the exchange).
        f.for_("j", lo, hi, [&](hl::Value j) {
          auto sum = f.var_f64("sum", 0.0);
          f.for_("k", f.ld(g_rowstr, j), f.ld(g_rowstr, j + 1),
                 [&](hl::Value k) {
                   auto col = f.ld(g_colidx, k);
                   sum.set(sum.get() + f.ld(g_a, k) * f.ld(g_p, col));
                 });
          f.st(g_q, j, sum.get());
        });
        // d = p.q: partial + allreduce (where NAS CG reduces it).
        d.set(0.0);
        f.for_("j", lo, hi, [&](hl::Value j) {
          d.set(d.get() + f.ld(g_p, j) * f.ld(g_q, j));
        });
        d.set(f.mpi_allreduce(d.get(), ir::ReduceOp::Sum));
        auto alpha = rho.get() / d.get();
        f.for_("j", lo, hi, [&](hl::Value j) {
          f.st(g_z, j, f.ld(g_z, j) + alpha * f.ld(g_p, j));
          f.st(g_r, j, f.ld(g_r, j) - alpha * f.ld(g_q, j));
        });
        auto rho0 = rho.get();
        rho.set(0.0);
        f.for_("j", lo, hi, [&](hl::Value j) {
          auto rj = f.ld(g_r, j);
          rho.set(rho.get() + rj * rj);
        });
        rho.set(f.mpi_allreduce(rho.get(), ir::ReduceOp::Sum));
        auto beta = rho.get() / rho0;
        f.for_("j", lo, hi, [&](hl::Value j) {
          f.st(g_p, j, f.ld(g_r, j) + beta * f.ld(g_p, j));
        });
        exchange(g_p);  // next matvec needs the full updated p
      });
    });

    exchange(g_z);          // r = A z needs the full solution vector
    f.region(r_cg_d, [&] {  // r = A z ; sum = ||x - r||^2: partial + allreduce
      auto sum = f.var_f64("sum", 0.0);
      f.for_("j", lo, hi, [&](hl::Value j) {
        auto rowsum = f.var_f64("rowsum", 0.0);
        f.for_("k", f.ld(g_rowstr, j), f.ld(g_rowstr, j + 1),
               [&](hl::Value k) {
                 auto col = f.ld(g_colidx, k);
                 rowsum.set(rowsum.get() + f.ld(g_a, k) * f.ld(g_z, col));
               });
        f.st(g_r, j, rowsum.get());
        auto dxr = f.ld(g_x, j) - rowsum.get();
        sum.set(sum.get() + dxr * dxr);
      });
      f.st(g_rnorm, 0,
           f.fsqrt(f.mpi_allreduce(sum.get(), ir::ReduceOp::Sum)));
    });

    f.region(r_cg_e, [&] {  // zeta and x normalization (owned rows)
      auto xz = f.var_f64("xz", 0.0);
      auto znorm2 = f.var_f64("znorm2", 0.0);
      f.for_("j", lo, hi, [&](hl::Value j) {
        auto zj = f.ld(g_z, j);
        xz.set(xz.get() + f.ld(g_x, j) * zj);
        znorm2.set(znorm2.get() + zj * zj);
      });
      auto gxz = f.mpi_allreduce(xz.get(), ir::ReduceOp::Sum);
      auto gznorm2 = f.mpi_allreduce(znorm2.get(), ir::ReduceOp::Sum);
      f.st(g_zeta, 0, f.c_f64(kShift) + f.c_f64(1.0) / gxz);
      auto inv_norm = f.c_f64(1.0) / f.fsqrt(gznorm2);
      f.for_("j", lo, hi, [&](hl::Value j) {
        f.st(g_x, j, f.ld(g_z, j) * inv_norm);
      });
    });
    f.ret();
  }

  {
    auto f = pb.define(f_main);
    f.at(__LINE__);
    f.call(f_makea);
    f.for_("it", 0, kNiter, [&](hl::Value) {
      f.region(r_main, [&] { f.call(f_conj_grad); });
    });
    // zeta is built from allreduced quantities only, so every rank holds the
    // identical value; the reference is baked from the single-rank run and
    // the tolerance absorbs the rank-ordered-reduction rounding drift.
    auto zeta = f.ld(g_zeta, 0);
    auto err = f.fabs_(zeta - f.c_f64(ref));
    auto pass = f.select(err.le(1e-6), f.c_i64(1), f.c_i64(0));
    f.emit(pass);
    f.emit(zeta);
    f.ret();
  }

  AppSpec spec;
  spec.name = pb.module().name();
  spec.analysis_regions = {
      {r_cg_a, "cg_a", 0, 0}, {r_cg_b, "cg_b", 0, 0}, {r_cg_c, "cg_c", 0, 0},
      {r_cg_d, "cg_d", 0, 0}, {r_cg_e, "cg_e", 0, 0},
      {r_makea, "cg_makea", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-6;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_cg() {
  return bake([](double ref) { return build_cg_impl(ref, CgHardening{}); });
}

AppSpec build_cg_ranked() {
  return bake([](double ref) { return build_cg_ranked_impl(ref); });
}

AppSpec build_cg_hardened(const CgHardening& h) {
  return bake([h](double ref) { return build_cg_impl(ref, h); });
}

}  // namespace ft::apps
