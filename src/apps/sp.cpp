// SP — approximate-factorization ADI sweeps with a pentadiagonal-like
// stencil, after NAS SP: per main iteration, an explicit RHS with a wider
// (+-2) stencil, then damped line relaxations in x and y.
#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kN = 12;  // grid points per dimension
constexpr std::int64_t kNiter = 4;

AppSpec build_sp_impl(double ref) {
  hl::ProgramBuilder pb("sp", __FILE__);

  auto g_u = pb.global_f64("u", kN * kN);
  auto g_rhs = pb.global_f64("rhs", kN * kN);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_rhs = pb.declare_region("sp_rhs", __LINE__, __LINE__);
  const auto r_x = pb.declare_region("sp_xsweep", __LINE__, __LINE__);
  const auto r_y = pb.declare_region("sp_ysweep", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  auto idx = [&](hl::Value i, hl::Value j) { return i * kN + j; };

  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    f.st(g_u, i, f.rand_() * 0.5);
  });

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_rhs, [&] {  // pentadiagonal-flavoured explicit RHS
        f.for_("i", 2, kN - 2, [&](hl::Value i) {
          f.for_("j", 2, kN - 2, [&](hl::Value j) {
            auto near = f.ld(g_u, idx(i - 1, j)) + f.ld(g_u, idx(i + 1, j)) +
                        f.ld(g_u, idx(i, j - 1)) + f.ld(g_u, idx(i, j + 1));
            auto far = f.ld(g_u, idx(i - 2, j)) + f.ld(g_u, idx(i + 2, j)) +
                       f.ld(g_u, idx(i, j - 2)) + f.ld(g_u, idx(i, j + 2));
            f.st(g_rhs, idx(i, j),
                 f.ld(g_u, idx(i, j)) * 0.4 + near * 0.12 - far * 0.02);
          });
        });
      });
      f.region(r_x, [&] {  // damped x-direction relaxation
        f.for_("i", 2, kN - 2, [&](hl::Value i) {
          f.for_("j", 2, kN - 2, [&](hl::Value j) {
            auto s = f.ld(g_rhs, idx(i, j)) +
                     (f.ld(g_u, idx(i - 1, j)) + f.ld(g_u, idx(i + 1, j))) *
                         0.15;
            f.st(g_u, idx(i, j), f.ld(g_u, idx(i, j)) * 0.6 + s * 0.4);
          });
        });
      });
      f.region(r_y, [&] {  // damped y-direction relaxation
        f.for_("i", 2, kN - 2, [&](hl::Value i) {
          f.for_("j", 2, kN - 2, [&](hl::Value j) {
            auto s = f.ld(g_rhs, idx(i, j)) +
                     (f.ld(g_u, idx(i, j - 1)) + f.ld(g_u, idx(i, j + 1))) *
                         0.15;
            f.st(g_u, idx(i, j), f.ld(g_u, idx(i, j)) * 0.6 + s * 0.4);
          });
        });
      });
    });
  });

  auto chk = f.var_f64("chk", 0.0);
  f.for_("i", 0, kN * kN, [&](hl::Value i) {
    chk.set(chk.get() + f.ld(g_u, i));
  });
  auto c = chk.get();
  auto pass = f.select(f.fabs_(c - f.c_f64(ref))
                           .le(f.fabs_(f.c_f64(ref)) * 1e-6 + 1e-10),
                       f.c_i64(1), f.c_i64(0));
  f.emit(pass);
  f.emit(c);
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "sp";
  spec.analysis_regions = {{r_rhs, "sp_rhs", 0, 0},
                           {r_x, "sp_xsweep", 0, 0},
                           {r_y, "sp_ysweep", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-6;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_sp() {
  return bake([](double ref) { return build_sp_impl(ref); });
}

}  // namespace ft::apps
