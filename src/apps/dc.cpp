// DC — data-cube group-by aggregation, after NAS DC: a stream of tuples
// with small-cardinality dimension attributes is aggregated along several
// group-by views. Hash slots are packed with shifts/ors and rows are
// filtered with predicates, so the dynamic mix is condition- and
// shift-heavy with exact integer outputs — the profile that makes DC the
// paper's prediction outlier in Table IV.
#include "apps/app.h"
#include "hl/builder.h"

namespace ft::apps {

namespace {

constexpr std::int64_t kTuples = 256;
constexpr std::int64_t kCardA = 8;   // attribute cardinalities (powers of 2)
constexpr std::int64_t kCardB = 4;
constexpr std::int64_t kCardC = 16;
constexpr std::int64_t kViewAbc = kCardA * kCardB * kCardC;  // 512 slots
constexpr std::int64_t kNiter = 4;

AppSpec build_dc_impl(double ref) {
  hl::ProgramBuilder pb("dc", __FILE__);

  auto g_attr_a = pb.global_i64("attr_a", kTuples);
  auto g_attr_b = pb.global_i64("attr_b", kTuples);
  auto g_attr_c = pb.global_i64("attr_c", kTuples);
  auto g_measure = pb.global_f64("measure", kTuples);
  auto g_view_a = pb.global_f64("view_a", kCardA);
  auto g_view_ab = pb.global_f64("view_ab", kCardA * kCardB);
  auto g_view_abc = pb.global_f64("view_abc", kViewAbc);
  auto g_counts = pb.global_i64("counts", kCardA);

  const auto r_main = pb.declare_region("main", __LINE__, __LINE__);
  const auto r_gen = pb.declare_region("dc_gen", __LINE__, __LINE__);
  const auto r_agg = pb.declare_region("dc_aggregate", __LINE__, __LINE__);
  const auto r_roll = pb.declare_region("dc_rollup", __LINE__, __LINE__);

  const auto f_main = pb.declare_function("main");
  auto f = pb.define(f_main);
  f.at(__LINE__);

  f.region(r_gen, [&] {  // tuple generation
    f.for_("t", 0, kTuples, [&](hl::Value t) {
      f.st(g_attr_a, t, f.fptosi(f.rand_() * static_cast<double>(kCardA)));
      f.st(g_attr_b, t, f.fptosi(f.rand_() * static_cast<double>(kCardB)));
      f.st(g_attr_c, t, f.fptosi(f.rand_() * static_cast<double>(kCardC)));
      f.st(g_measure, t, f.rand_());
    });
  });

  f.for_("it", 0, kNiter, [&](hl::Value) {
    f.region(r_main, [&] {
      f.region(r_agg, [&] {  // base cuboid: group by (a,b,c)
        f.for_("z", 0, kViewAbc, [&](hl::Value z) {
          f.st(g_view_abc, z, 0.0);
        });
        f.for_("t", 0, kTuples, [&](hl::Value t) {
          auto a = f.ld(g_attr_a, t);
          auto b = f.ld(g_attr_b, t);
          auto c = f.ld(g_attr_c, t);
          // Packed slot: (a << 6) | (b << 4) | c — shifts as hash packing.
          auto slot = (a << 6) | (b << 4) | c;
          // Filter: only rows with measure above the selectivity threshold.
          f.if_(f.ld(g_measure, t).gt(0.25), [&] {
            f.st(g_view_abc, slot,
                 f.ld(g_view_abc, slot) + f.ld(g_measure, t));
          });
        });
      });
      f.region(r_roll, [&] {  // roll-ups: (a,b) and (a), plus counts
        f.for_("z", 0, kCardA * kCardB,
               [&](hl::Value z) { f.st(g_view_ab, z, 0.0); });
        f.for_("z", 0, kCardA, [&](hl::Value z) {
          f.st(g_view_a, z, 0.0);
          f.st(g_counts, z, 0);
        });
        f.for_("s", 0, kViewAbc, [&](hl::Value s) {
          auto ab = s >> 4;      // drop c
          auto a = s >> 6;       // drop b and c
          auto v = f.ld(g_view_abc, s);
          f.if_(v.gt(0.0), [&] {
            f.st(g_view_ab, ab, f.ld(g_view_ab, ab) + v);
            f.st(g_view_a, a, f.ld(g_view_a, a) + v);
            f.st(g_counts, a, f.ld(g_counts, a) + 1);
          });
        });
      });
    });
  });

  // Verification: exact slot-count checksum plus aggregate checksum.
  auto cells = f.var_i64("cells", 0);
  auto total = f.var_f64("total", 0.0);
  f.for_("a", 0, kCardA, [&](hl::Value a) {
    cells.set(cells.get() + f.ld(g_counts, a));
    total.set(total.get() + f.ld(g_view_a, a));
  });
  auto tt = total.get();
  auto pass_count = f.select(
      f.fabs_(f.sitofp(cells.get()) - f.c_f64(ref)).lt(0.5), f.c_i64(1),
      f.c_i64(0));
  f.emit(pass_count);
  f.emit(cells.get());
  f.emit(tt);
  f.emit(f.sitofp(cells.get()));  // bake reference: occupied-cell count
  f.ret();
  f.finish();

  AppSpec spec;
  spec.name = "dc";
  spec.analysis_regions = {{r_gen, "dc_gen", 0, 0},
                           {r_agg, "dc_aggregate", 0, 0},
                           {r_roll, "dc_rollup", 0, 0}};
  spec.main_region = r_main;
  spec.main_iters = static_cast<int>(kNiter);
  spec.verify_rel_tol = 1e-9;
  spec.verifier = standard_verifier(spec.verify_rel_tol);
  spec.base.max_instructions = std::uint64_t{1} << 28;
  spec.module = pb.finish();
  return spec;
}

}  // namespace

AppSpec build_dc() {
  return bake([](double ref) { return build_dc_impl(ref); });
}

}  // namespace ft::apps
