#include "acl/diff.h"

namespace ft::acl {

namespace {

/// Per-record faulty-stream recorder for the array-of-structs substrate.
struct TraceRecorder {
  DiffResult& out;
  void reserve(std::size_t n) { out.faulty.records.reserve(n); }
  void append(const vm::DynInstr& frec, std::uint32_t /*pc*/) {
    out.faulty.records.push_back(frec);
  }
  [[nodiscard]] std::size_t size() const { return out.faulty.records.size(); }
};

/// Columnar recorder: appends straight into the ColumnTrace.
struct ColumnRecorder {
  ColumnDiff& out;
  void reserve(std::size_t n) { out.faulty.reserve(n); }
  void append(const vm::DynInstr& frec, std::uint32_t pc) {
    out.faulty.append(frec, pc);
  }
  [[nodiscard]] std::size_t size() const { return out.faulty.size(); }
};

/// The engine- and substrate-agnostic lockstep core: both VMs are already
/// constructed (same program, clean vs faulty fault plan) and are stepped
/// side by side; `rec` owns the faulty-stream representation.
template <typename Result, typename Recorder>
void diff_between(vm::Vm& clean, vm::Vm& faulty, const DiffOptions& opts,
                  Result& out, Recorder rec) {
  if (opts.reserve_records != 0) {
    const auto n = opts.max_records != 0
                       ? std::min(opts.reserve_records, opts.max_records)
                       : opts.reserve_records;
    rec.reserve(n);
    out.clean_bits.reserve(n);
    out.clean_op_bits.reserve(n);
    out.differs.reserve(n);
  }

  // Lockstep same-site check: with one shared decoded program the flat pc
  // identifies the static site; the legacy engine compares coordinates.
  const bool decoded = opts.base.program != nullptr;

  vm::DynInstr crec, frec;
  bool recording = true;
  while (clean.status() == vm::Vm::Status::Running &&
         faulty.status() == vm::Vm::Status::Running) {
    const std::uint32_t fpc = decoded ? faulty.next_pc() : 0;
    const std::uint32_t cpc = decoded ? clean.next_pc() : 0;
    const auto cs = clean.step(&crec);
    const auto fs = faulty.step(&frec);
    const bool clean_retired = cs != vm::Vm::Status::Trapped;
    const bool faulty_retired = fs != vm::Vm::Status::Trapped;
    if (!clean_retired || !faulty_retired) {
      // One side trapped mid-instruction: streams end here.
      if (!faulty_retired && out.divergence_index == kNoIndex) {
        out.divergence_index = frec.index;
      }
      break;
    }

    const bool same_site =
        decoded ? cpc == fpc
                : crec.func == frec.func && crec.block == frec.block &&
                      crec.instr == frec.instr && crec.op == frec.op;
    if (!same_site) {
      out.divergence_index = frec.index;
      break;
    }

    if (recording) {
      rec.append(frec, fpc);
      out.clean_bits.push_back(crec.result_bits);
      out.clean_op_bits.push_back(crec.op_bits);
      // Register defs, memory stores, and emitted output values are
      // comparable; Emit/EmitTrunc carry the emitted bits in result_bits
      // with no result location.
      const bool comparable = frec.result_loc != vm::kNoLoc ||
                              frec.op == ir::Opcode::Emit ||
                              frec.op == ir::Opcode::EmitTrunc;
      out.differs.push_back(comparable &&
                            frec.result_bits != crec.result_bits);
      if (opts.max_records != 0 && rec.size() >= opts.max_records) {
        recording = false;
        out.truncated = true;
      }
    }

    // When the streams have finished in the same step, stop cleanly.
    if (cs == vm::Vm::Status::Finished || fs == vm::Vm::Status::Finished) {
      if ((cs == vm::Vm::Status::Finished) !=
          (fs == vm::Vm::Status::Finished)) {
        out.divergence_index = frec.index;
      }
      break;
    }
  }

  // Drive both runs to completion for outcome classification; past the
  // divergence (or trap) point there is nothing more to record.
  while (clean.status() == vm::Vm::Status::Running) clean.step(nullptr);
  while (faulty.status() == vm::Vm::Status::Running) faulty.step(nullptr);

  out.clean_result = clean.take_result();
  out.faulty_result = faulty.take_result();
}

std::pair<vm::VmOptions, vm::VmOptions> split_options(
    const DiffOptions& opts) {
  vm::VmOptions clean_opts = opts.base;
  clean_opts.observer = nullptr;
  clean_opts.column_sink = nullptr;
  clean_opts.fault = vm::FaultPlan::none();
  vm::VmOptions faulty_opts = clean_opts;
  faulty_opts.fault = opts.fault;
  return {clean_opts, faulty_opts};
}

}  // namespace

DiffResult diff_run(const ir::Module& m, const DiffOptions& opts) {
  DiffOptions local = opts;
  local.base.program = nullptr;  // module overload stays on the legacy engine
  auto [clean_opts, faulty_opts] = split_options(local);
  vm::Vm clean(m, clean_opts);
  vm::Vm faulty(m, faulty_opts);
  DiffResult out;
  diff_between(clean, faulty, local, out, TraceRecorder{out});
  return out;
}

DiffResult diff_run(const vm::DecodedProgram& program,
                    const DiffOptions& opts) {
  DiffOptions local = opts;
  local.base.program = &program;
  auto [clean_opts, faulty_opts] = split_options(local);
  vm::Vm clean(program, clean_opts);
  vm::Vm faulty(program, faulty_opts);
  DiffResult out;
  diff_between(clean, faulty, local, out, TraceRecorder{out});
  return out;
}

ColumnDiff diff_run_columnar(
    std::shared_ptr<const vm::DecodedProgram> program,
    const DiffOptions& opts) {
  DiffOptions local = opts;
  local.base.program = program.get();
  auto [clean_opts, faulty_opts] = split_options(local);
  vm::Vm clean(*program, clean_opts);
  vm::Vm faulty(*program, faulty_opts);
  ColumnDiff out;
  out.faulty = trace::ColumnTrace(std::move(program));
  diff_between(clean, faulty, local, out, ColumnRecorder{out});
  return out;
}

}  // namespace ft::acl
