#include "acl/diff.h"

namespace ft::acl {

namespace {

/// The engine-agnostic lockstep core: both VMs are already constructed
/// (same program, clean vs faulty fault plan) and are stepped side by side.
DiffResult diff_between(vm::Vm& clean, vm::Vm& faulty,
                        const DiffOptions& opts) {
  DiffResult out;

  vm::DynInstr crec, frec;
  bool recording = true;
  while (clean.status() == vm::Vm::Status::Running &&
         faulty.status() == vm::Vm::Status::Running) {
    const auto cs = clean.step(&crec);
    const auto fs = faulty.step(&frec);
    const bool clean_retired = cs != vm::Vm::Status::Trapped;
    const bool faulty_retired = fs != vm::Vm::Status::Trapped;
    if (!clean_retired || !faulty_retired) {
      // One side trapped mid-instruction: streams end here.
      if (!faulty_retired && out.divergence_index == kNoIndex) {
        out.divergence_index = frec.index;
      }
      break;
    }

    const bool same_site = crec.func == frec.func &&
                           crec.block == frec.block &&
                           crec.instr == frec.instr && crec.op == frec.op;
    if (!same_site) {
      out.divergence_index = frec.index;
      break;
    }

    if (recording) {
      out.faulty.records.push_back(frec);
      out.clean_bits.push_back(crec.result_bits);
      out.clean_op_bits.push_back(crec.op_bits);
      // Register defs, memory stores, and emitted output values are
      // comparable; Emit/EmitTrunc carry the emitted bits in result_bits
      // with no result location.
      const bool comparable = frec.result_loc != vm::kNoLoc ||
                              frec.op == ir::Opcode::Emit ||
                              frec.op == ir::Opcode::EmitTrunc;
      out.differs.push_back(comparable &&
                            frec.result_bits != crec.result_bits);
      if (opts.max_records != 0 &&
          out.faulty.records.size() >= opts.max_records) {
        recording = false;
        out.truncated = true;
      }
    }

    // When the streams have finished in the same step, stop cleanly.
    if (cs == vm::Vm::Status::Finished || fs == vm::Vm::Status::Finished) {
      if ((cs == vm::Vm::Status::Finished) !=
          (fs == vm::Vm::Status::Finished)) {
        out.divergence_index = frec.index;
      }
      break;
    }
  }

  // Drive both runs to completion for outcome classification; past the
  // divergence (or trap) point there is nothing more to record.
  while (clean.status() == vm::Vm::Status::Running) clean.step(nullptr);
  while (faulty.status() == vm::Vm::Status::Running) faulty.step(nullptr);

  out.clean_result = clean.take_result();
  out.faulty_result = faulty.take_result();
  return out;
}

std::pair<vm::VmOptions, vm::VmOptions> split_options(
    const DiffOptions& opts) {
  vm::VmOptions clean_opts = opts.base;
  clean_opts.observer = nullptr;
  clean_opts.fault = vm::FaultPlan::none();
  vm::VmOptions faulty_opts = clean_opts;
  faulty_opts.fault = opts.fault;
  return {clean_opts, faulty_opts};
}

}  // namespace

DiffResult diff_run(const ir::Module& m, const DiffOptions& opts) {
  auto [clean_opts, faulty_opts] = split_options(opts);
  clean_opts.program = nullptr;  // module overload stays on the legacy engine
  faulty_opts.program = nullptr;
  vm::Vm clean(m, clean_opts);
  vm::Vm faulty(m, faulty_opts);
  return diff_between(clean, faulty, opts);
}

DiffResult diff_run(const vm::DecodedProgram& program,
                    const DiffOptions& opts) {
  auto [clean_opts, faulty_opts] = split_options(opts);
  vm::Vm clean(program, clean_opts);
  vm::Vm faulty(program, faulty_opts);
  return diff_between(clean, faulty, opts);
}

}  // namespace ft::acl
