#include "acl/table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "util/bits.h"

namespace ft::acl {

std::string_view acl_event_kind_name(AclEventKind k) noexcept {
  switch (k) {
    case AclEventKind::Birth: return "birth";
    case AclEventKind::Rebirth: return "rebirth";
    case AclEventKind::KillOverwrite: return "kill-overwrite";
    case AclEventKind::KillDead: return "kill-dead";
    case AclEventKind::KillEndOfTrace: return "kill-end-of-trace";
  }
  return "?";
}

std::size_t AclSeries::births() const noexcept {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.kind == AclEventKind::Birth) n++;
  }
  return n;
}

std::size_t AclSeries::kills(AclEventKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.kind == kind) n++;
  }
  return n;
}

double error_magnitude(std::uint64_t clean_bits, std::uint64_t faulty_bits,
                       ir::Type t) {
  double clean = 0, faulty = 0;
  switch (t) {
    case ir::Type::F64:
      clean = util::bits_to_f64(clean_bits);
      faulty = util::bits_to_f64(faulty_bits);
      break;
    case ir::Type::F32:
      clean = static_cast<double>(util::bits_to_f32(clean_bits));
      faulty = static_cast<double>(util::bits_to_f32(faulty_bits));
      break;
    default:
      clean = static_cast<double>(static_cast<std::int64_t>(clean_bits));
      faulty = static_cast<double>(static_cast<std::int64_t>(faulty_bits));
      break;
  }
  if (clean == faulty) return 0.0;
  if (clean == 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(clean - faulty) / std::fabs(clean);
}

namespace {

struct CorruptInfo {
  std::uint64_t birth_index;
  std::uint64_t faulty_bits;
  std::uint64_t clean_bits;
  ir::Type type;
};

/// Shared forward sweep. `write_corrupt(i, record)` decides whether the
/// value committed by record i is corrupted; everything else (liveness,
/// kills, series) is identical between value-diff and taint modes.
/// `Range` is any ordered record range — a DynInstr span or a columnar
/// TraceView (whose cursor materializes records on the fly).
template <typename Range, typename WriteCorruptFn, typename CleanBitsFn>
AclSeries sweep(const Range& records,
                const trace::LocationEvents& events,
                const WriteCorruptFn& write_corrupt,
                const CleanBitsFn& clean_bits_of,
                std::unordered_map<vm::Location, CorruptInfo> corrupted,
                SweepInspector* inspector = nullptr) {
  AclSeries out;
  out.count.reserve(records.size());

  auto add_event = [&](const vm::DynInstr& r, vm::Location loc,
                       AclEventKind kind, const CorruptInfo& info) {
    AclEvent e;
    e.index = r.index;
    e.loc = loc;
    e.kind = kind;
    e.op = r.op;
    e.line = r.line;
    e.faulty_bits = info.faulty_bits;
    e.clean_bits = info.clean_bits;
    e.type = info.type;
    out.events.push_back(e);
  };

  const std::function<bool(vm::Location)> is_corrupted =
      [&corrupted](vm::Location l) { return corrupted.count(l) != 0; };

  // Kept for the end-of-trace kill events (the cursor's buffer is
  // transient, so the last record is copied out of the loop).
  vm::DynInstr last{};
  std::size_t i = 0;
  for (const vm::DynInstr& r : records) {
    // Verdict for this record's write (also consumed by the inspector; in
    // taint mode computing it advances the taint state, so compute once).
    const bool corrupt = write_corrupt(i, r);
    if (inspector) inspector->on_record(r, i, corrupt, is_corrupted);

    // Reads first: a corrupted location whose last-ever reference is this
    // read dies here (Fig. 3: death happens at the consuming instruction).
    for (unsigned k = 0; k < r.nops; ++k) {
      const vm::Location loc = r.op_loc[k];
      if (loc == vm::kNoLoc) continue;
      auto it = corrupted.find(loc);
      if (it == corrupted.end()) continue;
      if (!events.touched_after(loc, r.index)) {
        add_event(r, loc, AclEventKind::KillDead, it->second);
        corrupted.erase(it);
      }
    }

    // Then the write of this record (register def, memory store, or the
    // caller-side register committed by Ret).
    if (r.result_loc != vm::kNoLoc) {
      auto it = corrupted.find(r.result_loc);
      CorruptInfo info{r.index, r.result_bits, clean_bits_of(i), r.type};
      if (r.op == ir::Opcode::Store) info.type = r.op_type[0];
      if (corrupt) {
        if (it == corrupted.end()) {
          if (out.first_corruption_index == kNoIndex) {
            out.first_corruption_index = r.index;
          }
          add_event(r, r.result_loc, AclEventKind::Birth, info);
          corrupted.emplace(r.result_loc, info);
        } else {
          add_event(r, r.result_loc, AclEventKind::Rebirth, info);
          it->second = info;
        }
      } else if (it != corrupted.end()) {
        add_event(r, r.result_loc, AclEventKind::KillOverwrite, info);
        corrupted.erase(it);
      }
    }

    out.count.push_back(static_cast<std::uint32_t>(corrupted.size()));
    out.max_count = std::max(out.max_count, out.count.back());
    if (++i == records.size()) last = r;
  }

  // Locations still corrupted when the stream ends die at the last record
  // (Fig. 3's instruction N).
  if (!records.empty() && !corrupted.empty()) {
    for (const auto& [loc, info] : corrupted) {
      add_event(last, loc, AclEventKind::KillEndOfTrace, info);
    }
    out.count.back() = 0;
  }
  return out;
}

/// Value-diff build over either diff substrate.
template <typename Diff, typename Range>
AclSeries build_acl_impl(const Diff& diff, const Range& records,
                         const trace::LocationEvents& events,
                         vm::Location seed_loc, std::uint64_t seed_index,
                         SweepInspector* inspector) {
  std::unordered_map<vm::Location, CorruptInfo> init;
  if (seed_loc != vm::kNoLoc) {
    init.emplace(seed_loc, CorruptInfo{seed_index, 0, 0, ir::Type::Void});
  }
  auto out = sweep(
      records, events,
      [&](std::size_t i, const vm::DynInstr&) { return bool(diff.differs[i]); },
      [&](std::size_t i) { return diff.clean_bits[i]; }, std::move(init),
      inspector);
  if (seed_loc != vm::kNoLoc) {
    out.first_corruption_index =
        std::min(out.first_corruption_index, seed_index);
  }
  return out;
}

}  // namespace

AclSeries build_acl(const DiffResult& diff,
                    const trace::LocationEvents& events,
                    vm::Location seed_loc, std::uint64_t seed_index,
                    SweepInspector* inspector) {
  return build_acl_impl(diff,
                        std::span<const vm::DynInstr>(
                            diff.faulty.records.data(), diff.usable_records()),
                        events, seed_loc, seed_index, inspector);
}

AclSeries build_acl(const ColumnDiff& diff,
                    const trace::LocationEvents& events,
                    vm::Location seed_loc, std::uint64_t seed_index,
                    SweepInspector* inspector) {
  return build_acl_impl(diff, diff.records(), events, seed_loc, seed_index,
                        inspector);
}

AclSeries build_acl_taint(std::span<const vm::DynInstr> records,
                          const trace::LocationEvents& events,
                          vm::Location seed, std::uint64_t seed_index) {
  // The taint set lives inside the write_corrupt closure: a write is corrupt
  // iff any operand location is tainted (or it is the seeding write).
  auto tainted = std::make_shared<std::unordered_set<vm::Location>>();
  tainted->insert(seed);
  auto write_corrupt = [tainted, seed, seed_index](std::size_t,
                                                   const vm::DynInstr& r) {
    bool corrupt = false;
    if (r.index == seed_index && r.result_loc == seed) corrupt = true;
    for (unsigned k = 0; k < r.nops && !corrupt; ++k) {
      if (r.op_loc[k] != vm::kNoLoc && tainted->count(r.op_loc[k])) {
        corrupt = true;
      }
    }
    if (corrupt) {
      tainted->insert(r.result_loc);
    } else {
      tainted->erase(r.result_loc);
    }
    return corrupt;
  };
  std::unordered_map<vm::Location, CorruptInfo> init;
  init.emplace(seed, CorruptInfo{seed_index, 0, 0, ir::Type::Void});
  auto out = sweep(records, events, write_corrupt,
                   [](std::size_t) { return std::uint64_t{0}; },
                   std::move(init));
  out.first_corruption_index = std::min(out.first_corruption_index, seed_index);
  return out;
}

}  // namespace ft::acl
