// The Alive Corrupted Locations (ACL) table (§III-C).
//
// Given a faulty instruction stream annotated with "does this result differ
// from the fault-free run?", the sweep maintains the set of alive corrupted
// locations and emits a per-instruction count (the last row of the paper's
// Fig. 3) plus the birth/death event log the pattern detectors consume.
//
// Death rules (validated against the worked example in Fig. 3):
//  * KillOverwrite — the location is written with a value equal to the
//    fault-free run's value (Pattern 6, Data Overwriting);
//  * KillDead — the location is read and has no later read or write in the
//    trace: its corrupted value is provably never referenced again
//    (feeds Pattern 1, Dead Corrupted Locations);
//  * KillEndOfTrace — still corrupted when the stream ends (counted dead at
//    the final instruction, as in Fig. 3's instruction 6).
//
// Two corruption predicates are supported:
//  * value-diff (preferred; needs a DiffResult): corrupted = bits differ
//    from the matching fault-free record — this is what lets shifts,
//    truncations and conditionals *mask* corruption;
//  * taint (fallback past control-flow divergence): classic dataflow taint
//    seeded at the injection, minus dead/overwritten locations (§IV-B).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "acl/diff.h"
#include "trace/events.h"

namespace ft::acl {

enum class AclEventKind : std::uint8_t {
  Birth,          // location newly corrupted
  Rebirth,        // corrupted location written with a still-corrupt value
  KillOverwrite,  // overwritten with a clean value
  KillDead,       // last reference retired; never referenced again
  KillEndOfTrace, // corrupted when the stream ended
};

[[nodiscard]] std::string_view acl_event_kind_name(AclEventKind k) noexcept;

struct AclEvent {
  std::uint64_t index = 0;       // dynamic instruction index
  vm::Location loc = vm::kNoLoc;
  AclEventKind kind = AclEventKind::Birth;
  ir::Opcode op = ir::Opcode::Br;  // opcode of the instruction at `index`
  std::uint32_t line = 0;          // source line of that instruction
  std::uint64_t faulty_bits = 0;
  std::uint64_t clean_bits = 0;    // value-diff mode only (0 in taint mode)
  ir::Type type = ir::Type::Void;
};

struct AclSeries {
  /// count[i] = number of alive corrupted locations after faulty record i.
  std::vector<std::uint32_t> count;
  std::vector<AclEvent> events;
  std::uint32_t max_count = 0;
  std::uint64_t first_corruption_index = kNoIndex;

  [[nodiscard]] std::uint32_t final_count() const noexcept {
    return count.empty() ? 0 : count.back();
  }
  [[nodiscard]] std::size_t births() const noexcept;
  [[nodiscard]] std::size_t kills(AclEventKind kind) const noexcept;
};

/// Hook for analyses that need to watch the sweep (the pattern detectors of
/// src/patterns/). Called once per record *before* the corrupted set is
/// updated for that record, with the corruption verdict of the record's
/// write (false when the record writes nothing) and a membership query over
/// the current corrupted set.
class SweepInspector {
 public:
  virtual ~SweepInspector() = default;
  virtual void on_record(const vm::DynInstr& r, std::size_t pos,
                         bool result_corrupt,
                         const std::function<bool(vm::Location)>& corrupted) = 0;
};

/// Value-diff ACL over the lockstep prefix of a differential run.
/// `events` must be built over the same record span (diff.faulty.span()).
/// For region-input injections pass the flipped memory word as `seed_loc`
/// (with `seed_index` = the RegionEnter index) so the corrupted input cell
/// itself is tracked; pass vm::kNoLoc for result-bit injections, whose
/// corruption enters the stream through a differing write.
[[nodiscard]] AclSeries build_acl(const DiffResult& diff,
                                  const trace::LocationEvents& events,
                                  vm::Location seed_loc = vm::kNoLoc,
                                  std::uint64_t seed_index = 0,
                                  SweepInspector* inspector = nullptr);

/// Columnar form: the sweep walks the faulty ColumnTrace through a
/// TraceView cursor (`events` must be built over diff.records()). Event
/// streams and series are bit-identical to the DiffResult form.
[[nodiscard]] AclSeries build_acl(const ColumnDiff& diff,
                                  const trace::LocationEvents& events,
                                  vm::Location seed_loc = vm::kNoLoc,
                                  std::uint64_t seed_index = 0,
                                  SweepInspector* inspector = nullptr);

/// Taint-mode ACL: location `seed` is corrupted from `seed_index` on (pass
/// a record span starting at or after the injection); corruption propagates
/// through operand->result dataflow regardless of values.
[[nodiscard]] AclSeries build_acl_taint(std::span<const vm::DynInstr> records,
                                        const trace::LocationEvents& events,
                                        vm::Location seed,
                                        std::uint64_t seed_index);

/// Relative error |clean - faulty| / |clean| of two same-typed values
/// (Eq. 2 of the paper). Returns +inf when clean == 0 and faulty != 0,
/// 0 when both equal.
[[nodiscard]] double error_magnitude(std::uint64_t clean_bits,
                                     std::uint64_t faulty_bits, ir::Type t);

}  // namespace ft::acl
