// Lockstep differential execution.
//
// FlipTracker's analyses compare a faulty run against a matching fault-free
// run (§III-D: "we compare the values of input and output locations ...
// between faulty and fault-free runs"). Because the VM is deterministic, the
// two instruction streams are identical record-by-record until either the
// fault alters control flow (a corrupted branch) or the faulty run traps.
// diff_run() steps both VMs in lockstep, records the faulty stream, the
// matching clean result values, and the first divergence point if any.
//
// Two result substrates:
//  * DiffResult      — array-of-structs trace::Trace faulty stream; produced
//                      by both diff_run overloads. The module overload (the
//                      legacy-engine A/B reference) only produces this form.
//  * ColumnDiff      — columnar trace::ColumnTrace faulty stream, produced
//                      by diff_run_columnar on the decoded engine. Same
//                      clean-side columns and divergence semantics; the ACL
//                      sweep and the pattern detectors consume it through
//                      TraceView without materializing records. This is
//                      what core::AnalysisSession::patterns_for runs on.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "ir/module.h"
#include "trace/collector.h"
#include "trace/column.h"
#include "util/bitset.h"
#include "vm/fault_plan.h"
#include "vm/interp.h"

namespace ft::acl {

struct DiffOptions {
  vm::VmOptions base;     // seed / mpi / budget; observer & fault ignored
  vm::FaultPlan fault;    // the injection for the faulty run
  std::size_t max_records = 0;  // cap on materialized records (0 = no cap)
  /// Expected record count (e.g. the session's golden-trace size): the
  /// faulty stream and the per-record clean columns reserve this up front
  /// instead of growing through a dozen reallocations.
  std::size_t reserve_records = 0;
};

inline constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

struct DiffResult {
  trace::Trace faulty;                     // faulty-run record stream
  std::vector<std::uint64_t> clean_bits;   // clean result bits per record
  // Clean operand bits per record (aligned with DynInstr::op_bits); lets
  // region-boundary analyses compare input values between the two runs.
  std::vector<std::array<std::uint64_t, vm::kMaxTracedOps>> clean_op_bits;
  util::Bitset differs;                    // result differs at record i
  std::uint64_t divergence_index = kNoIndex;  // first control-flow divergence
  bool truncated = false;                  // record cap reached
  vm::RunResult faulty_result;             // full-run outcomes (always valid)
  vm::RunResult clean_result;

  [[nodiscard]] bool diverged() const noexcept {
    return divergence_index != kNoIndex;
  }
  /// Records in [0, usable_records()) have trustworthy clean/differs data.
  [[nodiscard]] std::size_t usable_records() const noexcept {
    return clean_bits.size();
  }
};

/// Columnar differential result: identical semantics to DiffResult with the
/// faulty stream on the columnar substrate (~4x smaller resident).
struct ColumnDiff {
  trace::ColumnTrace faulty;
  std::vector<std::uint64_t> clean_bits;
  std::vector<std::array<std::uint64_t, vm::kMaxTracedOps>> clean_op_bits;
  util::Bitset differs;
  std::uint64_t divergence_index = kNoIndex;
  bool truncated = false;
  vm::RunResult faulty_result;
  vm::RunResult clean_result;

  [[nodiscard]] bool diverged() const noexcept {
    return divergence_index != kNoIndex;
  }
  [[nodiscard]] std::size_t usable_records() const noexcept {
    return clean_bits.size();
  }
  /// The usable lockstep prefix as a zero-copy view.
  [[nodiscard]] trace::TraceView records() const noexcept {
    return faulty.view().prefix(usable_records());
  }
};

[[nodiscard]] DiffResult diff_run(const ir::Module& m, const DiffOptions& opts);

/// Same lockstep diff on the decoded engine: both VMs execute the shared
/// pre-decoded program, so callers that diff many plans against one module
/// (core::AnalysisSession) pay the decode cost once, not per diff. Results
/// are bit-identical to the module overload.
[[nodiscard]] DiffResult diff_run(const vm::DecodedProgram& program,
                                  const DiffOptions& opts);

/// Columnar lockstep diff on the decoded engine. The faulty stream lands in
/// a ColumnTrace that shares `program` (the shared_ptr keeps the decoded
/// form alive past the call); records materialize bit-identically to the
/// diff_run overloads (pinned by tests/column_trace_test.cpp).
[[nodiscard]] ColumnDiff diff_run_columnar(
    std::shared_ptr<const vm::DecodedProgram> program,
    const DiffOptions& opts);

}  // namespace ft::acl
