// Lockstep differential execution.
//
// FlipTracker's analyses compare a faulty run against a matching fault-free
// run (§III-D: "we compare the values of input and output locations ...
// between faulty and fault-free runs"). Because the VM is deterministic, the
// two instruction streams are identical record-by-record until either the
// fault alters control flow (a corrupted branch) or the faulty run traps.
// diff_run() steps both VMs in lockstep, records the faulty stream, the
// matching clean result values, and the first divergence point if any.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "trace/collector.h"
#include "vm/fault_plan.h"
#include "vm/interp.h"

namespace ft::acl {

struct DiffOptions {
  vm::VmOptions base;     // seed / mpi / budget; observer & fault ignored
  vm::FaultPlan fault;    // the injection for the faulty run
  std::size_t max_records = 0;  // cap on materialized records (0 = no cap)
};

inline constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

struct DiffResult {
  trace::Trace faulty;                     // faulty-run record stream
  std::vector<std::uint64_t> clean_bits;   // clean result bits per record
  // Clean operand bits per record (aligned with DynInstr::op_bits); lets
  // region-boundary analyses compare input values between the two runs.
  std::vector<std::array<std::uint64_t, vm::kMaxTracedOps>> clean_op_bits;
  std::vector<bool> differs;               // result differs at record i
  std::uint64_t divergence_index = kNoIndex;  // first control-flow divergence
  bool truncated = false;                  // record cap reached
  vm::RunResult faulty_result;             // full-run outcomes (always valid)
  vm::RunResult clean_result;

  [[nodiscard]] bool diverged() const noexcept {
    return divergence_index != kNoIndex;
  }
  /// Records in [0, usable_records()) have trustworthy clean/differs data.
  [[nodiscard]] std::size_t usable_records() const noexcept {
    return clean_bits.size();
  }
};

[[nodiscard]] DiffResult diff_run(const ir::Module& m, const DiffOptions& opts);

/// Same lockstep diff on the decoded engine: both VMs execute the shared
/// pre-decoded program, so callers that diff many plans against one module
/// (core::AnalysisSession) pay the decode cost once, not per diff. Results
/// are bit-identical to the module overload.
[[nodiscard]] DiffResult diff_run(const vm::DecodedProgram& program,
                                  const DiffOptions& opts);

}  // namespace ft::acl
