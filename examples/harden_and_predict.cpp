// The two use cases of §VII on one screen:
//   1. resilience-aware design — compare baseline CG against the variants
//      hardened with the paper's patterns (Fig. 12 / Fig. 13) and measure
//      the resilience delta;
//   2. resilience prediction — fit the Eq. 3 regression on a set of apps'
//      pattern rates and predict the success rate of a held-out app
//      without running a campaign on it.
//
// Each use case is one AnalysisRequest: all variant campaigns (use case 1)
// and all ten apps' rates + campaigns (use case 2) batch onto the shared
// pool instead of running serially app-by-app.
//
//   $ ./harden_and_predict --trials=150 --holdout=KMEANS
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/analysis.h"
#include "model/regression.h"
#include "util/cli.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 150));
  const auto holdout = cli.get("holdout", "KMEANS");

  fault::CampaignConfig cfg;
  cfg.trials = trials;

  // --- Use case 1 -----------------------------------------------------------
  std::printf("=== use case 1: hardening CG with resilience patterns ===\n");
  struct V {
    const char* label;
    apps::CgHardening h;
  };
  const V variants[] = {{"baseline", {false, false}},
                        {"dcl+overwrite", {true, false}},
                        {"truncation", {false, true}},
                        {"all", {true, true}}};

  core::AnalysisRequest harden;
  for (const auto& v : variants) {
    auto app = (v.h.dcl_overwrite || v.h.truncation)
                   ? apps::build_cg_hardened(v.h)
                   : apps::build_cg();
    app.name = v.label;
    harden.app(std::move(app));
  }
  const auto harden_report = core::run_analysis(
      harden.region("cg_makea")
          .target(fault::TargetClass::Internal)
          .success_rates(cfg)
          .app_campaign(cfg));

  util::Table t1({"variant", "whole-app SR", "makea-phase SR"});
  for (const auto& v : variants) {
    const auto* app_report = harden_report.find_app(v.label);
    const auto* phase = harden_report.find(v.label, "cg_makea",
                                           fault::TargetClass::Internal);
    t1.add_row({v.label,
                util::Table::num(app_report && app_report->whole_app
                                     ? app_report->whole_app->success_rate()
                                     : 0.0,
                                 3),
                util::Table::num(
                    phase ? phase->campaign.success_rate() : 0.0, 3)});
  }
  t1.print(std::cout);

  // --- Use case 2 -----------------------------------------------------------
  std::printf("\n=== use case 2: predicting %s's success rate ===\n",
              holdout.c_str());
  std::vector<std::string> train;
  for (const auto& n : apps::all_app_names()) {
    if (n != holdout) train.push_back(n);
  }

  // One batched request measures rates + campaigns for all ten apps (the
  // holdout's campaign only serves the measured-vs-predicted comparison).
  core::AnalysisRequest predict_req;
  for (const auto& n : train) predict_req.app(n);
  predict_req.app(holdout);
  const auto predict_report =
      core::run_analysis(predict_req.pattern_rates().app_campaign(cfg));

  model::Matrix x(train.size(), patterns::kNumPatterns);
  std::vector<double> y;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto& app_report = predict_report.apps[i];
    for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
      x.at(i, j) = app_report.rates->rate[j];
    }
    y.push_back(app_report.whole_app->success_rate());
    std::printf("  trained on %-8s (measured SR %.3f)\n", train[i].c_str(),
                y.back());
  }

  model::BayesianLinearRegression reg;
  model::RegressionOptions opts;
  opts.prior_precision = 1e-6;
  reg.fit(x, y, opts);

  const auto& held = predict_report.apps.back();
  std::vector<double> features(patterns::kNumPatterns);
  for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
    features[j] = held.rates->rate[j];
  }
  const double predicted = std::clamp(reg.predict(features), 0.0, 1.0);
  const double measured = held.whole_app->success_rate();

  std::printf("\npredicted SR of %s from pattern rates alone: %.3f\n",
              holdout.c_str(), predicted);
  std::printf("measured SR via fault injection:              %.3f\n",
              measured);
  std::printf("prediction error: %.1f%%  |  model R^2 on training set: %.3f\n",
              measured > 0 ? 100.0 * std::abs(predicted - measured) / measured
                           : 0.0,
              reg.r_squared(x, y));
  return 0;
}
