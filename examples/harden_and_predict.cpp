// The two use cases of §VII on one screen:
//   1. resilience-aware design — harden CG's makea phase with the
//      campaign-guided transform pass (DWC + ABFT detectors, rollback
//      recovery) and measure the coverage it buys, with the hand-written
//      pattern variants of Fig. 12 / Fig. 13 as the A/B reference;
//   2. resilience prediction — fit the Eq. 3 regression on a set of apps'
//      pattern rates and predict the success rate of a held-out app
//      without running a campaign on it.
//
// Each use case batches onto the shared pool: the hardening pipeline runs
// baseline campaign -> transform -> re-campaign as one request pair, and
// use case 2 measures all ten apps' rates + campaigns in one request.
//
//   $ ./harden_and_predict --trials=150 --holdout=KMEANS
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/analysis.h"
#include "harden/harden.h"
#include "model/regression.h"
#include "util/cli.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 150));
  const auto holdout = cli.get("holdout", "KMEANS");

  fault::CampaignConfig cfg;
  cfg.trials = trials;

  // --- Use case 1 -----------------------------------------------------------
  std::printf("=== use case 1: hardening CG's makea phase ===\n");

  // 1a. The automatic pipeline: the baseline campaign on cg_makea guides
  // the transform pass, a re-campaign of the emitted module (rollback
  // recovery enabled) measures the coverage the detectors buy.
  fault::CampaignConfig rcfg = cfg;
  rcfg.recovery.enabled = true;
  harden::HardenConfig hc;
  hc.max_dwc_per_region = 8;  // overhead throttle for the tight loop body
  const auto pass_report = core::AnalysisRequest()
                               .app("CG")
                               .region("cg_makea")
                               .target(fault::TargetClass::Internal)
                               .success_rates(rcfg)
                               .app_campaign(rcfg)
                               .harden(hc);

  util::Table t0({"region", "baseline SR", "hardened SR", "detection",
                  "dwc", "abft", "overhead"});
  for (const auto& app : pass_report.apps) {
    for (const auto& r : app.regions) {
      t0.add_row({r.region_name, util::Table::num(r.baseline_success_rate, 3),
                  util::Table::num(r.hardened_success_rate, 3),
                  util::Table::num(r.detection_rate, 3),
                  std::to_string(r.dwc_sites), std::to_string(r.abft_cells),
                  util::Table::num(r.overhead(), 2) + "x"});
    }
  }
  t0.print(std::cout);
  const auto* auto_app = pass_report.hardened.find_app("CG");
  if (auto_app && auto_app->whole_app) {
    std::printf("pass-hardened whole-app SR: %.3f effective "
                "(%zu trials recovered via rollback)\n",
                auto_app->whole_app->effective_success_rate(),
                auto_app->whole_app->detected_recovered);
  }

  // 1b. A/B reference: the paper's hand-written pattern variants.
  std::printf("\n-- hand-built pattern variants (Fig. 12 / Fig. 13) --\n");
  struct V {
    const char* label;
    apps::CgHardening h;
  };
  const V variants[] = {{"baseline", {false, false}},
                        {"dcl+overwrite", {true, false}},
                        {"truncation", {false, true}},
                        {"all", {true, true}}};

  core::AnalysisRequest harden;
  for (const auto& v : variants) {
    auto app = (v.h.dcl_overwrite || v.h.truncation)
                   ? apps::build_cg_hardened(v.h)
                   : apps::build_cg();
    app.name = v.label;
    harden.app(std::move(app));
  }
  const auto harden_report = core::run_analysis(
      harden.region("cg_makea")
          .target(fault::TargetClass::Internal)
          .success_rates(cfg)
          .app_campaign(cfg));

  util::Table t1({"variant", "whole-app SR", "makea-phase SR"});
  for (const auto& v : variants) {
    const auto* app_report = harden_report.find_app(v.label);
    const auto* phase = harden_report.find(v.label, "cg_makea",
                                           fault::TargetClass::Internal);
    t1.add_row({v.label,
                util::Table::num(app_report && app_report->whole_app
                                     ? app_report->whole_app->success_rate()
                                     : 0.0,
                                 3),
                util::Table::num(
                    phase ? phase->campaign.success_rate() : 0.0, 3)});
  }
  t1.print(std::cout);

  // --- Use case 2 -----------------------------------------------------------
  std::printf("\n=== use case 2: predicting %s's success rate ===\n",
              holdout.c_str());
  std::vector<std::string> train;
  for (const auto& n : apps::all_app_names()) {
    if (n != holdout) train.push_back(n);
  }

  // One batched request measures rates + campaigns for all ten apps (the
  // holdout's campaign only serves the measured-vs-predicted comparison).
  core::AnalysisRequest predict_req;
  for (const auto& n : train) predict_req.app(n);
  predict_req.app(holdout);
  const auto predict_report =
      core::run_analysis(predict_req.pattern_rates().app_campaign(cfg));

  model::Matrix x(train.size(), patterns::kNumPatterns);
  std::vector<double> y;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto& app_report = predict_report.apps[i];
    for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
      x.at(i, j) = app_report.rates->rate[j];
    }
    y.push_back(app_report.whole_app->success_rate());
    std::printf("  trained on %-8s (measured SR %.3f)\n", train[i].c_str(),
                y.back());
  }

  model::BayesianLinearRegression reg;
  model::RegressionOptions opts;
  opts.prior_precision = 1e-6;
  reg.fit(x, y, opts);

  const auto& held = predict_report.apps.back();
  std::vector<double> features(patterns::kNumPatterns);
  for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
    features[j] = held.rates->rate[j];
  }
  const double predicted = std::clamp(reg.predict(features), 0.0, 1.0);
  const double measured = held.whole_app->success_rate();

  std::printf("\npredicted SR of %s from pattern rates alone: %.3f\n",
              holdout.c_str(), predicted);
  std::printf("measured SR via fault injection:              %.3f\n",
              measured);
  std::printf("prediction error: %.1f%%  |  model R^2 on training set: %.3f\n",
              measured > 0 ? 100.0 * std::abs(predicted - measured) / measured
                           : 0.0,
              reg.r_squared(x, y));
  return 0;
}
