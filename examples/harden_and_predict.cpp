// The two use cases of §VII on one screen:
//   1. resilience-aware design — compare baseline CG against the variants
//      hardened with the paper's patterns (Fig. 12 / Fig. 13) and measure
//      the resilience delta;
//   2. resilience prediction — fit the Eq. 3 regression on a set of apps'
//      pattern rates and predict the success rate of a held-out app
//      without running a campaign on it.
//
//   $ ./harden_and_predict --trials=150 --holdout=KMEANS
#include <cstdio>
#include <iostream>

#include "core/fliptracker.h"
#include "model/regression.h"
#include "util/cli.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 150));
  const auto holdout = cli.get("holdout", "KMEANS");

  fault::CampaignConfig cfg;
  cfg.trials = trials;

  // --- Use case 1 -----------------------------------------------------------
  std::printf("=== use case 1: hardening CG with resilience patterns ===\n");
  util::Table t1({"variant", "whole-app SR", "makea-phase SR"});
  struct V {
    const char* label;
    apps::CgHardening h;
  };
  for (const auto& v :
       {V{"baseline", {false, false}}, V{"dcl+overwrite", {true, false}},
        V{"truncation", {false, true}}, V{"all", {true, true}}}) {
    auto app = (v.h.dcl_overwrite || v.h.truncation)
                   ? apps::build_cg_hardened(v.h)
                   : apps::build_cg();
    core::FlipTracker tracker(std::move(app));
    const auto whole = tracker.app_campaign(cfg);
    const auto* makea = tracker.app().find_region("cg_makea");
    const auto phase = tracker.region_campaign(
        makea->id, 0, fault::TargetClass::Internal, cfg);
    t1.add_row({v.label, util::Table::num(whole.success_rate(), 3),
                util::Table::num(phase.success_rate(), 3)});
  }
  t1.print(std::cout);

  // --- Use case 2 -----------------------------------------------------------
  std::printf("\n=== use case 2: predicting %s's success rate ===\n",
              holdout.c_str());
  std::vector<std::string> train;
  for (const auto& n : apps::all_app_names()) {
    if (n != holdout) train.push_back(n);
  }

  model::Matrix x(train.size(), patterns::kNumPatterns);
  std::vector<double> y;
  for (std::size_t i = 0; i < train.size(); ++i) {
    core::FlipTracker tracker(apps::build_app(train[i]));
    const auto rates = tracker.pattern_rates();
    for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
      x.at(i, j) = rates.rate[j];
    }
    tracker.reset_trace();
    y.push_back(tracker.app_campaign(cfg).success_rate());
    std::printf("  trained on %-8s (measured SR %.3f)\n", train[i].c_str(),
                y.back());
  }

  model::BayesianLinearRegression reg;
  model::RegressionOptions opts;
  opts.prior_precision = 1e-6;
  reg.fit(x, y, opts);

  core::FlipTracker held(apps::build_app(holdout));
  const auto held_rates = held.pattern_rates();
  std::vector<double> features(patterns::kNumPatterns);
  for (std::size_t j = 0; j < patterns::kNumPatterns; ++j) {
    features[j] = held_rates.rate[j];
  }
  const double predicted =
      std::clamp(reg.predict(features), 0.0, 1.0);
  held.reset_trace();
  const double measured = held.app_campaign(cfg).success_rate();

  std::printf("\npredicted SR of %s from pattern rates alone: %.3f\n",
              holdout.c_str(), predicted);
  std::printf("measured SR via fault injection:              %.3f\n",
              measured);
  std::printf("prediction error: %.1f%%  |  model R^2 on training set: %.3f\n",
              measured > 0 ? 100.0 * std::abs(predicted - measured) / measured
                           : 0.0,
              reg.r_squared(x, y));
  return 0;
}
