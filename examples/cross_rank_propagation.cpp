// Cross-rank error propagation in a few lines: run one multi-rank fault
// campaign on the rank-decomposed CG (one mpi::World per trial, one VM per
// rank, one injected rank) and read the cross-rank outcome taxonomy — does
// an injected error die inside its rank, get swallowed by a collective,
// propagate to peers and still verify, corrupt the output, or crash a rank?
//
//   build/cross_rank_propagation [nranks] [trials]
#include <cstdio>
#include <cstdlib>

#include "core/analysis.h"

int main(int argc, char** argv) {
  using namespace ft;
  const std::int64_t nranks = argc > 1 ? std::atoll(argv[1]) : 4;
  const std::size_t trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 48;

  // A session over the rank-decomposed CG; the same module serves any world
  // size, so nranks is a knob of the request, not of the application.
  core::AnalysisSession session(apps::build_cg_ranked());

  fault::RankCampaignConfig cfg;
  cfg.nranks = nranks;
  cfg.trials = trials;
  const auto result = session.rank_campaign(cfg);

  std::printf("CG-RANKED, %zu trials, world size %lld:\n", result.trials,
              static_cast<long long>(result.nranks));
  std::printf("  masked locally          %zu\n", result.masked_locally);
  std::printf("  absorbed by collective  %zu\n",
              result.absorbed_by_collective);
  std::printf("  propagated (verified)   %zu\n", result.propagated);
  std::printf("  corrupted output        %zu\n", result.corrupted_output);
  std::printf("  trap on any rank        %zu\n", result.trapped);
  std::printf("  success rate            %.3f\n", result.success_rate());

  std::printf("per-injected-rank success rates:\n");
  for (std::int64_t r = 0; r < result.nranks; ++r) {
    std::printf("  rank %lld: %.3f over %zu trials\n",
                static_cast<long long>(r), result.rank_success_rate(r),
                result.rank_trials[static_cast<std::size_t>(r)]);
  }

  std::printf("propagation depth (peer ranks contaminated, non-trap "
              "trials):\n");
  for (std::size_t k = 0; k < result.propagation_depth.size(); ++k) {
    std::printf("  %zu peer%s: %zu\n", k, k == 1 ? "" : "s",
                result.propagation_depth[k]);
  }
  std::printf("mean propagation depth: %.2f\n",
              result.mean_propagation_depth());

  // The serial baseline of the SAME program: at world size 1 the
  // decomposition owns everything, which is the serial-vs-parallel
  // comparison of Wu et al. in two calls.
  cfg.nranks = 1;
  const auto serial = session.rank_campaign(cfg);
  std::printf("\nserial (1-rank) success rate of the same program: %.3f\n",
              serial.success_rate());
  return 0;
}
