// Resilience survey: run a statistical fault-injection campaign over every
// code region of a chosen application and rank the regions by natural
// resilience — the workflow a resilience engineer would use to decide
// which regions need protection and which tolerate faults for free
// (the paper's motivation: "avoid overprotecting regions of code that are
// naturally resilient").
//
//   $ ./resilience_survey --app=CG --trials=150
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/fliptracker.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto app_name = cli.get("app", "CG");
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 120));

  core::FlipTracker tracker(apps::build_app(app_name));
  const auto& app = tracker.app();
  std::printf("resilience survey of %s: %d main-loop iterations, %zu regions\n",
              app_name.c_str(), app.main_iters, app.analysis_regions.size());
  std::printf("%zu injections per region/class (--trials=N; Leveugle 95%%/3%% "
              "would use %llu)\n\n",
              trials,
              static_cast<unsigned long long>(
                  util::fault_injection_sample_size(1u << 20, 0.95, 0.03)));

  struct Row {
    std::string region;
    double sr_internal, sr_input, crash_rate;
    std::uint64_t population;
  };
  std::vector<Row> rows;

  fault::CampaignConfig cfg;
  cfg.trials = trials;
  for (const auto& rd : app.analysis_regions) {
    const auto sites = tracker.enumerate_region_sites(rd.id, 0);
    if (!sites.region_found) continue;
    const auto internal = fault::run_campaign(
        app.module, sites, fault::TargetClass::Internal,
        tracker.golden().outputs, app.verifier, app.base, cfg);
    const auto input = fault::run_campaign(
        app.module, sites, fault::TargetClass::Input,
        tracker.golden().outputs, app.verifier, app.base, cfg);
    rows.push_back(Row{
        rd.name, internal.success_rate(), input.success_rate(),
        internal.trials
            ? static_cast<double>(internal.crashed) / internal.trials
            : 0.0,
        sites.sites.internal_bits()});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sr_internal > b.sr_internal;
  });

  util::Table table({"rank", "region", "SR internal", "SR input",
                     "crash rate", "exposure (fault sites)"});
  int rank = 1;
  for (const auto& r : rows) {
    table.add_row({std::to_string(rank++), r.region,
                   util::Table::num(r.sr_internal, 3),
                   util::Table::num(r.sr_input, 3),
                   util::Table::num(r.crash_rate, 3),
                   std::to_string(r.population)});
  }
  table.print(std::cout);

  std::printf("\nreading the table: high-SR regions are naturally resilient\n"
              "(protection there is wasted); low-SR, high-exposure regions\n"
              "are where detectors/replication pay off.\n");
  return 0;
}
