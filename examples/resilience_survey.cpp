// Resilience survey: run a statistical fault-injection campaign over every
// code region of a chosen application and rank the regions by natural
// resilience — the workflow a resilience engineer would use to decide
// which regions need protection and which tolerate faults for free
// (the paper's motivation: "avoid overprotecting regions of code that are
// naturally resilient").
//
// The whole survey is one declarative AnalysisRequest; every region's
// internal and input campaigns interleave on the shared pool.
//
//   $ ./resilience_survey --app=CG --trials=150
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/analysis.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto app_name = cli.get("app", "CG");
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 120));

  fault::CampaignConfig cfg;
  cfg.trials = trials;
  const auto report =
      core::run_analysis(core::AnalysisRequest()
                             .app(app_name)
                             .analysis_regions()
                             .target(fault::TargetClass::Internal)
                             .target(fault::TargetClass::Input)
                             .success_rates(cfg));

  std::printf("resilience survey of %s: %zu regions, %zu injections over "
              "%zu campaigns in %.1f ms (%.0f trials/s)\n",
              app_name.c_str(), report.entries.size() / 2,
              report.total_trials, report.campaign_units, report.campaign_ms,
              report.trials_per_second());
  std::printf("%zu injections per region/class (--trials=N; Leveugle 95%%/3%% "
              "would use %llu)\n\n",
              trials,
              static_cast<unsigned long long>(
                  util::fault_injection_sample_size(1u << 20, 0.95, 0.03)));

  struct Row {
    std::string region;
    double sr_internal, sr_input, crash_rate;
    std::uint64_t population;
  };
  std::vector<Row> rows;
  for (const auto& e : report.entries) {
    if (e.target != fault::TargetClass::Internal || !e.region_found) continue;
    const auto* input = report.find(e.app, e.region_name,
                                    fault::TargetClass::Input, e.instance);
    rows.push_back(Row{
        e.region_name, e.campaign.success_rate(),
        input ? input->campaign.success_rate() : 0.0,
        e.campaign.trials ? static_cast<double>(e.campaign.crashed) /
                                static_cast<double>(e.campaign.trials)
                          : 0.0,
        e.campaign.population_bits});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sr_internal > b.sr_internal;
  });

  util::Table table({"rank", "region", "SR internal", "SR input",
                     "crash rate", "exposure (fault sites)"});
  int rank = 1;
  for (const auto& r : rows) {
    table.add_row({std::to_string(rank++), r.region,
                   util::Table::num(r.sr_internal, 3),
                   util::Table::num(r.sr_input, 3),
                   util::Table::num(r.crash_rate, 3),
                   std::to_string(r.population)});
  }
  table.print(std::cout);

  std::printf("\nreading the table: high-SR regions are naturally resilient\n"
              "(protection there is wasted); low-SR, high-exposure regions\n"
              "are where detectors/replication pay off.\n");
  return 0;
}
