// Quickstart: build a tiny program with the high-level builder, wrap it in
// an AnalysisSession, inject one bit flip, and watch the analysis explain
// what happened.
//
//   $ ./quickstart
//
// Walks through the library's core loop: program -> session (golden run +
// trace, cached) -> fault plan -> differential run -> ACL table -> pattern
// report.
#include <cstdio>

#include "acl/table.h"
#include "core/analysis.h"
#include "hl/builder.h"
#include "util/bits.h"

using namespace ft;

int main() {
  // 1. A little program: sum an array, overwrite a temp, emit the result.
  hl::ProgramBuilder pb("quickstart");
  auto data = pb.global_init_f64("data", {1.0, 2.0, 3.0, 4.0, 5.0});
  auto tmp = pb.global_f64("tmp", 1);
  const auto region = pb.declare_region("sum_loop", __LINE__, __LINE__);
  const auto main_fn = pb.declare_function("main");
  {
    auto f = pb.define(main_fn);
    auto sum = f.var_f64("sum", 0.0);
    f.region(region, [&] {
      f.for_("i", 0, 5, [&](hl::Value i) {
        f.st(tmp, 0, f.ld(data, i));          // corruption target
        sum.set(sum.get() + f.ld(tmp, 0));
      });
    });
    f.st(tmp, 0, f.c_f64(0.0));               // clean overwrite of the temp
    f.emit(sum.get());
    f.ret();
  }

  // 2. An AnalysisSession owns the golden artifacts (run, trace, region
  //    instances) behind caches; any analysis below reuses them.
  apps::AppSpec spec;
  spec.name = "quickstart";
  spec.module = pb.finish();
  spec.verifier = apps::standard_verifier(1e-9);
  core::AnalysisSession session(std::move(spec));

  const auto golden = session.golden();
  std::printf("golden sum = %.3f (%llu dynamic instructions)\n",
              golden->outputs[0].as_f64(),
              static_cast<unsigned long long>(golden->instructions));

  // 3. Find an injection target: the load of data[2] in the golden trace
  //    (a columnar trace; the view's cursor materializes records on
  //    demand).
  std::uint64_t target = 0;
  for (const vm::DynInstr& r : session.golden_trace()->view()) {
    if (r.op == ir::Opcode::Load &&
        r.result_bits == util::f64_to_bits(3.0)) {
      target = r.index;
      break;
    }
  }
  std::printf("injecting: flip bit 50 of the load of data[2] "
              "(dynamic instruction %llu)\n",
              static_cast<unsigned long long>(target));

  // 4. Differential run: faulty vs fault-free, in lockstep.
  const auto plan = vm::FaultPlan::result_bit(target, 50);
  const auto diff = session.diff_with(plan);
  std::printf("faulty sum = %.3f (clean %.3f)\n",
              diff.faulty_result.outputs[0].as_f64(),
              diff.clean_result.outputs[0].as_f64());

  // 5. ACL table + pattern report, straight from the session.
  const auto report = session.patterns_for(plan);
  std::printf("\nACL: max alive corrupted locations = %u\n",
              report.acl.max_count);
  for (const auto& e : report.acl.events) {
    std::printf("  @%-6llu %-18s %s\n",
                static_cast<unsigned long long>(e.index),
                std::string(acl::acl_event_kind_name(e.kind)).c_str(),
                vm::loc_to_string(e.loc).c_str());
  }
  std::printf("\nresilience patterns observed:\n");
  for (const auto kind : patterns::kAllPatterns) {
    if (report.found(kind)) {
      std::printf("  %s x%zu\n",
                  std::string(patterns::pattern_name(kind)).c_str(),
                  report.count(kind));
    }
  }
  return 0;
}
