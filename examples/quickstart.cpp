// Quickstart: build a tiny program with the high-level builder, run it,
// inject one bit flip, and watch FlipTracker explain what happened.
//
//   $ ./quickstart
//
// Walks through the library's core loop: program -> golden run -> fault
// plan -> differential run -> ACL table -> pattern report.
#include <cstdio>

#include "acl/diff.h"
#include "acl/table.h"
#include "hl/builder.h"
#include "patterns/detect.h"
#include "trace/collector.h"
#include "trace/events.h"
#include "util/bits.h"
#include "vm/interp.h"

using namespace ft;

int main() {
  // 1. A little program: sum an array, overwrite a temp, emit the result.
  hl::ProgramBuilder pb("quickstart");
  auto data = pb.global_init_f64("data", {1.0, 2.0, 3.0, 4.0, 5.0});
  auto tmp = pb.global_f64("tmp", 1);
  const auto region = pb.declare_region("sum_loop", __LINE__, __LINE__);
  const auto main_fn = pb.declare_function("main");
  {
    auto f = pb.define(main_fn);
    auto sum = f.var_f64("sum", 0.0);
    f.region(region, [&] {
      f.for_("i", 0, 5, [&](hl::Value i) {
        f.st(tmp, 0, f.ld(data, i));          // corruption target
        sum.set(sum.get() + f.ld(tmp, 0));
      });
    });
    f.st(tmp, 0, f.c_f64(0.0));               // clean overwrite of the temp
    f.emit(sum.get());
    f.ret();
  }
  auto module = pb.finish();

  // 2. Golden (fault-free) run.
  const auto golden = vm::Vm::run(module);
  std::printf("golden sum = %.3f (%llu dynamic instructions)\n",
              golden.outputs[0].as_f64(),
              static_cast<unsigned long long>(golden.instructions));

  // 3. Find an injection target: the load of data[2] in the trace.
  trace::TraceCollector collector;
  vm::VmOptions topts;
  topts.observer = &collector;
  (void)vm::Vm::run(module, topts);
  std::uint64_t target = 0;
  for (const auto& r : collector.trace().records) {
    if (r.op == ir::Opcode::Load &&
        r.result_bits == util::f64_to_bits(3.0)) {
      target = r.index;
      break;
    }
  }
  std::printf("injecting: flip bit 50 of the load of data[2] "
              "(dynamic instruction %llu)\n",
              static_cast<unsigned long long>(target));

  // 4. Differential run: faulty vs fault-free, in lockstep.
  acl::DiffOptions dopts;
  dopts.fault = vm::FaultPlan::result_bit(target, 50);
  const auto diff = acl::diff_run(module, dopts);
  std::printf("faulty sum = %.3f (clean %.3f)\n",
              diff.faulty_result.outputs[0].as_f64(),
              diff.clean_result.outputs[0].as_f64());

  // 5. ACL table + pattern report.
  const auto events = trace::LocationEvents::build(
      std::span<const vm::DynInstr>(diff.faulty.records.data(),
                                    diff.usable_records()));
  const auto report = patterns::detect_patterns(diff, events);
  std::printf("\nACL: max alive corrupted locations = %u\n",
              report.acl.max_count);
  for (const auto& e : report.acl.events) {
    std::printf("  @%-6llu %-18s %s\n",
                static_cast<unsigned long long>(e.index),
                std::string(acl::acl_event_kind_name(e.kind)).c_str(),
                vm::loc_to_string(e.loc).c_str());
  }
  std::printf("\nresilience patterns observed:\n");
  for (const auto kind : patterns::kAllPatterns) {
    if (report.found(kind)) {
      std::printf("  %s x%zu\n",
                  std::string(patterns::pattern_name(kind)).c_str(),
                  report.count(kind));
    }
  }
  return 0;
}
