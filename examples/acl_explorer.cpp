// ACL explorer: pick any of the ten paper workloads, any code region, any
// injection, and inspect the resulting error-propagation timeline — the
// interactive equivalent of the paper's Figs. 3 and 7.
//
//   $ ./acl_explorer --app=MG --region=mg_d --bit=40
//   $ ./acl_explorer --app=LULESH --region=l_a --instance=3 --dot=region.dot
//
// With --dot=FILE it also writes the region instance's DDDG in Graphviz
// format (what the paper renders with Graphviz, §IV-B).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/analysis.h"
#include "dddg/graph.h"
#include "util/cli.h"
#include "util/table.h"

using namespace ft;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto app_name = cli.get("app", "MG");
  const auto region_name = cli.get("region", "");
  const auto instance = static_cast<std::uint32_t>(cli.get_int("instance", 0));
  const auto bit = static_cast<std::uint32_t>(cli.get_int("bit", 40));

  core::AnalysisSession session(apps::build_app(app_name));
  const auto& app = session.app();

  const apps::RegionDesc* rd = region_name.empty()
                                   ? &app.analysis_regions.front()
                                   : app.find_region(region_name);
  if (!rd) {
    std::fprintf(stderr, "unknown region '%s'; available:", region_name.c_str());
    for (const auto& r : app.analysis_regions) {
      std::fprintf(stderr, " %s", r.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  std::printf("app=%s region=%s instance=%u bit=%u\n", app_name.c_str(),
              rd->name.c_str(), instance, bit);

  // Region anatomy: size, inputs/outputs, DDDG.
  const auto io = session.region_io(rd->id, instance);
  const auto inst =
      trace::find_instance(*session.region_instances(), rd->id, instance);
  if (!io || !inst) {
    std::fprintf(stderr, "region instance not found\n");
    return 1;
  }
  std::printf("instance spans dyn instr [%llu, %llu] (%llu instructions)\n",
              static_cast<unsigned long long>(inst->enter_index),
              static_cast<unsigned long long>(inst->exit_index),
              static_cast<unsigned long long>(inst->body_length()));
  std::printf("inputs=%zu outputs=%zu internals=%zu\n", io->inputs.size(),
              io->outputs.size(), io->internals.size());

  const auto dot_path = cli.get("dot", "");
  if (!dot_path.empty()) {
    const auto g = session.region_dddg(rd->id, instance);
    std::ofstream out(dot_path);
    out << dddg::to_dot(*g, app_name + ":" + rd->name);
    std::printf("DDDG (%zu nodes, %zu edges) written to %s\n",
                g->num_nodes(), g->num_edges(), dot_path.c_str());
  }

  // Inject into the first memory input of the instance and show the ACL.
  const auto mem_inputs = regions::memory_inputs(*io);
  if (mem_inputs.empty()) {
    std::printf("region has no memory inputs; nothing to inject\n");
    return 0;
  }
  const auto& target = mem_inputs[mem_inputs.size() / 2];
  const auto plan = vm::FaultPlan::region_input_bit(
      rd->id, instance, vm::loc_address(target.loc),
      store_size(target.type), bit);
  std::printf("\ninjecting bit %u of input %s at region entry\n", bit,
              vm::loc_to_string(target.loc).c_str());

  const auto rep = session.patterns_for(plan);
  const auto& acl = rep.acl;
  std::printf("ACL: max=%u births=%zu overwrite-kills=%zu dead-kills=%zu\n",
              acl.max_count, acl.births(),
              acl.kills(acl::AclEventKind::KillOverwrite),
              acl.kills(acl::AclEventKind::KillDead));

  // Timeline, downsampled around the corruption window.
  if (!acl.count.empty() && acl.max_count > 0) {
    const std::size_t begin = acl.first_corruption_index > 20
                                  ? acl.first_corruption_index - 20
                                  : 0;
    const std::size_t n = acl.count.size() - begin;
    const std::size_t step = std::max<std::size_t>(1, n / 40);
    util::Table t({"dyn instr", "alive corrupted", "bar"});
    for (std::size_t i = begin; i < acl.count.size(); i += step) {
      std::uint32_t peak = 0;
      for (std::size_t j = i; j < std::min(i + step, acl.count.size()); ++j) {
        peak = std::max(peak, acl.count[j]);
      }
      t.add_row({std::to_string(i), std::to_string(peak),
                 std::string(std::min<std::uint32_t>(peak, 40), '#')});
    }
    t.print(std::cout);
  }

  std::printf("\npatterns: ");
  bool any = false;
  for (const auto kind : patterns::kAllPatterns) {
    if (rep.found(kind)) {
      std::printf("%s(x%zu) ",
                  std::string(patterns::pattern_name(kind)).c_str(),
                  rep.count(kind));
      any = true;
    }
  }
  std::printf("%s\n", any ? "" : "none observed");

  const auto diff = session.diff_with(plan);
  std::printf("outcome: %s\n",
              std::string(fault::outcome_name(fault::classify_outcome(
                  diff.faulty_result, diff.clean_result.outputs,
                  app.verifier))).c_str());
  return 0;
}
