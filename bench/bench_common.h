// Shared helpers for the bench harness (one binary per paper table/figure).
//
// Every bench accepts:
//   --full           paper-scale campaigns (Leveugle-derived trial counts at
//                    95%/3%, or 99%/1% where the paper says so); default is
//                    a reduced trial count so `for b in build/bench/*` runs
//                    in minutes on two cores;
//   --trials=N       override the per-target trial count explicitly;
//   --seed=N         campaign RNG seed.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/fliptracker.h"
#include "util/cli.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace ft::bench {

struct BenchConfig {
  bool full = false;
  std::size_t trials = 0;  // 0 = pick: full ? Leveugle : quick_default
  std::uint64_t seed = 0xF11Dull;

  static BenchConfig parse(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    BenchConfig c;
    c.full = cli.get_bool("full", false);
    c.trials = static_cast<std::size_t>(cli.get_int("trials", 0));
    c.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0xF11D));
    return c;
  }

  /// Campaign config for one target. With --full, trials=0 lets the
  /// campaign derive the Leveugle sample size from the site population.
  [[nodiscard]] fault::CampaignConfig campaign(
      std::size_t quick_default, double confidence = 0.95,
      double margin = 0.03) const {
    fault::CampaignConfig cfg;
    cfg.trials = trials != 0 ? trials : (full ? 0 : quick_default);
    cfg.confidence = confidence;
    cfg.margin = margin;
    cfg.seed = seed;
    return cfg;
  }
};

inline void print_header(const char* what, const BenchConfig& cfg) {
  std::printf("== FlipTracker reproduction: %s ==\n", what);
  std::printf("mode: %s (pass --full for paper-scale campaigns)\n\n",
              cfg.full ? "FULL" : "quick");
}

}  // namespace ft::bench
