// Shared helpers for the bench harness (one binary per paper table/figure).
//
// Every bench accepts:
//   --full           paper-scale campaigns (Leveugle-derived trial counts at
//                    95%/3%, or 99%/1% where the paper says so); default is
//                    a reduced trial count so `for b in build/bench/*` runs
//                    in minutes on two cores;
//   --trials=N       override the per-target trial count explicitly;
//   --seed=N         campaign RNG seed;
//   --legacy         serialize campaigns per region (A/B against batching).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "util/cli.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace ft::bench {

struct BenchConfig {
  bool full = false;
  std::size_t trials = 0;  // 0 = pick: full ? Leveugle : quick_default
  std::uint64_t seed = 0xF11Dull;
  bool legacy = false;  // per-region serialized campaigns (old facade flow)

  static BenchConfig parse(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    BenchConfig c;
    c.full = cli.get_bool("full", false);
    c.trials = static_cast<std::size_t>(cli.get_int("trials", 0));
    c.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0xF11D));
    c.legacy = cli.get_bool("legacy", false);
    return c;
  }

  [[nodiscard]] core::ExecutionMode mode() const noexcept {
    return legacy ? core::ExecutionMode::LegacyPerRegion
                  : core::ExecutionMode::Batched;
  }

  /// Campaign config for one target. With --full, trials=0 lets the
  /// campaign derive the Leveugle sample size from the site population.
  [[nodiscard]] fault::CampaignConfig campaign(
      std::size_t quick_default, double confidence = 0.95,
      double margin = 0.03) const {
    fault::CampaignConfig cfg;
    cfg.trials = trials != 0 ? trials : (full ? 0 : quick_default);
    cfg.confidence = confidence;
    cfg.margin = margin;
    cfg.seed = seed;
    return cfg;
  }
};

inline void print_header(const char* what, const BenchConfig& cfg) {
  std::printf("== FlipTracker reproduction: %s ==\n", what);
  std::printf("mode: %s (pass --full for paper-scale campaigns)\n\n",
              cfg.full ? "FULL" : "quick");
}

/// Uniform serialization of an AnalysisReport's scheduling metadata — the
/// per-figure tables come from the entries, this is the throughput footer.
inline void print_report_meta(const core::AnalysisReport& report) {
  std::printf(
      "\nschedule: %zu campaign unit%s, %zu trials, %zu pool batch%s on "
      "%zu workers\n",
      report.campaign_units, report.campaign_units == 1 ? "" : "s",
      report.total_trials, report.pool_batches,
      report.pool_batches == 1 ? "" : "es", report.pool_workers);
  std::printf("campaign wall: %.1f ms (%.0f trials/s); total wall: %.1f ms\n",
              report.campaign_ms, report.trials_per_second(), report.wall_ms);
  std::printf("campaign instructions: %llu (%.1f M instr/s, decoded engine)\n",
              static_cast<unsigned long long>(report.total_instructions),
              report.instructions_per_second() / 1e6);
  if (report.snapshots_taken > 0) {
    std::printf(
        "prefix reuse: %llu snapshots, %llu instr saved, %llu early exits, "
        "max resume depth %llu\n",
        static_cast<unsigned long long>(report.snapshots_taken),
        static_cast<unsigned long long>(report.instructions_saved),
        static_cast<unsigned long long>(report.early_exits),
        static_cast<unsigned long long>(report.max_resume_depth));
  }
}

}  // namespace ft::bench
